package lotusx_test

import (
	"fmt"
	"strings"

	"lotusx"
)

const exampleXML = `<library>
  <book genre="db">
    <title>XML Databases</title>
    <author>Tok Wang Ling</author>
  </book>
  <book genre="ir">
    <title>Twig Joins Explained</title>
    <author>Jiaheng Lu</author>
  </book>
</library>`

func ExampleFromReader() {
	engine, err := lotusx.FromReader("library", strings.NewReader(exampleXML))
	if err != nil {
		panic(err)
	}
	st := engine.Stats()
	fmt.Println(st.Nodes, "nodes,", st.Tags, "tags")
	// Output: 9 nodes, 5 tags
}

func ExampleEngine_SearchString() {
	engine, _ := lotusx.FromReader("library", strings.NewReader(exampleXML))
	res, err := engine.SearchString(`//book[author = "Jiaheng Lu"]/title`, lotusx.SearchOptions{K: 5})
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Println(engine.Document().Value(a.Node))
	}
	// Output: Twig Joins Explained
}

func ExampleEngine_SearchString_rewrite() {
	engine, _ := lotusx.FromReader("library", strings.NewReader(exampleXML))
	// "auther" is a typo; rewriting substitutes the tag that occurs here.
	res, _ := engine.SearchString(`//book/auther`, lotusx.SearchOptions{K: 1, Rewrite: true})
	a := res.Answers[0]
	fmt.Println(engine.Document().Value(a.Node), "via", a.Rewrite.Query)
	// Output: Tok Wang Ling via //book/author
}

func ExampleSession() {
	engine, _ := lotusx.FromReader("library", strings.NewReader(exampleXML))
	s := engine.NewSession()

	root, _ := s.Root("book", lotusx.Descendant)
	// What can live under a book?  Position-aware completion answers.
	cands, _ := s.SuggestTags(root, lotusx.Child, "t", 3)
	fmt.Println("candidate:", cands[0].Text)

	title, _ := s.AddNode(root, lotusx.Child, "title")
	_ = s.SetPredicate(title, lotusx.Contains, "twig")
	res, _ := s.Run(lotusx.SearchOptions{K: 3})
	fmt.Println("answers:", len(res.Answers))
	// Output:
	// candidate: title
	// answers: 1
}

func ExampleQuery_ToXQuery() {
	q := lotusx.MustParse(`//book[author = "Jiaheng Lu"]/title`)
	fmt.Println(q.ToXQuery())
	// Output:
	// for $v0 in doc()//book
	// for $v1 in $v0/author
	// for $v2 in $v0/title
	// where lower-case(string($v1)) = "jiaheng lu"
	// return $v2
}

func ExampleUnderline() {
	engine, _ := lotusx.FromReader("library", strings.NewReader(exampleXML))
	q := lotusx.MustParse(`//book[title contains "twig"]`)
	res, _ := engine.Search(q, lotusx.SearchOptions{K: 1})
	for _, h := range engine.Highlights(q, res.Answers[0].Scored.Match) {
		fmt.Println(lotusx.Underline(h.Value, h.Spans))
	}
	// Output: >>Twig<< Joins Explained
}
