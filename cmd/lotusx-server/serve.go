package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lotusx/internal/server"
)

// Graceful shutdown, shared by every serving mode.  SIGTERM (the rolling
// restart) or SIGINT (the operator's ^C) starts a drain instead of killing
// the process: /readyz flips to draining, the drain gate answers new
// non-exempt requests 503 + Retry-After, http.Server.Shutdown waits for
// in-flight requests, the ingest queue finishes accepted jobs — all under
// the -drain-timeout budget — and only then does the process exit.  Work the
// budget cuts off is not lost: journaled ingests replay on the next start.

// serveUntilSignal listens on addr and serves srv until a shutdown signal,
// then drains.  onStop, when non-nil, runs after the drain (mode-specific
// teardown like stopping the router's federator).  A nil return is a clean
// exit: every in-flight request finished inside the budget.
func serveUntilSignal(addr string, srv *server.Server, drainTimeout time.Duration, onStop func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(ln, srv, drainTimeout, onStop, nil)
}

// serveListener is serveUntilSignal over an existing listener with an
// injectable signal channel (nil installs the real SIGTERM/SIGINT handler) —
// the seam the drain tests drive.
func serveListener(ln net.Listener, srv *server.Server, drainTimeout time.Duration, onStop func(), sig <-chan os.Signal) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if sig == nil {
		c := make(chan os.Signal, 1)
		signal.Notify(c, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(c)
		sig = c
	}
	select {
	case err := <-serveErr:
		srv.Close()
		return err // the listener died on its own; nothing to drain
	case s := <-sig:
		fmt.Printf("received %v: draining for up to %v\n", s, drainTimeout)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Shutdown stops accepting connections and waits for in-flight requests;
	// the drain gate already refuses new work on kept-alive connections.
	shutdownErr := hs.Shutdown(ctx)
	drainErr := srv.Drain(ctx)
	if onStop != nil {
		onStop()
	}
	srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if shutdownErr != nil {
		shutdownErr = fmt.Errorf("drain budget expired with requests in flight: %w", shutdownErr)
	}
	if drainErr != nil {
		drainErr = fmt.Errorf("drain budget expired with ingest jobs unfinished (journaled jobs replay on restart): %w", drainErr)
	}
	return errors.Join(shutdownErr, drainErr)
}
