package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildEngineFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := buildEngine(path, "", "", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Nodes != 2 {
		t.Fatalf("nodes = %d", e.Stats().Nodes)
	}
}

func TestBuildEngineFromIndexFile(t *testing.T) {
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	idxPath := filepath.Join(dir, "doc.ltx")
	if err := os.WriteFile(xmlPath, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := buildEngine(xmlPath, "", "", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := buildEngine("", idxPath, "", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats().Nodes != 2 {
		t.Fatalf("reloaded nodes = %d", e2.Stats().Nodes)
	}
}

func TestBuildEngineFromDataset(t *testing.T) {
	e, err := buildEngine("", "", "dblp", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Nodes < 5000 {
		t.Fatalf("dataset engine too small: %d", e.Stats().Nodes)
	}
}

func TestBuildEngineErrors(t *testing.T) {
	if _, err := buildEngine("", "", "", 1, 1); err == nil {
		t.Error("no source should fail")
	}
	if _, err := buildEngine("/nonexistent.xml", "", "", 1, 1); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := buildEngine("", "/nonexistent.ltx", "", 1, 1); err == nil {
		t.Error("missing index should fail")
	}
	if _, err := buildEngine("", "", "bogus", 1, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
}
