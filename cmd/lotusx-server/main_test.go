package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestBuildEngineFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := buildEngine(path, "", "", 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Nodes != 2 {
		t.Fatalf("nodes = %d", e.Stats().Nodes)
	}
}

func TestBuildEngineFromIndexFile(t *testing.T) {
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	idxPath := filepath.Join(dir, "doc.ltx")
	if err := os.WriteFile(xmlPath, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := buildEngine(xmlPath, "", "", 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := buildEngine("", idxPath, "", 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stats().Nodes != 2 {
		t.Fatalf("reloaded nodes = %d", e2.Stats().Nodes)
	}
}

func TestBuildEngineFromDataset(t *testing.T) {
	e, err := buildEngine("", "", "dblp", 1, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Nodes < 5000 {
		t.Fatalf("dataset engine too small: %d", e.Stats().Nodes)
	}
}

func TestBuildEngineErrors(t *testing.T) {
	if _, err := buildEngine("", "", "", 1, 1, false); err == nil {
		t.Error("no source should fail")
	}
	if _, err := buildEngine("/nonexistent.xml", "", "", 1, 1, false); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := buildEngine("", "/nonexistent.ltx", "", 1, 1, false); err == nil {
		t.Error("missing index should fail")
	}
	if _, err := buildEngine("", "", "bogus", 1, 1, false); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestParseSlice(t *testing.T) {
	t.Parallel()
	good := []struct {
		in         string
		idx, parts int
	}{
		{"0/1", 0, 1},
		{"0/4", 0, 4},
		{"3/4", 3, 4},
		{" 1 / 2 ", 1, 2},
	}
	for _, tc := range good {
		idx, parts, err := parseSlice(tc.in)
		if err != nil || idx != tc.idx || parts != tc.parts {
			t.Errorf("parseSlice(%q) = (%d, %d, %v), want (%d, %d, nil)",
				tc.in, idx, parts, err, tc.idx, tc.parts)
		}
	}
	for _, in := range []string{"", "1", "2/2", "4/2", "-1/2", "0/0", "a/b", "1/2/3"} {
		if _, _, err := parseSlice(in); err == nil {
			t.Errorf("parseSlice(%q) accepted, want error", in)
		}
	}
}

func TestParseShardServers(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name        string
		in          string
		replication int
		want        [][]string
	}{
		{
			"flat-r1", "http://a:1,http://b:1", 1,
			[][]string{{"http://a:1"}, {"http://b:1"}},
		},
		{
			"flat-r2", "http://a:1,http://a:2,http://b:1,http://b:2", 2,
			[][]string{{"http://a:1", "http://a:2"}, {"http://b:1", "http://b:2"}},
		},
		{
			"grouped", "http://a:1,http://a:2;http://b:1", 1,
			[][]string{{"http://a:1", "http://a:2"}, {"http://b:1"}},
		},
		{
			"grouped-whitespace", " http://a:1 , http://a:2 ; http://b:1 ", 2,
			[][]string{{"http://a:1", "http://a:2"}, {"http://b:1"}},
		},
		{
			"single", "http://a:1", 1,
			[][]string{{"http://a:1"}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := parseShardServers(tc.in, tc.replication)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}

	bad := []struct {
		in          string
		replication int
	}{
		{"", 1},
		{"   ", 2},
		{"http://a:1,http://b:1,http://c:1", 2}, // 3 URLs not divisible by R=2
		{"http://a:1", 0},                       // replication < 1
		{";;", 1},                               // groups name no servers
	}
	for _, tc := range bad {
		if _, err := parseShardServers(tc.in, tc.replication); err == nil {
			t.Errorf("parseShardServers(%q, %d) accepted, want error", tc.in, tc.replication)
		}
	}
}
