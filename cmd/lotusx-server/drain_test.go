package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/faults"
	"lotusx/internal/ingest"
	"lotusx/internal/metrics"
	"lotusx/internal/remote"
	"lotusx/internal/server"
)

const drainXML = `<dblp>
  <article><author>Ada</author><title>Alpha</title></article>
  <article><author>Bo</author><title>Beta</title></article>
  <article><author>Cy</author><title>Gamma</title></article>
</dblp>`

// startDraining runs serveListener on an ephemeral port with an injected
// signal channel — the seam every serving mode's drain rides through.
func startDraining(t *testing.T, srv *server.Server, budget time.Duration, onStop func()) (base string, sig chan os.Signal, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig = make(chan os.Signal, 1)
	done = make(chan error, 1)
	go func() { done <- serveListener(ln, srv, budget, onStop, sig) }()
	return "http://" + ln.Addr().String(), sig, done
}

// waitExit asserts serveListener returned within the test's patience.
func waitExit(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		t.Fatal("serveListener never returned after the signal")
		return nil
	}
}

// blockOnce returns a fault hook that blocks the first firing call until
// release is closed (closing entered on the way in) and lets every other
// call pass — the deterministic way to hold one request in flight.
func blockOnce(entered, release chan struct{}) func(context.Context, string) error {
	var once sync.Once
	return func(ctx context.Context, key string) error {
		mine := false
		once.Do(func() { mine = true })
		if mine {
			close(entered)
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
}

// TestDrainCompletesInFlightQuery is the standalone catalog mode: a query
// held mid-evaluation when SIGTERM lands still answers 200, and the process
// exits clean.
func TestDrainCompletesInFlightQuery(t *testing.T) {
	reg := faults.New()
	entered := make(chan struct{})
	release := make(chan struct{})
	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Hook: blockOnce(entered, release)})

	doc, err := core.FromReader("lib", strings.NewReader(drainXML))
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.FromDocument("lib", doc.Document(), 2, corpus.Config{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	catalog := core.NewCatalog()
	catalog.AddBackend("lib", c)
	srv := server.NewCatalogConfig(catalog, server.Config{Metrics: metrics.New()})
	base, sig, done := startDraining(t, srv, 10*time.Second, nil)

	type result struct {
		code int
		body string
		err  error
	}
	res := make(chan result, 1)
	go func() {
		r, err := http.Post(base+"/api/v1/query?dataset=lib", "application/json",
			strings.NewReader(`{"query":"//article/title","k":10}`))
		if err != nil {
			res <- result{err: err}
			return
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		res <- result{code: r.StatusCode, body: string(b)}
	}()

	<-entered // the query is in flight, held inside shard evaluation
	sig <- syscall.SIGTERM
	// Give the drain a moment to start, then let the query finish: Shutdown
	// must wait for it rather than cutting the connection.
	time.Sleep(50 * time.Millisecond)
	close(release)

	got := <-res
	if got.err != nil {
		t.Fatalf("in-flight query dropped during drain: %v", got.err)
	}
	if got.code != http.StatusOK || !strings.Contains(got.body, "answers") {
		t.Fatalf("in-flight query: status %d body %q", got.code, got.body)
	}
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
}

// TestDrainShardMode: the slim shard-server shape (single engine, no admin)
// exits clean on SIGINT with zero in-flight work.
func TestDrainShardMode(t *testing.T) {
	engine, err := buildEngine("", "", "dblp", 1, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.SplitDocument(engine.Document(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewConfig(core.FromDocument(docs[0]), server.Config{Metrics: metrics.New()})
	base, sig, done := startDraining(t, srv, 5*time.Second, nil)

	res, err := http.Get(base + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", res.StatusCode)
	}
	sig <- os.Interrupt
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
}

// TestDrainRouterMode: the router shape — remote corpus over a shard server,
// federator running — finishes an in-flight fan-out query held at the RPC
// layer, stops the federator, and exits clean.
func TestDrainRouterMode(t *testing.T) {
	engine, err := buildEngine("", "", "dblp", 1, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(server.New(engine))
	defer backend.Close()

	freg := faults.New()
	entered := make(chan struct{})
	release := make(chan struct{})
	// Key on the query client's name: the federator polls ride the same
	// fault site and must not trip the block.
	freg.Enable(faults.Injection{Site: remote.FaultRPC, Keys: []string{"r0-0"}, Hook: blockOnce(entered, release)})

	reg := metrics.New()
	met := reg.Remote("cluster")
	cl, err := remote.NewClient(remote.ClientConfig{BaseURL: backend.URL, Name: "r0-0", Faults: freg, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	fedCl, err := remote.NewClient(remote.ClientConfig{BaseURL: backend.URL, Name: "fed-0", Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := remote.NewShard("cluster-00", []*remote.Client{cl}, remote.ShardOptions{
		HedgeDelay: -1,
		Metrics:    met,
		Budget:     remote.NewRetryBudget(0.2, reg.Admission()),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.NewRemote("cluster", []corpus.ShardBackend{sh}, corpus.Config{Metrics: reg.Corpus("cluster")})
	if err != nil {
		t.Fatal(err)
	}
	catalog := core.NewCatalog()
	catalog.AddBackend("cluster", c)
	fed := remote.NewFederator(remote.FederatorConfig{
		Clients:  []*remote.Client{fedCl},
		Cluster:  reg.Cluster(),
		Interval: 10 * time.Millisecond,
	})
	fed.Start()
	srv := server.NewCatalogConfig(catalog, server.Config{
		Metrics:       reg,
		ClusterStatus: func() any { return map[string]any{"dataset": "cluster"} },
	})
	base, sig, done := startDraining(t, srv, 10*time.Second, fed.Stop)

	res := make(chan error, 1)
	go func() {
		r, err := http.Post(base+"/api/v1/query?dataset=cluster", "application/json",
			strings.NewReader(`{"query":"//article/title","k":5}`))
		if err != nil {
			res <- err
			return
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(r.Body)
			res <- fmt.Errorf("status %d: %s", r.StatusCode, b)
			return
		}
		res <- nil
	}()

	<-entered
	sig <- syscall.SIGTERM
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-res; err != nil {
		t.Fatalf("in-flight routed query dropped during drain: %v", err)
	}
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
}

// TestDrainFinishesQueuedIngest: the admin shape — an accepted (202) async
// ingest still in the queue when SIGTERM lands runs to completion before the
// process exits, and its journal entry settles.
func TestDrainFinishesQueuedIngest(t *testing.T) {
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site:    ingest.FaultJob,
		Keys:    []string{"lib"},
		Latency: 200 * time.Millisecond,
	})
	reg := metrics.New()
	corpusDir := filepath.Join(t.TempDir(), "corpora")
	srv := server.NewCatalogConfig(core.NewCatalog(), server.Config{
		Metrics:     reg,
		EnableAdmin: true,
		CorpusDir:   corpusDir,
		Faults:      freg,
	})
	base, sig, done := startDraining(t, srv, 10*time.Second, nil)

	res, err := http.Post(base+"/api/v1/datasets/lib?shards=2", "application/xml", strings.NewReader(drainXML))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("async create: %d", res.StatusCode)
	}
	sig <- syscall.SIGTERM
	if err := waitExit(t, done); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
	// The job ran inside the drain: the dataset persisted and the journal
	// settled, so a restart has nothing to replay.
	if _, err := os.Stat(filepath.Join(corpusDir, "lib", "MANIFEST.json")); err != nil {
		t.Fatalf("dataset not persisted through drain: %v", err)
	}
	if n := reg.Lifecycle().JournalPending(); n != 0 {
		t.Fatalf("journal pending after drain = %d", n)
	}
}

// TestDrainBudgetExpiryReportsError: a drain that cannot finish its queued
// ingest inside -drain-timeout exits with the budget-expired error — and the
// journaled job replays on the next start (proved in the server tests).
func TestDrainBudgetExpiryReportsError(t *testing.T) {
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site:    ingest.FaultJob,
		Keys:    []string{"lib"},
		Latency: 30 * time.Second,
	})
	reg := metrics.New()
	srv := server.NewCatalogConfig(core.NewCatalog(), server.Config{
		Metrics:     reg,
		EnableAdmin: true,
		CorpusDir:   filepath.Join(t.TempDir(), "corpora"),
		Faults:      freg,
	})
	base, sig, done := startDraining(t, srv, 100*time.Millisecond, nil)

	res, err := http.Post(base+"/api/v1/datasets/lib?shards=2", "application/xml", strings.NewReader(drainXML))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("async create: %d", res.StatusCode)
	}
	sig <- syscall.SIGTERM
	err = waitExit(t, done)
	if err == nil {
		t.Fatal("drain that overran its budget exited clean")
	}
	if !strings.Contains(err.Error(), "drain budget expired") {
		t.Fatalf("budget-expiry error = %v", err)
	}
	// The interrupted job wrote no terminal record: it stays pending for the
	// next start's replay.
	if n := reg.Lifecycle().JournalPending(); n != 1 {
		t.Fatalf("journal pending after expired drain = %d, want 1", n)
	}
}
