// Command lotusx-server runs the interactive LotusX demo: the JSON API plus
// the embedded single-page client (the stand-in for the paper's web GUI).
//
//	lotusx-server -in dblp.xml -addr :8080
//	lotusx-server -dataset xmark -scale 2      # serve a synthetic dataset
//	lotusx-server -dataset dblp -query-timeout 2s -max-inflight 64
//	lotusx-server -in dblp.xml -shards 4       # sharded corpus with fan-out
//	lotusx-server -admin -corpus-dir ./data    # live ingestion, persisted
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/server"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file")
	kind := flag.String("dataset", "", "serve a synthetic dataset: dblp, xmark, treebank, or \"all\" for a catalog")
	scale := flag.Int("scale", 1, "synthetic dataset scale")
	seed := flag.Int64("seed", 42, "synthetic dataset seed")
	addr := flag.String("addr", ":8080", "listen address")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-request deadline; expired requests answer 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrent API requests; excess load is shed with 429 (0 disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	admin := flag.Bool("admin", false,
		"enable the dataset admin API (POST/DELETE /api/v1/datasets/...)")
	corpusDir := flag.String("corpus-dir", "",
		"directory persisting corpus-backed datasets; existing corpora reload at startup")
	shards := flag.Int("shards", 1,
		"split each served dataset into N shards queried with parallel fan-out")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond,
		"log queries slower than this with a per-stage breakdown (0 disables)")
	debugAddr := flag.String("debug-addr", "",
		"separate listener for pprof, /healthz, /readyz and /buildinfo (off when empty)")
	shardPolicy := flag.String("shard-policy", string(corpus.PolicyDegrade),
		"what a shard failure does to a fan-out: \"degrade\" answers from the survivors with partial:true, \"failfast\" fails the request")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard evaluation time budget; 0 derives it from the request deadline, negative disables it")
	breakerFailures := flag.Int("breaker-failures", 0,
		"consecutive failures quarantining a shard behind its circuit breaker; 0 means the default (5), negative disables breakers")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"how long a quarantined shard sits out before a half-open probe; 0 means the default (30s)")
	cacheResults := flag.Bool("cache-results", true,
		"cache full query answers keyed by snapshot generation; pages of one answer share an entry")
	cacheCompletions := flag.Bool("cache-completions", true,
		"cache completion candidates with a prefix-extension fast path")
	cacheBytes := flag.Int64("cache-bytes", 64<<20,
		"total memory bound shared by the hot-path caches; <= 0 disables both")
	ingestWorkers := flag.Int("ingest-workers", 0,
		"background ingestion workers for the async admin API; 0 means the default (2)")
	ingestQueue := flag.Int("ingest-queue", 0,
		"queued-job capacity of the async ingestion pipeline; 0 means the default (32)")
	compactThreshold := flag.Int("compact-threshold", 0,
		"delta shards per dataset before a background compaction is scheduled; 0 means the default (4), negative disables auto-compaction")
	maxIngestBytes := flag.Int64("max-ingest-bytes", 0,
		"largest accepted ingest body; 0 means the default (256 MiB)")
	legacyRoutes := flag.String("legacy-routes", "on",
		"serve unversioned /api/... aliases: on (with Sunset headers) or off (410 Gone)")
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("bad -shards %d: want >= 1", *shards))
	}
	policy, err := corpus.ParsePolicy(*shardPolicy)
	if err != nil {
		fatal(err)
	}
	tuning := corpus.Tuning{
		Policy:           policy,
		ShardTimeout:     *shardTimeout,
		BreakerThreshold: *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
	}
	switch *legacyRoutes {
	case "on", "off":
	default:
		fatal(fmt.Errorf("bad -legacy-routes %q: want on or off", *legacyRoutes))
	}
	reg := metrics.New()
	cfg := server.Config{
		QueryTimeout:           *queryTimeout,
		MaxInflight:            *maxInflight,
		Metrics:                reg,
		EnableAdmin:            *admin,
		CorpusDir:              *corpusDir,
		Corpus:                 tuning,
		SlowQuery:              *slowQuery,
		DisableResultCache:     !*cacheResults,
		DisableCompletionCache: !*cacheCompletions,
		CacheBytes:             *cacheBytes,
		IngestWorkers:          *ingestWorkers,
		IngestQueue:            *ingestQueue,
		CompactThreshold:       *compactThreshold,
		MaxIngestBytes:         *maxIngestBytes,
		DisableLegacyRoutes:    *legacyRoutes == "off",
	}
	if *cacheBytes <= 0 {
		cfg.CacheBytes = -1 // 0 would mean "use the default bound"
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// The plain path: one engine-backed dataset, no catalog features needed.
	if *kind != "all" && !*admin && *corpusDir == "" && *shards == 1 {
		engine, err := buildEngine(*in, *indexFile, *kind, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		st := engine.Stats()
		srv := server.NewConfig(engine, cfg)
		startDebug(*debugAddr, srv)
		fmt.Printf("serving %s (%d nodes, %d tags) on %s%s\n", st.Document, st.Nodes, st.Tags, *addr, servingNote(cfg))
		if err := http.ListenAndServe(*addr, srv); err != nil {
			fatal(err)
		}
		return
	}

	// Catalog mode: multiple datasets, corpus-backed sharding, live admin.
	catalog := core.NewCatalog()
	if *corpusDir != "" {
		if err := reloadCorpora(catalog, *corpusDir, reg, tuning); err != nil {
			fatal(err)
		}
	}

	switch {
	case *kind == "all":
		// The demo setup: every synthetic dataset in one catalog, selected
		// per request with ?dataset=.
		for _, k := range dataset.Kinds {
			d, err := dataset.Build(k, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			if err := addDataset(catalog, string(k), d, *shards, *corpusDir, reg, tuning); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %s (%d nodes, %d shards)\n", k, d.Len(), *shards)
		}
	case *in != "" || *indexFile != "" || *kind != "":
		engine, err := buildEngine(*in, *indexFile, *kind, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		d := engine.Document()
		if *shards > 1 {
			if err := addDataset(catalog, d.Name(), d, *shards, *corpusDir, reg, tuning); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %s (%d nodes, %d shards)\n", d.Name(), d.Len(), *shards)
		} else {
			catalog.Add(d.Name(), engine)
			fmt.Printf("loaded %s (%d nodes)\n", d.Name(), d.Len())
		}
	default:
		if catalog.Len() == 0 && !*admin {
			fatal(fmt.Errorf("one of -in, -index or -dataset is required (or -admin to ingest over HTTP)"))
		}
	}

	note := servingNote(cfg)
	if *admin {
		note += " (admin API on)"
	}
	srv := server.NewCatalogConfig(catalog, cfg)
	startDebug(*debugAddr, srv)
	fmt.Printf("serving %d datasets on %s%s\n", catalog.Len(), *addr, note)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

// startDebug serves the operational endpoints — pprof, /healthz, /readyz,
// /buildinfo — on their own listener, keeping them off the public API port.
func startDebug(addr string, srv *server.Server) {
	if addr == "" {
		return
	}
	fmt.Printf("debug endpoints (pprof, healthz, readyz, buildinfo) on %s\n", addr)
	go func() {
		mux := obs.DebugMux(obs.DebugOptions{Ready: srv.Ready, Degraded: srv.Degraded})
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "lotusx-server: debug listener:", err)
		}
	}()
}

// addDataset registers d, split into parts shards when parts > 1, with
// persistence under corpusDir when set.
func addDataset(catalog *core.Catalog, name string, d *doc.Document, parts int, corpusDir string, reg *metrics.Registry, tuning corpus.Tuning) error {
	if parts == 1 {
		catalog.Add(name, core.FromDocument(d))
		return nil
	}
	ccfg := corpus.Config{Metrics: reg.Corpus(name), Tuning: tuning}
	if corpusDir != "" {
		ccfg.Dir = filepath.Join(corpusDir, name)
	}
	c, err := corpus.FromDocument(name, d, parts, ccfg)
	if err != nil {
		return err
	}
	catalog.AddBackend(name, c)
	return nil
}

// reloadCorpora reopens every persisted corpus under dir (one subdirectory
// with a manifest each) so admin-created datasets survive restarts.
func reloadCorpora(catalog *core.Catalog, dir string, reg *metrics.Registry, tuning corpus.Tuning) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil // created on first ingest
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, "MANIFEST.json")); err != nil {
			continue
		}
		c, err := corpus.Open(sub, corpus.Config{Metrics: reg.Corpus(e.Name()), Tuning: tuning})
		if err != nil {
			return fmt.Errorf("reopening corpus %s: %w", sub, err)
		}
		catalog.AddBackend(e.Name(), c)
		fmt.Printf("reloaded %s (%d shards)\n", e.Name(), c.Snapshot().Len())
	}
	return nil
}

// servingNote summarizes the serving limits for the startup banner.
func servingNote(cfg server.Config) string {
	s := ""
	if cfg.QueryTimeout > 0 {
		s += fmt.Sprintf(" (query timeout %v)", cfg.QueryTimeout.Round(time.Millisecond))
	}
	if cfg.MaxInflight > 0 {
		s += fmt.Sprintf(" (max in-flight %d)", cfg.MaxInflight)
	}
	return s
}

func buildEngine(in, indexFile, kind string, scale int, seed int64) (*core.Engine, error) {
	switch {
	case in != "":
		return core.FromFile(in)
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Open(f)
	case kind != "":
		d, err := dataset.Build(dataset.Kind(kind), scale, seed)
		if err != nil {
			return nil, err
		}
		return core.FromDocument(d), nil
	default:
		return nil, fmt.Errorf("one of -in, -index or -dataset is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-server:", err)
	os.Exit(1)
}
