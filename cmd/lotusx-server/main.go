// Command lotusx-server runs the interactive LotusX demo: the JSON API plus
// the embedded single-page client (the stand-in for the paper's web GUI).
//
//	lotusx-server -in dblp.xml -addr :8080
//	lotusx-server -dataset xmark -scale 2      # serve a synthetic dataset
//	lotusx-server -dataset dblp -query-timeout 2s -max-inflight 64
//	lotusx-server -in dblp.xml -shards 4       # sharded corpus with fan-out
//	lotusx-server -admin -corpus-dir ./data    # live ingestion, persisted
//
// Beyond the default serve mode, -mode selects the distributed roles (see
// docs/CLUSTER.md):
//
//	lotusx-server -mode=shard -dataset xmark -slice 0/2 -addr :9001
//	lotusx-server -mode=shard -dataset xmark -slice 1/2 -addr :9002
//	lotusx-server -mode=router \
//	    -shard-servers "http://h1:9001,http://h2:9001;http://h1:9002,http://h2:9002"
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/remote"
	"lotusx/internal/server"
	"lotusx/internal/slo"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file")
	kind := flag.String("dataset", "", "serve a synthetic dataset: dblp, xmark, treebank, or \"all\" for a catalog")
	scale := flag.Int("scale", 1, "synthetic dataset scale")
	seed := flag.Int64("seed", 42, "synthetic dataset seed")
	addr := flag.String("addr", ":8080", "listen address")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-request deadline; expired requests answer 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrent API requests; excess load is shed with 503 + Retry-After (0 disables)")
	rateQPS := flag.Float64("rate-qps", 0,
		"per-client request rate (token bucket keyed by X-Lotusx-Client, else the remote address); over-rate clients answer 429 + Retry-After (0 disables)")
	rateBurst := flag.Int("rate-burst", 0,
		"per-client burst depth for -rate-qps; 0 derives a default from the rate")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"graceful-shutdown budget after SIGTERM/SIGINT: in-flight requests and queued ingests get this long to finish before the process exits")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	admin := flag.Bool("admin", false,
		"enable the dataset admin API (POST/DELETE /api/v1/datasets/...)")
	corpusDir := flag.String("corpus-dir", "",
		"directory persisting corpus-backed datasets; existing corpora reload at startup")
	shards := flag.Int("shards", 1,
		"split each served dataset into N shards queried with parallel fan-out")
	compressIndex := flag.Bool("compress-index", false,
		"build indexes on the DAG-compressed substrate: repeated subtree shapes are stored once and joins run once per distinct shape; each index falls back to raw when its data doesn't repeat enough to pay for itself")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond,
		"log queries slower than this with a per-stage breakdown (0 disables)")
	debugAddr := flag.String("debug-addr", "",
		"separate listener for pprof, /healthz, /readyz and /buildinfo (off when empty)")
	shardPolicy := flag.String("shard-policy", string(corpus.PolicyDegrade),
		"what a shard failure does to a fan-out: \"degrade\" answers from the survivors with partial:true, \"failfast\" fails the request")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard evaluation time budget; 0 derives it from the request deadline, negative disables it")
	breakerFailures := flag.Int("breaker-failures", 0,
		"consecutive failures quarantining a shard behind its circuit breaker; 0 means the default (5), negative disables breakers")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"how long a quarantined shard sits out before a half-open probe; 0 means the default (30s)")
	cacheResults := flag.Bool("cache-results", true,
		"cache full query answers keyed by snapshot generation; pages of one answer share an entry")
	cacheCompletions := flag.Bool("cache-completions", true,
		"cache completion candidates with a prefix-extension fast path")
	cacheBytes := flag.Int64("cache-bytes", 64<<20,
		"total memory bound shared by the hot-path caches; <= 0 disables both")
	ingestWorkers := flag.Int("ingest-workers", 0,
		"background ingestion workers for the async admin API; 0 means the default (2)")
	ingestQueue := flag.Int("ingest-queue", 0,
		"queued-job capacity of the async ingestion pipeline; 0 means the default (32)")
	compactThreshold := flag.Int("compact-threshold", 0,
		"delta shards per dataset before a background compaction is scheduled; 0 means the default (4), negative disables auto-compaction")
	maxIngestBytes := flag.Int64("max-ingest-bytes", 0,
		"largest accepted ingest body; 0 means the default (256 MiB)")
	legacyRoutes := flag.String("legacy-routes", "on",
		"serve unversioned /api/... aliases: on (with Sunset headers) or off (410 Gone)")
	mode := flag.String("mode", "serve",
		"role: \"serve\" (standalone), \"shard\" (serve one document slice to a router), \"router\" (fan out over -shard-servers)")
	slice := flag.String("slice", "0/1",
		"with -mode=shard: serve slice i of n (\"i/n\") of the input document")
	shardServers := flag.String("shard-servers", "",
		"with -mode=router: replica groups of shard base URLs — \",\" separates replicas of one shard, \";\" separates shards")
	replication := flag.Int("replication", 1,
		"with -mode=router and a flat (no \";\") -shard-servers list: group every R consecutive URLs into one shard's replica set")
	remoteDataset := flag.String("remote-dataset", "",
		"with -mode=router: dataset requested of shard servers (\"{shard}\" expands to the shard index; empty uses each server's default)")
	hedgeDelay := flag.Duration("hedge-delay", 0,
		"with -mode=router: delay before a search hedges to a second replica; 0 adapts to observed p95, negative disables hedging")
	clusterName := flag.String("cluster-name", "cluster",
		"with -mode=router: the router-side dataset name for the remote corpus")
	traceCapacity := flag.Int("trace-capacity", 0,
		"tail-sampled trace store size behind GET /api/v1/traces; 0 means the default (512), negative disables the store")
	traceSampleEvery := flag.Int("trace-sample-every", 0,
		"keep 1 of every N uninteresting traces as a uniform sample; 0 means the default (64), negative disables the sample")
	sloSearchP99 := flag.Duration("slo-search-p99", 0,
		"latency objective: 99% of /api/v1/query responses faster than this (0 disables)")
	sloAvailability := flag.Float64("slo-availability", 0,
		"availability objective as a percentage, e.g. 99.9: that fraction of all responses non-5xx (0 disables)")
	federateInterval := flag.Duration("federate-interval", 0,
		"with -mode=router: period between shard-server metrics pulls feeding /api/v1/cluster/metrics; 0 means the default (10s), negative disables federation")
	retryBudget := flag.Float64("retry-budget", 0.2,
		"with -mode=router: cap hedges+failovers at this fraction of primary traffic (brownout containment); negative disables the cap")
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("bad -shards %d: want >= 1", *shards))
	}
	policy, err := corpus.ParsePolicy(*shardPolicy)
	if err != nil {
		fatal(err)
	}
	tuning := corpus.Tuning{
		Policy:           policy,
		ShardTimeout:     *shardTimeout,
		BreakerThreshold: *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
	}
	switch *legacyRoutes {
	case "on", "off":
	default:
		fatal(fmt.Errorf("bad -legacy-routes %q: want on or off", *legacyRoutes))
	}
	tracker, err := buildSLO(*sloSearchP99, *sloAvailability)
	if err != nil {
		fatal(err)
	}
	reg := metrics.New()
	cfg := server.Config{
		QueryTimeout:           *queryTimeout,
		MaxInflight:            *maxInflight,
		RateQPS:                *rateQPS,
		RateBurst:              *rateBurst,
		Metrics:                reg,
		EnableAdmin:            *admin,
		CorpusDir:              *corpusDir,
		Corpus:                 tuning,
		CompressIndex:          *compressIndex,
		SlowQuery:              *slowQuery,
		DisableResultCache:     !*cacheResults,
		DisableCompletionCache: !*cacheCompletions,
		CacheBytes:             *cacheBytes,
		IngestWorkers:          *ingestWorkers,
		IngestQueue:            *ingestQueue,
		CompactThreshold:       *compactThreshold,
		MaxIngestBytes:         *maxIngestBytes,
		DisableLegacyRoutes:    *legacyRoutes == "off",
		TraceCapacity:          *traceCapacity,
		TraceSampleEvery:       *traceSampleEvery,
		SLO:                    tracker,
	}
	if *cacheBytes <= 0 {
		cfg.CacheBytes = -1 // 0 would mean "use the default bound"
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	switch *mode {
	case "serve":
	case "shard":
		runShard(cfg, shardArgs{
			in: *in, indexFile: *indexFile, kind: *kind, scale: *scale, seed: *seed,
			slice: *slice, addr: *addr, debugAddr: *debugAddr, admin: *admin,
			drainTimeout: *drainTimeout,
		})
		return
	case "router":
		runRouter(cfg, reg, tuning, routerArgs{
			shardServers: *shardServers, replication: *replication,
			remoteDataset: *remoteDataset, hedgeDelay: *hedgeDelay,
			clusterName: *clusterName, addr: *addr, debugAddr: *debugAddr,
			admin: *admin, federateInterval: *federateInterval,
			retryBudget: *retryBudget, drainTimeout: *drainTimeout,
		})
		return
	default:
		fatal(fmt.Errorf("bad -mode %q: want serve, shard or router", *mode))
	}

	// The plain path: one engine-backed dataset, no catalog features needed.
	if *kind != "all" && !*admin && *corpusDir == "" && *shards == 1 {
		engine, err := buildEngine(*in, *indexFile, *kind, *scale, *seed, *compressIndex)
		if err != nil {
			fatal(err)
		}
		st := engine.Stats()
		srv := server.NewConfig(engine, cfg)
		startDebug(*debugAddr, srv)
		fmt.Printf("serving %s (%d nodes, %d tags) on %s%s\n", st.Document, st.Nodes, st.Tags, *addr, servingNote(cfg))
		if err := serveUntilSignal(*addr, srv, *drainTimeout, nil); err != nil {
			fatal(err)
		}
		return
	}

	// Catalog mode: multiple datasets, corpus-backed sharding, live admin.
	catalog := core.NewCatalog()
	if *corpusDir != "" {
		if err := reloadCorpora(catalog, *corpusDir, reg, tuning, *compressIndex); err != nil {
			fatal(err)
		}
	}

	switch {
	case *kind == "all":
		// The demo setup: every synthetic dataset in one catalog, selected
		// per request with ?dataset=.
		for _, k := range dataset.Kinds {
			d, err := dataset.Build(k, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			if err := addDataset(catalog, string(k), d, *shards, *corpusDir, reg, tuning, *compressIndex); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %s (%d nodes, %d shards)\n", k, d.Len(), *shards)
		}
	case *in != "" || *indexFile != "" || *kind != "":
		engine, err := buildEngine(*in, *indexFile, *kind, *scale, *seed, *compressIndex)
		if err != nil {
			fatal(err)
		}
		d := engine.Document()
		if *shards > 1 {
			if err := addDataset(catalog, d.Name(), d, *shards, *corpusDir, reg, tuning, *compressIndex); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %s (%d nodes, %d shards)\n", d.Name(), d.Len(), *shards)
		} else {
			catalog.Add(d.Name(), engine)
			fmt.Printf("loaded %s (%d nodes)\n", d.Name(), d.Len())
		}
	default:
		if catalog.Len() == 0 && !*admin {
			fatal(fmt.Errorf("one of -in, -index or -dataset is required (or -admin to ingest over HTTP)"))
		}
	}

	note := servingNote(cfg)
	if *admin {
		note += " (admin API on)"
	}
	srv := server.NewCatalogConfig(catalog, cfg)
	startDebug(*debugAddr, srv)
	fmt.Printf("serving %d datasets on %s%s\n", catalog.Len(), *addr, note)
	if err := serveUntilSignal(*addr, srv, *drainTimeout, nil); err != nil {
		fatal(err)
	}
}

// startDebug serves the operational endpoints — pprof, /healthz, /readyz,
// /buildinfo — on their own listener, keeping them off the public API port.
func startDebug(addr string, srv *server.Server) {
	if addr == "" {
		return
	}
	fmt.Printf("debug endpoints (pprof, healthz, readyz, buildinfo) on %s\n", addr)
	go func() {
		mux := obs.DebugMux(obs.DebugOptions{
			Ready:    srv.Ready,
			Degraded: srv.Degraded,
			Burning:  srv.SLOBurning,
		})
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "lotusx-server: debug listener:", err)
		}
	}()
}

// buildSLO translates the -slo-* flags into a tracker; both flags off
// means no SLO engine at all (nil tracker, no lotusx_slo_* families).
func buildSLO(searchP99 time.Duration, availability float64) (*slo.Tracker, error) {
	var objectives []slo.Objective
	if searchP99 > 0 {
		objectives = append(objectives, slo.Objective{
			Name:      "search-p99",
			Endpoint:  "query",
			Target:    0.99,
			Threshold: searchP99,
		})
	}
	if availability != 0 {
		if availability <= 0 || availability >= 100 {
			return nil, fmt.Errorf("bad -slo-availability %v: want a percentage in (0, 100), e.g. 99.9", availability)
		}
		objectives = append(objectives, slo.Objective{
			Name:   "availability",
			Target: availability / 100,
		})
	}
	if len(objectives) == 0 {
		return nil, nil
	}
	return slo.New(slo.Config{Objectives: objectives})
}

// addDataset registers d, split into parts shards when parts > 1, with
// persistence under corpusDir when set.
func addDataset(catalog *core.Catalog, name string, d *doc.Document, parts int, corpusDir string, reg *metrics.Registry, tuning corpus.Tuning, compress bool) error {
	if parts == 1 {
		catalog.Add(name, core.FromDocumentOpts(d, core.BuildOptions{Compress: compress}))
		return nil
	}
	ccfg := corpus.Config{Metrics: reg.Corpus(name), Tuning: tuning, Compress: compress}
	if corpusDir != "" {
		ccfg.Dir = filepath.Join(corpusDir, name)
	}
	c, err := corpus.FromDocument(name, d, parts, ccfg)
	if err != nil {
		return err
	}
	catalog.AddBackend(name, c)
	return nil
}

// reloadCorpora reopens every persisted corpus under dir (one subdirectory
// with a manifest each) so admin-created datasets survive restarts.
func reloadCorpora(catalog *core.Catalog, dir string, reg *metrics.Registry, tuning corpus.Tuning, compress bool) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil // created on first ingest
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, "MANIFEST.json")); err != nil {
			continue
		}
		// Shard files are self-describing (a compressed shard reloads
		// compressed); Compress only steers future rebuilds of this corpus.
		c, err := corpus.Open(sub, corpus.Config{Metrics: reg.Corpus(e.Name()), Tuning: tuning, Compress: compress})
		if err != nil {
			return fmt.Errorf("reopening corpus %s: %w", sub, err)
		}
		catalog.AddBackend(e.Name(), c)
		fmt.Printf("reloaded %s (%d shards)\n", e.Name(), c.Snapshot().Len())
	}
	return nil
}

// servingNote summarizes the serving limits for the startup banner.
func servingNote(cfg server.Config) string {
	s := ""
	if cfg.QueryTimeout > 0 {
		s += fmt.Sprintf(" (query timeout %v)", cfg.QueryTimeout.Round(time.Millisecond))
	}
	if cfg.MaxInflight > 0 {
		s += fmt.Sprintf(" (max in-flight %d)", cfg.MaxInflight)
	}
	return s
}

func buildEngine(in, indexFile, kind string, scale int, seed int64, compress bool) (*core.Engine, error) {
	opts := core.BuildOptions{Compress: compress}
	switch {
	case in != "":
		e, err := core.FromFile(in)
		if err != nil || !compress {
			return e, err
		}
		return core.FromDocumentOpts(e.Document(), opts), nil
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		e, err := core.Open(f)
		if err != nil || !compress || e.Compressed() {
			return e, err
		}
		// A raw persisted index under -compress-index: rebuild on the
		// compressed substrate from the loaded document.
		return core.FromDocumentOpts(e.Document(), opts), nil
	case kind != "":
		d, err := dataset.Build(dataset.Kind(kind), scale, seed)
		if err != nil {
			return nil, err
		}
		return core.FromDocumentOpts(d, opts), nil
	default:
		return nil, fmt.Errorf("one of -in, -index or -dataset is required")
	}
}

// ------------------------------------------------------------- shard mode

type shardArgs struct {
	in, indexFile, kind string
	scale               int
	seed                int64
	slice               string
	addr, debugAddr     string
	admin               bool
	drainTimeout        time.Duration
}

// runShard serves one slice of the input document as a slim single-engine
// server — the worker a router fans out to.  The slice split is the same
// deterministic record partition corpus.FromDocument uses, so N shard
// servers over -slice i/N collectively cover exactly the corpus a local
// -shards N deployment would.
func runShard(cfg server.Config, a shardArgs) {
	if a.admin {
		fatal(fmt.Errorf("-mode=shard is a slim serving role: the admin API is unsupported (mutate via re-deploy)"))
	}
	idx, parts, err := parseSlice(a.slice)
	if err != nil {
		fatal(err)
	}
	engine, err := buildEngine(a.in, a.indexFile, a.kind, a.scale, a.seed, cfg.CompressIndex)
	if err != nil {
		fatal(err)
	}
	if parts > 1 {
		docs, err := corpus.SplitDocument(engine.Document(), parts)
		if err != nil {
			fatal(err)
		}
		if idx >= len(docs) {
			fatal(fmt.Errorf("slice %d/%d: document only splits into %d part(s)", idx, parts, len(docs)))
		}
		engine = core.FromDocumentOpts(docs[idx], core.BuildOptions{Compress: cfg.CompressIndex})
	}
	st := engine.Stats()
	srv := server.NewConfig(engine, cfg)
	startDebug(a.debugAddr, srv)
	fmt.Printf("serving shard %d/%d of %s (%d nodes, %d tags) on %s%s\n",
		idx, parts, st.Document, st.Nodes, st.Tags, a.addr, servingNote(cfg))
	if err := serveUntilSignal(a.addr, srv, a.drainTimeout, nil); err != nil {
		fatal(err)
	}
}

// parseSlice parses "i/n" with 0 <= i < n.
func parseSlice(s string) (idx, parts int, err error) {
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(strings.TrimSpace(is))
		if err == nil {
			parts, err = strconv.Atoi(strings.TrimSpace(ns))
		}
	}
	if !ok || err != nil || parts < 1 || idx < 0 || idx >= parts {
		return 0, 0, fmt.Errorf("bad -slice %q: want \"i/n\" with 0 <= i < n", s)
	}
	return idx, parts, nil
}

// ------------------------------------------------------------ router mode

type routerArgs struct {
	shardServers     string
	replication      int
	remoteDataset    string
	hedgeDelay       time.Duration
	clusterName      string
	addr, debugAddr  string
	admin            bool
	federateInterval time.Duration
	retryBudget      float64
	drainTimeout     time.Duration
}

// runRouter serves a remote corpus: one logical shard per replica group of
// -shard-servers, fanned out with the same degrade/failfast policy, shard
// budgets and circuit breakers a local corpus gets, plus R-way replica
// racing (hedging + failover) inside each shard.
func runRouter(cfg server.Config, reg *metrics.Registry, tuning corpus.Tuning, a routerArgs) {
	if a.admin {
		fatal(fmt.Errorf("-mode=router serves a read-only remote corpus: the admin API is unsupported (mutate the shard servers)"))
	}
	groups, err := parseShardServers(a.shardServers, a.replication)
	if err != nil {
		fatal(err)
	}
	// The hot-path caches key on the corpus snapshot generation, which a
	// remote corpus freezes at 1 — it cannot see shard-server re-ingests.
	// Default them off in router mode; an explicit -cache-* flag wins (a
	// static cluster is a legitimate reason to turn them back on).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !explicit["cache-results"] {
		cfg.DisableResultCache = true
	}
	if !explicit["cache-completions"] {
		cfg.DisableCompletionCache = true
	}

	met := reg.Remote(a.clusterName)
	// One retry budget shared across every shard: the cluster-wide
	// amplification bound is what contains a brownout.
	budget := remote.NewRetryBudget(a.retryBudget, reg.Admission())
	shards := make([]*remote.Shard, len(groups))
	backends := make([]corpus.ShardBackend, len(groups))
	var allClients []*remote.Client
	replicas := 0
	for i, g := range groups {
		name := fmt.Sprintf("%s-%02d", a.clusterName, i)
		clients := make([]*remote.Client, len(g))
		for j, u := range g {
			clients[j], err = remote.NewClient(remote.ClientConfig{
				BaseURL: u,
				Dataset: strings.ReplaceAll(a.remoteDataset, "{shard}", strconv.Itoa(i)),
				Metrics: met,
			})
			if err != nil {
				fatal(err)
			}
		}
		allClients = append(allClients, clients...)
		replicas += len(g)
		shards[i], err = remote.NewShard(name, clients, remote.ShardOptions{
			HedgeDelay: a.hedgeDelay,
			Metrics:    met,
			Budget:     budget,
		})
		if err != nil {
			fatal(err)
		}
		backends[i] = shards[i]
	}
	c, err := corpus.NewRemote(a.clusterName, backends, corpus.Config{
		Metrics: reg.Corpus(a.clusterName),
		Tuning:  tuning,
	})
	if err != nil {
		fatal(err)
	}
	catalog := core.NewCatalog()
	catalog.AddBackend(a.clusterName, c)
	cfg.ClusterStatus = func() any {
		sts := make([]remote.ShardStatus, len(shards))
		for i, sh := range shards {
			sts[i] = sh.Status()
		}
		return map[string]any{"dataset": a.clusterName, "shards": sts}
	}
	var onStop func()
	if a.federateInterval >= 0 {
		fed := remote.NewFederator(remote.FederatorConfig{
			Clients:  allClients,
			Cluster:  reg.Cluster(),
			Interval: a.federateInterval,
		})
		fed.Start()
		onStop = fed.Stop
	}
	srv := server.NewCatalogConfig(catalog, cfg)
	startDebug(a.debugAddr, srv)
	fmt.Printf("routing %s over %d shard(s), %d replica endpoint(s) on %s%s\n",
		a.clusterName, len(groups), replicas, a.addr, servingNote(cfg))
	if err := serveUntilSignal(a.addr, srv, a.drainTimeout, onStop); err != nil {
		fatal(err)
	}
}

// parseShardServers splits the -shard-servers value into replica groups:
// ";" separates logical shards and "," separates replicas within one.  A
// flat list (no ";") with -replication R > 1 instead groups every R
// consecutive URLs into one shard.
func parseShardServers(s string, replication int) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-mode=router requires -shard-servers")
	}
	if replication < 1 {
		return nil, fmt.Errorf("bad -replication %d: want >= 1", replication)
	}
	split := func(s, sep string) []string {
		var out []string
		for _, p := range strings.Split(s, sep) {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	var groups [][]string
	if strings.Contains(s, ";") {
		for _, g := range split(s, ";") {
			if rs := split(g, ","); len(rs) > 0 {
				groups = append(groups, rs)
			}
		}
	} else {
		flat := split(s, ",")
		if len(flat)%replication != 0 {
			return nil, fmt.Errorf("-shard-servers lists %d URL(s), not a multiple of -replication %d", len(flat), replication)
		}
		for i := 0; i < len(flat); i += replication {
			groups = append(groups, flat[i:i+replication])
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-shard-servers %q names no servers", s)
	}
	return groups, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-server:", err)
	os.Exit(1)
}
