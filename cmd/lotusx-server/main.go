// Command lotusx-server runs the interactive LotusX demo: the JSON API plus
// the embedded single-page client (the stand-in for the paper's web GUI).
//
//	lotusx-server -in dblp.xml -addr :8080
//	lotusx-server -dataset xmark -scale 2      # serve a synthetic dataset
//	lotusx-server -dataset dblp -query-timeout 2s -max-inflight 64
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/server"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file")
	kind := flag.String("dataset", "", "serve a synthetic dataset: dblp, xmark, treebank, or \"all\" for a catalog")
	scale := flag.Int("scale", 1, "synthetic dataset scale")
	seed := flag.Int64("seed", 42, "synthetic dataset seed")
	addr := flag.String("addr", ":8080", "listen address")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-request deadline; expired requests answer 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrent API requests; excess load is shed with 429 (0 disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	flag.Parse()

	cfg := server.Config{
		QueryTimeout: *queryTimeout,
		MaxInflight:  *maxInflight,
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	if *kind == "all" {
		// The demo setup: every synthetic dataset in one catalog, selected
		// per request with ?dataset=.
		catalog := core.NewCatalog()
		for _, k := range dataset.Kinds {
			d, err := dataset.Build(k, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			catalog.Add(string(k), core.FromDocument(d))
			fmt.Printf("loaded %s (%d nodes)\n", k, d.Len())
		}
		fmt.Printf("serving %d datasets on %s%s\n", catalog.Len(), *addr, servingNote(cfg))
		if err := http.ListenAndServe(*addr, server.NewCatalogConfig(catalog, cfg)); err != nil {
			fatal(err)
		}
		return
	}

	engine, err := buildEngine(*in, *indexFile, *kind, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("serving %s (%d nodes, %d tags) on %s%s\n", st.Document, st.Nodes, st.Tags, *addr, servingNote(cfg))
	if err := http.ListenAndServe(*addr, server.NewConfig(engine, cfg)); err != nil {
		fatal(err)
	}
}

// servingNote summarizes the serving limits for the startup banner.
func servingNote(cfg server.Config) string {
	s := ""
	if cfg.QueryTimeout > 0 {
		s += fmt.Sprintf(" (query timeout %v)", cfg.QueryTimeout.Round(time.Millisecond))
	}
	if cfg.MaxInflight > 0 {
		s += fmt.Sprintf(" (max in-flight %d)", cfg.MaxInflight)
	}
	return s
}

func buildEngine(in, indexFile, kind string, scale int, seed int64) (*core.Engine, error) {
	switch {
	case in != "":
		return core.FromFile(in)
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Open(f)
	case kind != "":
		d, err := dataset.Build(dataset.Kind(kind), scale, seed)
		if err != nil {
			return nil, err
		}
		return core.FromDocument(d), nil
	default:
		return nil, fmt.Errorf("one of -in, -index or -dataset is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-server:", err)
	os.Exit(1)
}
