// Command lotusx-repl is the terminal version of the interactive demo: the
// same session workflow as the web GUI (grow a twig with position-aware
// candidates, run, read ranked highlighted answers), driven from stdin.
//
//	lotusx-repl -in dblp.xml
//	lotusx-repl -dataset xmark
//	lotusx-repl -dataset xmark -shards 4   # sharded corpus with fan-out
package main

import (
	"flag"
	"fmt"
	"os"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/repl"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file")
	kind := flag.String("dataset", "", "synthetic dataset: dblp, xmark or treebank")
	scale := flag.Int("scale", 1, "synthetic dataset scale")
	seed := flag.Int64("seed", 42, "synthetic dataset seed")
	shards := flag.Int("shards", 1, "split the input into N shards and fan queries out")
	flag.Parse()

	backend, err := buildBackend(*in, *indexFile, *kind, *scale, *seed, *shards)
	if err != nil {
		fatal(err)
	}
	if err := repl.RunBackend(backend, os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

func buildBackend(in, indexFile, kind string, scale int, seed int64, shards int) (core.Backend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("bad -shards %d: want >= 1", shards)
	}
	engine, err := buildEngine(in, indexFile, kind, scale, seed)
	if err != nil {
		return nil, err
	}
	if shards == 1 {
		return engine, nil
	}
	d := engine.Document()
	return corpus.FromDocument(d.Name(), d, shards, corpus.Config{})
}

func buildEngine(in, indexFile, kind string, scale int, seed int64) (*core.Engine, error) {
	switch {
	case in != "":
		return core.FromFile(in)
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.Open(f)
	case kind != "":
		d, err := dataset.Build(dataset.Kind(kind), scale, seed)
		if err != nil {
			return nil, err
		}
		return core.FromDocument(d), nil
	default:
		return nil, fmt.Errorf("one of -in, -index or -dataset is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-repl:", err)
	os.Exit(1)
}
