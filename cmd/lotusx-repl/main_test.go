package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildEngineSources(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if e, err := buildEngine(path, "", "", 1, 1); err != nil || e.Stats().Nodes != 2 {
		t.Fatalf("file source: %v", err)
	}
	if e, err := buildEngine("", "", "treebank", 1, 1); err != nil || e.Stats().Nodes < 1000 {
		t.Fatalf("dataset source: %v", err)
	}
	if _, err := buildEngine("", "", "", 1, 1); err == nil {
		t.Fatal("no source should fail")
	}
	if _, err := buildEngine("", "/nonexistent.ltx", "", 1, 1); err == nil {
		t.Fatal("missing index should fail")
	}
}
