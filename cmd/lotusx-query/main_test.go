package main

import "testing"

func TestIndent(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"a\nb\n", "  a\n  b\n"},
		{"single", "  single\n"},
		{"trailing\n\n", "  trailing\n"}, // trailing blank lines collapse
	}
	for _, c := range cases {
		if got := indent(c.in, "  "); got != c.want {
			t.Errorf("indent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
