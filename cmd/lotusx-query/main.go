// Command lotusx-query evaluates a twig query (XPath subset) against an XML
// file or a persisted index.
//
//	lotusx-query -in dblp.xml '//article[author = "jiaheng lu"]/title'
//	lotusx-query -index dblp.ltx -k 5 -rewrite '//article/autor'
//	lotusx-query -in dblp.xml -alg pathstack -explain '//book[title]'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lotusx/internal/core"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file (alternative to -in)")
	k := flag.Int("k", 10, "answers wanted")
	alg := flag.String("alg", "twigstack", "algorithm: nestedloop, structural, pathstack, twigstack")
	doRewrite := flag.Bool("rewrite", false, "relax the query when answers are scarce")
	explain := flag.Bool("explain", false, "print score breakdowns and join statistics")
	plan := flag.Bool("plan", false, "print the planner's view (estimates, auto choice) before running")
	xquery := flag.Bool("xquery", false, "print the equivalent XQuery and exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lotusx-query [-in file.xml | -index file.ltx] [flags] QUERY")
		os.Exit(2)
	}
	queryText := flag.Arg(0)

	if *xquery {
		q, err := twig.Parse(queryText)
		if err != nil {
			fatal(err)
		}
		fmt.Println(q.ToXQuery())
		return
	}

	var engine *core.Engine
	var err error
	switch {
	case *in != "":
		engine, err = core.FromFile(*in)
	case *indexFile != "":
		var f *os.File
		f, err = os.Open(*indexFile)
		if err == nil {
			defer f.Close()
			engine, err = core.Open(f)
		}
	default:
		fmt.Fprintln(os.Stderr, "lotusx-query: one of -in or -index is required")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *plan {
		q, perr := twig.Parse(queryText)
		if perr != nil {
			fatal(perr)
		}
		fmt.Print(join.Explain(engine.Index(), q))
	}

	res, err := engine.SearchString(queryText, core.SearchOptions{
		K:         *k,
		Algorithm: join.Algorithm(*alg),
		Rewrite:   *doRewrite,
	})
	if err != nil {
		fatal(err)
	}

	d := engine.Document()
	fmt.Printf("%d answers (%d exact, %d rewrites tried) in %v\n",
		len(res.Answers), res.Exact, res.RewritesTried, res.Elapsed)
	for i, a := range res.Answers {
		fmt.Printf("\n#%d  %s  score=%.3f", i+1, d.Path(a.Node), a.Score)
		if a.Rewrite != nil {
			fmt.Printf("  [via %s, penalty %.1f]", a.Rewrite.Query, a.Rewrite.Penalty)
		}
		fmt.Println()
		if *explain {
			fmt.Printf("    content=%.3f tightness=%.3f idf=%.3f\n",
				a.Scored.Content, a.Scored.Tightness, a.Scored.IDF)
		}
		fmt.Print(indent(engine.Snippet(a.Node, 400), "    "))
	}
	if *explain {
		fmt.Printf("\njoin stats: scanned=%d pathSolutions=%d edgePairs=%d matches=%d\n",
			res.Stats.ElementsScanned, res.Stats.PathSolutions,
			res.Stats.EdgePairs, res.Stats.MatchesEnumerated)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return prefix + strings.Join(lines, "\n"+prefix) + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-query:", err)
	os.Exit(1)
}
