// Command lotusx-query evaluates a twig query (XPath subset) against an XML
// file or a persisted index.
//
//	lotusx-query -in dblp.xml '//article[author = "jiaheng lu"]/title'
//	lotusx-query -index dblp.ltx -k 5 -rewrite '//article/autor'
//	lotusx-query -in dblp.xml -alg pathstack -explain '//book[title]'
//	lotusx-query -in dblp.xml -shards 4 '//article/title'   # sharded fan-out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

func main() {
	in := flag.String("in", "", "input XML file")
	indexFile := flag.String("index", "", "persisted index file (alternative to -in)")
	k := flag.Int("k", 10, "answers wanted")
	alg := flag.String("alg", "twigstack", "algorithm: nestedloop, structural, pathstack, twigstack")
	doRewrite := flag.Bool("rewrite", false, "relax the query when answers are scarce")
	explain := flag.Bool("explain", false, "print score breakdowns and join statistics")
	plan := flag.Bool("plan", false, "print the planner's view (estimates, auto choice) before running")
	xquery := flag.Bool("xquery", false, "print the equivalent XQuery and exit")
	shards := flag.Int("shards", 1, "split the input into N shards and fan the query out")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lotusx-query [-in file.xml | -index file.ltx] [flags] QUERY")
		os.Exit(2)
	}
	queryText := flag.Arg(0)

	if *xquery {
		q, err := twig.Parse(queryText)
		if err != nil {
			fatal(err)
		}
		fmt.Println(q.ToXQuery())
		return
	}

	backend, err := buildBackend(*in, *indexFile, *shards)
	if err != nil {
		fatal(err)
	}

	q, err := twig.Parse(queryText)
	if err != nil {
		fatal(err)
	}
	if *plan {
		// The planner's view is per document; for a corpus, show the first
		// shard (every shard sees the same query shape).
		engines := backend.Engines()
		if len(engines) > 1 {
			fmt.Printf("plan (shard %s of %d):\n", engines[0].Name, len(engines))
		}
		fmt.Print(join.Explain(engines[0].Engine.Index(), q))
	}

	res, err := backend.SearchHits(context.Background(), q, core.SearchOptions{
		K:          *k,
		Algorithm:  join.Algorithm(*alg),
		Rewrite:    *doRewrite,
		SnippetMax: 400,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%d answers (%d exact, %d rewrites tried) in %v",
		len(res.Hits), res.Exact, res.RewritesTried, res.Elapsed)
	if res.Shards > 1 {
		fmt.Printf(" across %d shards", res.Shards)
	}
	fmt.Println()
	for i, h := range res.Hits {
		fmt.Printf("\n#%d  %s  score=%.3f", i+1, h.Path, h.Score)
		if h.Shard != "" {
			fmt.Printf("  [shard %s]", h.Shard)
		}
		if h.Rewrite != "" {
			fmt.Printf("  [via %s, penalty %.1f]", h.Rewrite, h.Penalty)
		}
		fmt.Println()
		if *explain {
			fmt.Printf("    content=%.3f tightness=%.3f idf=%.3f\n",
				h.Scored.Content, h.Scored.Tightness, h.Scored.IDF)
		}
		fmt.Print(indent(h.Snippet, "    "))
	}
	if *explain {
		fmt.Printf("\njoin stats: scanned=%d pathSolutions=%d edgePairs=%d matches=%d\n",
			res.Stats.ElementsScanned, res.Stats.PathSolutions,
			res.Stats.EdgePairs, res.Stats.MatchesEnumerated)
	}
}

// buildBackend loads the input as a single engine, or — with -shards N — as
// a corpus split at record boundaries with parallel fan-out.
func buildBackend(in, indexFile string, shards int) (core.Backend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("bad -shards %d: want >= 1", shards)
	}
	switch {
	case in != "":
		if shards > 1 {
			f, err := os.Open(in)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			d, err := doc.FromReader(datasetName(in), f)
			if err != nil {
				return nil, err
			}
			return corpus.FromDocument(datasetName(in), d, shards, corpus.Config{})
		}
		return core.FromFile(in)
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		engine, err := core.Open(f)
		if err != nil {
			return nil, err
		}
		if shards > 1 {
			return corpus.FromDocument(datasetName(indexFile), engine.Document(), shards, corpus.Config{})
		}
		return engine, nil
	default:
		return nil, fmt.Errorf("one of -in or -index is required")
	}
}

// datasetName derives a corpus name from the input filename.
func datasetName(path string) string {
	base := filepath.Base(path)
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return prefix + strings.Join(lines, "\n"+prefix) + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-query:", err)
	os.Exit(1)
}
