// Command lotusx-bench runs the experiment suite E1–E10 (one experiment per
// claim of the demo paper; see DESIGN.md §5) and prints the result tables.
//
//	lotusx-bench                # full suite at scale 1
//	lotusx-bench -scale 4       # larger datasets
//	lotusx-bench -exp E2,E3     # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lotusx/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	exps := flag.String("exp", "", "comma-separated experiments to run (default all), e.g. E2,E5")
	jsonDir := flag.String("json-dir", ".",
		"directory receiving machine-readable BENCH_<ID>.json files (empty disables)")
	flag.Parse()

	runner, err := bench.NewRunner(bench.Config{Scale: *scale, Seed: *seed, Out: os.Stdout, JSONDir: *jsonDir})
	if err != nil {
		fatal(err)
	}

	if *exps == "" {
		if err := runner.RunAll(); err != nil {
			fatal(err)
		}
		return
	}
	table := map[string]func() error{
		"E1":  runner.E1IndexBuild,
		"E2":  runner.E2TwigAlgorithms,
		"E3":  runner.E3Intermediate,
		"E4":  runner.E4ParentChild,
		"E5":  runner.E5CompletionLatency,
		"E6":  runner.E6CompletionQuality,
		"E7":  runner.E7Ranking,
		"E8":  runner.E8Ordered,
		"E9":  runner.E9Rewrite,
		"E10": runner.E10Session,
		"E11": runner.E11Scalability,
		"E12": runner.E12CorpusFanout,
		"E13": runner.E13TracingOverhead,
		"E14": runner.E14FaultTolerance,
		"E15": runner.E15CacheWarmPath,
		"E16": runner.E16AsyncIngest,
		"E17": runner.E17RemoteRouter,
		"E18": runner.E18TailSampling,
		"E19": runner.E19IndexCompression,
		"A1":  runner.A1Pushdown,
		"A2":  runner.A2Minimization,
		"A3":  runner.A3PenaltyModel,
	}
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		step, ok := table[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
		if err := step(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-bench:", err)
	os.Exit(1)
}
