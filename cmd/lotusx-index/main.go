// Command lotusx-index parses an XML file, builds the LotusX engine over it
// and persists the result for fast reopening by lotusx-query and
// lotusx-server.
//
//	lotusx-index -in dblp.xml -out dblp.ltx
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lotusx/internal/core"
)

func main() {
	in := flag.String("in", "", "input XML file (required)")
	out := flag.String("out", "", "output index file (required)")
	full := flag.Bool("full", false, "persist token postings too (larger file, faster open)")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	engine, err := core.FromFile(*in)
	if err != nil {
		fatal(err)
	}
	built := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if *full {
		err = engine.SaveFull(f)
	} else {
		err = engine.Save(f)
	}
	if err != nil {
		fatal(err)
	}

	st := engine.Stats()
	fmt.Printf("indexed %s: %d nodes, %d tags, %d guide paths in %v -> %s\n",
		st.Document, st.Nodes, st.Tags, st.GuidePaths, built.Round(time.Millisecond), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-index:", err)
	os.Exit(1)
}
