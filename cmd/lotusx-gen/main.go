// Command lotusx-gen generates the synthetic datasets the experiments run
// on (stand-ins for DBLP, XMark and TreeBank; see DESIGN.md §2).
//
//	lotusx-gen -kind dblp -scale 2 -seed 42 -o dblp.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"lotusx/internal/dataset"
)

func main() {
	kind := flag.String("kind", "dblp", "dataset kind: dblp, xmark or treebank")
	scale := flag.Int("scale", 1, "scale factor (>= 1)")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.Generate(dataset.Kind(*kind), *scale, *seed, w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lotusx-gen:", err)
	os.Exit(1)
}
