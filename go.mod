module lotusx

go 1.22
