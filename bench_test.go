// Benchmarks: one testing.B target per experiment of DESIGN.md §5
// (E1–E10).  cmd/lotusx-bench prints the full result tables; these targets
// expose the same code paths to `go test -bench`, with quality metrics
// reported via b.ReportMetric where the experiment measures accuracy rather
// than time.
package lotusx_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"lotusx/internal/bench"
	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// benchScale keeps `go test -bench .` runs laptop-sized; cmd/lotusx-bench
// takes -scale for larger sweeps.
const benchScale = 1

var (
	setupOnce sync.Once
	xmlBytes  map[dataset.Kind][]byte
	engines   map[dataset.Kind]*core.Engine
)

func setup(b *testing.B) {
	b.Helper()
	setupOnce.Do(func() {
		xmlBytes = make(map[dataset.Kind][]byte)
		engines = make(map[dataset.Kind]*core.Engine)
		for _, kind := range dataset.Kinds {
			var buf bytes.Buffer
			if err := dataset.Generate(kind, benchScale, 42, &buf); err != nil {
				panic(err)
			}
			xmlBytes[kind] = buf.Bytes()
			d, err := doc.FromReader(string(kind), bytes.NewReader(buf.Bytes()))
			if err != nil {
				panic(err)
			}
			engines[kind] = core.FromDocument(d)
		}
	})
}

// BenchmarkE1IndexBuild measures ingestion: parse + label + index + guide,
// per dataset (experiment E1).
func BenchmarkE1IndexBuild(b *testing.B) {
	setup(b)
	for _, kind := range dataset.Kinds {
		b.Run(string(kind), func(b *testing.B) {
			src := xmlBytes[kind]
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := doc.FromReader(string(kind), bytes.NewReader(src))
				if err != nil {
					b.Fatal(err)
				}
				core.FromDocument(d)
			}
		})
	}
}

// BenchmarkE2TwigAlgorithms measures evaluation time per workload query and
// algorithm (experiment E2).
func BenchmarkE2TwigAlgorithms(b *testing.B) {
	setup(b)
	for _, q := range bench.Workload() {
		parsed := twig.MustParse(q.Text)
		ix := engines[q.Kind].Index()
		for _, alg := range join.Algorithms {
			b.Run(fmt.Sprintf("%s/%s", q.ID, alg), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := join.Run(ix, parsed, alg, join.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE3Intermediate reports intermediate path solutions per query for
// PathStack vs TwigStack (experiment E3) as a custom metric.
func BenchmarkE3Intermediate(b *testing.B) {
	setup(b)
	for _, q := range bench.Workload() {
		parsed := twig.MustParse(q.Text)
		ix := engines[q.Kind].Index()
		for _, alg := range []join.Algorithm{join.PathStack, join.TwigStack} {
			b.Run(fmt.Sprintf("%s/%s", q.ID, alg), func(b *testing.B) {
				var sols int
				for i := 0; i < b.N; i++ {
					res, err := join.Run(ix, parsed, alg, join.Options{})
					if err != nil {
						b.Fatal(err)
					}
					sols = res.Stats.PathSolutions
				}
				b.ReportMetric(float64(sols), "pathsols")
			})
		}
	}
}

// BenchmarkE4ParentChild measures the parent-child-heavy subset under
// TwigStack (experiment E4).
func BenchmarkE4ParentChild(b *testing.B) {
	setup(b)
	for _, q := range bench.Workload() {
		if !q.PCHeavy {
			continue
		}
		parsed := twig.MustParse(q.Text)
		ix := engines[q.Kind].Index()
		b.Run(q.ID, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := join.Run(ix, parsed, join.TwigStack, join.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// completionCases returns representative completion probes per dataset.
func completionCases() []struct {
	kind    dataset.Kind
	context string
	prefix  string
} {
	return []struct {
		kind    dataset.Kind
		context string
		prefix  string
	}{
		{dataset.DBLP, "//article", "a"},
		{dataset.DBLP, "//inproceedings", "boo"},
		{dataset.XMark, "//open_auction/bidder", "in"},
		{dataset.XMark, "//person", "pr"},
		{dataset.TreeBank, "//S/VP", "N"},
	}
}

// BenchmarkE5CompletionLatency measures position-aware vs naive tag
// completion (experiment E5).
func BenchmarkE5CompletionLatency(b *testing.B) {
	setup(b)
	for _, c := range completionCases() {
		engine := engines[c.kind]
		q := twig.MustParse(c.context)
		focus := q.OutputNode().ID
		b.Run(fmt.Sprintf("aware/%s%s", c.kind, c.context), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Completer().SuggestTags(q, focus, twig.Child, c.prefix, 10)
			}
		})
		b.Run(fmt.Sprintf("naive/%s/%s", c.kind, c.prefix), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Completer().SuggestTagsNaive(c.prefix, 10)
			}
		})
	}
}

// BenchmarkE6CompletionQuality reports MRR of the intended tag for the
// position-aware and naive engines (experiment E6; accuracy metric, the
// time column is incidental).
func BenchmarkE6CompletionQuality(b *testing.B) {
	setup(b)
	runQuality := func(b *testing.B, aware bool) {
		var mrr float64
		for i := 0; i < b.N; i++ {
			var recip float64
			var n int
			for _, q := range bench.Workload() {
				parsed := twig.MustParse(q.Text)
				engine := engines[q.Kind]
				for _, qn := range parsed.Nodes() {
					if qn.Parent() == nil || qn.IsWildcard() {
						continue
					}
					n++
					prefix := qn.Tag[:1]
					var cands []complete.Candidate
					if aware {
						cands = engine.Completer().SuggestTags(parsed, qn.Parent().ID, qn.Axis, prefix, 10)
					} else {
						cands = engine.Completer().SuggestTagsNaive(prefix, 10)
					}
					for rank, cand := range cands {
						if cand.Text == qn.Tag {
							recip += 1 / float64(rank+1)
							break
						}
					}
				}
			}
			mrr = recip / float64(n)
		}
		b.ReportMetric(mrr, "MRR")
	}
	b.Run("position-aware", func(b *testing.B) { runQuality(b, true) })
	b.Run("naive", func(b *testing.B) { runQuality(b, false) })
}

// BenchmarkE7Ranking measures scoring throughput over a value query's
// matches (experiment E7; the quality table comes from lotusx-bench).
func BenchmarkE7Ranking(b *testing.B) {
	setup(b)
	engine := engines[dataset.DBLP]
	q := twig.MustParse(`//inproceedings[title contains "xml"]`)
	res, err := join.Run(engine.Index(), q, join.TwigStack, join.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Ranker().Rank(q, res.Matches, 10)
	}
}

// BenchmarkE8Ordered measures order-constraint overhead (experiment E8).
func BenchmarkE8Ordered(b *testing.B) {
	setup(b)
	for _, q := range bench.Workload() {
		if !q.Ordered {
			continue
		}
		ordered := twig.MustParse(q.Text)
		unordered := ordered.Clone()
		unordered.Order = nil
		if err := unordered.Normalize(); err != nil {
			b.Fatal(err)
		}
		ix := engines[q.Kind].Index()
		b.Run(q.ID+"/ordered", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := join.Run(ix, ordered, join.TwigStack, join.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/unordered", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := join.Run(ix, unordered, join.TwigStack, join.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Rewrite measures recovery of a broken query through
// penalty-ordered relaxation (experiment E9).
func BenchmarkE9Rewrite(b *testing.B) {
	setup(b)
	engine := engines[dataset.DBLP]
	q := twig.MustParse(`//article/autor`) // typo
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := engine.Search(q, core.SearchOptions{Rewrite: true, K: 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("rewrite recovered nothing")
		}
	}
}

// BenchmarkE10Session measures a full scripted interactive session: root
// suggestion, three growth steps with candidates, value completion, search
// (experiment E10).
func BenchmarkE10Session(b *testing.B) {
	setup(b)
	engine := engines[dataset.XMark]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := engine.NewSession()
		if _, err := s.SuggestTags(complete.NewRoot, twig.Descendant, "op", 8); err != nil {
			b.Fatal(err)
		}
		root, err := s.Root("open_auction", twig.Descendant)
		if err != nil {
			b.Fatal(err)
		}
		bidder, err := s.AddNode(root, twig.Child, "bidder")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SuggestTags(bidder, twig.Child, "in", 8); err != nil {
			b.Fatal(err)
		}
		if _, err := s.AddNode(bidder, twig.Child, "increase"); err != nil {
			b.Fatal(err)
		}
		current, err := s.AddNode(root, twig.Child, "current")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SuggestValues(current, "1", 8); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(core.SearchOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Scalability measures index build across scales (experiment
// E11; the full sweep table comes from lotusx-bench).
func BenchmarkE11Scalability(b *testing.B) {
	for _, scale := range []int{1, 2} {
		b.Run(fmt.Sprintf("scale%d", scale), func(b *testing.B) {
			var buf bytes.Buffer
			if err := dataset.Generate(dataset.DBLP, scale, 42, &buf); err != nil {
				b.Fatal(err)
			}
			src := buf.Bytes()
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := doc.FromReader("dblp", bytes.NewReader(src))
				if err != nil {
					b.Fatal(err)
				}
				core.FromDocument(d)
			}
		})
	}
}

// BenchmarkA1Pushdown compares predicate pushdown against post-filtering
// (ablation A1) on the same query.
func BenchmarkA1Pushdown(b *testing.B) {
	setup(b)
	engine := engines[dataset.DBLP]
	withPred := twig.MustParse(`//inproceedings[title contains "xml"][year]`)
	noPred := withPred.Clone()
	for _, n := range noPred.Nodes() {
		n.Pred = twig.Pred{}
	}
	if err := noPred.Normalize(); err != nil {
		b.Fatal(err)
	}
	b.Run("pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.Run(engine.Index(), withPred, join.TwigStack, join.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structure-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.Run(engine.Index(), noPred, join.TwigStack, join.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA2Minimization compares a redundant twig against its minimized
// form (ablation A2).
func BenchmarkA2Minimization(b *testing.B) {
	setup(b)
	engine := engines[dataset.DBLP]
	raw := twig.MustParse(`//article[author][author]/title`)
	minimized := raw.Minimize()
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.Run(engine.Index(), raw, join.TwigStack, join.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("minimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.Run(engine.Index(), minimized, join.TwigStack, join.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuite runs the printed experiment suite once per iteration — the
// exact tables EXPERIMENTS.md records — against a discard writer.
func BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.NewRunner(bench.Config{Scale: benchScale, Seed: 42, Out: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}
