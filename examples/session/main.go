// Session: a simulated GUI interaction, the paper's core demo.  Each step
// prints what the user "sees" — the candidates LotusX proposes for the
// position being edited — and what the user picks, until the twig is built
// and executed.  The XQuery the user never had to write is printed at the
// end.
//
//	go run ./examples/session
package main

import (
	"bytes"
	"fmt"
	"log"

	"lotusx"
	"lotusx/internal/dataset"
)

func main() {
	var buf bytes.Buffer
	if err := dataset.Generate(dataset.XMark, 1, 42, &buf); err != nil {
		log.Fatal(err)
	}
	engine, err := lotusx.FromReader("auction-site", &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: %d nodes\n", engine.Stats().Nodes)

	s := engine.NewSession()

	// The user wants auctions but only remembers it starts with "op".
	show := func(step string, cands []lotusx.Candidate) {
		fmt.Printf("\n[%s]\n", step)
		for i, c := range cands {
			marker := "   "
			if i == 0 {
				marker = " > "
			}
			fuzzy := ""
			if c.Fuzzy {
				fuzzy = "  (did you mean?)"
			}
			fmt.Printf("%s%-16s %6d×%s\n", marker, c.Text, c.Count, fuzzy)
		}
	}

	cands, err := s.SuggestTags(lotusx.NewRoot, lotusx.Descendant, "op", 5)
	if err != nil {
		log.Fatal(err)
	}
	show(`user types "op" for the root`, cands)
	root, _ := s.Root(cands[0].Text, lotusx.Descendant) // open_auction

	// Growing the twig: what can live under an open_auction?  Note the
	// candidates are position-aware — "name" is frequent globally but does
	// not occur here, so it is not offered.
	cands, err = s.SuggestTags(root, lotusx.Child, "", 8)
	if err != nil {
		log.Fatal(err)
	}
	show("user opens the child list of open_auction", cands)

	bidder, _ := s.AddNode(root, lotusx.Child, "bidder")
	cands, err = s.SuggestTags(bidder, lotusx.Child, "in", 5)
	if err != nil {
		log.Fatal(err)
	}
	show(`user types "in" under bidder`, cands)
	if _, err := s.AddNode(bidder, lotusx.Child, cands[0].Text); err != nil { // increase
		log.Fatal(err)
	}

	// A typo still lands: "currrent".
	cands, err = s.SuggestTags(root, lotusx.Child, "currrent", 5)
	if err != nil {
		log.Fatal(err)
	}
	show(`user typos "currrent"`, cands)
	current, _ := s.AddNode(root, lotusx.Child, cands[0].Text)

	// Order-sensitive: the bidder must come before current (they always do,
	// but the GUI lets users say so).
	if err := s.AddOrder(bidder, current); err != nil {
		log.Fatal(err)
	}
	if err := s.SetOutput(current); err != nil {
		log.Fatal(err)
	}

	xp, _ := s.XPath()
	xq, _ := s.XQuery()
	fmt.Printf("\nthe twig the user built:  %s\n", xp)
	fmt.Printf("\nthe XQuery nobody wrote:\n%s\n", xq)

	res, err := s.Run(lotusx.SearchOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d answers (%v); top current prices:\n", len(res.Answers), res.Elapsed)
	for _, a := range res.Answers {
		fmt.Printf("  %s\n", engine.Document().Value(a.Node))
	}
}
