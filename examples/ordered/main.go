// Ordered: order-sensitive twig queries on deeply recursive treebank-like
// data — the workload where document order carries meaning (constituent
// order in parse trees) and where stack-based evaluation handles recursion
// that defeats naive matching.
//
//	go run ./examples/ordered
package main

import (
	"bytes"
	"fmt"
	"log"

	"lotusx"
	"lotusx/internal/dataset"
)

func main() {
	var buf bytes.Buffer
	if err := dataset.Generate(dataset.TreeBank, 1, 42, &buf); err != nil {
		log.Fatal(err)
	}
	engine, err := lotusx.FromReader("treebank", &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("treebank: %d nodes, recursion depth visible in %d distinct paths\n\n",
		engine.Stats().Nodes, engine.Stats().GuidePaths)

	// Same twig, with and without an order constraint.  In this grammar NP
	// precedes VP inside a sentence, so [NP << VP] keeps all matches while
	// [VP << NP] keeps only sentences with a second, later NP — if any.
	for _, queryText := range []string{
		`//S[NP][VP]`,
		`//S[NP << VP]`,
		`//S[VP << NP]`,
	} {
		res, err := engine.SearchString(queryText, lotusx.SearchOptions{K: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> %5d sentences (%v)\n", queryText, len(res.Answers), res.Elapsed)
	}

	// Recursive structure: sentences nested inside sentences, and the
	// subject of a subordinate clause.
	fmt.Println()
	for _, queryText := range []string{
		`//S//S`,
		`//S/SBAR/S/NP/NN`,
	} {
		res, err := engine.SearchString(queryText, lotusx.SearchOptions{K: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> %5d matches (%v)\n", queryText, len(res.Answers), res.Elapsed)
	}

	// Show one nested sentence.
	res, err := engine.SearchString(`//S//S`, lotusx.SearchOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) > 0 {
		fmt.Printf("\na sentence inside a sentence:\n%s", engine.Snippet(res.Answers[0].Node, 500))
	}
}
