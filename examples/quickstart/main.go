// Quickstart: index a small document, run a twig query, print ranked
// answers.  This is the five-minute tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"lotusx"
)

const catalogXML = `<catalog>
  <book id="b1">
    <title>XML Databases</title>
    <author>Tok Wang Ling</author>
    <price>35</price>
  </book>
  <book id="b2">
    <title>Holistic Twig Joins in Practice</title>
    <author>Jiaheng Lu</author>
    <price>42</price>
  </book>
  <journal id="j1">
    <title>XML Query Processing</title>
    <editor>Bogdan Cautis</editor>
  </journal>
</catalog>`

func main() {
	// 1. Build an engine: one call parses, labels and indexes the document.
	engine, err := lotusx.FromReader("catalog", strings.NewReader(catalogXML))
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("indexed %q: %d nodes, %d tags, %d distinct paths\n\n",
		st.Document, st.Nodes, st.Tags, st.GuidePaths)

	// 2. Query with the XPath subset: books whose title mentions "xml".
	res, err := engine.SearchString(`//book[title contains "xml"]`, lotusx.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 1: %d answer(s) in %v\n", len(res.Answers), res.Elapsed)
	for _, a := range res.Answers {
		fmt.Printf("  score %.3f\n%s", a.Score, indent(engine.Snippet(a.Node, 0)))
	}

	// 3. The same engine explains what the GUI would have generated.
	q := lotusx.MustParse(`//book[author = "Jiaheng Lu"]/title`)
	fmt.Printf("\nthe twig %s compiles to:\n%s\n", q, q.ToXQuery())

	// 4. Rewriting: "titel" is a typo — LotusX relaxes the query and says
	// how it did it.
	res, err = engine.SearchString(`//book/titel`, lotusx.SearchOptions{K: 3, Rewrite: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery 2 (typo): %d exact, %d recovered\n", res.Exact, len(res.Answers))
	for _, a := range res.Answers {
		fmt.Printf("  %q via %s (penalty %.1f)\n",
			engine.Document().Value(a.Node), a.Rewrite.Query, a.Rewrite.Penalty)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}
