// Explain: the transparency features around search — where a suggested tag
// occurs (the hover card next to completion candidates), why each answer
// ranked where it did (score breakdown), and which words matched
// (highlighting).  Run against the synthetic bibliography.
//
//	go run ./examples/explain
package main

import (
	"bytes"
	"fmt"
	"log"

	"lotusx"
	"lotusx/internal/dataset"
)

func main() {
	var buf bytes.Buffer
	if err := dataset.Generate(dataset.DBLP, 1, 42, &buf); err != nil {
		log.Fatal(err)
	}
	engine, err := lotusx.FromReader("dblp", &buf)
	if err != nil {
		log.Fatal(err)
	}

	// 1. "Where would 'title' land if I add it here?"
	q := lotusx.MustParse("//dblp")
	fmt.Println("occurrences of 'title' anywhere under //dblp:")
	for _, occ := range engine.Completer().ExplainTag(q, q.Root.ID, lotusx.Descendant, "title", 5) {
		fmt.Printf("  %6d×  %s\n", occ.Count, occ.Path)
	}

	// 2. Ranked answers with their score breakdown.
	query := lotusx.MustParse(`//inproceedings[title contains "xml search"]`)
	res, err := engine.Search(query, lotusx.SearchOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop answers for %s:\n", query)
	for i, a := range res.Answers {
		fmt.Printf("\n#%d score=%.3f  (content=%.2f tightness=%.2f idf=%.2f)\n",
			i+1, a.Score, a.Scored.Content, a.Scored.Tightness, a.Scored.IDF)
		// 3. Highlighting: which words satisfied the predicate.
		for _, h := range engine.Highlights(query, a.Scored.Match) {
			fmt.Printf("   %s: %s\n", h.Tag, lotusx.Underline(h.Value, h.Spans))
		}
	}
}
