// Bibsearch: the paper's motivating scenario — searching a bibliography
// without knowing its schema.  Generates a synthetic DBLP-like dataset,
// then demonstrates position-aware completion, ranked search, and the
// rewriting safety net, all on data too large to eyeball.
//
//	go run ./examples/bibsearch
package main

import (
	"bytes"
	"fmt"
	"log"

	"lotusx"
	"lotusx/internal/dataset"
)

func main() {
	// Generate and index ~12k nodes of bibliography.
	var buf bytes.Buffer
	if err := dataset.Generate(dataset.DBLP, 1, 42, &buf); err != nil {
		log.Fatal(err)
	}
	engine, err := lotusx.FromReader("dblp-synthetic", &buf)
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("bibliography: %d nodes, %d tags\n\n", st.Nodes, st.Tags)

	// A user who knows nothing about the schema starts typing "in..." —
	// what entry kinds exist?
	s := engine.NewSession()
	cands, err := s.SuggestTags(lotusx.NewRoot, lotusx.Descendant, "in", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tags matching 'in...':")
	for _, c := range cands {
		fmt.Printf("  %-20s (%d occurrences)\n", c.Text, c.Count)
	}

	// Search: papers by an author, ranked.
	res, err := engine.SearchString(
		`//inproceedings[author = "jiaheng lu"][year]/title`,
		lotusx.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop titles by jiaheng lu (%d answers, %v):\n", len(res.Answers), res.Elapsed)
	d := engine.Document()
	for i, a := range res.Answers {
		fmt.Printf("  %d. %s (score %.3f)\n", i+1, d.Value(a.Node), a.Score)
	}

	// Value completion: which venues start with "si"?
	q := lotusx.MustParse(`//inproceedings/booktitle`)
	vals := engine.Completer().SuggestValues(q, 1, "si", 5)
	fmt.Println("\nvenues matching 'si...':")
	for _, v := range vals {
		fmt.Printf("  %-12s (%d papers)\n", v.Text, v.Count)
	}

	// The rewriting safety net: "jurnal" is not a tag; "artcle" is not
	// either.  LotusX explains what it searched instead.
	res, err = engine.SearchString(`//artcle[jurnal]/title`,
		lotusx.SearchOptions{K: 3, Rewrite: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbroken query //artcle[jurnal]/title: %d answers after %d rewrites\n",
		len(res.Answers), res.RewritesTried)
	if len(res.Answers) > 0 && res.Answers[0].Rewrite != nil {
		rw := res.Answers[0].Rewrite
		fmt.Printf("  searched %s instead (penalty %.1f):\n", rw.Query, rw.Penalty)
		for _, ap := range rw.Applied {
			fmt.Printf("    - %s: %s\n", ap.Rule, ap.Detail)
		}
	}
}
