package twig

import "testing"

func TestMinimizeDuplicateBranch(t *testing.T) {
	q := MustParse(`//article[author][author]/title`)
	m := q.Minimize()
	if m.Len() != 3 {
		t.Fatalf("minimized to %d nodes (%s), want 3", m.Len(), m)
	}
	// Original untouched.
	if q.Len() != 4 {
		t.Fatal("Minimize mutated the receiver")
	}
}

func TestMinimizeSubsumedByPredicate(t *testing.T) {
	// [author] is implied by [author = "lu"].
	q := MustParse(`//article[author][author = "lu"]/title`)
	m := q.Minimize()
	if m.Len() != 3 {
		t.Fatalf("minimized = %s (%d nodes), want 3", m, m.Len())
	}
	// The surviving branch keeps the predicate.
	var found bool
	for _, n := range m.Nodes() {
		if n.Tag == "author" && n.Pred.Op == Eq {
			found = true
		}
	}
	if !found {
		t.Fatalf("predicate branch was dropped instead: %s", m)
	}
}

func TestMinimizeEqImpliesContains(t *testing.T) {
	q := MustParse(`//a[b contains "x"][b = "x"]`)
	m := q.Minimize()
	if m.Len() != 2 {
		t.Fatalf("minimized = %s, want single b branch", m)
	}
	if m.Root.Children[0].Pred.Op != Eq {
		t.Fatal("the equality branch must survive (it is the stronger one)")
	}
}

func TestMinimizeAxisSubsumption(t *testing.T) {
	// //a[.//b][b]: the child-b branch implies the descendant-b branch.
	q := MustParse(`//a[.//b][b]`)
	m := q.Minimize()
	if m.Len() != 2 {
		t.Fatalf("minimized = %s, want 2 nodes", m)
	}
	if m.Root.Children[0].Axis != Child {
		t.Fatal("the child-axis branch must survive")
	}
	// The reverse does not hold: //a[b][c//b]? unrelated tags; and
	// //a[b] alone must not lose its branch.
	q = MustParse(`//a[b]`)
	if m := q.Minimize(); m.Len() != 2 {
		t.Fatal("irreducible query changed")
	}
}

func TestMinimizeNestedSubsumption(t *testing.T) {
	// [b[c]] subsumes [b]: dropping the plain one.
	q := MustParse(`//a[b/c][b]`)
	m := q.Minimize()
	if m.Len() != 3 {
		t.Fatalf("minimized = %s, want a[b/c]", m)
	}
	// But [b[c]] does NOT subsume [b[d]].
	q = MustParse(`//a[b/c][b/d]`)
	if m := q.Minimize(); m.Len() != 5 {
		t.Fatalf("wrongly minimized %s to %s", q, m)
	}
}

func TestMinimizeWildcardWitness(t *testing.T) {
	// [b] subsumes [*]: any b child witnesses the wildcard branch.
	q := MustParse(`//a[b][*]`)
	m := q.Minimize()
	if m.Len() != 2 || m.Root.Children[0].Tag != "b" {
		t.Fatalf("minimized = %s, want a[b]", m)
	}
	// The wildcard does not witness an attribute branch.
	q = MustParse(`//a[@k][*]`)
	if m := q.Minimize(); m.Len() != 3 {
		t.Fatalf("attribute branch wrongly dropped: %s", m)
	}
}

func TestMinimizeProtectsOutputNode(t *testing.T) {
	// The [b] predicate branch is subsumed by the output path /b and
	// drops; the output branch itself must never drop, even though the two
	// subsume each other.
	q := MustParse(`//a[b]/b`)
	m := q.Minimize()
	if m.Len() != 2 {
		t.Fatalf("minimized = %s, want //a/b", m)
	}
	if !m.OutputNode().Output || m.OutputNode().Tag != "b" {
		t.Fatal("output node lost")
	}
}

func TestMinimizeProtectsOrderEndpoints(t *testing.T) {
	q := MustParse(`//s[a << b][a]`)
	m := q.Minimize()
	// The plain [a] branch is subsumed by the order-endpoint a branch; the
	// endpoints stay.
	if len(m.Order) != 1 {
		t.Fatalf("order constraints lost: %s", m)
	}
	if m.Len() != 3 {
		t.Fatalf("minimized = %s, want s[a<<b]", m)
	}
}

func TestMinimizeTwinsKeepOne(t *testing.T) {
	q := MustParse(`//a[b][b][b]`)
	m := q.Minimize()
	if m.Len() != 2 {
		t.Fatalf("triplets should minimize to one: %s", m)
	}
}

func TestMinimizeDeepRedundancy(t *testing.T) {
	// Redundancy inside a branch: a[b[c][c]] -> a[b[c]].
	q := MustParse(`//a[b[c][c]]`)
	m := q.Minimize()
	if m.Len() != 3 {
		t.Fatalf("nested twins survived: %s", m)
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	for _, qs := range []string{
		`//article[author][author = "lu"][year]/title`,
		`//a[b][c]`,
		`//a`,
	} {
		m1 := MustParse(qs).Minimize()
		m2 := m1.Minimize()
		if m1.String() != m2.String() {
			t.Errorf("not idempotent on %q: %s vs %s", qs, m1, m2)
		}
	}
}
