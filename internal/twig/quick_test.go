package twig

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTwig is a quick-generatable random query.
type randomTwig struct {
	q *Query
}

// Generate implements quick.Generator: a random twig with mixed axes,
// wildcards, predicates and an output node somewhere on the main path.
func (randomTwig) Generate(rng *rand.Rand, size int) reflect.Value {
	tags := []string{"a", "b", "c", "item", "@key", "*"}
	axes := []Axis{Child, Descendant}
	q := &Query{Root: &Node{Tag: tags[rng.Intn(len(tags)-1)], Axis: axes[rng.Intn(2)]}}

	budget := 1 + rng.Intn(size%8+2)
	var grow func(n *Node, depth int)
	grow = func(n *Node, depth int) {
		for budget > 0 && depth < 4 && rng.Intn(2) == 0 {
			budget--
			c := n.AddChild(tags[rng.Intn(len(tags))], axes[rng.Intn(2)])
			if rng.Intn(3) == 0 {
				ops := []PredOp{Eq, Contains}
				c.Pred = Pred{Op: ops[rng.Intn(2)], Value: "v" + string(rune('a'+rng.Intn(3)))}
			}
			grow(c, depth+1)
		}
	}
	grow(q.Root, 0)
	if err := q.Normalize(); err != nil {
		panic("generator built an invalid twig: " + err.Error())
	}
	return reflect.ValueOf(randomTwig{q})
}

// TestQuickStringParseRoundTrip: rendering then re-parsing any generated
// twig yields a structurally identical query.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(rt randomTwig) bool {
		text := rt.q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Logf("re-parse of %q failed: %v", text, err)
			return false
		}
		if !equalQueries(rt.q, q2) {
			t.Logf("round trip changed %q", text)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIsDeepAndEqual: clones are structurally equal and fully
// independent.
func TestQuickCloneIsDeepAndEqual(t *testing.T) {
	f := func(rt randomTwig) bool {
		c := rt.q.Clone()
		if !equalQueries(rt.q, c) {
			return false
		}
		// Mutating the clone leaves the original alone.
		c.Root.Tag = "mutated"
		return rt.q.Root.Tag != "mutated"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinimizeSoundness: minimization never grows the query, is
// idempotent, and keeps the output node.
func TestQuickMinimizeSoundness(t *testing.T) {
	f := func(rt randomTwig) bool {
		m := rt.q.Minimize()
		if m.Len() > rt.q.Len() {
			return false
		}
		if m.OutputNode().Tag != rt.q.OutputNode().Tag {
			return false
		}
		m2 := m.Minimize()
		return m.String() == m2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalizeAssignsPreorderIDs: IDs are a preorder numbering —
// every child's ID exceeds its parent's, and IDs are dense.
func TestQuickNormalizeAssignsPreorderIDs(t *testing.T) {
	f := func(rt randomTwig) bool {
		seen := make(map[int]bool)
		for i, n := range rt.q.Nodes() {
			if n.ID != i {
				return false
			}
			if seen[n.ID] {
				return false
			}
			seen[n.ID] = true
			if p := n.Parent(); p != nil && p.ID >= n.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
