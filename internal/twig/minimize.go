package twig

import "strings"

// Minimize returns an equivalent query with redundant branches removed — the
// classical tree-pattern minimization (Amer-Yahia, Cho, Lakshmanan,
// Srivastava, "Minimization of Tree Pattern Queries", SIGMOD 2001), adapted
// to this dialect.  A branch is redundant when a sibling branch subsumes it:
// every document node satisfying the sibling also satisfies the branch, so
// deleting it cannot change which nodes the query's output node matches.
//
// GUI-built twigs accumulate such redundancy naturally — a user asks for
// [author] and later for [author = "lu"] — and evaluating the smaller
// pattern is strictly cheaper (the A2 ablation bench quantifies it).
//
// Minimization preserves the set of output-node answers, not the multiset
// of full match tuples; branches containing the output node or an
// order-constraint endpoint are never removed.  The receiver must be
// normalized; the result is a normalized copy (the receiver is untouched).
func (q *Query) Minimize() *Query {
	out := q.Clone()
	protected := out.protectedNodes()
	minimizeNode(out.Root, protected)
	if err := out.Normalize(); err != nil {
		// Deleting branches keeps the tree well-formed; Clone re-resolved
		// order constraints, whose endpoints are protected.
		panic("twig: Minimize broke the query: " + err.Error())
	}
	return out
}

// protectedNodes marks nodes that must survive: the output node, order
// endpoints, and all their ancestors.
func (q *Query) protectedNodes() map[*Node]bool {
	protected := make(map[*Node]bool)
	mark := func(n *Node) {
		for cur := n; cur != nil; cur = cur.parent {
			protected[cur] = true
		}
	}
	mark(q.OutputNode())
	for _, oc := range q.Order {
		mark(q.nodes[oc.Before])
		mark(q.nodes[oc.After])
	}
	return protected
}

// minimizeNode removes redundant children of n, bottom-up.
func minimizeNode(n *Node, protected map[*Node]bool) {
	for _, c := range n.Children {
		minimizeNode(c, protected)
	}
	// A child is dropped when a sibling witness subsumes it.  Witnesses are
	// siblings not yet judged (j > i: if that witness is itself dropped
	// later, transitivity of subsumption guarantees its own witness also
	// covers this child) or siblings already kept (j < i).  Mutually
	// subsuming twins therefore drop the earlier one and keep the later.
	kept := n.Children[:0]
	inKept := func(x *Node) bool {
		for _, k := range kept {
			if k == x {
				return true
			}
		}
		return false
	}
	for i, c := range n.Children {
		redundant := false
		if !containsProtected(c, protected) {
			for j, other := range n.Children {
				if j == i || (j < i && !inKept(other)) {
					continue
				}
				if subsumes(other, c) {
					redundant = true
					break
				}
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	n.Children = kept
}

func containsProtected(n *Node, protected map[*Node]bool) bool {
	if protected[n] {
		return true
	}
	for _, c := range n.Children {
		if containsProtected(c, protected) {
			return true
		}
	}
	return false
}

// subsumes reports whether every document node matching pattern a (hanging
// off the shared parent) also matches pattern b, so b is implied by a.
func subsumes(a, b *Node) bool {
	// Tag: b must accept a's matches.  The wildcard accepts any element —
	// but not attribute nodes, so an @-tagged branch has no wildcard
	// witness.
	if !b.IsWildcard() && b.Tag != a.Tag {
		return false
	}
	if b.IsWildcard() && strings.HasPrefix(a.Tag, "@") {
		return false
	}
	// Axis: a child is also a descendant; a descendant is not necessarily a
	// child.
	if b.Axis == Child && a.Axis != Child {
		return false
	}
	// Predicate: b's predicate must be implied by a's.
	if !predImplies(a.Pred, b.Pred) {
		return false
	}
	// Children: every branch of b needs a witness among a's branches.
	for _, bc := range b.Children {
		witnessed := false
		for _, ac := range a.Children {
			if subsumes(ac, bc) {
				witnessed = true
				break
			}
		}
		if !witnessed {
			return false
		}
	}
	return true
}

// predImplies reports whether satisfying pa guarantees satisfying pb.
func predImplies(pa, pb Pred) bool {
	switch pb.Op {
	case NoPred:
		return true
	case Eq:
		return pa.Op == Eq && equalFold(pa.Value, pb.Value)
	case Contains:
		if pa.Op == Contains && equalFold(pa.Value, pb.Value) {
			return true
		}
		// Whole-value equality implies containing the same value's tokens.
		return pa.Op == Eq && equalFold(pa.Value, pb.Value)
	}
	return false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
