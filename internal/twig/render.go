package twig

import (
	"fmt"
	"strings"
)

// String renders the query in the XPath subset accepted by Parse.  The main
// path runs from the root to the output node; all other branches become
// predicates.  Order constraints whose endpoints terminate straight-line
// chains under a common node render as [a << b]; other constraints (only
// constructible programmatically) are appended as a non-parseable
// {order #i<<#j} annotation.
func (q *Query) String() string {
	if len(q.nodes) == 0 {
		// Render an unnormalized query best-effort.
		tmp := *q
		if err := tmp.Normalize(); err != nil {
			return fmt.Sprintf("<invalid twig: %v>", err)
		}
		return tmp.String()
	}
	var b strings.Builder

	// Chains consumed by << rendering must not render again as predicates.
	consumed := make(map[*Node]bool)
	orderAt := make(map[*Node][]OrderConstraint) // LCA node -> constraints
	var leftover []OrderConstraint
	for _, oc := range q.Order {
		a, z := q.nodes[oc.Before], q.nodes[oc.After]
		lca := q.lca(a, z)
		ca, okA := q.chainTop(lca, a)
		cz, okZ := q.chainTop(lca, z)
		if okA && okZ && ca != cz {
			orderAt[lca] = append(orderAt[lca], oc)
			consumed[ca] = true
			consumed[cz] = true
		} else {
			leftover = append(leftover, oc)
		}
	}

	// Main path: root .. output.
	out := q.OutputNode()
	var path []*Node
	for n := out; n != nil; n = n.parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	onPath := make(map[*Node]bool, len(path))
	for _, n := range path {
		onPath[n] = true
	}

	var renderChain func(b *strings.Builder, n *Node, top bool)
	renderChain = func(b *strings.Builder, n *Node, top bool) {
		if !top {
			b.WriteString(n.Axis.String())
		}
		b.WriteString(n.Tag)
		if n.Pred.Op != NoPred {
			b.WriteString(" ")
			b.WriteString(opWord(n.Pred.Op))
			b.WriteString(" ")
			b.WriteString(quote(n.Pred.Value))
		}
		for _, c := range n.Children {
			renderChain(b, c, false)
		}
	}

	var renderPreds func(b *strings.Builder, n *Node)
	renderPreds = func(b *strings.Builder, n *Node) {
		if n.Pred.Op != NoPred {
			fmt.Fprintf(b, "[. %s %s]", opWord(n.Pred.Op), quote(n.Pred.Value))
		}
		for _, oc := range orderAt[n] {
			a := q.chainTopMust(n, q.nodes[oc.Before])
			z := q.chainTopMust(n, q.nodes[oc.After])
			b.WriteString("[")
			renderPredPath(b, a)
			b.WriteString(" << ")
			renderPredPath(b, z)
			b.WriteString("]")
		}
		for _, c := range n.Children {
			if onPath[c] || consumed[c] {
				continue
			}
			b.WriteString("[")
			renderPredPath(b, c)
			b.WriteString("]")
		}
	}

	for i, n := range path {
		if i == 0 {
			b.WriteString(n.Axis.String())
		} else {
			b.WriteString(n.Axis.String())
		}
		b.WriteString(n.Tag)
		renderPreds(&b, n)
	}
	for _, oc := range leftover {
		fmt.Fprintf(&b, "{order #%d<<#%d}", oc.Before, oc.After)
	}
	return b.String()
}

// renderPredPath renders a branch rooted at n as a predicate path.  The
// first step's Child axis is implicit (XPath style); Descendant renders as
// a leading ".//".
func renderPredPath(b *strings.Builder, n *Node) {
	cur := n
	first := true
	for {
		if first {
			if cur.Axis == Descendant {
				b.WriteString(".//")
			}
			first = false
		} else {
			b.WriteString(cur.Axis.String())
		}
		b.WriteString(cur.Tag)
		// Non-chain shape inside predicates renders nested predicates.
		switch len(cur.Children) {
		case 0:
			if cur.Pred.Op != NoPred {
				b.WriteString(" ")
				b.WriteString(opWord(cur.Pred.Op))
				b.WriteString(" ")
				b.WriteString(quote(cur.Pred.Value))
			}
			return
		case 1:
			if cur.Pred.Op != NoPred {
				fmt.Fprintf(b, "[. %s %s]", opWord(cur.Pred.Op), quote(cur.Pred.Value))
			}
			cur = cur.Children[0]
		default:
			if cur.Pred.Op != NoPred {
				fmt.Fprintf(b, "[. %s %s]", opWord(cur.Pred.Op), quote(cur.Pred.Value))
			}
			for _, c := range cur.Children {
				b.WriteString("[")
				renderPredPath(b, c)
				b.WriteString("]")
			}
			return
		}
	}
}

func opWord(op PredOp) string {
	if op == Eq {
		return "="
	}
	return "contains"
}

func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// lca returns the lowest common ancestor of a and b in the query tree.
func (q *Query) lca(a, b *Node) *Node {
	depth := func(n *Node) int {
		d := 0
		for p := n.parent; p != nil; p = p.parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.parent
		da--
	}
	for db > da {
		b = b.parent
		db--
	}
	for a != b {
		a = a.parent
		b = b.parent
	}
	return a
}

// chainTop checks that the path from lca down to end is a straight-line
// chain (each intermediate node has exactly one child and no other role) and
// returns the chain's top node (the child of lca on that path).
func (q *Query) chainTop(lca, end *Node) (*Node, bool) {
	if end == lca {
		return nil, false
	}
	// Walk up from end to lca, checking single-child shape.
	cur := end
	for cur.parent != lca {
		cur = cur.parent
		if cur == nil {
			return nil, false
		}
		if len(cur.Children) != 1 || cur.Pred.Op != NoPred || cur.Output {
			return nil, false
		}
	}
	if end != cur && len(end.Children) != 0 {
		return nil, false
	}
	if end.Output {
		return nil, false
	}
	return cur, true
}

func (q *Query) chainTopMust(lca, end *Node) *Node {
	top, ok := q.chainTop(lca, end)
	if !ok {
		panic("twig: order chain vanished between analysis and rendering")
	}
	return top
}

// ToXQuery renders the twig as an equivalent XQuery FLWOR expression — the
// query LotusX would show users so they never have to write it themselves.
func (q *Query) ToXQuery() string {
	if len(q.nodes) == 0 {
		tmp := *q
		if err := tmp.Normalize(); err != nil {
			return fmt.Sprintf("(: invalid twig: %v :)", err)
		}
		return tmp.ToXQuery()
	}
	var b strings.Builder
	b.WriteString("for $v0 in doc()")
	b.WriteString(q.Root.Axis.String())
	b.WriteString(q.Root.Tag)
	b.WriteString("\n")
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "for $v%d in $v%d%s%s\n", c.ID, n.ID, c.Axis.String(), c.Tag)
			walk(c)
		}
	}
	walk(q.Root)
	var conds []string
	for _, n := range q.nodes {
		switch n.Pred.Op {
		case Eq:
			conds = append(conds, fmt.Sprintf("lower-case(string($v%d)) = %s", n.ID, quote(strings.ToLower(n.Pred.Value))))
		case Contains:
			conds = append(conds, fmt.Sprintf("contains(lower-case(string($v%d)), %s)", n.ID, quote(strings.ToLower(n.Pred.Value))))
		}
	}
	for _, oc := range q.Order {
		conds = append(conds, fmt.Sprintf("$v%d << $v%d", oc.Before, oc.After))
	}
	if len(conds) > 0 {
		b.WriteString("where ")
		b.WriteString(strings.Join(conds, "\n  and "))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "return $v%d", q.OutputNode().ID)
	return b.String()
}
