package twig

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse builds a normalized Query from the XPath subset LotusX understands:
//
//	query    = axis step { axis step }
//	axis     = "/" | "//"
//	step     = (name | "@" name | "*") { "[" pred "]" }
//	pred     = "." cmp                      value predicate on the step itself
//	         | relpath [ cmp ]              existential / value branch
//	         | relpath "<<" relpath         order constraint (adds branches)
//	cmp      = ("=" | "contains") string
//	relpath  = [".//" | "./"] step { axis step }   leading axis defaults to /
//	string   = '"' chars '"'  |  "'" chars "'"
//
// Examples:
//
//	//article[author = "Jiaheng Lu"]/title
//	/dblp/book[.//author contains "ling"][year]
//	//S[NP << VP]
//
// The last step of the main path is the output node.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for tests, examples and literals known to be valid.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic("twig: MustParse(" + input + "): " + err.Error())
	}
	return q
}

type parser struct {
	src string
	pos int
}

// ParseError reports where in the query text parsing failed.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("twig: parse error at offset %d: %s", e.Pos, e.Msg)
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) eof() bool {
	p.skipSpace()
	return p.pos >= len(p.src)
}

func (p *parser) peekByte() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// accept consumes lit if the input starts with it.
func (p *parser) accept(lit string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

// acceptAxis consumes "//" or "/" and returns the axis.
func (p *parser) acceptAxis() (Axis, bool) {
	if p.accept("//") {
		return Descendant, true
	}
	if p.accept("/") {
		return Child, true
	}
	return Child, false
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9') || c >= 0x80
}

// parseName consumes a tag name, "@name" or "*".
func (p *parser) parseName() (string, error) {
	p.skipSpace()
	if p.accept("*") {
		return Wildcard, nil
	}
	start := p.pos
	if p.peekByte() == '@' {
		p.pos++
	}
	nameStart := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		// Names must not start with '-', '.' or a digit.
		if p.pos == nameStart {
			c := rune(p.src[p.pos])
			if c == '-' || c == '.' || unicode.IsDigit(c) {
				break
			}
		}
		p.pos++
	}
	if p.pos == nameStart {
		p.pos = start
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseString() (string, error) {
	p.skipSpace()
	q := p.peekByte()
	if q != '"' && q != '\'' {
		return "", p.errf("expected a quoted string")
	}
	p.pos++
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		p.pos++
		switch c {
		case q:
			return b.String(), nil
		case '\\':
			if p.pos < len(p.src) {
				b.WriteByte(p.src[p.pos])
				p.pos++
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", p.errf("unterminated string")
}

// parseCmp parses "= string" or "contains string"; ok is false when the
// input holds neither.
func (p *parser) parseCmp() (Pred, bool, error) {
	if p.accept("=") {
		v, err := p.parseString()
		if err != nil {
			return Pred{}, false, err
		}
		return Pred{Op: Eq, Value: v}, true, nil
	}
	save := p.pos
	if p.accept("contains") {
		// Require a string next so a tag literally named "contains" still
		// parses as a name elsewhere.
		p.skipSpace()
		if p.peekByte() == '"' || p.peekByte() == '\'' {
			v, err := p.parseString()
			if err != nil {
				return Pred{}, false, err
			}
			return Pred{Op: Contains, Value: v}, true, nil
		}
		p.pos = save
	}
	return Pred{}, false, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	axis, ok := p.acceptAxis()
	if !ok {
		return nil, p.errf("query must start with / or //")
	}
	root, err := p.parseStep(q, axis)
	if err != nil {
		return nil, err
	}
	q.Root = root
	cur := root
	for {
		if p.eof() {
			break
		}
		axis, ok := p.acceptAxis()
		if !ok {
			return nil, p.errf("expected /, // or end of query")
		}
		next, err := p.parseStep(q, axis)
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	cur.Output = true
	return q, nil
}

// parseStep parses a name plus its predicates and returns the node.
func (p *parser) parseStep(q *Query, axis Axis) (*Node, error) {
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	n := &Node{Tag: name, Axis: axis}
	for p.accept("[") {
		if err := p.parsePred(q, n); err != nil {
			return nil, err
		}
		if !p.accept("]") {
			return nil, p.errf("expected ]")
		}
	}
	return n, nil
}

// parsePred parses one predicate body and attaches its effect to n.
func (p *parser) parsePred(q *Query, n *Node) error {
	p.skipSpace()
	// Self predicate: [. = "v"] / [. contains "v"].
	if p.peekByte() == '.' && !strings.HasPrefix(p.src[p.pos:], ".//") && !strings.HasPrefix(p.src[p.pos:], "./") {
		p.pos++
		pred, ok, err := p.parseCmp()
		if err != nil {
			return err
		}
		if !ok {
			return p.errf(`expected = or contains after "."`)
		}
		if n.Pred.Op != NoPred {
			return p.errf("node %q already has a value predicate", n.Tag)
		}
		n.Pred = pred
		return nil
	}
	first, err := p.parseRelPath(q, n)
	if err != nil {
		return err
	}
	// Optional comparison on the branch tail.
	pred, ok, err := p.parseCmp()
	if err != nil {
		return err
	}
	if ok {
		if first.tail.Pred.Op != NoPred {
			return p.errf("branch tail already has a predicate")
		}
		first.tail.Pred = pred
	}
	// Order constraint; either side may carry a comparison, e.g.
	// [a = "v" << b].
	if p.accept("<<") {
		second, err := p.parseRelPath(q, n)
		if err != nil {
			return err
		}
		pred2, ok2, err := p.parseCmp()
		if err != nil {
			return err
		}
		if ok2 {
			if second.tail.Pred.Op != NoPred {
				return p.errf("branch tail already has a predicate")
			}
			second.tail.Pred = pred2
		}
		// Node IDs do not exist until Normalize runs; record the endpoints
		// and let Normalize translate them into OrderConstraints.
		q.pending = append(q.pending, [2]*Node{first.tail, second.tail})
	}
	return nil
}

type relPath struct {
	head *Node // first node of the branch (already attached to its parent)
	tail *Node // last node of the branch
}

// parseRelPath parses a branch path and attaches it under parent.
func (p *parser) parseRelPath(q *Query, parent *Node) (relPath, error) {
	axis := Child
	if p.accept(".//") {
		axis = Descendant
	} else if p.accept("./") {
		axis = Child
	} else if a, ok := p.acceptAxis(); ok {
		// Tolerate a leading / or // inside predicates too.
		axis = a
	}
	head, err := p.parseStep(q, axis)
	if err != nil {
		return relPath{}, err
	}
	parent.Children = append(parent.Children, head)
	cur := head
	for {
		a, ok := p.acceptAxis()
		if !ok {
			break
		}
		next, err := p.parseStep(q, a)
		if err != nil {
			return relPath{}, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	return relPath{head: head, tail: cur}, nil
}
