package twig_test

import (
	"fmt"

	"lotusx/internal/twig"
)

func ExampleParse() {
	q, err := twig.Parse(`//article[author = "Jiaheng Lu"][year]/title`)
	if err != nil {
		panic(err)
	}
	for _, n := range q.Nodes() {
		mark := ""
		if n.Output {
			mark = "  <- output"
		}
		fmt.Printf("%d: %s%s%s\n", n.ID, n.Axis, n.Tag, mark)
	}
	// Output:
	// 0: //article
	// 1: /author
	// 2: /year
	// 3: /title  <- output
}

func ExampleQuery_Minimize() {
	// A user asked for [author] and later refined to [author = "lu"]; the
	// weaker branch is implied by the stronger one.
	q := twig.MustParse(`//article[author][author = "lu"]/title`)
	fmt.Println("before:", q)
	fmt.Println("after: ", q.Minimize())
	// Output:
	// before: //article[author][author = "lu"]/title
	// after:  //article[author = "lu"]/title
}

func ExampleQuery_String_order() {
	q := twig.MustParse(`//S[NP << VP]`)
	fmt.Println(q)
	fmt.Println("constraints:", len(q.Order))
	// Output:
	// //S[NP << VP]
	// constraints: 1
}
