package twig

import (
	"strings"
	"testing"
)

func TestParseSimplePath(t *testing.T) {
	q := MustParse("//article/title")
	if q.Root.Tag != "article" || q.Root.Axis != Descendant {
		t.Fatalf("root = %+v", q.Root)
	}
	if len(q.Root.Children) != 1 {
		t.Fatalf("children = %d", len(q.Root.Children))
	}
	title := q.Root.Children[0]
	if title.Tag != "title" || title.Axis != Child || !title.Output {
		t.Fatalf("title = %+v", title)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.OutputNode() != title {
		t.Fatal("output node should be title")
	}
}

func TestParseRootedPath(t *testing.T) {
	q := MustParse("/dblp//author")
	if q.Root.Axis != Child {
		t.Fatal("rooted query should have Child axis on root")
	}
	if q.Root.Children[0].Axis != Descendant {
		t.Fatal("author should be descendant")
	}
}

func TestParsePredicates(t *testing.T) {
	q := MustParse(`//article[author = "Jiaheng Lu"][year]/title`)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	var author, year *Node
	for _, n := range q.Nodes() {
		switch n.Tag {
		case "author":
			author = n
		case "year":
			year = n
		}
	}
	if author == nil || author.Pred.Op != Eq || author.Pred.Value != "Jiaheng Lu" {
		t.Fatalf("author = %+v", author)
	}
	if year == nil || year.Pred.Op != NoPred {
		t.Fatalf("year = %+v", year)
	}
	if q.OutputNode().Tag != "title" {
		t.Fatal("output should be title")
	}
	if !q.HasPredicates() {
		t.Fatal("HasPredicates should be true")
	}
}

func TestParseSelfPredicate(t *testing.T) {
	q := MustParse(`//title[. contains "xml"]`)
	if q.Root.Pred.Op != Contains || q.Root.Pred.Value != "xml" {
		t.Fatalf("root pred = %+v", q.Root.Pred)
	}
}

func TestParseNestedBranch(t *testing.T) {
	q := MustParse(`//book[.//author/name = "Ling"]/title`)
	var name *Node
	for _, n := range q.Nodes() {
		if n.Tag == "name" {
			name = n
		}
	}
	if name == nil || name.Pred.Value != "Ling" {
		t.Fatalf("name = %+v", name)
	}
	author := name.Parent()
	if author.Tag != "author" || author.Axis != Descendant {
		t.Fatalf("author = %+v", author)
	}
	if author.Parent().Tag != "book" {
		t.Fatal("author parent should be book")
	}
}

func TestParseAttribute(t *testing.T) {
	q := MustParse(`//article[@key = "a1"]`)
	key := q.Root.Children[0]
	if key.Tag != "@key" || key.Pred.Value != "a1" {
		t.Fatalf("key = %+v", key)
	}
}

func TestParseWildcard(t *testing.T) {
	q := MustParse(`//*[title]`)
	if !q.Root.IsWildcard() {
		t.Fatal("root should be wildcard")
	}
}

func TestParseOrderConstraint(t *testing.T) {
	q := MustParse(`//S[NP << VP]`)
	if len(q.Order) != 1 {
		t.Fatalf("order constraints = %d", len(q.Order))
	}
	oc := q.Order[0]
	if q.Node(oc.Before).Tag != "NP" || q.Node(oc.After).Tag != "VP" {
		t.Fatalf("order endpoints = %q %q", q.Node(oc.Before).Tag, q.Node(oc.After).Tag)
	}
	// Both branches exist structurally too.
	if len(q.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(q.Root.Children))
	}
}

func TestParseOrderWithPaths(t *testing.T) {
	q := MustParse(`//entry[a/b << .//c]`)
	oc := q.Order[0]
	if q.Node(oc.Before).Tag != "b" || q.Node(oc.After).Tag != "c" {
		t.Fatalf("endpoints %q %q", q.Node(oc.Before).Tag, q.Node(oc.After).Tag)
	}
	if q.Node(oc.After).Axis != Descendant {
		t.Fatal("c should be descendant axis")
	}
}

func TestParseSingleQuotes(t *testing.T) {
	q := MustParse(`//a[b = 'x y']`)
	if q.Root.Children[0].Pred.Value != "x y" {
		t.Fatal("single-quoted value mishandled")
	}
}

func TestParseEscapedQuote(t *testing.T) {
	q := MustParse(`//a[b = "say \"hi\""]`)
	if q.Root.Children[0].Pred.Value != `say "hi"` {
		t.Fatalf("value = %q", q.Root.Children[0].Pred.Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                      // no leading axis
		"article",               // no leading axis
		"//",                    // missing name
		"//a[",                  // unterminated predicate
		"//a[b",                 // missing ]
		`//a[b = ]`,             // missing string
		`//a[b = "x`,            // unterminated string
		`//a[. ]`,               // self pred without cmp
		"//a/",                  // trailing axis
		`//a[. = "x"][. = "y"]`, // duplicate self predicate
		`//a[b = ""]`,           // empty predicate value
		"//a[123]",              // name cannot start with digit
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorType(t *testing.T) {
	_, err := Parse("//a[")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos <= 0 || !strings.Contains(pe.Error(), "offset") {
		t.Errorf("unhelpful error: %v", pe)
	}
}

func TestNormalizeValidation(t *testing.T) {
	q := NewQuery("a")
	q.Root.AddChild("", Child)
	if err := q.Normalize(); err == nil {
		t.Error("empty tag should fail")
	}

	q = NewQuery("a")
	q.Root.Output = true
	q.Root.AddChild("b", Child).Output = true
	if err := q.Normalize(); err == nil {
		t.Error("two output nodes should fail")
	}

	q = NewQuery("a")
	q.Order = []OrderConstraint{{Before: 0, After: 5}}
	if err := q.Normalize(); err == nil {
		t.Error("out-of-range order constraint should fail")
	}

	q = NewQuery("a")
	q.Order = []OrderConstraint{{Before: 0, After: 0}}
	if err := q.Normalize(); err == nil {
		t.Error("self order constraint should fail")
	}

	q = &Query{}
	if err := q.Normalize(); err == nil {
		t.Error("nil root should fail")
	}
}

func TestDefaultOutputIsRoot(t *testing.T) {
	q := NewQuery("a")
	q.Root.AddChild("b", Child)
	if err := q.Normalize(); err != nil {
		t.Fatal(err)
	}
	if q.OutputNode() != q.Root {
		t.Fatal("default output should be root")
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		`//article/title`,
		`/dblp//author`,
		`//article[author = "Jiaheng Lu"][year]/title`,
		`//book[.//author/name contains "ling"]`,
		`//title[. = "xml"]`,
		`//S[NP << VP]`,
		`//a[@key = "k1"]/b/c`,
		`//*[b]`,
	}
	for _, src := range cases {
		q := MustParse(src)
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-parse of %q (from %q) failed: %v", rendered, src, err)
			continue
		}
		if !equalQueries(q, q2) {
			t.Errorf("round trip changed query: %q -> %q", src, rendered)
		}
	}
}

// equalQueries compares structure, tags, axes, predicates, output marks and
// order constraints.
func equalQueries(a, b *Query) bool {
	if a.Len() != b.Len() || len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Nodes() {
		x, y := a.Node(i), b.Node(i)
		if x.Tag != y.Tag || x.Axis != y.Axis || x.Pred != y.Pred ||
			x.Output != y.Output || len(x.Children) != len(y.Children) {
			return false
		}
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	return true
}

func TestClone(t *testing.T) {
	q := MustParse(`//article[author = "x"]/title`)
	c := q.Clone()
	if !equalQueries(q, c) {
		t.Fatal("clone differs")
	}
	c.Root.Children[0].Pred.Value = "changed"
	if q.Root.Children[0].Pred.Value != "x" {
		t.Fatal("clone shares nodes with original")
	}
}

func TestCloneKeepsOrder(t *testing.T) {
	q := MustParse(`//S[NP << VP]`)
	c := q.Clone()
	if len(c.Order) != 1 || c.Order[0] != q.Order[0] {
		t.Fatal("clone lost order constraints")
	}
}

func TestLeaves(t *testing.T) {
	q := MustParse(`//a[b][c/d]/e`)
	var tags []string
	for _, l := range q.Leaves() {
		tags = append(tags, l.Tag)
	}
	if strings.Join(tags, " ") != "b d e" {
		t.Fatalf("leaves = %v", tags)
	}
}

func TestToXQuery(t *testing.T) {
	q := MustParse(`//article[author = "Lu"]/title`)
	xq := q.ToXQuery()
	for _, want := range []string{"for $v0 in doc()//article", "where", `= "lu"`, "return $v"} {
		if !strings.Contains(xq, want) {
			t.Errorf("XQuery %q missing %q", xq, want)
		}
	}
	q2 := MustParse(`//S[NP << VP]`)
	if !strings.Contains(q2.ToXQuery(), "<<") {
		t.Error("order constraint missing from XQuery")
	}
}

func TestStringOnUnnormalized(t *testing.T) {
	q := NewQuery("a")
	q.Root.AddChild("b", Descendant)
	s := q.String()
	if s != "//a[.//b]" && s != "//a" { // root is default output after temp normalize
		// The unnormalized render normalizes a copy; output = root, so b is
		// a predicate branch.
		t.Fatalf("String = %q", s)
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Fatal("axis rendering wrong")
	}
}

func TestStringOrderChainRendering(t *testing.T) {
	// Straight-line chains render back as [a << b].
	q := MustParse(`//s[a/b << c]`)
	s := q.String()
	if !strings.Contains(s, "<<") {
		t.Fatalf("chain order not rendered: %q", s)
	}
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if !equalQueries(q, q2) {
		t.Fatalf("order chain round trip changed query: %q", s)
	}
}

func TestStringOrderNonChainFallback(t *testing.T) {
	// An endpoint with its own children is not a chain: String falls back
	// to the non-parseable {order} annotation rather than duplicating
	// branches.
	q := MustParse(`//s[a][b]`)
	q.Order = append(q.Order, OrderConstraint{Before: 1, After: 2})
	if err := q.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Give endpoint a a child so the chain test fails on output/extra kids.
	q.Node(1).AddChild("x", Child)
	if err := q.Normalize(); err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "{order #") {
		t.Fatalf("expected fallback annotation in %q", s)
	}
}

func TestStringOrderEndpointIsOutput(t *testing.T) {
	// The output node cannot be folded into a << chain (it would lose its
	// role); expect the fallback annotation.
	q := MustParse(`//s[a][b]`)
	q.Node(2).Output = true
	q.Root.Output = false
	q.Order = []OrderConstraint{{Before: 1, After: 2}}
	if err := q.Normalize(); err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if !strings.Contains(s, "{order") {
		t.Fatalf("expected fallback for output endpoint: %q", s)
	}
}

func TestStringOrderWithPredicatedEndpoint(t *testing.T) {
	q := MustParse(`//s[a = "v" << b]`)
	s := q.String()
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if !equalQueries(q, q2) {
		t.Fatalf("predicated order endpoint round trip changed: %q", s)
	}
}
