// Package twig defines LotusX's query model: the twig pattern.  A twig is a
// small labeled tree; every node names a tag (or the wildcard *), every edge
// is a child (/) or descendant (//) axis, nodes may carry a value predicate,
// exactly one node is the output node, and order-sensitive queries add
// document-order constraints between node pairs.  The GUI builds twigs
// node by node; programmatic users either use the Builder API or parse the
// XPath subset in parse.go.
package twig

import (
	"fmt"
	"strings"
)

// Axis is the edge type between a query node and its parent.
type Axis uint8

const (
	// Child is the / axis: the matched node must be a child of the parent's
	// match.
	Child Axis = iota
	// Descendant is the // axis: the matched node must be a proper
	// descendant of the parent's match.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// PredOp is a value-predicate operator.
type PredOp uint8

const (
	// NoPred means the node has no value predicate.
	NoPred PredOp = iota
	// Eq requires the node's whole value to equal the operand
	// (case-insensitively).
	Eq
	// Contains requires the node's value to contain every token of the
	// operand (tokens are letter/digit runs, lowercased — see
	// index.Tokenize).  An operand with no indexable tokens matches
	// nothing.
	Contains
)

// Pred is a value predicate attached to a query node.
type Pred struct {
	Op    PredOp
	Value string
}

// Wildcard is the tag that matches any element.
const Wildcard = "*"

// Node is one node of a twig pattern.
type Node struct {
	// Tag is the element or attribute name this node matches, or Wildcard.
	// Attribute nodes use the "@name" convention.
	Tag string
	// Axis relates this node to its parent; for the root it relates the
	// node to the (virtual) document root: Child means the node must be the
	// document's root element, Descendant means it may occur anywhere.
	Axis Axis
	// Pred is this node's value predicate, if any.
	Pred Pred
	// Output marks the node whose matches the query returns.
	Output bool
	// Children in left-to-right order.
	Children []*Node

	// ID is the node's preorder index, assigned by Query.Normalize.
	ID int
	// parent is set by Normalize.
	parent *Node
}

// AddChild appends a child with the given tag and axis and returns it.
func (n *Node) AddChild(tag string, axis Axis) *Node {
	c := &Node{Tag: tag, Axis: axis}
	n.Children = append(n.Children, c)
	return c
}

// Parent returns the node's parent (nil for the root).  Valid after
// Normalize.
func (n *Node) Parent() *Node { return n.parent }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsWildcard reports whether the node matches any tag.
func (n *Node) IsWildcard() bool { return n.Tag == Wildcard }

// OrderConstraint requires the match of node Before to precede the match of
// node After in document order (with disjoint subtrees, XQuery's <<).
// Node references are by ID.
type OrderConstraint struct {
	Before int
	After  int
}

// Query is a complete twig pattern.
type Query struct {
	Root  *Node
	Order []OrderConstraint

	nodes   []*Node    // preorder; built by Normalize
	pending [][2]*Node // order endpoints awaiting IDs; drained by Normalize
}

// NewQuery returns a query with a fresh root node.  The root's axis defaults
// to Descendant (occur anywhere), matching how users start a search.
func NewQuery(rootTag string) *Query {
	return &Query{Root: &Node{Tag: rootTag, Axis: Descendant}}
}

// Normalize assigns preorder IDs, wires parent pointers, chooses a default
// output node (the root) when none is marked, and validates the pattern.
// It must be called (directly or via Parse) before evaluation.
func (q *Query) Normalize() error {
	q.nodes = q.nodes[:0]
	var outputs int
	var walk func(n *Node, parent *Node) error
	walk = func(n *Node, parent *Node) error {
		if n.Tag == "" {
			return fmt.Errorf("twig: node with empty tag")
		}
		if strings.ContainsAny(n.Tag, "/[]=<>\" '") {
			return fmt.Errorf("twig: invalid tag %q", n.Tag)
		}
		if n.Pred.Op != NoPred && strings.TrimSpace(n.Pred.Value) == "" {
			return fmt.Errorf("twig: empty predicate value on %q", n.Tag)
		}
		n.ID = len(q.nodes)
		n.parent = parent
		q.nodes = append(q.nodes, n)
		if n.Output {
			outputs++
		}
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	if q.Root == nil {
		return fmt.Errorf("twig: query has no root")
	}
	if err := walk(q.Root, nil); err != nil {
		return err
	}
	if outputs > 1 {
		return fmt.Errorf("twig: %d output nodes, want at most 1", outputs)
	}
	if outputs == 0 {
		q.Root.Output = true
	}
	for _, pr := range q.pending {
		q.Order = append(q.Order, OrderConstraint{Before: pr[0].ID, After: pr[1].ID})
	}
	q.pending = nil
	for _, oc := range q.Order {
		if oc.Before < 0 || oc.Before >= len(q.nodes) ||
			oc.After < 0 || oc.After >= len(q.nodes) {
			return fmt.Errorf("twig: order constraint references unknown node")
		}
		if oc.Before == oc.After {
			return fmt.Errorf("twig: order constraint on a single node")
		}
	}
	return nil
}

// Nodes returns the query's nodes in preorder.  Valid after Normalize.
func (q *Query) Nodes() []*Node { return q.nodes }

// Node returns the query node with the given ID.  Valid after Normalize.
func (q *Query) Node(id int) *Node { return q.nodes[id] }

// OutputNode returns the output node.  Valid after Normalize.
func (q *Query) OutputNode() *Node {
	for _, n := range q.nodes {
		if n.Output {
			return n
		}
	}
	return q.Root
}

// Len returns the number of query nodes.  Valid after Normalize.
func (q *Query) Len() int { return len(q.nodes) }

// Leaves returns the leaf nodes in preorder.  Valid after Normalize.
func (q *Query) Leaves() []*Node {
	var out []*Node
	for _, n := range q.nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// Clone returns a deep copy of the query, normalized.
func (q *Query) Clone() *Query {
	var copyNode func(n *Node) *Node
	copyNode = func(n *Node) *Node {
		c := &Node{Tag: n.Tag, Axis: n.Axis, Pred: n.Pred, Output: n.Output}
		for _, ch := range n.Children {
			c.Children = append(c.Children, copyNode(ch))
		}
		return c
	}
	nq := &Query{Root: copyNode(q.Root)}
	nq.Order = append(nq.Order, q.Order...)
	if err := nq.Normalize(); err != nil {
		// The source was normalized; a copy cannot fail.
		panic("twig: Clone failed to normalize: " + err.Error())
	}
	return nq
}

// HasPredicates reports whether any node carries a value predicate.
func (q *Query) HasPredicates() bool {
	for _, n := range q.nodes {
		if n.Pred.Op != NoPred {
			return true
		}
	}
	return false
}
