package bench

import (
	"fmt"
	"time"

	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// E1IndexBuild reproduces the feasibility claim: LotusX ingests hierarchical
// XML into interactive-search indexes at acceptable cost.
func (r *Runner) E1IndexBuild() error {
	r.header("E1", "index construction cost per dataset")
	tw := r.table()
	fmt.Fprintln(tw, "dataset\tXML KB\tnodes\ttags\tguide paths\tparse ms\tindex ms\tguide ms")
	for _, kind := range kinds() {
		bs := r.buildStats[kind]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			kind, bs.xmlBytes/1024, bs.nodes, bs.tags, bs.guidePaths,
			ms(bs.parse), ms(bs.indexBuild), ms(bs.guideBuild))
	}
	return tw.Flush()
}

// E2TwigAlgorithms reproduces the efficient-evaluation claim: the holistic
// join dominates the decomposed baselines across the workload.
func (r *Runner) E2TwigAlgorithms() error {
	r.header("E2", "twig algorithms: evaluation time per query (ms)")
	tw := r.table()
	head := "query\tdataset\tmatches"
	for _, alg := range join.Algorithms {
		head += "\t" + string(alg)
	}
	fmt.Fprintln(tw, head)
	for _, q := range Workload() {
		parsed := mustParse(q.Text)
		row := fmt.Sprintf("%s\t%s", q.ID, q.Kind)
		matches := -1
		for _, alg := range join.Algorithms {
			elapsed, res, err := r.timeJoin(q, parsed, alg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", q.ID, alg, err)
			}
			if matches == -1 {
				matches = len(res.Matches)
				row += fmt.Sprintf("\t%d", matches)
			} else if len(res.Matches) != matches {
				return fmt.Errorf("%s: %s returned %d matches, oracle %d",
					q.ID, alg, len(res.Matches), matches)
			}
			row += "\t" + ms(elapsed)
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}

func (r *Runner) timeJoin(q Query, parsed *twig.Query, alg join.Algorithm) (time.Duration, *join.Result, error) {
	ix := r.engines[q.Kind].Index()
	start := time.Now()
	res, err := join.Run(ix, parsed, alg, join.Options{})
	return time.Since(start), res, err
}

// E3Intermediate reproduces TwigStack's headline property: far fewer
// useless intermediate path solutions than per-path evaluation.
func (r *Runner) E3Intermediate() error {
	r.header("E3", "intermediate path solutions: PathStack vs TwigStack vs TJFast")
	tw := r.table()
	fmt.Fprintln(tw, "query\tdataset\tmatches\tpathstack sols\ttwigstack sols\ttjfast sols\tps/ts ratio")
	for _, q := range Workload() {
		parsed := mustParse(q.Text)
		_, ps, err := r.timeJoin(q, parsed, join.PathStack)
		if err != nil {
			return err
		}
		_, ts, err := r.timeJoin(q, parsed, join.TwigStack)
		if err != nil {
			return err
		}
		_, tj, err := r.timeJoin(q, parsed, join.TJFast)
		if err != nil {
			return err
		}
		ratio := "-"
		if ts.Stats.PathSolutions > 0 {
			ratio = fmt.Sprintf("%.2f", float64(ps.Stats.PathSolutions)/float64(ts.Stats.PathSolutions))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			q.ID, q.Kind, len(ts.Matches),
			ps.Stats.PathSolutions, ts.Stats.PathSolutions, tj.Stats.PathSolutions, ratio)
	}
	return tw.Flush()
}

// E4ParentChild reproduces the complex-twig claim on parent-child-dominated
// queries: plain TwigStack pushes every ancestor-descendant candidate and
// filters P-C during expansion, while the look-ahead variant
// (twigstack-la, our TwigStackList rendition) prunes before pushing.
func (r *Runner) E4ParentChild() error {
	r.header("E4", "parent-child-heavy queries: TwigStack vs look-ahead pruning")
	tw := r.table()
	fmt.Fprintln(tw, "query\tdataset\tmatches\tpushed\tpushed (LA)\tms\tms (LA)")
	for _, q := range Workload() {
		if !q.PCHeavy {
			continue
		}
		parsed := mustParse(q.Text)
		elapsed, ts, err := r.timeJoin(q, parsed, join.TwigStack)
		if err != nil {
			return err
		}
		elapsedLA, la, err := r.timeJoin(q, parsed, join.TwigStackLA)
		if err != nil {
			return err
		}
		if len(la.Matches) != len(ts.Matches) {
			return fmt.Errorf("E4 %s: la %d matches vs %d", q.ID, len(la.Matches), len(ts.Matches))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\t%s\n",
			q.ID, q.Kind, len(ts.Matches),
			ts.Stats.ElementsPushed, la.Stats.ElementsPushed,
			ms(elapsed), ms(elapsedLA))
	}
	return tw.Flush()
}

// E8Ordered reproduces the order-sensitive-query claim: `a << b`
// constraints are honoured at modest overhead over the unordered twig.
func (r *Runner) E8Ordered() error {
	r.header("E8", "order-sensitive queries: overhead of << constraints")
	tw := r.table()
	fmt.Fprintln(tw, "query\tdataset\tordered matches\tunordered matches\tordered ms\tunordered ms\toverhead")
	for _, q := range Workload() {
		if !q.Ordered {
			continue
		}
		ordered := mustParse(q.Text)
		unordered := ordered.Clone()
		unordered.Order = nil
		if err := unordered.Normalize(); err != nil {
			return err
		}
		elOrd, resOrd, err := r.timeJoin(q, ordered, join.TwigStack)
		if err != nil {
			return err
		}
		elUn, resUn, err := r.timeJoin(q, unordered, join.TwigStack)
		if err != nil {
			return err
		}
		overhead := "-"
		if elUn > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(elOrd)/float64(elUn))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\n",
			q.ID, q.Kind, len(resOrd.Matches), len(resUn.Matches),
			ms(elOrd), ms(elUn), overhead)
	}
	return tw.Flush()
}
