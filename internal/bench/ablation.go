package bench

import (
	"fmt"
	"strings"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/rewrite"
	"lotusx/internal/twig"
)

// A1Pushdown ablates the value-predicate pushdown design decision: the
// engine materializes predicate-filtered streams below the joins; the
// ablated variant evaluates the structure-only twig and post-filters
// matches.  DESIGN.md §4 calls the pushdown out; this quantifies it.
func (r *Runner) A1Pushdown() error {
	r.header("A1", "ablation: value-predicate pushdown vs post-filtering")
	queries := []Query{
		{ID: "Q3", Kind: dataset.DBLP, Text: `//article[author = "wei lu"]/title`},
		{ID: "Q5", Kind: dataset.XMark, Text: `//item[description//text contains "vintage"]/name`},
		{ID: "QA", Kind: dataset.DBLP, Text: `//inproceedings[title contains "xml"][year]`},
	}
	tw := r.table()
	fmt.Fprintln(tw, "query\tmatches\tpushdown ms\tpost-filter ms\tspeedup\tpost-filter candidates")
	for _, q := range queries {
		parsed := mustParse(q.Text)
		ix := r.engines[q.Kind].Index()

		start := time.Now()
		pushed, err := join.Run(ix, parsed, join.TwigStack, join.Options{})
		if err != nil {
			return err
		}
		pushedTime := time.Since(start)

		// Ablation: strip predicates, evaluate, post-filter.
		stripped := parsed.Clone()
		for _, n := range stripped.Nodes() {
			n.Pred = twig.Pred{}
		}
		if err := stripped.Normalize(); err != nil {
			return err
		}
		start = time.Now()
		raw, err := join.Run(ix, stripped, join.TwigStack, join.Options{})
		if err != nil {
			return err
		}
		kept := postFilter(ix.Document(), parsed, raw.Matches)
		postTime := time.Since(start)

		if len(kept) != len(pushed.Matches) {
			return fmt.Errorf("A1 %s: post-filter %d != pushdown %d", q.ID, len(kept), len(pushed.Matches))
		}
		speedup := "-"
		if pushedTime > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(postTime)/float64(pushedTime))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%d\n",
			q.ID, len(pushed.Matches), ms(pushedTime), ms(postTime), speedup, len(raw.Matches))
	}
	return tw.Flush()
}

// postFilter applies q's value predicates to structure-only matches.
func postFilter(d *doc.Document, q *twig.Query, matches []join.Match) []join.Match {
	var kept []join.Match
	for _, m := range matches {
		ok := true
		for _, qn := range q.Nodes() {
			switch qn.Pred.Op {
			case twig.Eq:
				if !strings.EqualFold(strings.TrimSpace(d.Value(m[qn.ID])), strings.TrimSpace(qn.Pred.Value)) {
					ok = false
				}
			case twig.Contains:
				if !containsAllTokens(d.Value(m[qn.ID]), qn.Pred.Value) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			kept = append(kept, m)
		}
	}
	return kept
}

func containsAllTokens(value, query string) bool {
	have := make(map[string]struct{})
	for _, tok := range tokenizeLower(value) {
		have[tok] = struct{}{}
	}
	for _, tok := range tokenizeLower(query) {
		if _, ok := have[tok]; !ok {
			return false
		}
	}
	return true
}

func tokenizeLower(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 0x80)
	})
}

// A2Minimization ablates tree pattern minimization on GUI-style redundant
// queries.
func (r *Runner) A2Minimization() error {
	r.header("A2", "ablation: tree pattern minimization of redundant twigs")
	queries := []Query{
		{ID: "R1", Kind: dataset.DBLP, Text: `//article[author][author]/title`},
		{ID: "R2", Kind: dataset.DBLP, Text: `//article[author][author = "wei lu"][year][year]/title`},
		{ID: "R3", Kind: dataset.TreeBank, Text: `//S[NP][.//NP][VP]`},
	}
	tw := r.table()
	fmt.Fprintln(tw, "query\tnodes\tminimized nodes\traw ms\tminimized ms\tanswers")
	for _, q := range queries {
		parsed := mustParse(q.Text)
		minimized := parsed.Minimize()
		ix := r.engines[q.Kind].Index()

		start := time.Now()
		raw, err := join.Run(ix, parsed, join.TwigStack, join.Options{})
		if err != nil {
			return err
		}
		rawTime := time.Since(start)
		start = time.Now()
		min, err := join.Run(ix, minimized, join.TwigStack, join.Options{})
		if err != nil {
			return err
		}
		minTime := time.Since(start)

		a := len(raw.OutputNodes(parsed))
		b := len(min.OutputNodes(minimized))
		if a != b {
			return fmt.Errorf("A2 %s: answers changed %d -> %d", q.ID, a, b)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\n",
			q.ID, parsed.Len(), minimized.Len(), ms(rawTime), ms(minTime), a)
	}
	return tw.Flush()
}

// A3PenaltyModel ablates the rewrite penalty model: the default
// rule-specific penalties against a uniform model, measured by how many
// rewrites are evaluated before the first answers appear.
func (r *Runner) A3PenaltyModel() error {
	r.header("A3", "ablation: rewrite penalty model (default vs uniform)")
	broken := []Query{
		{ID: "B1", Kind: dataset.DBLP, Text: `//article/autor`},
		{ID: "B2", Kind: dataset.DBLP, Text: `//article[yer]/title`},
		{ID: "B3", Kind: dataset.XMark, Text: `//open_auction/bider/increase`},
	}
	uniform := rewrite.Penalties{}
	for rule := range rewrite.DefaultPenalties() {
		uniform[rule] = 1.0
	}

	tw := r.table()
	fmt.Fprintln(tw, "query\tdefault: tried\tdefault: ms\tuniform: tried\tuniform: ms")
	for _, b := range broken {
		engine := r.engines[b.Kind]
		q := mustParse(b.Text)

		triedDef, elDef, err := r.rewriteUntilRecovery(engine, q, nil)
		if err != nil {
			return err
		}
		triedUni, elUni, err := r.rewriteUntilRecovery(engine, q, uniform)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n", b.ID, triedDef, ms(elDef), triedUni, ms(elUni))
	}
	return tw.Flush()
}

// rewriteUntilRecovery evaluates rewrites in penalty order (under the given
// penalty model; nil = default) until one yields answers, returning how many
// were tried.
func (r *Runner) rewriteUntilRecovery(engine *core.Engine, q *twig.Query, p rewrite.Penalties) (int, time.Duration, error) {
	rw := rewrite.New(engine.Index(), engine.Guide())
	if p != nil {
		rw.SetPenalties(p)
	}
	start := time.Now()
	tried := 0
	for _, cand := range rw.Enumerate(q, 3.0, 64) {
		tried++
		res, err := join.Run(engine.Index(), cand.Query, join.TwigStack, join.Options{MaxMatches: 1})
		if err != nil {
			return tried, time.Since(start), err
		}
		if len(res.Matches) > 0 {
			return tried, time.Since(start), nil
		}
	}
	return tried, time.Since(start), nil
}

// E11Scalability sweeps the dataset scale factor: index build and the
// heaviest workload queries must grow roughly linearly for the interactive
// claims to survive larger corpora.
func (r *Runner) E11Scalability() error {
	r.header("E11", "scalability: build and query cost vs dataset scale")
	tw := r.table()
	fmt.Fprintln(tw, "scale\tdblp nodes\tbuild ms\tQ2 ms\tQ9 ms\tcomplete µs")
	for _, scale := range []int{1, 2, 4} {
		d, err := dataset.Build(dataset.DBLP, scale, r.cfg.Seed)
		if err != nil {
			return err
		}
		start := time.Now()
		engine := core.FromDocument(d)
		buildTime := time.Since(start)

		q2 := mustParse(`//inproceedings[author][year]/title`)
		start = time.Now()
		if _, err := join.Run(engine.Index(), q2, join.TwigStack, join.Options{}); err != nil {
			return err
		}
		q2Time := time.Since(start)

		td, err := dataset.Build(dataset.TreeBank, scale, r.cfg.Seed)
		if err != nil {
			return err
		}
		tEngine := core.FromDocument(td)
		q9 := mustParse(`//S//NP//NN`)
		start = time.Now()
		if _, err := join.Run(tEngine.Index(), q9, join.TwigStack, join.Options{}); err != nil {
			return err
		}
		q9Time := time.Since(start)

		ctx := mustParse(`//inproceedings`)
		const reps = 200
		start = time.Now()
		for i := 0; i < reps; i++ {
			engine.Completer().SuggestTags(ctx, 0, twig.Child, "a", 10)
		}
		completeUS := float64(time.Since(start).Microseconds()) / reps

		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%.1f\n",
			scale, d.Len(), ms(buildTime), ms(q2Time), ms(q9Time), completeUS)
	}
	return tw.Flush()
}
