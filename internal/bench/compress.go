package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
)

// E19 workload: twigs over the generated high-repetition document, plus the
// XMark subset of the standard workload for the low-repetition side.
var compressQueries = []struct{ id, text string }{
	{"C1", `//article/title`},
	{"C2", `//article[author][year]/title`},
	{"C3", `//book[publisher]/author`},
	{"C4", `//dblp//author`},
}

// highRepXML generates a bibliography whose records cycle through six fixed
// templates — repeated subtrees by construction, the shape the DAG substrate
// dedups — with a sprinkle of unique records as residue (every 41st record
// carries a one-off key, like real data's long tail).
func highRepXML(scale int) string {
	records := []string{
		`<article key="a1"><author>Jiaheng Lu</author><author>Ting Chen</author><author>Wei Lu</author><title>Holistic Twig Joins</title><year>2005</year><pages>310</pages><publisher>VLDB</publisher><volume>31</volume><ee>db/vldb05</ee></article>`,
		`<article key="a2"><author>Chunbin Lin</author><author>Jiaheng Lu</author><title>LotusX Position Aware Search</title><year>2012</year><pages>1515</pages><publisher>ICDE</publisher><volume>28</volume><ee>db/icde12</ee></article>`,
		`<article key="a3"><author>Wei Lu</author><author>Tok Wang Ling</author><title>XML Keyword Search</title><year>2011</year><pages>88</pages><publisher>SIGMOD</publisher><volume>40</volume><ee>db/sigmod11</ee></article>`,
		`<book key="b1"><author>Tok Wang Ling</author><author>Ting Chen</author><title>XML Databases</title><year>2008</year><publisher>Springer</publisher><isbn>978</isbn><pages>420</pages></book>`,
		`<book key="b2"><author>Jiaheng Lu</author><author>Chunbin Lin</author><title>Twig Pattern Matching</title><year>2013</year><publisher>Springer</publisher><isbn>979</isbn><pages>365</pages></book>`,
		`<article key="a4"><author>Ting Chen</author><author>Jiaheng Lu</author><title>Ordered Twig Queries</title><year>2006</year><pages>204</pages><publisher>VLDB</publisher><volume>32</volume><ee>db/vldb06</ee></article>`,
	}
	var b strings.Builder
	b.WriteString("<dblp>")
	n := 1200 * scale
	for i := 0; i < n; i++ {
		if i%97 == 0 {
			fmt.Fprintf(&b, `<article key="u%d"><author>Author %d</author><title>One Off %d</title><year>19%02d</year></article>`,
				i, i, i, i%100)
			continue
		}
		b.WriteString(records[i%len(records)])
	}
	b.WriteString("</dblp>")
	return b.String()
}

// E19IndexCompression quantifies the DAG-compressed index substrate: on
// high-repetition data the index stores each distinct subtree shape once
// (target: >= 3x smaller resident substrate) and every join algorithm
// evaluates once per shape, expanding matches per occurrence; on
// low-repetition data the build heuristic falls back to the raw substrate,
// so query latency cannot regress.  Every query runs on both substrates
// under all six algorithms and the experiment fails on any divergence.
func (r *Runner) E19IndexCompression() error {
	r.header("E19", "DAG-compressed index: dedup repeated subtrees, join once per distinct shape")

	highDoc, err := doc.FromString("highrep", highRepXML(r.cfg.Scale))
	if err != nil {
		return err
	}
	lowDoc := r.Engine(dataset.XMark).Document()

	// --- Table 1: substrate size and build cost, raw vs compressed. ---
	type variant struct {
		name string
		d    *doc.Document
		raw  *index.Index
		comp *index.Index
	}
	variants := []*variant{
		{name: "high-repetition", d: highDoc},
		{name: "xmark (low-rep)", d: lowDoc},
	}
	tw := r.table()
	fmt.Fprintln(tw, "dataset\tnodes\tcompressed\tshapes\tinstances\traw KB\tresident KB\tratio\traw build ms\tcomp build ms")
	for _, v := range variants {
		start := time.Now()
		v.raw = index.Build(v.d)
		rawBuild := time.Since(start)
		start = time.Now()
		v.comp = index.BuildCompressed(v.d)
		compBuild := time.Since(start)

		st := v.comp.CompressionStats()
		rst := v.raw.CompressionStats()
		state := "no (fallback)"
		if st.Compressed {
			state = "yes"
		}
		ratio := float64(rst.ResidentBytes) / float64(st.ResidentBytes)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%.2f\t%s\t%s\n",
			v.name, st.Nodes, state, st.Shapes, st.Instances,
			rst.ResidentBytes/1024, st.ResidentBytes/1024, ratio,
			ms(rawBuild), ms(compBuild))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// The headline claims, enforced so a regression fails the bench: the
	// repetitive document must compress >= 3x, and XMark's long-tail values
	// must trip the fallback (a compressed substrate there would mean the
	// heuristic stopped protecting low-repetition data).
	high, low := variants[0], variants[1]
	if high.comp.Compressed() == nil {
		return fmt.Errorf("E19: high-repetition document did not compress")
	}
	if ratio := float64(high.raw.CompressionStats().ResidentBytes) / float64(high.comp.CompressionStats().ResidentBytes); ratio < 3 {
		return fmt.Errorf("E19: compression ratio %.2f on high-repetition data, want >= 3", ratio)
	}
	if low.comp.Compressed() != nil {
		return fmt.Errorf("E19: low-repetition XMark document unexpectedly compressed")
	}

	// --- Table 2: per-query equivalence and latency on both substrates. ---
	// "algs" counts the algorithms whose matches were verified byte-identical
	// between the substrates (all six, or the experiment errors).
	tw = r.table()
	fmt.Fprintln(tw, "query\tdataset\tmatches\talgs\traw ms\tcomp ms\tspeedup")
	run := func(v *variant, id, text string) error {
		parsed := mustParse(text)
		matches := -1
		for _, alg := range join.Algorithms {
			rres, err := join.Run(v.raw, parsed, alg, join.Options{})
			if err != nil {
				return fmt.Errorf("E19 %s/%s raw: %w", id, alg, err)
			}
			cres, err := join.Run(v.comp, parsed, alg, join.Options{})
			if err != nil {
				return fmt.Errorf("E19 %s/%s compressed: %w", id, alg, err)
			}
			if !reflect.DeepEqual(rres.Matches, cres.Matches) {
				return fmt.Errorf("E19 %s/%s: compressed matches diverge from raw (%d vs %d)",
					id, alg, len(cres.Matches), len(rres.Matches))
			}
			matches = len(rres.Matches)
		}
		const reps = 5
		timeIt := func(ix *index.Index) (time.Duration, error) {
			best := time.Duration(0)
			for i := 0; i < reps; i++ {
				start := time.Now()
				if _, err := join.Run(ix, parsed, join.TwigStack, join.Options{}); err != nil {
					return 0, err
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best, nil
		}
		rawT, err := timeIt(v.raw)
		if err != nil {
			return err
		}
		compT, err := timeIt(v.comp)
		if err != nil {
			return err
		}
		speedup := "-"
		if compT > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(rawT)/float64(compT))
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\t%s\n",
			id, v.name, matches, len(join.Algorithms), ms(rawT), ms(compT), speedup)
		return nil
	}
	for _, q := range compressQueries {
		if err := run(high, q.id, q.text); err != nil {
			return err
		}
	}
	for _, q := range Workload() {
		if q.Kind != dataset.XMark {
			continue
		}
		if err := run(low, q.ID, q.Text); err != nil {
			return err
		}
	}
	return tw.Flush()
}
