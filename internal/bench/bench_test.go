package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"lotusx/internal/dataset"
	"lotusx/internal/twig"
)

// newTestRunner builds a runner once for the whole test binary; dataset
// construction dominates and every experiment is read-only.
var sharedRunner *Runner

func runner(t *testing.T) *Runner {
	t.Helper()
	if sharedRunner == nil {
		r, err := NewRunner(Config{Scale: 1, Seed: 42, Out: &bytes.Buffer{}})
		if err != nil {
			t.Fatal(err)
		}
		sharedRunner = r
	}
	return sharedRunner
}

// output redirects the runner's table output for one experiment.
func output(r *Runner) *bytes.Buffer {
	buf := &bytes.Buffer{}
	r.cfg.Out = buf
	return buf
}

func TestRunnerRequiresOut(t *testing.T) {
	if _, err := NewRunner(Config{Scale: 1}); err == nil {
		t.Fatal("nil Out should fail")
	}
}

func TestWorkloadParsesAndCoversDatasets(t *testing.T) {
	seen := make(map[dataset.Kind]bool)
	ordered, pc := 0, 0
	for _, q := range Workload() {
		if _, err := twig.Parse(q.Text); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
		}
		seen[q.Kind] = true
		if q.Ordered {
			ordered++
		}
		if q.PCHeavy {
			pc++
		}
	}
	if len(seen) != 3 || ordered < 2 || pc < 2 {
		t.Fatalf("workload lacks coverage: kinds=%d ordered=%d pc=%d", len(seen), ordered, pc)
	}
}

func TestE1Table(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E1IndexBuild(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dblp", "xmark", "treebank", "nodes"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E1 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestE2AllAlgorithmsAgreeOnWorkload(t *testing.T) {
	r := runner(t)
	buf := output(r)
	// E2 itself fails when any algorithm's match count disagrees with the
	// oracle, so running it IS the cross-check on realistic data.
	if err := r.E2TwigAlgorithms(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Q12") {
		t.Error("E2 output incomplete")
	}
}

func TestE3TwigStackNeverWorse(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E3Intermediate(); err != nil {
		t.Fatal(err)
	}
	// Every ratio in the table must be >= 1 (TwigStack emits no more
	// intermediate solutions than PathStack).
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 7 || fields[0] == "query" {
			continue
		}
		ratio := fields[6]
		if ratio == "-" {
			continue
		}
		if strings.HasPrefix(ratio, "0.") {
			t.Errorf("TwigStack emitted more path solutions than PathStack: %s", line)
		}
	}
}

func TestE5AndE6Run(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E5CompletionLatency(); err != nil {
		t.Fatal(err)
	}
	if err := r.E6CompletionQuality(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "position-aware") || !strings.Contains(out, "MRR") {
		t.Errorf("completion tables incomplete:\n%s", out)
	}
}

func TestE6PositionAwareBeatsNaive(t *testing.T) {
	r := runner(t)
	probes := completionProbes()
	if len(probes) < 10 {
		t.Fatalf("only %d probes", len(probes))
	}
	var aware, naive metrics
	for _, p := range probes {
		engine := r.Engine(p.kind)
		q, focus, err := probeQuery(p)
		if err != nil {
			t.Fatal(err)
		}
		prefix := p.intended[:1]
		aware.observe(rankOf(p.intended, engine.Completer().SuggestTags(q, focus, p.axis, prefix, 10)))
		naive.observe(rankOf(p.intended, engine.Completer().SuggestTagsNaive(prefix, 10)))
	}
	if aware.mrr() <= naive.mrr() {
		t.Errorf("position-aware MRR %.3f should beat naive %.3f", aware.mrr(), naive.mrr())
	}
}

func TestE7RankingBeatsBaselines(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E7Ranking(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var lotusNDCG, docNDCG float64
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		switch fields[0] {
		case "lotusx":
			lotusNDCG = parseFloat(t, fields[1])
		case "doc-order":
			docNDCG = parseFloat(t, fields[1])
		}
	}
	if lotusNDCG <= docNDCG {
		t.Errorf("lotusx nDCG %.3f should beat doc-order %.3f", lotusNDCG, docNDCG)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestE8E9E10Run(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E8Ordered(); err != nil {
		t.Fatal(err)
	}
	if err := r.E9Rewrite(); err != nil {
		t.Fatal(err)
	}
	if err := r.E10Session(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "recovery rate") {
		t.Error("E9 missing recovery rate")
	}
	if !strings.Contains(out, "total ms") {
		t.Error("E10 missing session table")
	}
}

func TestNDCGAndPrecision(t *testing.T) {
	perfect := []float64{3, 2, 1}
	if got := ndcg(perfect, 10); got != 1.0 {
		t.Errorf("perfect ndcg = %f", got)
	}
	worst := []float64{1, 2, 3}
	if got := ndcg(worst, 10); got >= 1.0 || got <= 0 {
		t.Errorf("inverted ndcg = %f", got)
	}
	if got := precisionAt([]float64{3, 1, 2, 1, 1}, 5, 2); got != 0.4 {
		t.Errorf("p@5 = %f", got)
	}
	if got := precisionAt(nil, 5, 2); got != 0 {
		t.Errorf("empty p@5 = %f", got)
	}
}

func TestMetrics(t *testing.T) {
	var m metrics
	m.observe(1)
	m.observe(3)
	m.observe(0) // miss
	if m.successAt1() != 1.0/3 || m.successAt5() != 2.0/3 {
		t.Errorf("metrics = %+v", m)
	}
	wantMRR := (1.0 + 1.0/3) / 3
	if diff := m.mrr() - wantMRR; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mrr = %f, want %f", m.mrr(), wantMRR)
	}
}

func TestE14DegradeHoldsAvailability(t *testing.T) {
	r := runner(t)
	buf := output(r)
	if err := r.E14FaultTolerance(); err != nil {
		t.Fatal(err)
	}
	// Under injected failures, degrade answers nearly every request (whole
	// or partial — only an all-shards-failed fluke errors) while failfast
	// fails whole requests; with no injection both are perfect.
	rows := 0
	avail := map[string]map[string]float64{"degrade": {}, "failfast": {}}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 7 || fields[0] == "fail%" {
			continue
		}
		rows++
		rate, policy, partial, failed := fields[0], fields[1], fields[3], fields[4]
		avail[policy][rate] = parseFloat(t, strings.TrimSuffix(fields[5], "%"))
		switch {
		case rate == "0" && failed != "0":
			t.Errorf("%s with no injection failed %s requests", policy, failed)
		case rate != "0" && policy == "degrade" && partial == "0":
			t.Errorf("degrade at %s%% injected failure answered no partials — injection not biting", rate)
		case rate != "0" && policy == "failfast" && failed == "0":
			t.Errorf("failfast at %s%% injected failure lost no requests — injection not biting", rate)
		}
	}
	if rows != 6 {
		t.Fatalf("E14 printed %d data rows, want 6:\n%s", rows, buf.String())
	}
	for _, rate := range []string{"10", "25"} {
		if avail["degrade"][rate] <= avail["failfast"][rate] {
			t.Errorf("at %s%% injected failure: degrade availability %.1f%% should beat failfast %.1f%%",
				rate, avail["degrade"][rate], avail["failfast"][rate])
		}
		if avail["degrade"][rate] < 95 {
			t.Errorf("degrade availability %.1f%% at %s%% injected failure — degraded answers are not absorbing shard loss", avail["degrade"][rate], rate)
		}
	}
}

func TestRunAllCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	var buf bytes.Buffer
	r, err := NewRunner(Config{Scale: 1, Seed: 42, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banner := range []string{"E1", "E2", "E3", "E4", "E5", "E6",
		"E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "A1", "A2", "A3"} {
		if !strings.Contains(out, "=== "+banner+" ") {
			t.Errorf("RunAll output missing %s", banner)
		}
	}
}

func TestE6ShapeRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second dataset generation")
	}
	// The headline claim (position-aware beats naive) must not depend on
	// the workload seed.
	for _, seed := range []int64{7, 1234} {
		r, err := NewRunner(Config{Scale: 1, Seed: seed, Out: &bytes.Buffer{}})
		if err != nil {
			t.Fatal(err)
		}
		var aware, naive metrics
		for _, p := range completionProbes() {
			engine := r.Engine(p.kind)
			q, focus, err := probeQuery(p)
			if err != nil {
				t.Fatal(err)
			}
			prefix := p.intended[:1]
			aware.observe(rankOf(p.intended, engine.Completer().SuggestTags(q, focus, p.axis, prefix, 10)))
			naive.observe(rankOf(p.intended, engine.Completer().SuggestTagsNaive(prefix, 10)))
		}
		if aware.mrr() <= naive.mrr() {
			t.Errorf("seed %d: aware MRR %.3f <= naive %.3f", seed, aware.mrr(), naive.mrr())
		}
	}
}
