package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// E13TracingOverhead measures what carrying a span tree through the query
// pipeline costs: the XMark workload queries run against a sharded corpus
// twice — once untraced (the production default, where every span operation
// is a nil check) and once under a full obs.Trace — and the table reports
// the median latency of each path.  The claim: tracing is cheap enough to
// switch on per request (?debug=trace) without distorting what it measures,
// with a median delta under 2%.
func (r *Runner) E13TracingOverhead() error {
	r.header("E13", "tracing overhead: traced vs untraced query latency")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	c, err := corpus.FromDocument("xmark-obs", d, 4, corpus.Config{})
	if err != nil {
		return err
	}

	// Each sample times a batch of consecutive evaluations so the per-call
	// overhead (a few µs of span bookkeeping against sub-millisecond queries)
	// is not drowned by timer granularity, and the two variants interleave so
	// scheduler noise lands on both sides equally.
	const samples, batch = 31, 16
	tw := r.table()
	fmt.Fprintln(tw, "query\tuntraced ms (best)\ttraced ms (best)\tdelta\tspans")
	for _, q := range corpusQueries {
		parsed := mustParse(q.Text)
		// Warm both paths once so neither pays first-touch costs.
		for _, traced := range []bool{false, true} {
			if _, _, err := runBatch(c, parsed, traced, 1); err != nil {
				return err
			}
		}
		var plain, traced []time.Duration
		spans := 0
		for i := 0; i < samples; i++ {
			el, _, err := runBatch(c, parsed, false, batch)
			if err != nil {
				return err
			}
			plain = append(plain, el)
			el, n, err := runBatch(c, parsed, true, batch)
			if err != nil {
				return err
			}
			traced = append(traced, el)
			spans = n
		}
		mu, mt := best(plain), best(traced)
		delta := 100 * (float64(mt) - float64(mu)) / float64(mu)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%\t%d\n", q.ID, ms(mu), ms(mt), delta, spans)
	}
	return tw.Flush()
}

// E18TailSampling measures the always-on tail-sampling path: every request
// roots a trace and offers it to the bounded store when it finishes, where
// almost all of them are classified boring and dropped without rendering
// (one in SampleEvery joins the uniform sample).  That is the steady-state
// router/server configuration — tracing nobody asked for — so the claim is
// stricter than E13's: rooting plus classification must sit within noise of
// the untraced baseline, not just within a few percent.
func (r *Runner) E18TailSampling() error {
	r.header("E18", "tail sampling: always-on trace rooting + store offer vs untraced")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	c, err := corpus.FromDocument("xmark-tail", d, 4, corpus.Config{})
	if err != nil {
		return err
	}
	store := obs.NewStore(obs.StoreConfig{Capacity: 512, SampleEvery: 64})

	// The effect under test (rooting + classify-and-drop, well under a
	// microsecond) is two orders below the queries it rides on, so the
	// estimator matters more than the sample count: the two variants
	// alternate call by call — not batch by batch like E13 — and each call
	// is timed individually, so CPU-frequency drift on the tens-of-ms
	// timescale lands on both sides of every adjacent pair.  The medians
	// of ~1000 interleaved calls per side are compared; the per-call timer
	// reads cost tens of nanoseconds against sub-millisecond queries.
	const calls = 992
	tw := r.table()
	fmt.Fprintln(tw, "query\tuntraced ms (median)\tsampled ms (median)\tdelta")
	for _, q := range corpusQueries {
		parsed := mustParse(q.Text)
		if _, _, err := runBatch(c, parsed, false, 1); err != nil {
			return err
		}
		if _, err := runSampledBatch(c, parsed, store, 1); err != nil {
			return err
		}
		plain := make([]time.Duration, 0, calls)
		sampled := make([]time.Duration, 0, calls)
		for i := 0; i < calls; i++ {
			el, _, err := runBatch(c, parsed, false, 1)
			if err != nil {
				return err
			}
			plain = append(plain, el)
			el, err = runSampledBatch(c, parsed, store, 1)
			if err != nil {
				return err
			}
			sampled = append(sampled, el)
		}
		mu, mt := medianDur(plain), medianDur(sampled)
		delta := 100 * (float64(mt) - float64(mu)) / float64(mu)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%\t\n", q.ID, ms(mu), ms(mt), delta)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	offered, kept, retained := store.Stats()
	st := r.table()
	fmt.Fprintln(st, "offered\tkept\tkeep ratio\tretained")
	fmt.Fprintf(st, "%d\t%d\t%.2f%%\t%d\t\n", offered, kept, 100*float64(kept)/float64(offered), retained)
	return st.Flush()
}

// runSampledBatch evaluates q batch times on the always-on tail-sampling
// path: root a trace, search, finish, offer to the store — exactly what a
// server does per request when nobody asked for ?debug=trace.
func runSampledBatch(c *corpus.Corpus, q *twig.Query, store *obs.Store, batch int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < batch; i++ {
		tr := obs.New("query")
		ctx := obs.ContextWith(context.Background(), tr.Root())
		res, err := c.SearchHits(ctx, q, core.SearchOptions{K: 100})
		if err != nil {
			return 0, err
		}
		tr.Finish()
		store.Offer(&obs.TraceRecord{
			Endpoint:   "query",
			Start:      tr.Root().Start(),
			DurationMS: float64(tr.Root().Duration().Microseconds()) / 1000,
			Partial:    res.Partial,
		}, tr)
	}
	return time.Since(start) / time.Duration(batch), nil
}

// runBatch evaluates q against c batch times, each under a fresh trace when
// traced, returning the mean per-call time and the span count of one trace.
func runBatch(c *corpus.Corpus, q *twig.Query, traced bool, batch int) (time.Duration, int, error) {
	spans := 0
	start := time.Now()
	for i := 0; i < batch; i++ {
		ctx := context.Background()
		var tr *obs.Trace
		if traced {
			tr = obs.New("query")
			ctx = obs.ContextWith(ctx, tr.Root())
		}
		if _, err := c.SearchHits(ctx, q, core.SearchOptions{K: 100}); err != nil {
			return 0, 0, err
		}
		tr.Finish()
		if traced && i == 0 {
			tr.Each(func(*obs.Span) { spans++ })
		}
	}
	return time.Since(start) / time.Duration(batch), spans, nil
}

// medianDur returns the middle sample; samples is sorted in place.
func medianDur(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := len(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// best returns the fastest sample — the noise floor of a path.  Comparing
// floors isolates the tracing cost from scheduler jitter, which dominates
// the tails of a parallel fan-out on a busy machine.
func best(samples []time.Duration) time.Duration {
	b := samples[0]
	for _, s := range samples[1:] {
		if s < b {
			b = s
		}
	}
	return b
}
