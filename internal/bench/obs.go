package bench

import (
	"context"
	"fmt"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// E13TracingOverhead measures what carrying a span tree through the query
// pipeline costs: the XMark workload queries run against a sharded corpus
// twice — once untraced (the production default, where every span operation
// is a nil check) and once under a full obs.Trace — and the table reports
// the median latency of each path.  The claim: tracing is cheap enough to
// switch on per request (?debug=trace) without distorting what it measures,
// with a median delta under 2%.
func (r *Runner) E13TracingOverhead() error {
	r.header("E13", "tracing overhead: traced vs untraced query latency")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	c, err := corpus.FromDocument("xmark-obs", d, 4, corpus.Config{})
	if err != nil {
		return err
	}

	// Each sample times a batch of consecutive evaluations so the per-call
	// overhead (a few µs of span bookkeeping against sub-millisecond queries)
	// is not drowned by timer granularity, and the two variants interleave so
	// scheduler noise lands on both sides equally.
	const samples, batch = 31, 16
	tw := r.table()
	fmt.Fprintln(tw, "query\tuntraced ms (best)\ttraced ms (best)\tdelta\tspans")
	for _, q := range corpusQueries {
		parsed := mustParse(q.Text)
		// Warm both paths once so neither pays first-touch costs.
		for _, traced := range []bool{false, true} {
			if _, _, err := runBatch(c, parsed, traced, 1); err != nil {
				return err
			}
		}
		var plain, traced []time.Duration
		spans := 0
		for i := 0; i < samples; i++ {
			el, _, err := runBatch(c, parsed, false, batch)
			if err != nil {
				return err
			}
			plain = append(plain, el)
			el, n, err := runBatch(c, parsed, true, batch)
			if err != nil {
				return err
			}
			traced = append(traced, el)
			spans = n
		}
		mu, mt := best(plain), best(traced)
		delta := 100 * (float64(mt) - float64(mu)) / float64(mu)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.1f%%\t%d\n", q.ID, ms(mu), ms(mt), delta, spans)
	}
	return tw.Flush()
}

// runBatch evaluates q against c batch times, each under a fresh trace when
// traced, returning the mean per-call time and the span count of one trace.
func runBatch(c *corpus.Corpus, q *twig.Query, traced bool, batch int) (time.Duration, int, error) {
	spans := 0
	start := time.Now()
	for i := 0; i < batch; i++ {
		ctx := context.Background()
		var tr *obs.Trace
		if traced {
			tr = obs.New("query")
			ctx = obs.ContextWith(ctx, tr.Root())
		}
		if _, err := c.SearchHits(ctx, q, core.SearchOptions{K: 100}); err != nil {
			return 0, 0, err
		}
		tr.Finish()
		if traced && i == 0 {
			tr.Each(func(*obs.Span) { spans++ })
		}
	}
	return time.Since(start) / time.Duration(batch), spans, nil
}

// best returns the fastest sample — the noise floor of a path.  Comparing
// floors isolates the tracing cost from scheduler jitter, which dominates
// the tails of a parallel fan-out on a busy machine.
func best(samples []time.Duration) time.Duration {
	b := samples[0]
	for _, s := range samples[1:] {
		if s < b {
			b = s
		}
	}
	return b
}
