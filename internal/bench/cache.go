package bench

import (
	"context"
	"fmt"
	"time"

	"lotusx/internal/cache"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	lxmetrics "lotusx/internal/metrics"
	"lotusx/internal/twig"
)

// E15CacheWarmPath measures the hot-path caching layer (internal/cache): a
// replayed interactive session — the XMark workload queries plus the
// keystroke-by-keystroke completion chains a user types — runs once against
// cold caches and then repeatedly against warm ones, on both a single
// engine and a 4-shard corpus.  The claim: a warm pass answers from the
// snapshot-keyed caches at memory speed, without slowing the cold pass down.
func (r *Runner) E15CacheWarmPath() error {
	r.header("E15", "hot-path caching: cold vs warm latency on a replayed interactive session")
	eng := r.Engine(dataset.XMark)
	crp, err := corpus.FromDocument("xmark-e15", eng.Document(), 4, corpus.Config{})
	if err != nil {
		return err
	}

	const warmPasses = 20
	tw := r.table()
	fmt.Fprintf(tw, "backend\tsteps\tcold ms/pass\twarm ms/pass\twarm µs/step\tspeedup\twarm QPS\t\n")
	for _, be := range []struct {
		name string
		b    core.Backend
	}{{"engine", eng}, {"corpus-4", crp}} {
		set := cache.NewSet(cache.Config{
			Results:     true,
			Completions: true,
			MaxBytes:    32 << 20,
			Metrics:     lxmetrics.New(),
		})
		wrapped := set.Wrap(be.b)

		steps, err := replaySession(wrapped, 0) // count + sanity, uncached timing discarded
		if err != nil {
			return err
		}
		cold := time.Now()
		if _, err := replaySession(wrapped, 1); err != nil {
			return err
		}
		coldDur := time.Since(cold)
		// The cold pass above filled the caches; every later pass is warm.
		warm := time.Now()
		for i := 0; i < warmPasses; i++ {
			if _, err := replaySession(wrapped, 1); err != nil {
				return err
			}
		}
		warmDur := time.Since(warm) / warmPasses

		speedup := float64(coldDur) / float64(warmDur)
		qps := float64(steps) / warmDur.Seconds()
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.1f\t%.1fx\t%.0f\t\n",
			be.name, steps, ms(coldDur), ms(warmDur),
			float64(warmDur.Microseconds())/float64(steps), speedup, qps)
	}
	return tw.Flush()
}

// replaySession drives one pass of the interactive session against b and
// returns the number of steps.  pass 0 runs with a cache bypass so the
// first timed pass is genuinely cold.
func replaySession(b core.Backend, pass int) (int, error) {
	ctx := context.Background()
	if pass == 0 {
		ctx = cache.WithBypass(ctx)
	}
	steps := 0
	for _, q := range Workload() {
		if q.Kind != dataset.XMark {
			continue
		}
		query := mustParse(q.Text)
		// The user pages through the first two result pages.
		for _, opts := range []core.SearchOptions{
			{K: 10, SnippetMax: 120},
			{K: 10, Offset: 10, SnippetMax: 120},
		} {
			res, err := b.SearchHits(ctx, query, opts)
			if err != nil {
				return 0, err
			}
			if res.Total == 0 {
				return 0, fmt.Errorf("E15: %s returned no results", q.ID)
			}
			steps++
		}
	}
	// Keystroke chains: the user types a tag name under //item and a value
	// prefix under //item/name, one completion request per keystroke.
	anchorQ := mustParse(`//item`)
	for _, prefix := range []string{"", "n", "na", "nam", "name"} {
		if _, err := b.CompleteTags(ctx, anchorQ, anchorQ.OutputNode().ID, twig.Child, prefix, 10); err != nil {
			return 0, err
		}
		steps++
	}
	valueQ := mustParse(`//item/name`)
	for _, prefix := range []string{"", "a", "an"} {
		if _, err := b.CompleteValues(ctx, valueQ, valueQ.OutputNode().ID, prefix, 10); err != nil {
			return 0, err
		}
		steps++
	}
	return steps, nil
}
