package bench

import (
	"fmt"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/dataset"
	"lotusx/internal/twig"
)

func kinds() []dataset.Kind { return dataset.Kinds }

// completionProbe is one simulated keystroke state: the user is growing the
// twig at a known position and has typed a prefix of the intended tag.
type completionProbe struct {
	kind     dataset.Kind
	context  string // partial twig, XPath subset; "" = suggesting the root
	axis     twig.Axis
	intended string // the tag the user is heading for
}

// completionProbes derives probes from the workload queries: every non-root
// query node becomes "user adds this node under its parent's path".
func completionProbes() []completionProbe {
	var probes []completionProbe
	for _, q := range Workload() {
		parsed := mustParse(q.Text)
		for _, qn := range parsed.Nodes() {
			if qn.Parent() == nil || qn.IsWildcard() {
				continue
			}
			probes = append(probes, completionProbe{
				kind:     q.Kind,
				context:  pathText(qn.Parent()),
				axis:     qn.Axis,
				intended: qn.Tag,
			})
		}
	}
	return probes
}

// pathText renders the root-to-n chain as a plain path query.
func pathText(n *twig.Node) string {
	var chain []*twig.Node
	for cur := n; cur != nil; cur = cur.Parent() {
		chain = append(chain, cur)
	}
	text := ""
	for i := len(chain) - 1; i >= 0; i-- {
		text += chain[i].Axis.String() + chain[i].Tag
	}
	return text
}

// E5CompletionLatency reproduces the on-the-fly claim: candidate lists
// arrive within interactive budgets at every prefix length, position-aware
// and naive alike.
func (r *Runner) E5CompletionLatency() error {
	r.header("E5", "auto-completion latency by prefix length (µs/op)")
	probes := completionProbes()
	tw := r.table()
	fmt.Fprintln(tw, "prefix len\tposition-aware µs\tnaive µs\tprobes")
	const reps = 50
	for plen := 0; plen <= 4; plen++ {
		var aware, naive time.Duration
		n := 0
		for _, p := range probes {
			if len(p.intended) < plen {
				continue
			}
			n++
			prefix := p.intended[:plen]
			engine := r.engines[p.kind]
			q, focus, err := probeQuery(p)
			if err != nil {
				return err
			}
			start := time.Now()
			for i := 0; i < reps; i++ {
				engine.Completer().SuggestTags(q, focus, p.axis, prefix, 10)
			}
			aware += time.Since(start)
			start = time.Now()
			for i := 0; i < reps; i++ {
				engine.Completer().SuggestTagsNaive(prefix, 10)
			}
			naive += time.Since(start)
		}
		if n == 0 {
			continue
		}
		den := float64(n * reps)
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%d\n",
			plen,
			float64(aware.Microseconds())/den,
			float64(naive.Microseconds())/den,
			n)
	}
	return tw.Flush()
}

// probeQuery parses the probe's context and returns (query, focus node ID).
func probeQuery(p completionProbe) (*twig.Query, int, error) {
	if p.context == "" {
		q := twig.NewQuery(twig.Wildcard)
		if err := q.Normalize(); err != nil {
			return nil, 0, err
		}
		return q, complete.NewRoot, nil
	}
	q, err := twig.Parse(p.context)
	if err != nil {
		return nil, 0, err
	}
	return q, q.OutputNode().ID, nil
}

// E6CompletionQuality reproduces the position-aware claim itself: knowing
// the position ranks the intended tag higher than global frequency does.
func (r *Runner) E6CompletionQuality() error {
	r.header("E6", "candidate quality: rank of the intended tag (position-aware vs naive)")
	probes := completionProbes()
	tw := r.table()
	fmt.Fprintln(tw, "prefix len\taware s@1\taware s@5\taware MRR\tnaive s@1\tnaive s@5\tnaive MRR\tprobes")
	for plen := 0; plen <= 2; plen++ {
		var am, nm metrics
		n := 0
		for _, p := range probes {
			if len(p.intended) < plen {
				continue
			}
			n++
			prefix := p.intended[:plen]
			engine := r.engines[p.kind]
			q, focus, err := probeQuery(p)
			if err != nil {
				return err
			}
			am.observe(rankOf(p.intended, engine.Completer().SuggestTags(q, focus, p.axis, prefix, 10)))
			nm.observe(rankOf(p.intended, engine.Completer().SuggestTagsNaive(prefix, 10)))
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.3f\t%.2f\t%.2f\t%.3f\t%d\n",
			plen, am.successAt1(), am.successAt5(), am.mrr(),
			nm.successAt1(), nm.successAt5(), nm.mrr(), n)
	}
	return tw.Flush()
}

// rankOf returns the 1-based rank of the intended tag among candidates, or
// 0 when absent.
func rankOf(intended string, cands []complete.Candidate) int {
	for i, c := range cands {
		if c.Text == intended {
			return i + 1
		}
	}
	return 0
}

// metrics accumulates success@k and MRR over probes.
type metrics struct {
	n        int
	hit1     int
	hit5     int
	recipSum float64
}

func (m *metrics) observe(rank int) {
	m.n++
	if rank == 1 {
		m.hit1++
	}
	if rank >= 1 && rank <= 5 {
		m.hit5++
	}
	if rank >= 1 {
		m.recipSum += 1 / float64(rank)
	}
}

func (m *metrics) successAt1() float64 { return float64(m.hit1) / float64(m.n) }
func (m *metrics) successAt5() float64 { return float64(m.hit5) / float64(m.n) }
func (m *metrics) mrr() float64        { return m.recipSum / float64(m.n) }
