package bench

import (
	"fmt"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/twig"
)

// E10Session reproduces the end-to-end demo claim: an entire interactive
// session — root suggestion, growing the twig with position-aware
// candidates, value completion, evaluation with ranking — stays within
// interactive latency.  The scripted session mirrors the paper's running
// example ("find auctions whose item descriptions mention a term").
func (r *Runner) E10Session() error {
	r.header("E10", "end-to-end interactive session latency (per step, ms)")
	tw := r.table()
	fmt.Fprintln(tw, "dataset\troot suggest\tgrow x3\tvalue suggest\tsearch\ttotal ms\tanswers")
	for _, kind := range kinds() {
		engine := r.engines[kind]
		steps, answers, err := scriptedSession(engine, kind)
		if err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
		var total time.Duration
		for _, d := range steps {
			total += d
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%d\n",
			kind, ms(steps[0]), ms(steps[1]), ms(steps[2]), ms(steps[3]), ms(total), answers)
	}
	return tw.Flush()
}

// sessionScript describes one scripted interaction per dataset.
type sessionScript struct {
	rootPrefix string
	rootTag    string
	grows      []growStep
	valueOn    int // index into grows of the node that gets a value prefix
	valPrefix  string
}

type growStep struct {
	anchor int // -1 = root handle, else index into previous grows
	axis   twig.Axis
	prefix string
	tag    string
}

func scriptFor(kind dataset.Kind) sessionScript {
	switch kind {
	case dataset.DBLP:
		return sessionScript{
			rootPrefix: "art", rootTag: "article",
			grows: []growStep{
				{-1, twig.Child, "au", "author"},
				{-1, twig.Child, "ti", "title"},
				{-1, twig.Child, "ye", "year"},
			},
			valueOn: 0, valPrefix: "wei",
		}
	case dataset.XMark:
		return sessionScript{
			rootPrefix: "it", rootTag: "item",
			grows: []growStep{
				{-1, twig.Child, "na", "name"},
				{-1, twig.Descendant, "te", "text"},
				{-1, twig.Child, "lo", "location"},
			},
			valueOn: 2, valPrefix: "bo",
		}
	default: // treebank
		return sessionScript{
			rootPrefix: "S", rootTag: "S",
			grows: []growStep{
				{-1, twig.Child, "N", "NP"},
				{-1, twig.Child, "V", "VP"},
				{1, twig.Child, "VB", "VB"},
			},
			valueOn: 2, valPrefix: "b",
		}
	}
}

// scriptedSession runs the script and returns per-phase durations
// [rootSuggest, grows, valueSuggest, search] and the answer count.
func scriptedSession(engine *core.Engine, kind dataset.Kind) ([4]time.Duration, int, error) {
	var steps [4]time.Duration
	script := scriptFor(kind)
	s := engine.NewSession()

	start := time.Now()
	cands, err := s.SuggestTags(-1, twig.Descendant, script.rootPrefix, 8)
	if err != nil {
		return steps, 0, err
	}
	if len(cands) == 0 {
		return steps, 0, fmt.Errorf("no root candidates for %q", script.rootPrefix)
	}
	steps[0] = time.Since(start)
	root, err := s.Root(script.rootTag, twig.Descendant)
	if err != nil {
		return steps, 0, err
	}

	start = time.Now()
	handles := make([]int, len(script.grows))
	for i, g := range script.grows {
		anchor := root
		if g.anchor >= 0 {
			anchor = handles[g.anchor]
		}
		if _, err := s.SuggestTags(anchor, g.axis, g.prefix, 8); err != nil {
			return steps, 0, err
		}
		h, err := s.AddNode(anchor, g.axis, g.tag)
		if err != nil {
			return steps, 0, err
		}
		handles[i] = h
	}
	steps[1] = time.Since(start)

	start = time.Now()
	vals, err := s.SuggestValues(handles[script.valueOn], script.valPrefix, 8)
	if err != nil {
		return steps, 0, err
	}
	if len(vals) > 0 {
		if err := s.SetPredicate(handles[script.valueOn], twig.Contains, vals[0].Text); err != nil {
			return steps, 0, err
		}
	}
	steps[2] = time.Since(start)

	start = time.Now()
	res, err := s.Run(core.SearchOptions{K: 10, Rewrite: true})
	if err != nil {
		return steps, 0, err
	}
	steps[3] = time.Since(start)
	return steps, len(res.Answers), nil
}
