package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	lmetrics "lotusx/internal/metrics"
	"lotusx/internal/remote"
	"lotusx/internal/server"
)

// benchCluster is one E17 topology: a remote corpus routed over loopback
// shard servers, R replicas per shard.  Replicas of one shard share the
// engine (one index build) but get distinct HTTP servers and clients, so
// hedging, failover and fault keys behave as they would across machines.
type benchCluster struct {
	corpus  *corpus.Corpus
	met     *lmetrics.RemoteMetrics
	faults  *faults.Registry
	servers []*httptest.Server
}

func (b *benchCluster) close() {
	for _, ts := range b.servers {
		ts.Close()
	}
}

// newBenchCluster splits d into parts slices and serves each from
// replication loopback servers behind one hedging remote shard.  Replica
// fault keys are "s<shard>-r<replica>".  Breakers stay disabled so an
// injected failure rate is measured, not quarantined away.
func newBenchCluster(d *doc.Document, parts, replication int, hedge time.Duration) (*benchCluster, error) {
	docs, err := corpus.SplitDocument(d, parts)
	if err != nil {
		return nil, err
	}
	bc := &benchCluster{
		met:    lmetrics.New().Remote("bench"),
		faults: faults.New(),
	}
	backends := make([]corpus.ShardBackend, parts)
	for i, slice := range docs {
		h := server.New(core.FromDocument(slice))
		clients := make([]*remote.Client, replication)
		for j := range clients {
			ts := httptest.NewServer(h)
			bc.servers = append(bc.servers, ts)
			cl, err := remote.NewClient(remote.ClientConfig{
				BaseURL: ts.URL,
				Name:    fmt.Sprintf("s%02d-r%d", i, j),
				Faults:  bc.faults,
				Metrics: bc.met,
			})
			if err != nil {
				bc.close()
				return nil, err
			}
			clients[j] = cl
		}
		sh, err := remote.NewShard(fmt.Sprintf("shard-%02d", i), clients, remote.ShardOptions{
			HedgeDelay: hedge,
			Metrics:    bc.met,
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		backends[i] = sh
	}
	c, err := corpus.NewRemote("bench", backends, corpus.Config{
		Faults: bc.faults,
		Tuning: corpus.Tuning{BreakerThreshold: -1},
	})
	if err != nil {
		bc.close()
		return nil, err
	}
	bc.corpus = c
	return bc, nil
}

// p50 returns the median latency of the sample.
func p50(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// E17RemoteRouter measures the distributed tier.  Table 1: the E12 XMark
// workload through a router over 1/2/4 loopback shard servers with R=2
// replication, at 0% and 25% injected per-RPC failure — replica failover
// plus degraded partials should hold availability at ~100% where a single
// failed RPC would otherwise fail the request.  Table 2: one replica of
// each shard slowed by 30ms; hedged requests should cut the p99 close to
// the hedge delay while unhedged requests eat the skew.
func (r *Runner) E17RemoteRouter() error {
	r.header("E17", "distributed router: replicated availability under faults, hedging under latency skew")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	const requests = 120

	run := func(bc *benchCluster) (whole, partial, failed int, lat []time.Duration, err error) {
		lat = make([]time.Duration, 0, requests)
		for i := 0; i < requests; i++ {
			q := mustParse(corpusQueries[i%len(corpusQueries)].Text)
			start := time.Now()
			res, serr := bc.corpus.SearchHits(context.Background(), q, core.SearchOptions{K: 100})
			lat = append(lat, time.Since(start))
			switch {
			case serr != nil:
				failed++
			case res.Partial:
				partial++
			default:
				whole++
			}
		}
		return whole, partial, failed, lat, nil
	}

	tw := r.table()
	fmt.Fprintln(tw, "shards\tR\tfail%\twhole\tpartial\tfailed\tavailability\tp50 ms\tp99 ms")
	for _, parts := range []int{1, 2, 4} {
		for _, rate := range []int{0, 25} {
			bc, err := newBenchCluster(d, parts, 2, -1)
			if err != nil {
				return err
			}
			if rate > 0 {
				bc.faults.Enable(faults.Injection{
					Site: remote.FaultRPC,
					Hook: newFaultPlan(rate).hook,
				})
			}
			whole, partial, failed, lat, err := run(bc)
			bc.close()
			if err != nil {
				return err
			}
			avail := float64(whole+partial) / requests * 100
			fmt.Fprintf(tw, "%d\t2\t%d\t%d\t%d\t%d\t%.1f%%\t%s\t%s\n",
				parts, rate, whole, partial, failed, avail, ms(p50(lat)), ms(p99(lat)))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	tw = r.table()
	fmt.Fprintln(tw, "hedge\tp50 ms\tp99 ms\thedges\twins")
	for _, hc := range []struct {
		name  string
		delay time.Duration
	}{
		{"off", -1},
		{"fixed 5ms", 5 * time.Millisecond},
		{"adaptive", 0},
	} {
		bc, err := newBenchCluster(d, 2, 2, hc.delay)
		if err != nil {
			return err
		}
		bc.faults.Enable(faults.Injection{
			Site:    remote.FaultRPC,
			Keys:    []string{"s00-r0", "s01-r0"},
			Latency: 30 * time.Millisecond,
		})
		_, _, _, lat, err := run(bc)
		fired, wins := bc.met.HedgesFired.Load(), bc.met.HedgeWins.Load()
		bc.close()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\n",
			hc.name, ms(p50(lat)), ms(p99(lat)), fired, wins)
	}
	return tw.Flush()
}
