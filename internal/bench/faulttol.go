package bench

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/faults"
)

var errBenchFault = errors.New("bench: injected shard failure")

// faultPlan drives the E14 injection: each per-shard evaluation fails with
// probability rate%, decided by a hash of (shard, call index) so the plan is
// deterministic yet decorrelated across shards (a plain every-nth counter
// would fail all shards of the same fan-out together, since every fan-out
// touches every shard once).  An injected failure is sticky across the
// corpus's one transparent retry — otherwise the retry would absorb nearly
// every fault and all policies would measure alike.
type faultPlan struct {
	mu   sync.Mutex
	rate uint32
	// cnt counts decided evaluations per shard; pending marks a shard whose
	// injected failure must also claim the retry attempt.
	cnt     map[string]int
	pending map[string]bool
}

func newFaultPlan(rate int) *faultPlan {
	return &faultPlan{rate: uint32(rate), cnt: map[string]int{}, pending: map[string]bool{}}
}

func (p *faultPlan) hook(_ context.Context, key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending[key] {
		p.pending[key] = false
		return errBenchFault
	}
	p.cnt[key]++
	h := fnv.New32a()
	fmt.Fprintf(h, "%s#%d", key, p.cnt[key])
	if h.Sum32()%100 < p.rate {
		p.pending[key] = true
		return errBenchFault
	}
	return nil
}

// p99 returns the 99th-percentile latency of the sample.
func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// E14FaultTolerance measures what the shard-failure policy buys: the E12
// workload over a 4-shard XMark corpus with 0/10/25% of per-shard
// evaluations fault-injected, under degrade vs failfast.  Degrade should
// hold availability at 100% (whole or partial answers) where failfast fails
// whole requests; circuit breakers are disabled so the injected rate stays
// constant instead of quarantining the noisy shard away.
func (r *Runner) E14FaultTolerance() error {
	r.header("E14", "fault tolerance: availability and p99 under injected shard failures")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	const (
		parts    = 4
		requests = 150
	)

	tw := r.table()
	fmt.Fprintln(tw, "fail%\tpolicy\twhole\tpartial\tfailed\tavailability\tp99 ms")
	for _, rate := range []int{0, 10, 25} {
		for _, policy := range []corpus.ShardPolicy{corpus.PolicyDegrade, corpus.PolicyFailFast} {
			reg := faults.New()
			c, err := corpus.FromDocument(fmt.Sprintf("xmark-%s-f%d", policy, rate), d, parts, corpus.Config{
				Faults: reg,
				Tuning: corpus.Tuning{Policy: policy, BreakerThreshold: -1},
			})
			if err != nil {
				return err
			}
			if rate > 0 {
				reg.Enable(faults.Injection{
					Site: corpus.FaultShardSearch,
					Hook: newFaultPlan(rate).hook,
				})
			}

			var whole, partial, failed int
			lat := make([]time.Duration, 0, requests)
			for i := 0; i < requests; i++ {
				q := mustParse(corpusQueries[i%len(corpusQueries)].Text)
				start := time.Now()
				res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 100})
				lat = append(lat, time.Since(start))
				switch {
				case err != nil:
					failed++
				case res.Partial:
					partial++
				default:
					whole++
				}
			}
			avail := float64(whole+partial) / requests * 100
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%.1f%%\t%s\n",
				rate, policy, whole, partial, failed, avail, ms(p99(lat)))
		}
	}
	return tw.Flush()
}
