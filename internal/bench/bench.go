// Package bench implements the experiment suite E1–E10 of DESIGN.md §5:
// for every claim of the LotusX demo paper, one experiment that prints a
// table quantifying it.  cmd/lotusx-bench drives the suite; the repo-root
// bench_test.go exposes each experiment as a testing.B benchmark.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataguide"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// Config tunes a Runner.
type Config struct {
	// Scale is the dataset scale factor (1 is ~10-40k nodes per dataset).
	Scale int
	// Seed makes workloads reproducible.
	Seed int64
	// Out receives the printed tables.
	Out io.Writer
	// JSONDir, when set, additionally writes every experiment's tables as
	// machine-readable BENCH_<ID>.json files into that directory.
	JSONDir string
}

// Runner holds the built engines and runs experiments.
type Runner struct {
	cfg     Config
	engines map[dataset.Kind]*core.Engine
	// build timings captured while constructing engines (E1).
	buildStats map[dataset.Kind]buildStat
	// curID/curClaim track the experiment the next table belongs to (set by
	// header); recorded accumulates each experiment's parsed tables for the
	// JSONDir files.
	curID    string
	curClaim string
	recorded map[string][]jsonTable
}

type buildStat struct {
	xmlBytes   int
	nodes      int
	tags       int
	guidePaths int
	parse      time.Duration
	indexBuild time.Duration
	guideBuild time.Duration
}

// NewRunner generates the datasets and builds one engine per dataset,
// recording E1's construction measurements along the way.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Out == nil {
		return nil, fmt.Errorf("bench: Config.Out is required")
	}
	r := &Runner{
		cfg:        cfg,
		engines:    make(map[dataset.Kind]*core.Engine),
		buildStats: make(map[dataset.Kind]buildStat),
	}
	for _, kind := range dataset.Kinds {
		if err := r.buildOne(kind); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *Runner) buildOne(kind dataset.Kind) error {
	var bs buildStat
	xml := &countingBuffer{}
	if err := dataset.Generate(kind, r.cfg.Scale, r.cfg.Seed, xml); err != nil {
		return err
	}
	bs.xmlBytes = xml.Len()

	start := time.Now()
	d, err := doc.FromReader(fmt.Sprintf("%s-s%d", kind, r.cfg.Scale), xml.Reader())
	if err != nil {
		return err
	}
	bs.parse = time.Since(start)
	bs.nodes = d.Len()
	bs.tags = d.Tags().Len()

	start = time.Now()
	ix := index.Build(d)
	bs.indexBuild = time.Since(start)

	start = time.Now()
	guide := dataguide.Build(d)
	guide.Warm()
	bs.guideBuild = time.Since(start)
	bs.guidePaths = guide.Size()
	_ = ix

	// The engine rebuilds index and guide; cheap relative to clarity.
	r.engines[kind] = core.FromDocument(d)
	r.buildStats[kind] = bs
	return nil
}

// Engine returns the engine for a dataset kind.
func (r *Runner) Engine(kind dataset.Kind) *core.Engine { return r.engines[kind] }

// rng returns a fresh deterministic source for one experiment.
func (r *Runner) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(r.cfg.Seed + offset))
}

// RunAll executes every experiment in order.
func (r *Runner) RunAll() error {
	steps := []func() error{
		r.E1IndexBuild,
		r.E2TwigAlgorithms,
		r.E3Intermediate,
		r.E4ParentChild,
		r.E5CompletionLatency,
		r.E6CompletionQuality,
		r.E7Ranking,
		r.E8Ordered,
		r.E9Rewrite,
		r.E10Session,
		r.E11Scalability,
		r.E12CorpusFanout,
		r.E13TracingOverhead,
		r.E14FaultTolerance,
		r.E15CacheWarmPath,
		r.E16AsyncIngest,
		r.E17RemoteRouter,
		r.E18TailSampling,
		r.E19IndexCompression,
		r.A1Pushdown,
		r.A2Minimization,
		r.A3PenaltyModel,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// header prints an experiment banner and marks id as the experiment the
// following tables belong to.
func (r *Runner) header(id, claim string) {
	r.curID, r.curClaim = id, claim
	if r.cfg.JSONDir != "" {
		delete(r.recorded, id) // a re-run replaces the experiment's tables
	}
	fmt.Fprintf(r.cfg.Out, "\n=== %s — %s ===\n", id, claim)
}

// table returns a writer for one result table; callers must Flush.  The
// table renders through a tabwriter, and — when Config.JSONDir is set — its
// raw tab-separated rows are also recorded into BENCH_<ID>.json.
func (r *Runner) table() *benchTable {
	return &benchTable{r: r, tw: tabwriter.NewWriter(r.cfg.Out, 2, 4, 2, ' ', 0)}
}

// benchTable tees one experiment table: formatted text through the
// tabwriter, raw rows into the machine-readable record.
type benchTable struct {
	r   *Runner
	tw  *tabwriter.Writer
	raw bytes.Buffer
}

func (t *benchTable) Write(p []byte) (int, error) {
	t.raw.Write(p)
	return t.tw.Write(p)
}

// Flush flushes the rendered table and records its rows for the JSON file.
func (t *benchTable) Flush() error {
	if err := t.tw.Flush(); err != nil {
		return err
	}
	return t.r.record(t.raw.String())
}

// jsonTable is one parsed table of an experiment: the first input row is
// taken as the column header.
type jsonTable struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// jsonExperiment is the BENCH_<ID>.json document.
type jsonExperiment struct {
	ID     string      `json:"id"`
	Claim  string      `json:"claim"`
	Scale  int         `json:"scale"`
	Seed   int64       `json:"seed"`
	Tables []jsonTable `json:"tables"`
}

// record parses one flushed table and rewrites the current experiment's
// JSON file with everything recorded for it so far.
func (r *Runner) record(raw string) error {
	if r.cfg.JSONDir == "" || r.curID == "" {
		return nil
	}
	var tab jsonTable
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		if len(cells) > 0 && cells[len(cells)-1] == "" {
			cells = cells[:len(cells)-1] // rows conventionally end with \t\n
		}
		if tab.Columns == nil {
			tab.Columns = cells
			continue
		}
		tab.Rows = append(tab.Rows, cells)
	}
	if r.recorded == nil {
		r.recorded = make(map[string][]jsonTable)
	}
	r.recorded[r.curID] = append(r.recorded[r.curID], tab)
	doc := jsonExperiment{
		ID:     r.curID,
		Claim:  r.curClaim,
		Scale:  r.cfg.Scale,
		Seed:   r.cfg.Seed,
		Tables: r.recorded[r.curID],
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.cfg.JSONDir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(r.cfg.JSONDir, "BENCH_"+r.curID+".json")
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

// countingBuffer buffers generated XML and re-serves it as a reader.
type countingBuffer struct {
	data []byte
}

func (b *countingBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *countingBuffer) Len() int { return len(b.data) }

func (b *countingBuffer) Reader() io.Reader { return &sliceReader{data: b.data} }

type sliceReader struct {
	data []byte
	pos  int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.pos:])
	s.pos += n
	return n, nil
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// Query is one workload query.
type Query struct {
	ID   string
	Kind dataset.Kind
	Text string
	// PCHeavy marks queries dominated by parent-child edges (E4's subset).
	PCHeavy bool
	// Ordered marks order-sensitive queries (E8's subset).
	Ordered bool
}

// Workload returns the query set Q1–Q12 over the three datasets, covering
// paths, branches, values, deep recursion, parent-child chains and order
// constraints.
func Workload() []Query {
	return []Query{
		{ID: "Q1", Kind: dataset.DBLP, Text: `//article/title`, PCHeavy: true},
		{ID: "Q2", Kind: dataset.DBLP, Text: `//inproceedings[author][year]/title`},
		{ID: "Q3", Kind: dataset.DBLP, Text: `//article[author = "wei lu"]/title`},
		{ID: "Q4", Kind: dataset.DBLP, Text: `//dblp//author`},
		{ID: "Q5", Kind: dataset.XMark, Text: `//item[description//text contains "vintage"]/name`},
		{ID: "Q6", Kind: dataset.XMark, Text: `//person[profile/age]/name`, PCHeavy: true},
		{ID: "Q7", Kind: dataset.XMark, Text: `//open_auction[bidder/increase][seller]`},
		{ID: "Q8", Kind: dataset.XMark, Text: `//open_auction[bidder << current]`, Ordered: true},
		{ID: "Q9", Kind: dataset.TreeBank, Text: `//S//NP//NN`},
		{ID: "Q10", Kind: dataset.TreeBank, Text: `//S/VP/NP/NN`, PCHeavy: true},
		{ID: "Q11", Kind: dataset.TreeBank, Text: `//S[NP/PP][VP//NN]`},
		{ID: "Q12", Kind: dataset.TreeBank, Text: `//S[NP << VP]`, Ordered: true},
		// NP nests inside NP only through a PP in this grammar, so every
		// ancestor-descendant (NP, NP) pair is a parent-child decoy — the
		// case look-ahead pruning exists for.
		{ID: "Q13", Kind: dataset.TreeBank, Text: `//NP/NP/NN`, PCHeavy: true},
	}
}

// mustParse parses a workload query (all are valid by construction).
func mustParse(text string) *twig.Query { return twig.MustParse(text) }
