package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestE15TableAndJSON runs the caching experiment and checks both outputs:
// the printed table (warm must beat cold by at least the 5x acceptance
// bar on every backend) and the machine-readable BENCH_E15.json.
func TestE15TableAndJSON(t *testing.T) {
	r := runner(t)
	buf := output(r)
	dir := t.TempDir()
	r.cfg.JSONDir = dir
	defer func() { r.cfg.JSONDir = "" }()

	if err := r.E15CacheWarmPath(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine", "corpus-4", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("E15 output missing %q:\n%s", want, buf.String())
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_E15.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string `json:"id"`
		Claim  string `json:"claim"`
		Tables []struct {
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_E15.json does not parse: %v", err)
	}
	if doc.ID != "E15" || len(doc.Tables) != 1 || len(doc.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected JSON shape: %+v", doc)
	}
	speedupCol := -1
	for i, c := range doc.Tables[0].Columns {
		if c == "speedup" {
			speedupCol = i
		}
	}
	if speedupCol < 0 {
		t.Fatalf("no speedup column in %v", doc.Tables[0].Columns)
	}
	for _, row := range doc.Tables[0].Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[speedupCol], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q: %v", row[speedupCol], err)
		}
		if v < 5 {
			t.Errorf("%s: warm speedup %.1fx below the 5x acceptance bar", row[0], v)
		}
	}
}
