package bench

import (
	"strings"
	"testing"
)

func TestE12Table(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded sweep is slow in -short mode")
	}
	r := runner(t)
	buf := output(r)
	// E12 itself fails when a requested shard count is not honored, so
	// running it checks the split as well as the table.
	if err := r.E12CorpusFanout(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shards", "speedup", "Q5 ms", "1.00x"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("E12 output missing %q:\n%s", want, buf.String())
		}
	}
}
