package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// E7Ranking reproduces the effective-ranking claim.  Ground truth is graded
// on the matched value alone — 3 for whole-value equality with the query
// term, 2 for a prefix, 1 for containing every token — while the LotusX
// score additionally weighs structure and rarity; the baselines are document
// order and a seeded random shuffle.  nDCG@10 and P@5 are averaged over
// value queries on the dblp dataset.
func (r *Runner) E7Ranking() error {
	r.header("E7", "ranking quality: nDCG@10 / P@5 vs document-order and random baselines")
	engine := r.engines[dataset.DBLP]
	d := engine.Document()
	rng := r.rng(7)

	// Value queries: titles containing single frequent words.
	terms := []string{"xml", "twig", "query", "index", "ranking", "adaptive"}
	type agg struct {
		ndcg, p5 float64
		n        int
	}
	var lotus, docOrder, random agg

	for _, term := range terms {
		q := mustParse(fmt.Sprintf(`//inproceedings[title contains %q]`, term))
		res, err := join.Run(engine.Index(), q, join.TwigStack, join.Options{})
		if err != nil {
			return err
		}
		if len(res.Matches) < 5 {
			continue
		}
		// Relevance judgment per distinct answer node.
		titleID := 1 // preorder: inproceedings=0, title=1
		rel := func(m join.Match) float64 {
			v := strings.ToLower(d.Value(m[titleID]))
			switch {
			case v == term:
				return 3
			case strings.HasPrefix(v, term):
				return 2
			default:
				return 1
			}
		}

		// LotusX ranking.
		scored := engine.Ranker().Rank(q, res.Matches, 0)
		var lotusRel []float64
		for _, s := range scored {
			lotusRel = append(lotusRel, rel(s.Match))
		}
		// Document order (matches are already doc-ordered).
		var docRel []float64
		for _, m := range res.Matches {
			docRel = append(docRel, rel(m))
		}
		// Random order.
		perm := rng.Perm(len(res.Matches))
		var rndRel []float64
		for _, i := range perm {
			rndRel = append(rndRel, rel(res.Matches[i]))
		}

		lotus.ndcg += ndcg(lotusRel, 10)
		lotus.p5 += precisionAt(lotusRel, 5, 2)
		lotus.n++
		docOrder.ndcg += ndcg(docRel, 10)
		docOrder.p5 += precisionAt(docRel, 5, 2)
		docOrder.n++
		random.ndcg += ndcg(rndRel, 10)
		random.p5 += precisionAt(rndRel, 5, 2)
		random.n++
	}

	tw := r.table()
	fmt.Fprintln(tw, "ranking\tnDCG@10\tP@5 (rel >= 2)\tqueries")
	for _, row := range []struct {
		name string
		a    agg
	}{{"lotusx", lotus}, {"doc-order", docOrder}, {"random", random}} {
		if row.a.n == 0 {
			fmt.Fprintf(tw, "%s\t-\t-\t0\n", row.name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\n",
			row.name, row.a.ndcg/float64(row.a.n), row.a.p5/float64(row.a.n), row.a.n)
	}
	return tw.Flush()
}

// ndcg computes nDCG@k for a relevance sequence in ranked order.
func ndcg(rels []float64, k int) float64 {
	dcg := dcgAt(rels, k)
	ideal := append([]float64(nil), rels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := dcgAt(ideal, k)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func dcgAt(rels []float64, k int) float64 {
	var sum float64
	for i := 0; i < len(rels) && i < k; i++ {
		sum += (math.Pow(2, rels[i]) - 1) / math.Log2(float64(i)+2)
	}
	return sum
}

// precisionAt computes the fraction of the top k with relevance >= threshold.
func precisionAt(rels []float64, k int, threshold float64) float64 {
	if len(rels) < k {
		k = len(rels)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, rel := range rels[:k] {
		if rel >= threshold {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// E9Rewrite reproduces the query-rewriting claim: queries broken by typos,
// wrong axes or over-tight values recover answers through penalty-ordered
// relaxation.
func (r *Runner) E9Rewrite() error {
	r.header("E9", "query rewriting: recovery of broken queries")
	rng := r.rng(9)

	type brokenQuery struct {
		id, kindOfBreak string
		kind            dataset.Kind
		text            string
	}
	var broken []brokenQuery
	for _, q := range Workload() {
		if q.Ordered {
			continue
		}
		parsed := mustParse(q.Text)
		// Typo: drop one letter from a random non-root tag.
		if mut, ok := typoMutation(parsed, rng); ok {
			broken = append(broken, brokenQuery{q.ID, "typo", q.Kind, mut})
		}
		// Over-tight axis: force every edge to parent-child.
		if mut, ok := axisMutation(parsed); ok {
			broken = append(broken, brokenQuery{q.ID, "axis", q.Kind, mut})
		}
		// Over-tight value: contains -> eq (whole-value match required).
		if mut, ok := valueMutation(parsed); ok {
			broken = append(broken, brokenQuery{q.ID, "value", q.Kind, mut})
		}
	}

	tw := r.table()
	fmt.Fprintln(tw, "query\tbreak\texact answers\trecovered\trewrites tried\tfirst penalty\ttime ms")
	recoveredCount, total := 0, 0
	for _, b := range broken {
		engine := r.engines[b.kind]
		q, err := twig.Parse(b.text)
		if err != nil {
			continue // a mutation can produce an invalid query; skip it
		}
		exact, err := join.Run(engine.Index(), q, join.TwigStack, join.Options{MaxMatches: 1})
		if err != nil {
			return err
		}
		if len(exact.Matches) > 0 {
			continue // the mutation did not actually break the query
		}
		total++
		start := time.Now()
		res, err := engine.Search(q, core.SearchOptions{Rewrite: true, K: 5})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		recovered := len(res.Answers) > 0
		if recovered {
			recoveredCount++
		}
		penalty := "-"
		if recovered && res.Answers[0].Rewrite != nil {
			penalty = fmt.Sprintf("%.1f", res.Answers[0].Rewrite.Penalty)
		}
		fmt.Fprintf(tw, "%s\t%s\t0\t%v\t%d\t%s\t%s\n",
			b.id, b.kindOfBreak, recovered, res.RewritesTried, penalty, ms(elapsed))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if total > 0 {
		fmt.Fprintf(r.cfg.Out, "recovery rate: %d/%d (%.0f%%)\n",
			recoveredCount, total, 100*float64(recoveredCount)/float64(total))
	}
	return nil
}

func typoMutation(q *twig.Query, rng *rand.Rand) (string, bool) {
	c := q.Clone()
	nodes := c.Nodes()
	// Pick a node with a tag long enough to maim.
	for attempts := 0; attempts < 10; attempts++ {
		n := nodes[rng.Intn(len(nodes))]
		if n.IsWildcard() || len(n.Tag) < 4 || strings.HasPrefix(n.Tag, "@") {
			continue
		}
		cut := 1 + rng.Intn(len(n.Tag)-2)
		n.Tag = n.Tag[:cut] + n.Tag[cut+1:]
		if err := c.Normalize(); err != nil {
			return "", false
		}
		return c.String(), true
	}
	return "", false
}

func axisMutation(q *twig.Query) (string, bool) {
	c := q.Clone()
	changed := false
	for _, n := range c.Nodes() {
		if n.Parent() != nil && n.Axis == twig.Descendant {
			n.Axis = twig.Child
			changed = true
		}
	}
	if !changed {
		return "", false
	}
	if err := c.Normalize(); err != nil {
		return "", false
	}
	return c.String(), true
}

func valueMutation(q *twig.Query) (string, bool) {
	c := q.Clone()
	changed := false
	for _, n := range c.Nodes() {
		if n.Pred.Op == twig.Contains {
			n.Pred.Op = twig.Eq
			changed = true
		}
	}
	if !changed {
		return "", false
	}
	if err := c.Normalize(); err != nil {
		return "", false
	}
	return c.String(), true
}
