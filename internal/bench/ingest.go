package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/server"
)

// E16 measures what the async ingestion pipeline buys:
//
//  1. Write-path availability — time-to-response for a multi-MB ingest:
//     the async POST answers 202 as soon as the body is spooled, where the
//     sync path blocks for the whole split + index build.
//  2. Read-path availability — query throughput and tail latency while
//     delta ingests and a compaction churn the corpus in the background.
//  3. Delta cost and the compaction payoff — query latency with a delta
//     backlog vs after folding it into compacted base shards.

// deltaDocXML renders a small XMark-shaped delta payload whose records
// match the E12 workload queries.
func deltaDocXML(i int) string {
	return fmt.Sprintf(`<site>
  <regions><namerica>
    <item id="delta%d"><name>Delta Item %d</name>
      <description><text>vintage delta stock %d</text></description>
    </item>
  </namerica></regions>
  <people>
    <person id="deltap%d"><name>Delta Person %d</name>
      <profile income="%d"><age>%d</age></profile>
    </person>
  </people>
</site>`, i, i, i, i, i, 30000+i, 20+i%50)
}

// quantile returns the q-quantile (0 < q <= 1) of the sample.
func quantile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// E16AsyncIngest: jobs API turnaround, availability under ingest, and the
// delta-vs-compacted read cost.
func (r *Runner) E16AsyncIngest() error {
	r.header("E16", "async ingestion: 202 turnaround, availability during ingest, delta vs compacted latency")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}
	// The turnaround table ingests a multi-MB document: the interesting gap
	// is 202-after-spool vs 201-after-full-index-build, and a tiny doc hides
	// it behind HTTP overhead.
	ingestScale := r.cfg.Scale * 8
	if ingestScale < 16 {
		ingestScale = 16
	}
	if ingestScale > 64 {
		ingestScale = 64
	}
	big, err := dataset.Build(dataset.XMark, ingestScale, r.cfg.Seed)
	if err != nil {
		return err
	}
	var xml strings.Builder
	if err := big.WriteXML(&xml, big.Root()); err != nil {
		return err
	}
	body := xml.String()

	// --- Table 1: write-path turnaround, sync vs async, over HTTP. ---
	srv := server.NewCatalogConfig(core.NewCatalog(), server.Config{EnableAdmin: true})
	ts := httptest.NewServer(srv)

	post := func(url string) (time.Duration, int, error) {
		start := time.Now()
		res, err := http.Post(url, "application/xml", strings.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		res.Body.Close()
		return time.Since(start), res.StatusCode, nil
	}
	syncDur, syncCode, err := post(ts.URL + "/api/v1/datasets/esync?sync=1")
	if err != nil {
		return err
	}
	asyncDur, asyncCode, err := post(ts.URL + "/api/v1/datasets/easync?shards=4")
	if err != nil {
		return err
	}
	if syncCode != http.StatusCreated || asyncCode != http.StatusAccepted {
		return fmt.Errorf("E16: sync=%d async=%d, want 201/202", syncCode, asyncCode)
	}
	tw := r.table()
	fmt.Fprintln(tw, "ingest path\tdoc MB\tstatus\tresponse ms\tspeedup")
	mb := float64(len(body)) / (1 << 20)
	fmt.Fprintf(tw, "sync (?sync=1)\t%.1f\t%d\t%s\t1.0x\n", mb, syncCode, ms(syncDur))
	fmt.Fprintf(tw, "async (202+job)\t%.1f\t%d\t%s\t%.1fx\n", mb, asyncCode, ms(asyncDur),
		float64(syncDur)/float64(asyncDur))
	if err := tw.Flush(); err != nil {
		return err
	}
	// Drain the async job before the read-path phases: Close waits for the
	// workers, so the background index build cannot pollute their timings.
	ts.Close()
	srv.Close()

	// --- Shared read workload for tables 2 and 3. ---
	c, err := corpus.FromDocument("xmark-e16", d, 4, corpus.Config{})
	if err != nil {
		return err
	}
	workload := func(c *corpus.Corpus) (time.Duration, error) {
		start := time.Now()
		for _, q := range corpusQueries {
			if _, err := c.SearchHits(context.Background(), mustParse(q.Text), core.SearchOptions{K: 100}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	runQueries := func() (time.Duration, error) { return workload(c) }

	// --- Table 2: read availability while ingest + compaction churn. ---
	// Both phases measure the same fixed round count; the churn phase runs
	// them while a background loop keeps adding delta shards and compacting,
	// so the comparison is idle-vs-churn at equal sample size.
	const availRounds = 40
	sample := func() ([]time.Duration, error) {
		lat := make([]time.Duration, 0, availRounds)
		for i := 0; i < availRounds; i++ {
			el, err := runQueries()
			if err != nil {
				return nil, err
			}
			lat = append(lat, el)
		}
		return lat, nil
	}
	// One warm-up round first so cold-cache parse/build noise doesn't
	// inflate the idle tail.
	if _, err := runQueries(); err != nil {
		return err
	}
	runtime.GC()
	idle, err := sample()
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	var churnErr error
	var ingests, compactions int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("delta%d", i)
			dd, err := doc.FromReader(name, strings.NewReader(deltaDocXML(i)))
			if err != nil {
				churnErr = err
				return
			}
			if err := c.AddDeltaSplit(name, dd, 1); err != nil {
				churnErr = err
				return
			}
			ingests++
			if (i+1)%8 == 0 {
				if _, err := c.CompactDeltas(context.Background(), 0); err != nil {
					churnErr = err
					return
				}
				compactions++
			}
			// Paced, not a tight loop: a steady trickle is the realistic
			// churn shape and keeps the shard count from exploding.
			time.Sleep(2 * time.Millisecond)
		}
	}()
	churn, err := sample()
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if churnErr != nil {
		return churnErr
	}
	tw = r.table()
	fmt.Fprintln(tw, "phase\trounds\tmean ms\tp50 ms\tp99 ms\tmax ms")
	for _, row := range []struct {
		name string
		lat  []time.Duration
	}{{"idle", idle}, {fmt.Sprintf("during %d ingests + %d compactions", ingests, compactions), churn}} {
		var sum time.Duration
		for _, l := range row.lat {
			sum += l
		}
		mean := time.Duration(0)
		if len(row.lat) > 0 {
			mean = sum / time.Duration(len(row.lat))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", row.name, len(row.lat),
			ms(mean), ms(quantile(row.lat, 0.50)), ms(quantile(row.lat, 0.99)),
			ms(quantile(row.lat, 1.0)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// --- Table 3: delta backlog cost vs compacted shape. ---
	// A fresh corpus (table 2's churn left extra shards behind): measure the
	// base shape, add a delta backlog, then compact it away.  Medians over a
	// healthy rep count keep scheduler noise out of the ratios.
	const (
		reps        = 30
		churnDeltas = 48
	)
	c2, err := corpus.FromDocument("xmark-e16b", d, 4, corpus.Config{})
	if err != nil {
		return err
	}
	phase := func() (time.Duration, error) {
		// Warm-up round, then the median of the reps.
		runtime.GC()
		if _, err := workload(c2); err != nil {
			return 0, err
		}
		lat := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			el, err := workload(c2)
			if err != nil {
				return 0, err
			}
			lat = append(lat, el)
		}
		return quantile(lat, 0.50), nil
	}
	base, err := phase()
	if err != nil {
		return err
	}
	baseShards := c2.Snapshot().Len()
	for i := 0; i < churnDeltas; i++ {
		dd, err := doc.FromReader(fmt.Sprintf("redelta%d", i), strings.NewReader(deltaDocXML(i)))
		if err != nil {
			return err
		}
		if err := c2.AddDeltaSplit(fmt.Sprintf("redelta%d", i), dd, 1); err != nil {
			return err
		}
	}
	withDeltas, err := phase()
	if err != nil {
		return err
	}
	deltaShards := c2.Snapshot().Len()
	res, err := c2.CompactDeltas(context.Background(), 0)
	if err != nil {
		return err
	}
	compacted, err := phase()
	if err != nil {
		return err
	}
	tw = r.table()
	fmt.Fprintln(tw, "shape\tshards\tworkload ms\tvs base")
	fmt.Fprintf(tw, "base\t%d\t%s\t1.00x\n", baseShards, ms(base))
	fmt.Fprintf(tw, "+%d deltas\t%d\t%s\t%.2fx\n", churnDeltas, deltaShards, ms(withDeltas),
		float64(withDeltas)/float64(base))
	fmt.Fprintf(tw, "compacted (%d→%d shards, %s ms off-path)\t%d\t%s\t%.2fx\n",
		res.Merged, len(res.Into), ms(res.Elapsed), c2.Snapshot().Len(), ms(compacted),
		float64(compacted)/float64(base))
	return tw.Flush()
}
