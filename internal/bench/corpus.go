package bench

import (
	"context"
	"fmt"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/dataset"
)

// E12's query subset: the XMark workload queries (Q5–Q7), whose output
// nodes live at or below record level so sharded evaluation returns the
// same answer set as a single engine.
var corpusQueries = []Query{
	{ID: "Q5", Kind: dataset.XMark, Text: `//item[description//text contains "vintage"]/name`},
	{ID: "Q6", Kind: dataset.XMark, Text: `//person[profile/age]/name`},
	{ID: "Q7", Kind: dataset.XMark, Text: `//open_auction[bidder/increase][seller]`},
}

// E12CorpusFanout serves one generated XMark document as a sharded corpus
// and sweeps the shard count: per-query latency should shrink as the
// parallel fan-out spreads the twig joins across shards, up to the point
// where merge overhead and worker contention eat the gains.
func (r *Runner) E12CorpusFanout() error {
	r.header("E12", "corpus fan-out: query latency vs shard count")

	d, err := dataset.Build(dataset.XMark, r.cfg.Scale, r.cfg.Seed)
	if err != nil {
		return err
	}

	const reps = 5
	tw := r.table()
	fmt.Fprintln(tw, "shards\tbuild ms\tQ5 ms\tQ6 ms\tQ7 ms\ttotal ms\tspeedup")
	var base time.Duration
	for _, parts := range []int{1, 2, 4, 8} {
		start := time.Now()
		c, err := corpus.FromDocument(fmt.Sprintf("xmark-p%d", parts), d, parts, corpus.Config{})
		if err != nil {
			return err
		}
		buildTime := time.Since(start)
		if got := c.Snapshot().Len(); got != parts {
			return fmt.Errorf("E12: asked for %d shards, got %d", parts, got)
		}

		var perQuery []time.Duration
		var total time.Duration
		for _, q := range corpusQueries {
			parsed := mustParse(q.Text)
			// One warm-up round absorbs first-touch costs, then the
			// measured repetitions average out scheduler noise.
			if _, err := c.SearchHits(context.Background(), parsed, core.SearchOptions{K: 100}); err != nil {
				return err
			}
			start = time.Now()
			for i := 0; i < reps; i++ {
				if _, err := c.SearchHits(context.Background(), parsed, core.SearchOptions{K: 100}); err != nil {
					return err
				}
			}
			elapsed := time.Since(start) / reps
			perQuery = append(perQuery, elapsed)
			total += elapsed
		}
		if parts == 1 {
			base = total
		}
		speedup := float64(base) / float64(total)
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%.2fx\n",
			parts, ms(buildTime), ms(perQuery[0]), ms(perQuery[1]), ms(perQuery[2]), ms(total), speedup)
	}
	return tw.Flush()
}
