package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lotusx/internal/faults"
	"lotusx/internal/metrics"
)

func openTestJournal(t *testing.T, dir string, cfg JournalConfig) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, cfg)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func spoolFile(t *testing.T, dir, name string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte("<doc/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestJournalAcceptTerminalLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, filepath.Join(dir, "_journal"), JournalConfig{})
	spool := spoolFile(t, dir, "spool.xml")

	id, err := j.Accept(context.Background(), JournalRecord{
		Kind: "dataset", Dataset: "lib", Parts: 2, Spool: spool, Bytes: 6, Hash: "abc",
	})
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if !strings.HasPrefix(id, "w") {
		t.Fatalf("id = %q", id)
	}
	if p := j.Pending(); len(p) != 1 || p[0].ID != id || p[0].Dataset != "lib" {
		t.Fatalf("pending = %+v", p)
	}
	if !j.SpoolReferenced(spool) {
		t.Fatal("spool not referenced while pending")
	}

	if err := j.Terminal(context.Background(), id, OpDone, nil); err != nil {
		t.Fatalf("Terminal: %v", err)
	}
	if p := j.Pending(); len(p) != 0 {
		t.Fatalf("pending after terminal = %+v", p)
	}
	if _, err := os.Stat(spool); !os.IsNotExist(err) {
		t.Fatal("spool not deleted after terminal record")
	}
	// Terminal on a closed entry is a no-op, not an error.
	if err := j.Terminal(context.Background(), id, OpDone, nil); err != nil {
		t.Fatalf("repeat Terminal: %v", err)
	}
}

func TestJournalRecoversPendingAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "_journal")
	j := openTestJournal(t, jdir, JournalConfig{})
	ctx := context.Background()

	var ids []string
	for _, ds := range []string{"a", "b", "c"} {
		id, err := j.Accept(ctx, JournalRecord{Kind: "dataset", Dataset: ds, Spool: spoolFile(t, dir, ds+".xml")})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := j.Terminal(ctx, ids[1], OpDone, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, jdir, JournalConfig{})
	p := j2.Pending()
	if len(p) != 2 || p[0].Dataset != "a" || p[1].Dataset != "c" {
		t.Fatalf("recovered pending = %+v", p)
	}
	// Reopening compacted the file down to the pending accepts.
	b, err := os.ReadFile(filepath.Join(jdir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n != 2 {
		t.Fatalf("compacted journal has %d lines, want 2:\n%s", n, b)
	}
	// New IDs continue past the recovered sequence — no reuse.
	id, err := j2.Accept(ctx, JournalRecord{Kind: "dataset", Dataset: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if idSeq(id) <= idSeq(ids[2]) {
		t.Fatalf("new id %q does not advance past recovered %q", id, ids[2])
	}
}

func TestJournalToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "_journal")
	j := openTestJournal(t, jdir, JournalConfig{})
	ctx := context.Background()
	if _, err := j.Accept(ctx, JournalRecord{Kind: "dataset", Dataset: "kept"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn, unparsable final line.
	path := filepath.Join(jdir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"w0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, jdir, JournalConfig{})
	p := j2.Pending()
	if len(p) != 1 || p[0].Dataset != "kept" {
		t.Fatalf("pending after torn tail = %+v", p)
	}
	// The compaction on open rewrote the file without the torn tail.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"w0000`+"\n") || !strings.HasSuffix(string(b), "\n") {
		t.Fatalf("torn tail survived compaction:\n%s", b)
	}
}

func TestJournalAcceptFaultRefusesDurably(t *testing.T) {
	reg := faults.New()
	reg.Enable(faults.Injection{
		Site: FaultJournal,
		Keys: []string{"accept:lib"},
		Err:  errors.New("disk full"),
	})
	dir := t.TempDir()
	j := openTestJournal(t, filepath.Join(dir, "_journal"), JournalConfig{Faults: reg})

	if _, err := j.Accept(context.Background(), JournalRecord{Kind: "dataset", Dataset: "lib"}); err == nil {
		t.Fatal("Accept with armed fault succeeded")
	}
	if p := j.Pending(); len(p) != 0 {
		t.Fatalf("failed accept left pending state: %+v", p)
	}
	// Other datasets are unaffected (the key scopes the fault).
	if _, err := j.Accept(context.Background(), JournalRecord{Kind: "dataset", Dataset: "other"}); err != nil {
		t.Fatalf("unfaulted accept: %v", err)
	}
}

func TestJournalTerminalFaultKeepsPendingAndSpool(t *testing.T) {
	reg := faults.New()
	reg.Enable(faults.Injection{
		Site: FaultJournal,
		Keys: []string{"terminal:lib"},
		Err:  errors.New("io error"),
	})
	dir := t.TempDir()
	jdir := filepath.Join(dir, "_journal")
	j := openTestJournal(t, jdir, JournalConfig{Faults: reg})
	spool := spoolFile(t, dir, "spool.xml")
	ctx := context.Background()

	id, err := j.Accept(ctx, JournalRecord{Kind: "dataset", Dataset: "lib", Spool: spool})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal(ctx, id, OpDone, nil); err == nil {
		t.Fatal("Terminal with armed fault succeeded")
	}
	// The crash window: the entry stays pending and the spool stays on disk,
	// so a restart replays the job.
	if p := j.Pending(); len(p) != 1 || p[0].ID != id {
		t.Fatalf("pending after failed terminal = %+v", p)
	}
	if _, err := os.Stat(spool); err != nil {
		t.Fatalf("spool gone despite failed terminal: %v", err)
	}
	j.Close()

	j2 := openTestJournal(t, jdir, JournalConfig{})
	if p := j2.Pending(); len(p) != 1 || p[0].Spool != spool {
		t.Fatalf("restart does not see the job: %+v", p)
	}
}

func TestJournalMetrics(t *testing.T) {
	lc := metrics.New().Lifecycle()
	dir := t.TempDir()
	j := openTestJournal(t, filepath.Join(dir, "_journal"), JournalConfig{Metrics: lc})
	ctx := context.Background()

	id, err := j.Accept(ctx, JournalRecord{Kind: "dataset", Dataset: "lib"})
	if err != nil {
		t.Fatal(err)
	}
	if lc.JournalAccepted.Load() != 1 || lc.JournalPending() != 1 {
		t.Fatalf("after accept: accepted=%d pending=%d", lc.JournalAccepted.Load(), lc.JournalPending())
	}
	if err := j.Terminal(ctx, id, OpDone, nil); err != nil {
		t.Fatal(err)
	}
	if lc.JournalCompleted.Load() != 1 || lc.JournalPending() != 0 {
		t.Fatalf("after terminal: completed=%d pending=%d", lc.JournalCompleted.Load(), lc.JournalPending())
	}
}

func TestJournalClosedRefusesAccept(t *testing.T) {
	j := openTestJournal(t, filepath.Join(t.TempDir(), "_journal"), JournalConfig{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Accept(context.Background(), JournalRecord{Dataset: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after Close: %v", err)
	}
}

func TestQueueDrainFinishesQueuedJobs(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 8})
	started := make(chan struct{})
	var ran [3]bool
	for i := 0; i < 3; i++ {
		i := i
		_, _, err := q.Enqueue(Request{
			Kind: "dataset", Dataset: string(rune('a' + i)),
			Run: func(ctx context.Context) (Result, error) {
				if i == 0 {
					close(started)
					time.Sleep(20 * time.Millisecond)
				}
				ran[i] = true
				return Result{}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !ran[0] || !ran[1] || !ran[2] {
		t.Fatalf("drain dropped queued jobs: ran=%v", ran)
	}
	// Enqueue after drain is refused; Close after Drain is a safe no-op.
	if _, _, err := q.Enqueue(Request{Kind: "dataset", Dataset: "z", Run: func(context.Context) (Result, error) { return Result{}, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after drain: %v", err)
	}
	q.Close()
}

func TestQueueDrainDeadlineCancelsRunning(t *testing.T) {
	q := New(Config{Workers: 1})
	started := make(chan struct{})
	sawCancel := make(chan error, 1)
	_, _, err := q.Enqueue(Request{
		Kind: "dataset", Dataset: "slow",
		Run: func(ctx context.Context) (Result, error) {
			close(started)
			<-ctx.Done()
			sawCancel <- ctx.Err()
			return Result{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); err == nil {
		t.Fatal("Drain under an expired deadline reported success")
	}
	// The expired drain cancelled the job context so the worker could exit.
	select {
	case err := <-sawCancel:
		if err == nil {
			t.Fatal("job saw nil ctx error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("running job never saw cancellation")
	}
	q.Close()
}
