package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotusx/internal/faults"
	"lotusx/internal/metrics"
)

func waitDone(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	job, err := q.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return job
}

func TestQueueRunsJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	job, created, err := q.Enqueue(Request{
		Kind:    "dataset",
		Dataset: "lib",
		Bytes:   42,
		Run: func(ctx context.Context) (Result, error) {
			return Result{Shards: 3, Seq: 7}, nil
		},
	})
	if err != nil || !created {
		t.Fatalf("enqueue: created=%v err=%v", created, err)
	}
	if job.State != StateQueued && job.State != StateRunning {
		t.Fatalf("fresh job state %q", job.State)
	}
	final := waitDone(t, q, job.ID)
	if final.State != StateDone || final.Shards != 3 || final.Seq != 7 || final.Bytes != 42 {
		t.Fatalf("final job: %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatalf("terminal job missing timings: %+v", final)
	}
	got, err := q.Get(job.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("Get after done: %+v err=%v", got, err)
	}
}

func TestQueueFailedJobKeepsError(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	job, _, err := q.Enqueue(Request{
		Kind: "dataset",
		Run: func(ctx context.Context) (Result, error) {
			return Result{}, errors.New("boom")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, q, job.ID)
	if final.State != StateFailed || final.Error != "boom" {
		t.Fatalf("failed job: %+v", final)
	}
}

// TestQueueDedup: identical keys submitted while the first job is live
// coalesce onto it; the extra request's cleanup still runs.
func TestQueueDedup(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	release := make(chan struct{})
	var runs, cleanups atomic.Int64
	mk := func() Request {
		return Request{
			Kind: "dataset",
			Key:  "dataset:lib:abc:1",
			Run: func(ctx context.Context) (Result, error) {
				runs.Add(1)
				<-release
				return Result{Shards: 1}, nil
			},
			Cleanup: func() { cleanups.Add(1) },
		}
	}
	first, created, err := q.Enqueue(mk())
	if err != nil || !created {
		t.Fatalf("first enqueue: created=%v err=%v", created, err)
	}
	second, created, err := q.Enqueue(mk())
	if err != nil {
		t.Fatal(err)
	}
	if created || second.ID != first.ID {
		t.Fatalf("identical enqueue not coalesced: created=%v id=%s want %s", created, second.ID, first.ID)
	}
	if second.Deduped != 1 {
		t.Fatalf("dedup count %d, want 1", second.Deduped)
	}
	if n := cleanups.Load(); n != 1 {
		t.Fatalf("coalesced request's cleanup ran %d times, want 1 (immediately)", n)
	}
	close(release)
	waitDone(t, q, first.ID)
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times, want 1", runs.Load())
	}
	if cleanups.Load() != 2 {
		t.Fatalf("cleanups %d, want 2 (coalesced + winner)", cleanups.Load())
	}

	// A terminal job no longer absorbs submissions: same key runs again.
	third, created, err := q.Enqueue(mk())
	if err != nil || !created {
		t.Fatalf("post-terminal enqueue: created=%v err=%v", created, err)
	}
	if third.ID == first.ID {
		t.Fatal("terminal job absorbed a new submission")
	}
	waitDone(t, q, third.ID)
}

func TestQueueFullRejects(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 1})
	defer q.Close()
	block := make(chan struct{})
	defer close(block)
	// One running (holds the worker), one queued (fills intake).
	busy := Request{Kind: "x", Run: func(ctx context.Context) (Result, error) {
		<-block
		return Result{}, nil
	}}
	if _, _, err := q.Enqueue(busy); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked up the first job yet; fill until rejected.
	var cleaned atomic.Int64
	deadline := time.After(5 * time.Second)
	for {
		_, _, err := q.Enqueue(Request{
			Kind:    "x",
			Run:     busy.Run,
			Cleanup: func() { cleaned.Add(1) },
		})
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
		}
	}
	if cleaned.Load() == 0 {
		t.Fatal("rejected request's cleanup did not run")
	}
}

func TestQueueListNewestFirst(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		job, _, err := q.Enqueue(Request{
			Kind: "x",
			Run:  func(ctx context.Context) (Result, error) { return Result{}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
		waitDone(t, q, job.ID)
	}
	list := q.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i, job := range list {
		if want := ids[len(ids)-1-i]; job.ID != want {
			t.Fatalf("list[%d] = %s, want %s (newest first)", i, job.ID, want)
		}
	}
}

// TestQueueRetention: terminal jobs age out once the ring is full; live jobs
// never do.
func TestQueueRetention(t *testing.T) {
	q := New(Config{Workers: 1, Retain: 2})
	defer q.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		job, _, err := q.Enqueue(Request{
			Kind: "x",
			Run:  func(ctx context.Context) (Result, error) { return Result{}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, q, job.ID)
		ids = append(ids, job.ID)
	}
	if _, err := q.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest terminal job still retained (err=%v)", err)
	}
	if _, err := q.Get(ids[3]); err != nil {
		t.Fatalf("newest terminal job evicted: %v", err)
	}
}

func TestQueueCloseRejectsAndDrains(t *testing.T) {
	q := New(Config{Workers: 2})
	started := make(chan struct{})
	var finished atomic.Bool
	job, _, err := q.Enqueue(Request{
		Kind: "x",
		Run: func(ctx context.Context) (Result, error) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			finished.Store(true)
			return Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	q.Close() // blocks until the in-flight job drains
	if !finished.Load() {
		t.Fatal("Close returned before the running job finished")
	}
	if _, _, err := q.Enqueue(Request{
		Kind: "x",
		Run:  func(ctx context.Context) (Result, error) { return Result{}, nil },
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	if got, err := q.Get(job.ID); err != nil || got.State != StateDone {
		t.Fatalf("job after close: %+v err=%v", got, err)
	}
}

// TestQueueFaultInjection: the ingest/job site fails jobs by dataset key
// without touching the Run body — the deterministic failure path the API
// tests lean on.
func TestQueueFaultInjection(t *testing.T) {
	reg := faults.New()
	reg.Enable(faults.Injection{Site: FaultJob, Keys: []string{"lib"}, Err: errors.New("injected")})
	q := New(Config{Workers: 1, Faults: reg})
	defer q.Close()
	ran := false
	job, _, err := q.Enqueue(Request{
		Kind:    "dataset",
		Dataset: "lib",
		Run: func(ctx context.Context) (Result, error) {
			ran = true
			return Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, q, job.ID)
	if final.State != StateFailed || final.Error != "injected" {
		t.Fatalf("job under injection: %+v", final)
	}
	if ran {
		t.Fatal("Run executed despite the fault firing first")
	}
	// Other datasets are untouched.
	ok, _, err := q.Enqueue(Request{
		Kind:    "dataset",
		Dataset: "other",
		Run:     func(ctx context.Context) (Result, error) { return Result{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, q, ok.ID); final.State != StateDone {
		t.Fatalf("unkeyed dataset failed: %+v", final)
	}
}

// TestQueueMetrics: the lotusx_ingest_* family tracks the lifecycle.
func TestQueueMetrics(t *testing.T) {
	reg := metrics.New()
	im := reg.Ingest()
	q := New(Config{Workers: 1, Metrics: im})
	ok, _, err := q.Enqueue(Request{
		Kind: "x", Key: "k",
		Run: func(ctx context.Context) (Result, error) { return Result{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, q, ok.ID)
	if _, _, err := q.Enqueue(Request{
		Kind: "x",
		Run:  func(ctx context.Context) (Result, error) { return Result{}, errors.New("no") },
	}); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if n := im.Enqueued.Load(); n != 2 {
		t.Fatalf("enqueued %d, want 2", n)
	}
	if im.Done.Load() != 1 || im.Failed.Load() != 1 {
		t.Fatalf("done=%d failed=%d, want 1/1", im.Done.Load(), im.Failed.Load())
	}
	if im.Run.Count() != 2 {
		t.Fatalf("run histogram count %d, want 2", im.Run.Count())
	}
}

// TestQueueConcurrentEnqueue hammers dedup from many goroutines: exactly one
// job per key wins (run under -race).
func TestQueueConcurrentEnqueue(t *testing.T) {
	q := New(Config{Workers: 4, Capacity: 64})
	defer q.Close()
	release := make(chan struct{})
	var runs atomic.Int64
	var mu sync.Mutex
	idsByKey := map[string]map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%4)
			job, _, err := q.Enqueue(Request{
				Kind: "x", Key: key,
				Run: func(ctx context.Context) (Result, error) {
					runs.Add(1)
					<-release
					return Result{}, nil
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if idsByKey[key] == nil {
				idsByKey[key] = map[string]bool{}
			}
			idsByKey[key][job.ID] = true
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	close(release)
	for key, ids := range idsByKey {
		if len(ids) != 1 {
			t.Errorf("key %s spread over %d jobs, want 1", key, len(ids))
		}
	}
	// Drain before Close so -race sees the full lifecycle.
	for _, job := range q.List() {
		waitDone(t, q, job.ID)
	}
	if runs.Load() != 4 {
		t.Fatalf("ran %d jobs, want 4 (one per key)", runs.Load())
	}
}
