package ingest

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lotusx/internal/faults"
	"lotusx/internal/metrics"
)

// The durable ingest journal makes 202 Accepted a promise that survives a
// crash.  Before an async admin write answers 202, an accept record —
// dataset, shard, split factor, spool path, content hash — is appended to a
// journal file and fsync'd; when the job reaches a terminal state, a
// terminal record is appended (fsync'd) and only then is the spooled body
// deleted.  On restart, accepts without a terminal are the pending set: the
// server re-enqueues each one from its retained spool.  Replay is idempotent
// because corpus publication replaces same-name shards and groups — running
// an accept twice converges on the same corpus state.
//
// Jobs that die mid-run because the queue's context was cancelled (process
// shutdown) deliberately write NO terminal record, so they stay pending and
// replay.  Jobs that fail on their own error write a "failed" terminal —
// a poisoned body must not be retried on every restart forever.
//
// The journal file is JSON lines.  A crash can tear the final line; the
// reader stops at the first unparsable line, which by append ordering can
// only be the torn tail.  Opening the journal compacts it: the file is
// rewritten holding only the pending accepts, via the same temp + fsync +
// rename discipline the corpus manifest uses.

// FaultJournal names the injection site on every journal append; the key is
// "accept:<dataset>" or "terminal:<dataset>", so tests can fail exactly the
// accept (durability refused, the write answers 500) or exactly the
// terminal (the crash window after publish — replay must be idempotent).
const FaultJournal = "ingest/journal"

// journalName is the journal file's name inside its directory.
const journalName = "ingest.journal"

// Journal ops.  OpAccept opens an entry; the terminal ops close it.
const (
	OpAccept   = "accept"
	OpDone     = "done"     // the job ran to completion
	OpFailed   = "failed"   // the job ran and failed on its own error
	OpDeduped  = "deduped"  // the submission coalesced onto a live job
	OpRejected = "rejected" // the queue refused the job (full / closed)
)

// JournalRecord is one journal line.  Accept records carry the full job
// description; terminal records carry only the ID, op and error.
type JournalRecord struct {
	Op      string    `json:"op"`
	ID      string    `json:"id"`
	Kind    string    `json:"kind,omitempty"`    // accept: "dataset" or "shard"
	Dataset string    `json:"dataset,omitempty"` // accept
	Shard   string    `json:"shard,omitempty"`   // accept, kind "shard"
	Parts   int       `json:"parts,omitempty"`   // accept: the ?shards=N split factor
	Spool   string    `json:"spool,omitempty"`   // accept: path of the spooled body
	Bytes   int64     `json:"bytes,omitempty"`   // accept: spooled body size
	Hash    string    `json:"hash,omitempty"`    // accept: hex sha256 of the body
	Error   string    `json:"error,omitempty"`   // terminal "failed"
	At      time.Time `json:"at"`
}

// JournalConfig configures a Journal.
type JournalConfig struct {
	// Faults, when non-nil, arms the FaultJournal injection site.
	Faults *faults.Registry
	// Metrics, when non-nil, receives journal counters and the pending gauge.
	Metrics *metrics.LifecycleMetrics
	// Logger, when non-nil, logs recovery and append failures.
	Logger *slog.Logger
}

// Journal is the crash-safe accept/terminal log.  All methods are safe for
// concurrent use; appends are serialized and fsync'd before they return.
type Journal struct {
	dir string
	cfg JournalConfig

	mu      sync.Mutex
	f       *os.File
	seq     int64                    // last assigned numeric ID
	pending map[string]JournalRecord // accepts without a terminal, by ID
	closed  bool
}

// OpenJournal opens (creating if needed) the journal in dir, recovers the
// pending set from any prior process's log, and compacts the file down to
// those pending accepts.  Call Pending for the records to replay.
func OpenJournal(dir string, cfg JournalConfig) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, cfg: cfg, pending: make(map[string]JournalRecord)}
	path := filepath.Join(dir, journalName)
	if err := j.recover(path); err != nil {
		return nil, err
	}
	if err := j.compact(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.gauge()
	return j, nil
}

// gauge publishes the current pending count.
func (j *Journal) gauge() {
	if m := j.cfg.Metrics; m != nil {
		m.SetJournalPending(len(j.pending))
	}
}

// recover replays the journal file into the pending map.  A torn final line
// (the crash was mid-append) ends the scan; everything before it is intact
// because appends are sequential and fsync'd.
func (j *Journal) recover(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if lg := j.cfg.Logger; lg != nil {
				lg.Warn("ingest journal: torn record, stopping recovery here", "err", err)
			}
			break
		}
		if n := idSeq(rec.ID); n > j.seq {
			j.seq = n
		}
		if rec.Op == OpAccept {
			j.pending[rec.ID] = rec
		} else {
			delete(j.pending, rec.ID)
		}
	}
	return sc.Err()
}

// compact rewrites the journal to hold only the pending accepts — temp file,
// fsync, rename, directory sync, the corpus manifest's publish discipline.
func (j *Journal) compact(path string) error {
	tmp, err := os.CreateTemp(j.dir, journalName+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	for _, rec := range j.Pending() {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(j.dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// idSeq parses the numeric tail of a journal ID ("w000042" -> 42), 0 when
// the ID has another shape.
func idSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'w' {
		return 0
	}
	var n int64
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// Pending returns the recovered accepts without a terminal record, in
// journal (ID) order — the set to replay after a restart.
func (j *Journal) Pending() []JournalRecord {
	j.mu.Lock()
	out := make([]JournalRecord, 0, len(j.pending))
	for _, rec := range j.pending {
		out = append(out, rec)
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return idSeq(out[a].ID) < idSeq(out[b].ID) })
	return out
}

// Accept durably records one accepted ingest before its 202 goes out,
// returning the journal ID the terminal record must quote.  An error means
// the durable promise cannot be made; the caller must fail the request and
// clean its spool itself.
func (j *Journal) Accept(ctx context.Context, rec JournalRecord) (string, error) {
	if err := j.cfg.Faults.Fire(ctx, FaultJournal, "accept:"+rec.Dataset); err != nil {
		return "", fmt.Errorf("journal accept: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return "", ErrClosed
	}
	j.seq++
	rec.Op = OpAccept
	rec.ID = fmt.Sprintf("w%06d", j.seq)
	rec.At = time.Now()
	if err := j.append(rec); err != nil {
		return "", err
	}
	j.pending[rec.ID] = rec
	if m := j.cfg.Metrics; m != nil {
		m.JournalAccepted.Add(1)
		m.SetJournalPending(len(j.pending))
	}
	return rec.ID, nil
}

// Terminal durably closes the identified accept with op (one of the
// terminal ops; jobErr fills the failure message for OpFailed) and then —
// only then — deletes the retained spool.  Unknown IDs are a no-op: the
// entry was already closed.  On an append error the entry stays pending and
// the spool stays on disk, so a restart replays the job; idempotent
// publication makes the retry safe.
func (j *Journal) Terminal(ctx context.Context, id, op string, jobErr error) error {
	j.mu.Lock()
	rec, ok := j.pending[id]
	if !ok || j.closed {
		j.mu.Unlock()
		return nil
	}
	if err := j.cfg.Faults.Fire(ctx, FaultJournal, "terminal:"+rec.Dataset); err != nil {
		j.mu.Unlock()
		if lg := j.cfg.Logger; lg != nil {
			lg.Warn("ingest journal: terminal append failed; job stays pending for replay", "id", id, "err", err)
		}
		return fmt.Errorf("journal terminal: %w", err)
	}
	t := JournalRecord{Op: op, ID: id, At: time.Now()}
	if jobErr != nil {
		t.Error = jobErr.Error()
	}
	if err := j.append(t); err != nil {
		j.mu.Unlock()
		if lg := j.cfg.Logger; lg != nil {
			lg.Warn("ingest journal: terminal append failed; job stays pending for replay", "id", id, "err", err)
		}
		return err
	}
	delete(j.pending, id)
	if m := j.cfg.Metrics; m != nil {
		m.JournalCompleted.Add(1)
		m.SetJournalPending(len(j.pending))
	}
	j.mu.Unlock()
	if rec.Spool != "" {
		os.Remove(rec.Spool)
	}
	return nil
}

// append writes one record and fsyncs.  Caller holds j.mu.
func (j *Journal) append(rec JournalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// SpoolReferenced reports whether path is the retained spool of a pending
// record — the startup orphan sweep must not delete those.
func (j *Journal) SpoolReferenced(path string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, rec := range j.pending {
		if rec.Spool == path {
			return true
		}
	}
	return false
}

// Close closes the journal file.  Pending entries stay pending — that is
// the point: they replay on the next open.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
