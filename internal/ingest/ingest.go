// Package ingest is the async ingestion pipeline behind the admin write API:
// a bounded in-memory job queue with a fixed worker pool.  Admin handlers
// spool the request body, enqueue a job and answer 202 immediately; workers
// run the actual split+index+publish (internal/corpus) off the request path,
// and clients poll GET /api/v1/jobs/{id} until the job reaches a terminal
// state.
//
// Concurrent identical submissions coalesce: a job carries a dedup key
// (dataset name + content hash + split arity, computed by the handler), and
// while a job with that key is queued or running, further enqueues return the
// existing job instead of creating a new one — two clients uploading the same
// document index it once and poll the same job.
//
// The queue itself is in-memory, but accepted work survives a crash: the
// admin layer records every accepted ingest in the durable Journal (this
// package) before answering 202, keeps the spooled body until the job
// reaches a terminal state, and replays accepts without a terminal record on
// restart.  Replay is idempotent because corpus publication replaces
// same-name shards and groups.  Terminal jobs are retained in a bounded ring
// for polling, then forgotten — the journal, not the ring, is the durable
// promise.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
)

// FaultJob names the injection site at the head of every job run; the key is
// the job's dataset.  An armed injection fails the job as if its Run had —
// the deterministic path to a failed job for tests.
const FaultJob = "ingest/job"

// ErrQueueFull reports that Enqueue found the queue at capacity.  The admin
// layer maps it to 503 so clients retry with backoff rather than pile on.
var ErrQueueFull = errors.New("ingest: job queue full")

// ErrClosed reports an Enqueue after Close.
var ErrClosed = errors.New("ingest: queue closed")

// ErrUnknownJob reports a Get/Wait for an id that was never enqueued or has
// aged out of retention.
var ErrUnknownJob = errors.New("ingest: unknown job")

// Job states, in lifecycle order.  queued and running are live; done and
// failed are terminal.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Result is what a job's Run reports on success.
type Result struct {
	// Shards counts the shards the job published (0 for jobs that publish
	// none, e.g. a compaction that found nothing to do).
	Shards int
	// Seq is the corpus snapshot sequence the job published, 0 if none.
	Seq uint64
}

// Request describes one unit of work to enqueue.
type Request struct {
	// Kind labels the work: "dataset" (create/replace), "shard" (delta
	// append), "compact" (fold deltas into base shards).
	Kind string
	// Dataset names the corpus the job mutates.
	Dataset string
	// Key is the dedup key; enqueues sharing a Key while one is live coalesce
	// onto the existing job.  Empty disables dedup for this job.
	Key string
	// Bytes is the spooled payload size, for the job's status view.
	Bytes int64
	// Run does the work.  It must honor ctx and is called from a worker
	// goroutine with an obs trace rooted in ctx.
	Run func(ctx context.Context) (Result, error)
	// Cleanup, when non-nil, runs exactly once after Run returns (or, when
	// the queue shuts down before the job starts, when the job is failed) —
	// the hook that deletes the spooled body.
	Cleanup func()
}

// Job is an immutable snapshot of one job's status — the JSON body of the
// jobs API.
type Job struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Dataset string `json:"dataset"`
	State   string `json:"state"`
	// Error is the failure message; set only in state "failed".
	Error string `json:"error,omitempty"`
	// Bytes is the spooled payload size.
	Bytes int64 `json:"bytes,omitempty"`
	// Shards and Seq report what the job published; set only in state "done".
	Shards int    `json:"shards,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	// Deduped counts later identical submissions coalesced onto this job.
	Deduped int64 `json:"deduped,omitempty"`

	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	// QueueMS and RunMS are the measured phase durations, milliseconds.
	// QueueMS is set once the job starts; RunMS once it finishes.
	QueueMS float64 `json:"queueMs,omitempty"`
	RunMS   float64 `json:"runMs,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j Job) Terminal() bool { return j.State == StateDone || j.State == StateFailed }

// job is the live, mutable record behind a Job snapshot.
type job struct {
	id      string
	kind    string
	dataset string
	key     string
	bytes   int64
	run     func(ctx context.Context) (Result, error)
	cleanup func()

	mu       sync.Mutex
	state    string
	err      string
	res      Result
	deduped  int64
	enqueued time.Time
	started  time.Time
	finished time.Time

	done chan struct{} // closed on terminal state
}

// snapshot materializes the job's public view.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Job{
		ID:         j.id,
		Kind:       j.kind,
		Dataset:    j.dataset,
		State:      j.state,
		Error:      j.err,
		Bytes:      j.bytes,
		Deduped:    j.deduped,
		EnqueuedAt: j.enqueued,
	}
	if j.state == StateDone {
		s.Shards = j.res.Shards
		s.Seq = j.res.Seq
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
		s.QueueMS = durMS(j.started.Sub(j.enqueued))
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
		s.RunMS = durMS(j.finished.Sub(j.started))
	}
	return s
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Config configures a Queue.  The zero value is usable: 2 workers, a
// 32-deep queue, 64 retained terminal jobs, no metrics, no fault injection.
type Config struct {
	// Workers is the worker-goroutine count (default 2).
	Workers int
	// Capacity bounds the queued-but-not-running backlog (default 32);
	// Enqueue beyond it returns ErrQueueFull.
	Capacity int
	// Retain bounds how many terminal jobs stay pollable (default 64);
	// beyond it the oldest terminal job is forgotten.
	Retain int
	// Metrics, when non-nil, receives job counters and phase latencies.
	Metrics *metrics.IngestMetrics
	// Stages, when non-nil, receives each finished job's span tree folded
	// into per-stage histograms (same scheme as the HTTP layer's traces).
	Stages *metrics.Registry
	// Faults, when non-nil, arms the FaultJob injection site.
	Faults *faults.Registry
	// Logger, when non-nil, logs job completions and failures.
	Logger *slog.Logger
}

// Queue is the bounded worker pool.  All methods are safe for concurrent use.
type Queue struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[string]*job // every retained job, by id
	active   map[string]*job // queued or running jobs, by dedup key
	terminal []string        // terminal job ids, oldest first (retention ring)
	intake   chan *job
}

// New starts a Queue with cfg's worker pool.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 32
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
		intake: make(chan *job, cfg.Capacity),
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Enqueue submits req.  It returns the job's status snapshot plus created ==
// true for a fresh job, or created == false when the submission coalesced
// onto a live identical job (same non-empty Key).  It fails fast with
// ErrQueueFull at capacity and ErrClosed after Close.
func (q *Queue) Enqueue(req Request) (Job, bool, error) {
	if req.Run == nil {
		return Job{}, false, errors.New("ingest: request without Run")
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Job{}, false, ErrClosed
	}
	if req.Key != "" {
		if live := q.active[req.Key]; live != nil {
			live.mu.Lock()
			live.deduped++
			live.mu.Unlock()
			q.mu.Unlock()
			if m := q.cfg.Metrics; m != nil {
				m.Deduped.Add(1)
			}
			if req.Cleanup != nil {
				req.Cleanup()
			}
			return live.snapshot(), false, nil
		}
	}
	q.nextID++
	j := &job{
		id:       fmt.Sprintf("j%06d", q.nextID),
		kind:     req.Kind,
		dataset:  req.Dataset,
		key:      req.Key,
		bytes:    req.Bytes,
		run:      req.Run,
		cleanup:  req.Cleanup,
		state:    StateQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	select {
	case q.intake <- j:
	default:
		q.mu.Unlock()
		if m := q.cfg.Metrics; m != nil {
			m.Rejected.Add(1)
		}
		if req.Cleanup != nil {
			req.Cleanup()
		}
		return Job{}, false, ErrQueueFull
	}
	q.jobs[j.id] = j
	if j.key != "" {
		q.active[j.key] = j
	}
	depth := len(q.intake)
	q.mu.Unlock()
	if m := q.cfg.Metrics; m != nil {
		m.Enqueued.Add(1)
		m.SetDepth(depth)
	}
	return j.snapshot(), true, nil
}

// Get returns the status snapshot of the identified job.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return Job{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// List returns every retained job, newest enqueue first.
func (q *Queue) List() []Job {
	q.mu.Lock()
	all := make([]*job, 0, len(q.jobs))
	for _, j := range q.jobs {
		all = append(all, j)
	}
	q.mu.Unlock()
	out := make([]Job, len(all))
	for i, j := range all {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].EnqueuedAt.Equal(out[b].EnqueuedAt) {
			return out[a].EnqueuedAt.After(out[b].EnqueuedAt)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Wait blocks until the identified job reaches a terminal state (returning
// its final snapshot) or ctx is done.  It backs the ?sync=1 escape hatch.
func (q *Queue) Wait(ctx context.Context, id string) (Job, error) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return Job{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Depth returns the queued-but-not-running backlog.
func (q *Queue) Depth() int { return len(q.intake) }

// Close stops intake, cancels running jobs' contexts, fails still-queued
// jobs and waits for the workers to exit.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.intake)
	q.mu.Unlock()
	q.cancel()
	q.wg.Wait()
}

// Drain stops intake and waits for queued and running jobs to finish, up to
// ctx's deadline.  Unlike Close, running jobs keep their context until the
// deadline expires, so a SIGTERM'd server finishes accepted work instead of
// abandoning it.  On timeout the remaining jobs' contexts are cancelled and
// Drain waits for the workers to exit before returning ctx's error.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.intake)
	}
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	q.cancel()
	<-done
	return err
}

// worker drains the intake channel until Close.
func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.intake {
		q.runJob(j)
	}
}

// runJob executes one job and drives its state machine.
func (q *Queue) runJob(j *job) {
	m := q.cfg.Metrics
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	wait := j.started.Sub(j.enqueued)
	j.mu.Unlock()
	if m != nil {
		m.SetDepth(len(q.intake))
		m.AddRunning(1)
		m.QueueWait.Observe(wait)
	}

	// Every job is traced; the finished tree folds into the per-stage
	// histograms, so ingest stage latencies (split, index, publish, compact)
	// are always-on aggregates just like the query pipeline's.
	tr := obs.New("ingest:" + j.kind)
	tr.Root().Set("dataset", j.dataset)
	ctx := obs.ContextWith(q.ctx, tr.Root())

	var res Result
	err := q.cfg.Faults.Fire(ctx, FaultJob, j.dataset)
	if err == nil {
		// If the queue shut down between dequeue and here, fail fast.
		if err = ctx.Err(); err == nil {
			res, err = j.run(ctx)
		}
	}
	if j.cleanup != nil {
		j.cleanup()
	}
	tr.Root().SetErr(err)
	tr.Finish()
	if st := q.cfg.Stages; st != nil {
		tr.Each(func(sp *obs.Span) {
			name := sp.Name()
			if !strings.HasPrefix(name, "ingest:") {
				name = "ingest:" + name
			}
			st.Stage(name).Observe(sp.Duration())
		})
	}

	j.mu.Lock()
	j.finished = time.Now()
	elapsed := j.finished.Sub(j.started)
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.res = res
	}
	j.mu.Unlock()
	close(j.done)
	q.retire(j)

	if m != nil {
		m.AddRunning(-1)
		m.Run.Observe(elapsed)
		if err != nil {
			m.Failed.Add(1)
		} else {
			m.Done.Add(1)
		}
	}
	if lg := q.cfg.Logger; lg != nil {
		if err != nil {
			lg.Error("ingest job failed", "job", j.id, "kind", j.kind, "dataset", j.dataset, "elapsed", elapsed.Round(time.Millisecond), "err", err)
		} else {
			lg.Info("ingest job done", "job", j.id, "kind", j.kind, "dataset", j.dataset, "elapsed", elapsed.Round(time.Millisecond), "shards", res.Shards, "seq", res.Seq)
		}
	}
}

// retire moves a terminal job out of the dedup set and enforces retention.
func (q *Queue) retire(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.key != "" && q.active[j.key] == j {
		delete(q.active, j.key)
	}
	q.terminal = append(q.terminal, j.id)
	for len(q.terminal) > q.cfg.Retain {
		old := q.terminal[0]
		q.terminal = q.terminal[1:]
		delete(q.jobs, old)
	}
}
