// Package httpmw is the serving middleware stack of the LotusX HTTP API:
// request-ID injection, structured request logging (log/slog), panic
// recovery with JSON 500s, per-request deadlines, a drain gate that refuses
// new work during graceful shutdown (503 + Retry-After), a semaphore
// concurrency limiter that sheds server-wide overload (503 + Retry-After),
// a per-client token-bucket rate limiter (429 + Retry-After), and
// per-endpoint metrics instrumentation.  The status split is deliberate:
// 503 says "the server as a whole cannot take this right now, try another
// instance", 429 says "you specifically are over your rate, slow down".
// The package also owns the v1 error envelope —
// {"error": {"code": ..., "message": ...}} — shared by middleware and
// handlers so every failure path answers in one shape.
package httpmw

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lotusx/internal/metrics"
)

// Middleware wraps an http.Handler with one serving concern.
type Middleware func(http.Handler) http.Handler

// Chain applies mws to h with the first middleware outermost, so
// Chain(h, a, b, c) serves as a(b(c(h))).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// ---------------------------------------------------------------- envelope

// The v1 error codes.  Every error response carries exactly one of these.
const (
	CodeBadQuery         = "bad_query"          // malformed input: body, query, parameters
	CodeNotFound         = "not_found"          // unknown dataset, node, job, or route
	CodeMethodNotAllowed = "method_not_allowed" // known path, unsupported method (see Allow)
	CodeTooLarge         = "too_large"          // request body exceeded the ingest bound
	CodeTimeout          = "timeout"            // the per-request deadline expired mid-work
	CodeOverloaded       = "overloaded"         // the concurrency limiter or job queue shed the request
	CodeGone             = "gone"               // a sunset legacy route with aliases disabled
	CodeUpstream         = "upstream_failed"    // a shard or replica could not answer (failfast fan-out)
	CodeInternal         = "internal"           // a bug: panic or unexpected failure
)

// ErrorBody is the uniform v1 error envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code, the human message, and the
// request ID to join the failure with logs and traces.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RequestID echoes X-Request-Id; absent outside the middleware stack.
	RequestID string `json:"requestId,omitempty"`
}

// WriteError writes the v1 JSON error envelope.  Prefer WriteErrorCtx inside
// the middleware stack, which also stamps the request ID into the body.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	writeErrorDetail(w, status, ErrorDetail{Code: code, Message: message})
}

// WriteErrorCtx writes the v1 JSON error envelope with the request ID from
// ctx (as injected by the RequestID middleware) stamped into the body.
func WriteErrorCtx(ctx context.Context, w http.ResponseWriter, status int, code, message string) {
	writeErrorDetail(w, status, ErrorDetail{Code: code, Message: message, RequestID: RequestIDFrom(ctx)})
}

func writeErrorDetail(w http.ResponseWriter, status int, d ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: d})
}

// CodeForStatus maps an HTTP status to its v1 error code.
func CodeForStatus(status int) string {
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case status == http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case status == http.StatusGatewayTimeout:
		return CodeTimeout
	case status == http.StatusTooManyRequests:
		return CodeOverloaded
	case status == http.StatusGone:
		return CodeGone
	case status == http.StatusBadGateway:
		return CodeUpstream
	case status >= 400 && status < 500:
		return CodeBadQuery
	default:
		return CodeInternal
	}
}

// ------------------------------------------------------------ statusWriter

// StatusWriter wraps a ResponseWriter, recording the status and byte count
// for logging, metrics and the recovery middleware.
type StatusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

// NewStatusWriter wraps w; if w is already a StatusWriter it is returned
// as-is so one request is tracked exactly once.
func NewStatusWriter(w http.ResponseWriter) *StatusWriter {
	if sw, ok := w.(*StatusWriter); ok {
		return sw
	}
	return &StatusWriter{ResponseWriter: w}
}

// WriteHeader records the status and forwards.
func (sw *StatusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

// Write forwards, defaulting the status to 200 on first write.
func (sw *StatusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Status returns the response status, 200 if only Write was called, 0 if
// nothing was written yet.
func (sw *StatusWriter) Status() int {
	if !sw.wrote {
		return 0
	}
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// Wrote reports whether any part of the response went out.
func (sw *StatusWriter) Wrote() bool { return sw.wrote }

// -------------------------------------------------------------- requestID

type ctxKey int

const requestIDKey ctxKey = 0

var requestCounter atomic.Uint64

// RequestID assigns every request a unique ID, stores it in the context and
// echoes it in the X-Request-Id response header.  An inbound X-Request-Id
// (from a proxy or a retrying client) is preserved.
func RequestID() Middleware {
	// The epoch prefix distinguishes IDs across process restarts.
	epoch := time.Now().UnixMilli()
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-Id")
			if id == "" {
				id = strconv.FormatInt(epoch, 36) + "-" + strconv.FormatUint(requestCounter.Add(1), 36)
			}
			w.Header().Set("X-Request-Id", id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		})
	}
}

// RequestIDFrom returns the request ID injected by RequestID, "" if absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ------------------------------------------------------------- annotations

const annotationsKey ctxKey = 1

// annotations collects handler-supplied attributes for the request log line.
// A mutex guards the slice: a handler may annotate from goroutines it spawns.
type annotations struct {
	mu    sync.Mutex
	attrs []slog.Attr
}

// Annotate attaches key=value to the current request's log line.  Handlers
// use it to enrich the access log with work-dependent facts middleware
// cannot know — the resolved join algorithm, the result count — joinable
// with traces and metrics via the request ID.  Outside a Logging-wrapped
// request it is a no-op.
func Annotate(ctx context.Context, key string, value any) {
	a, _ := ctx.Value(annotationsKey).(*annotations)
	if a == nil {
		return
	}
	a.mu.Lock()
	a.attrs = append(a.attrs, slog.Any(key, value))
	a.mu.Unlock()
}

// ---------------------------------------------------------------- logging

// discardLogger silences middleware that was handed a nil *slog.Logger.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Logging emits one structured log line per request: method, path, status,
// duration, bytes and request ID.  It wraps the ResponseWriter in a
// StatusWriter, which downstream middleware (Recover, Instrument) reuses.
func Logging(l *slog.Logger) Middleware {
	if l == nil {
		l = discardLogger()
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := NewStatusWriter(w)
			start := time.Now()
			ann := &annotations{}
			r = r.WithContext(context.WithValue(r.Context(), annotationsKey, ann))
			next.ServeHTTP(sw, r)
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.Status()),
				slog.Float64("durationMs", float64(time.Since(start).Microseconds())/1000),
				slog.Int64("bytes", sw.bytes),
				slog.String("requestId", RequestIDFrom(r.Context())),
			}
			ann.mu.Lock()
			attrs = append(attrs, ann.attrs...)
			ann.mu.Unlock()
			l.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		})
	}
}

// ---------------------------------------------------------------- recover

// Recover turns a handler panic into a JSON 500 envelope (when the response
// has not started) and logs the stack, instead of killing the connection —
// one bad request must not take the serving process with it.
func Recover(l *slog.Logger) Middleware {
	if l == nil {
		l = discardLogger()
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					panic(rec) // deliberate connection abort: let net/http handle it
				}
				l.LogAttrs(r.Context(), slog.LevelError, "panic",
					slog.String("path", r.URL.Path),
					slog.String("requestId", RequestIDFrom(r.Context())),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())),
				)
				if sw, ok := w.(*StatusWriter); !ok || !sw.Wrote() {
					WriteErrorCtx(r.Context(), w, http.StatusInternalServerError, CodeInternal, "internal server error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// --------------------------------------------------------------- deadline

// Deadline bounds every request with a context deadline.  Handlers that
// plumb r.Context() into evaluation (SearchContext, the context-aware
// completion entry points) stop mid-join once it expires.  A non-positive d
// disables the middleware.
func Deadline(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// ------------------------------------------------------------------ limit

// LimitOptions tunes Limit.
type LimitOptions struct {
	// RetryAfter is advertised in the Retry-After header of shed responses;
	// 0 means 1s.
	RetryAfter time.Duration
	// OnShed, when non-nil, observes every shed request (metrics hook).
	OnShed func(*http.Request)
	// Exempt, when non-nil, bypasses the limiter for matching requests —
	// e.g. the metrics endpoint must answer while the system sheds load.
	Exempt func(*http.Request) bool
}

// Limit caps in-flight requests at max with a semaphore.  Requests beyond
// the cap are shed immediately with 503 + Retry-After and the overloaded
// envelope — bounded degradation instead of collapse.  503 (not 429) because
// the condition is server-wide, not the caller's fault: a load balancer
// should retry against another instance, matching the quarantine and
// queue-full paths.  max <= 0 disables the middleware.
func Limit(max int, opts LimitOptions) Middleware {
	return func(next http.Handler) http.Handler {
		if max <= 0 {
			return next
		}
		sem := make(chan struct{}, max)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if opts.Exempt != nil && opts.Exempt(r) {
				next.ServeHTTP(w, r)
				return
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				if opts.OnShed != nil {
					opts.OnShed(r)
				}
				setRetryAfter(w, opts.RetryAfter)
				WriteErrorCtx(r.Context(), w, http.StatusServiceUnavailable, CodeOverloaded,
					"server is at capacity, retry later")
			}
		})
	}
}

// setRetryAfter advertises d (rounded up to whole seconds, minimum 1) in the
// Retry-After header; d <= 0 means 1s.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// ------------------------------------------------------------- drain gate

// DrainGateOptions tunes DrainGate.
type DrainGateOptions struct {
	// RetryAfter is advertised on refused requests; 0 means 1s.  Keep it
	// short — the instance is going away, the client should go elsewhere.
	RetryAfter time.Duration
	// OnReject, when non-nil, observes every refused request (metrics hook).
	OnReject func(*http.Request)
	// Exempt, when non-nil, bypasses the gate — observability and job polls
	// must answer while the server drains.
	Exempt func(*http.Request) bool
}

// DrainGate refuses new work with 503 + Retry-After while draining()
// reports true — the intake stop of graceful shutdown.  Requests already
// past the gate are untouched; http.Server.Shutdown waits for them, so a
// drain completes in-flight queries with zero failures from this layer.
func DrainGate(draining func() bool, opts DrainGateOptions) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !draining() || (opts.Exempt != nil && opts.Exempt(r)) {
				next.ServeHTTP(w, r)
				return
			}
			if opts.OnReject != nil {
				opts.OnReject(r)
			}
			setRetryAfter(w, opts.RetryAfter)
			WriteErrorCtx(r.Context(), w, http.StatusServiceUnavailable, CodeOverloaded,
				"server is draining for shutdown, retry against another instance")
		})
	}
}

// ------------------------------------------------------------- rate limit

// RateLimitOptions tunes RateLimit.
type RateLimitOptions struct {
	// QPS is the sustained per-client request rate; <= 0 disables the
	// middleware.
	QPS float64
	// Burst is the bucket capacity — the size of a full-speed burst a client
	// may spend before the sustained rate applies.  <= 0 derives a default of
	// max(1, ceil(2*QPS)).
	Burst int
	// MaxClients bounds the bucket table (one bucket per distinct client
	// identity); at the bound, idle buckets are evicted before new clients
	// are admitted.  0 means 4096.
	MaxClients int
	// OnLimited, when non-nil, observes every refused request and the client
	// identity it was attributed to (metrics hook).
	OnLimited func(r *http.Request, client string)
	// Exempt, when non-nil, bypasses the limiter — health, metrics and job
	// polls must answer even for a client that spent its query budget.
	Exempt func(*http.Request) bool
	// Metrics, when non-nil, receives allowed/limited/evicted counters and
	// the live client-bucket gauge.
	Metrics *metrics.AdmissionMetrics
	// Now overrides the refill clock in tests; nil means time.Now.
	Now func() time.Time
}

// ClientID resolves the identity a request is limited under: the
// X-Lotusx-Client header when present (cooperating clients and forwarding
// proxies name themselves), else the remote address host.  Deliberately not
// X-Forwarded-For — an unauthenticated upstream header would let any client
// mint fresh buckets at will.
func ClientID(r *http.Request) string {
	if id := r.Header.Get("X-Lotusx-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// tokenBucket is one client's admission state.
type tokenBucket struct {
	tokens float64
	last   time.Time // last refill
}

// RateLimit enforces a per-client token bucket: each request spends one
// token, tokens refill continuously at QPS up to Burst, and an empty bucket
// answers 429 + Retry-After (the time until the next token accrues).  429 —
// not the limiter's 503 — because the condition is this caller's own rate,
// not server overload: the hot client backs off while everyone else is
// untouched.
func RateLimit(opts RateLimitOptions) Middleware {
	return func(next http.Handler) http.Handler {
		if opts.QPS <= 0 {
			return next
		}
		burst := float64(opts.Burst)
		if opts.Burst <= 0 {
			burst = 2 * opts.QPS
			if burst < 1 {
				burst = 1
			}
		}
		maxClients := opts.MaxClients
		if maxClients <= 0 {
			maxClients = 4096
		}
		now := opts.Now
		if now == nil {
			now = time.Now
		}
		var (
			mu      sync.Mutex
			buckets = make(map[string]*tokenBucket)
		)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if opts.Exempt != nil && opts.Exempt(r) {
				next.ServeHTTP(w, r)
				return
			}
			id := ClientID(r)
			t := now()
			mu.Lock()
			b := buckets[id]
			if b == nil {
				if len(buckets) >= maxClients {
					evictIdle(buckets, t, burst/opts.QPS, opts.Metrics)
				}
				b = &tokenBucket{tokens: burst, last: t}
				buckets[id] = b
			}
			if dt := t.Sub(b.last).Seconds(); dt > 0 {
				b.tokens = min(burst, b.tokens+dt*opts.QPS)
			}
			b.last = t
			allowed := b.tokens >= 1
			var wait time.Duration
			if allowed {
				b.tokens--
			} else {
				wait = time.Duration((1 - b.tokens) / opts.QPS * float64(time.Second))
			}
			clients := len(buckets)
			mu.Unlock()
			if m := opts.Metrics; m != nil {
				m.SetClients(clients)
				if allowed {
					m.Allowed.Add(1)
				} else {
					m.Limited.Add(1)
				}
			}
			if allowed {
				next.ServeHTTP(w, r)
				return
			}
			if opts.OnLimited != nil {
				opts.OnLimited(r, id)
			}
			setRetryAfter(w, wait)
			WriteErrorCtx(r.Context(), w, http.StatusTooManyRequests, CodeOverloaded,
				"client "+id+" is over its request rate, slow down")
		})
	}
}

// evictIdle drops buckets idle long enough to have refilled completely (they
// carry no state a fresh bucket wouldn't), then — if none were — the
// longest-idle bucket, so one crawl over many client identities cannot pin
// the table.  Called with the limiter lock held.
func evictIdle(buckets map[string]*tokenBucket, now time.Time, fullRefill float64, m *metrics.AdmissionMetrics) {
	evicted := 0
	var oldestKey string
	var oldest time.Time
	for k, b := range buckets {
		if now.Sub(b.last).Seconds() >= fullRefill {
			delete(buckets, k)
			evicted++
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if evicted == 0 && oldestKey != "" {
		delete(buckets, oldestKey)
		evicted++
	}
	if m != nil {
		m.Evicted.Add(int64(evicted))
	}
}

// ------------------------------------------------------------- instrument

// Instrument records every response's status and latency into ep.  Mount it
// per endpoint so the registry splits metrics by route.
func Instrument(ep *metrics.Endpoint) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := NewStatusWriter(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.Status()
			if status == 0 {
				status = http.StatusOK
			}
			ep.Record(status, time.Since(start))
		})
	}
}
