package httpmw

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lotusx/internal/metrics"
)

func decodeErr(t *testing.T, rr *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var body ErrorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("not an error envelope: %q: %v", rr.Body.String(), err)
	}
	return body
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), mk("a"), mk("b"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestRequestID(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), RequestID())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if seen == "" || rr.Header().Get("X-Request-Id") != seen {
		t.Fatalf("id = %q, header = %q", seen, rr.Header().Get("X-Request-Id"))
	}
	// Inbound IDs are preserved.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-Id", "upstream-7")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seen != "upstream-7" {
		t.Fatalf("inbound id not preserved: %q", seen)
	}
}

func TestRecoverPanicToJSON500(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Logging(nil), Recover(nil))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rr.Code)
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeInternal {
		t.Fatalf("code = %q", body.Error.Code)
	}
}

func TestDeadlineExpiresContext(t *testing.T) {
	var err error
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		err = r.Context().Err()
	}), Deadline(5*time.Millisecond))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if err != context.DeadlineExceeded {
		t.Fatalf("ctx err = %v", err)
	}
}

func TestLimitSheds(t *testing.T) {
	enter := make(chan struct{})
	release := make(chan struct{})
	var shed int
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(enter)
		<-release
	}), Limit(1, LimitOptions{OnShed: func(*http.Request) { shed++ }}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-enter // the first request holds the only slot

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("Retry-After missing")
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q", body.Error.Code)
	}
	if shed != 1 {
		t.Fatalf("shed = %d", shed)
	}
	close(release)
	wg.Wait()
}

func TestLimitExempt(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(started)
			<-block
		}
	}), Limit(1, LimitOptions{Exempt: func(r *http.Request) bool { return r.URL.Path == "/metrics" }}))

	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	<-started
	defer close(block)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("exempt path shed: %d", rr.Code)
	}
}

func TestInstrumentRecords(t *testing.T) {
	reg := metrics.New()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
	}), Instrument(reg.Endpoint("q")))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	s := reg.Snapshot().Endpoints["q"]
	if s.Requests != 1 || s.Timeouts != 1 || s.Errors != 1 || s.Latency.Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCodeForStatus(t *testing.T) {
	cases := map[int]string{
		400: CodeBadQuery, 404: CodeNotFound, 429: CodeOverloaded,
		504: CodeTimeout, 500: CodeInternal, 422: CodeBadQuery,
	}
	for status, want := range cases {
		if got := CodeForStatus(status); got != want {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}
