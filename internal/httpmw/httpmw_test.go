package httpmw

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lotusx/internal/metrics"
)

func decodeErr(t *testing.T, rr *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var body ErrorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("not an error envelope: %q: %v", rr.Body.String(), err)
	}
	return body
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), mk("a"), mk("b"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestRequestID(t *testing.T) {
	var seen string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}), RequestID())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if seen == "" || rr.Header().Get("X-Request-Id") != seen {
		t.Fatalf("id = %q, header = %q", seen, rr.Header().Get("X-Request-Id"))
	}
	// Inbound IDs are preserved.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-Request-Id", "upstream-7")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seen != "upstream-7" {
		t.Fatalf("inbound id not preserved: %q", seen)
	}
}

func TestRecoverPanicToJSON500(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Logging(nil), Recover(nil))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rr.Code)
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeInternal {
		t.Fatalf("code = %q", body.Error.Code)
	}
}

func TestDeadlineExpiresContext(t *testing.T) {
	var err error
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		err = r.Context().Err()
	}), Deadline(5*time.Millisecond))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if err != context.DeadlineExceeded {
		t.Fatalf("ctx err = %v", err)
	}
}

func TestLimitSheds(t *testing.T) {
	enter := make(chan struct{})
	release := make(chan struct{})
	var shed int
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(enter)
		<-release
	}), Limit(1, LimitOptions{OnShed: func(*http.Request) { shed++ }}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-enter // the first request holds the only slot

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("Retry-After missing")
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q", body.Error.Code)
	}
	if shed != 1 {
		t.Fatalf("shed = %d", shed)
	}
	close(release)
	wg.Wait()
}

func TestLimitExempt(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(started)
			<-block
		}
	}), Limit(1, LimitOptions{Exempt: func(r *http.Request) bool { return r.URL.Path == "/metrics" }}))

	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
	<-started
	defer close(block)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("exempt path shed: %d", rr.Code)
	}
}

func TestInstrumentRecords(t *testing.T) {
	reg := metrics.New()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
	}), Instrument(reg.Endpoint("q")))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	s := reg.Snapshot().Endpoints["q"]
	if s.Requests != 1 || s.Timeouts != 1 || s.Errors != 1 || s.Latency.Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCodeForStatus(t *testing.T) {
	cases := map[int]string{
		400: CodeBadQuery, 404: CodeNotFound, 429: CodeOverloaded,
		504: CodeTimeout, 500: CodeInternal, 422: CodeBadQuery,
	}
	for status, want := range cases {
		if got := CodeForStatus(status); got != want {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestDrainGateRefusesWhileDraining(t *testing.T) {
	var draining bool
	var rejected int
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		DrainGate(func() bool { return draining }, DrainGateOptions{
			OnReject: func(*http.Request) { rejected++ },
			Exempt:   func(r *http.Request) bool { return r.URL.Path == "/readyz" },
		}))

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/v1/query", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("gate refused before drain: %d", rr.Code)
	}

	draining = true
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/v1/query", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("Retry-After missing on drain refusal")
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q", body.Error.Code)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}

	// Exempt routes still answer: the load balancer must be able to read
	// /readyz to learn the instance is going away.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("exempt path gated: %d", rr.Code)
	}
}

func TestRateLimitPerClientBuckets(t *testing.T) {
	clock := time.Unix(1000, 0)
	am := metrics.New().Admission()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		RateLimit(RateLimitOptions{
			QPS: 10, Burst: 2, Metrics: am,
			Now: func() time.Time { return clock },
		}))

	send := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/api/v1/query", nil)
		req.Header.Set("X-Lotusx-Client", client)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// The burst admits two; the third is refused.
	for i := 0; i < 2; i++ {
		if rr := send("alice"); rr.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, rr.Code)
		}
	}
	rr := send("alice")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("Retry-After missing on 429")
	}
	if body := decodeErr(t, rr); body.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q", body.Error.Code)
	}

	// A different client has its own untouched bucket.
	if rr := send("bob"); rr.Code != http.StatusOK {
		t.Fatalf("second client limited: %d", rr.Code)
	}

	// Advancing the clock refills alice at QPS.
	clock = clock.Add(100 * time.Millisecond) // 10 QPS -> one token
	if rr := send("alice"); rr.Code != http.StatusOK {
		t.Fatalf("refilled request refused: %d", rr.Code)
	}

	if am.Allowed.Load() != 4 || am.Limited.Load() != 1 {
		t.Fatalf("admission counters: allowed=%d limited=%d", am.Allowed.Load(), am.Limited.Load())
	}
	if am.Clients() != 2 {
		t.Fatalf("client gauge = %d, want 2", am.Clients())
	}
}

func TestRateLimitExemptAndDisabled(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		RateLimit(RateLimitOptions{
			QPS: 1, Burst: 1,
			Exempt: func(r *http.Request) bool { return r.URL.Path == "/metrics" },
		}))
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("X-Lotusx-Client", "alice")
	for i := 0; i < 5; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("exempt request %d limited: %d", i, rr.Code)
		}
	}

	// QPS <= 0 is the disabled middleware: requests pass untouched.
	off := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		RateLimit(RateLimitOptions{QPS: 0}))
	for i := 0; i < 5; i++ {
		rr := httptest.NewRecorder()
		off.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("disabled limiter refused: %d", rr.Code)
		}
	}
}

func TestRateLimitEvictsIdleBuckets(t *testing.T) {
	clock := time.Unix(1000, 0)
	am := metrics.New().Admission()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		RateLimit(RateLimitOptions{
			QPS: 10, Burst: 2, MaxClients: 2, Metrics: am,
			Now: func() time.Time { return clock },
		}))
	send := func(client string) {
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set("X-Lotusx-Client", client)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	send("a")
	send("b")
	clock = clock.Add(time.Minute) // both buckets idle back to full
	send("c")                      // table full: an idle bucket is evicted
	if am.Evicted.Load() == 0 {
		t.Fatal("no eviction at the client-table bound")
	}
	if am.Clients() > 2 {
		t.Fatalf("client gauge = %d, want <= 2", am.Clients())
	}
}

func TestClientID(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := ClientID(r); got != "10.1.2.3" {
		t.Fatalf("ClientID = %q", got)
	}
	r.Header.Set("X-Lotusx-Client", "svc-a")
	if got := ClientID(r); got != "svc-a" {
		t.Fatalf("ClientID with header = %q", got)
	}
	// X-Forwarded-For is deliberately ignored: it is unauthenticated and
	// would let any caller mint fresh buckets.
	r2 := httptest.NewRequest("GET", "/", nil)
	r2.RemoteAddr = "10.1.2.3:5555"
	r2.Header.Set("X-Forwarded-For", "1.2.3.4")
	if got := ClientID(r2); got != "10.1.2.3" {
		t.Fatalf("ClientID honoured X-Forwarded-For: %q", got)
	}
}
