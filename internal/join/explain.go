package join

import (
	"fmt"
	"strings"

	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// Explain describes how the planner sees q: the per-node stream size
// estimates, the match-count estimate, and the algorithm Choose would pick —
// what lotusx-query -explain prints before running.
func Explain(ix *index.Index, q *twig.Query) string {
	var b strings.Builder
	if q.Len() == 0 {
		if err := q.Normalize(); err != nil {
			return fmt.Sprintf("invalid query: %v", err)
		}
	}
	fmt.Fprintf(&b, "plan for %s\n", q)
	for _, qn := range q.Nodes() {
		role := "internal"
		if qn.IsLeaf() {
			role = "leaf"
		}
		pred := ""
		switch qn.Pred.Op {
		case twig.Eq:
			pred = fmt.Sprintf("  [= %q]", qn.Pred.Value)
		case twig.Contains:
			pred = fmt.Sprintf("  [contains %q]", qn.Pred.Value)
		}
		fmt.Fprintf(&b, "  node %d %s%s (%s): ~%d stream elements%s\n",
			qn.ID, qn.Axis, qn.Tag, role, EstimateStream(ix, qn), pred)
	}
	fmt.Fprintf(&b, "  estimated matches: <= %d\n", EstimateMatches(ix, q))
	fmt.Fprintf(&b, "  algorithm (auto): %s\n", Choose(ix, q))
	return b.String()
}
