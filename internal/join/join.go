// Package join implements twig-pattern evaluation over tag streams.  Six
// algorithms share one Match model and one assembly phase:
//
//   - NestedLoop — a direct recursive matcher: the correctness oracle every
//     other algorithm is tested against, and the naive baseline of E2.
//   - Structural — binary structural joins per query edge (stack-merge,
//     Al-Khalifa et al.), then assembly; the classical decomposed baseline.
//   - PathStack — one PathStack run per root-to-leaf path (Bruno et al.),
//     merging the per-path solutions; intermediate solutions are not
//     twig-pruned, which experiment E3 measures.
//   - TwigStack — the holistic twig join with getNext; optimal (no useless
//     intermediate path solutions) for ancestor-descendant-only queries.
//   - TwigStackLA — TwigStack with parent-child look-ahead pruning, our
//     rendition of TwigStackList (Lu, Chen, Ling); see lookahead.go.
//   - TJFast — leaf-streams-only evaluation over extended Dewey labels
//     (Lu et al., VLDB 2005); see tjfast.go.
//
// Algorithm("auto") picks among them from the query's shape and the index's
// statistics (see Choose).  Value predicates are pushed below every
// algorithm as filtered streams; parent-child edges are enforced during
// solution expansion and assembly (TwigStack is only A-D-optimal, as the
// paper notes); order constraints are a post-filter over assembled matches.
package join

import (
	"context"
	"fmt"
	"sort"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Algorithm selects a twig evaluation strategy.
type Algorithm string

// The implemented algorithms.
const (
	NestedLoop Algorithm = "nestedloop"
	Structural Algorithm = "structural"
	PathStack  Algorithm = "pathstack"
	TwigStack  Algorithm = "twigstack"
	TJFast     Algorithm = "tjfast"
	// TwigStackLA is TwigStack with parent-child look-ahead pruning (our
	// rendition of TwigStackList; see lookahead.go).
	TwigStackLA Algorithm = "twigstack-la"
	// Auto picks among the above from the query's shape and the index's
	// statistics; see Choose.
	Auto Algorithm = "auto"
)

// Algorithms lists all concrete algorithms, oracle first.
var Algorithms = []Algorithm{NestedLoop, Structural, PathStack, TwigStack, TwigStackLA, TJFast}

// Match assigns a document node to every query node; it is indexed by query
// node ID (preorder).
type Match []doc.NodeID

// Stats reports evaluation effort, the currency of experiments E2–E4.
type Stats struct {
	// ElementsScanned counts stream elements consumed.
	ElementsScanned int
	// ElementsPushed counts elements pushed onto algorithm stacks
	// (PathStack, TwigStack and variants).
	ElementsPushed int
	// PathSolutions counts intermediate root-to-leaf path solutions emitted
	// before merging (PathStack, TwigStack).
	PathSolutions int
	// EdgePairs counts structural-join result pairs across edges
	// (Structural).
	EdgePairs int
	// MatchesEnumerated counts full twig matches before order filtering.
	MatchesEnumerated int
}

// Add accumulates o into s — summing per-shard statistics when a query fans
// out across a corpus.
func (s *Stats) Add(o Stats) {
	s.ElementsScanned += o.ElementsScanned
	s.ElementsPushed += o.ElementsPushed
	s.PathSolutions += o.PathSolutions
	s.EdgePairs += o.EdgePairs
	s.MatchesEnumerated += o.MatchesEnumerated
}

// Options tunes evaluation.
type Options struct {
	// MaxMatches caps the number of enumerated matches; 0 means unlimited.
	// The cap bounds worst-case cross products on highly repetitive data.
	MaxMatches int
	// Ctx, when non-nil, is polled cooperatively inside every algorithm's
	// scan and enumeration loops; once it is cancelled or past its deadline,
	// Run stops mid-join and returns the context's error.  A nil Ctx never
	// cancels.
	Ctx context.Context
}

// Result is the outcome of one evaluation.
type Result struct {
	// Matches holds full twig matches in a deterministic order.
	Matches []Match
	// Capped reports that MaxMatches stopped enumeration early.
	Capped bool
	// Stats reports evaluation effort.
	Stats Stats
	// Algorithm is the algorithm that actually ran (Auto resolved).
	Algorithm Algorithm
}

// OutputNodes projects the matches onto the query's output node,
// deduplicated, in document order.
func (r *Result) OutputNodes(q *twig.Query) []doc.NodeID {
	out := q.OutputNode().ID
	seen := make(map[doc.NodeID]struct{}, len(r.Matches))
	var nodes []doc.NodeID
	for _, m := range r.Matches {
		n := m[out]
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// Run evaluates q over ix with the chosen algorithm.  The query must be
// normalized (twig.Parse normalizes; programmatic queries call Normalize).
func Run(ix *index.Index, q *twig.Query, alg Algorithm, opts Options) (*Result, error) {
	if q.Len() == 0 {
		return nil, fmt.Errorf("join: query not normalized")
	}
	if alg == Auto {
		alg = Choose(ix, q)
	}
	ev := &evaluator{ix: ix, q: q, opts: opts, ctx: opts.Ctx, scr: getScratch()}
	defer ev.scr.release()
	var sp *obs.Span
	if ev.ctx != nil {
		// Fail fast on a context that is already dead — a request whose
		// deadline expired in middleware never starts the join at all.
		if err := ev.ctx.Err(); err != nil {
			return nil, err
		}
		// One span per evaluation, named after the resolved algorithm; a
		// traced request sees every join (the original query's and each
		// rewrite's) as its own timed node with its effort statistics.
		sp = obs.StartLeaf(ev.ctx, "join:"+string(alg))
		defer func() {
			sp.SetInt("scanned", ev.stats.ElementsScanned)
			sp.SetInt("matches", ev.stats.MatchesEnumerated)
			if ev.capped {
				sp.Set("capped", "true")
			}
			sp.End()
		}()
	}
	var err error
	if comp := ix.Compressed(); comp != nil {
		// The shape-level fast path (shapefast.go): evaluate each distinct
		// subtree shape once against its canonical occurrence, expand the
		// matches to the other occurrences, then cover the residue.
		err = ev.runCompressed(alg, comp)
	} else {
		ev.buildStreams()
		err = ev.dispatch(alg)
	}
	if err != nil {
		sp.SetErr(err)
		return nil, err
	}
	if ev.err != nil {
		sp.SetErr(ev.err)
		return nil, ev.err
	}
	ev.filterOrder()
	ev.sortMatches()
	return &Result{Matches: ev.matches, Capped: ev.capped, Stats: ev.stats, Algorithm: alg}, nil
}

// evaluator carries the state shared by all algorithms.
type evaluator struct {
	ix      *index.Index
	q       *twig.Query
	opts    Options
	ctx     context.Context // nil means never cancelled
	ticks   int             // work units since the last context poll
	err     error           // sticky context error once cancelled
	nodes   [][]doc.NodeID  // per query node ID: its filtered stream contents
	matches []Match
	capped  bool
	stats   Stats
	scr     *scratch // pooled working buffers, released when Run returns
	// matchArena backs the Match copies in matches.  It escapes into Result,
	// so unlike scr it is never pooled.
	matchArena []doc.NodeID
}

// dispatch runs the chosen concrete algorithm over the streams already
// built into ev.nodes.
func (ev *evaluator) dispatch(alg Algorithm) error {
	switch alg {
	case NestedLoop:
		return ev.runNestedLoop()
	case Structural:
		return ev.runStructural()
	case PathStack:
		return ev.runPathStack()
	case TwigStack:
		return ev.runTwigStack()
	case TwigStackLA:
		return ev.runTwigStackLA()
	case TJFast:
		return ev.runTJFast()
	default:
		return fmt.Errorf("join: unknown algorithm %q", alg)
	}
}

// cancelEvery is how many work units pass between context polls; polling
// sparsely keeps the check off the per-element fast path.
const cancelEvery = 1024

// tick counts one unit of evaluation work and polls the context every
// cancelEvery units.  It reports whether evaluation may continue; once it
// returns false, ev.err carries the context's error and stays set.
func (ev *evaluator) tick() bool {
	if ev.err != nil {
		return false
	}
	if ev.ctx == nil {
		return true
	}
	ev.ticks++
	if ev.ticks < cancelEvery {
		return true
	}
	ev.ticks = 0
	if err := ev.ctx.Err(); err != nil {
		ev.err = err
		return false
	}
	return true
}

// streamMode selects which slice of a compressed document the streams see;
// see shapefast.go for the two compressed passes.
type streamMode int

const (
	// streamFull is the ordinary mode: every node instance.
	streamFull streamMode = iota
	// streamCanonical restricts every query node to nodes inside canonical
	// occurrence subtrees (fast-path pass 1).
	streamCanonical
	// streamResidueRoot restricts the query root to residue nodes and
	// leaves the other query nodes full (fast-path pass 2).
	streamResidueRoot
)

// buildStreams materializes one document-order node list per query node with
// the node's tag, predicate and (for the root) axis constraints pushed down.
func (ev *evaluator) buildStreams() { ev.buildStreamsMode(streamFull) }

// buildStreamsMode is buildStreams parameterized by the compressed-pass
// mode.  It reports whether every stream is non-empty; on the first empty
// stream it bails out early (no full match can exist), leaving the
// remaining streams unbuilt — callers outside streamFull mode must skip the
// pass when it returns false.
func (ev *evaluator) buildStreamsMode(mode streamMode) bool {
	d := ev.ix.Document()
	comp := ev.ix.Compressed()
	ev.nodes = make([][]doc.NodeID, ev.q.Len())
	for _, qn := range ev.q.Nodes() {
		var base []doc.NodeID
		switch {
		case mode == streamCanonical:
			if qn.IsWildcard() {
				base = comp.CanonicalWildcard()
			} else {
				base = comp.Canonical(d.Tags().ID(qn.Tag))
			}
		case mode == streamResidueRoot && qn.Parent() == nil:
			if qn.IsWildcard() {
				base = comp.ResidueWildcard()
			} else {
				base = comp.Residue(d.Tags().ID(qn.Tag))
			}
		default:
			if qn.IsWildcard() {
				base = ev.ix.AllElements()
			} else {
				base = ev.ix.Nodes(d.Tags().ID(qn.Tag))
			}
		}
		if len(base) == 0 && mode != streamFull {
			return false
		}
		keep, hint := ev.nodeFilter(qn)
		if keep == nil {
			ev.nodes[qn.ID] = base
			continue
		}
		// The filtered stream is no larger than the base stream or the
		// smallest predicate posting list; size it once instead of growing.
		capHint := len(base)
		if hint >= 0 && hint < capHint {
			capHint = hint
		}
		filtered := make([]doc.NodeID, 0, capHint)
		for _, n := range base {
			if keep(n) {
				filtered = append(filtered, n)
			}
		}
		if len(filtered) == 0 && mode != streamFull {
			return false
		}
		ev.nodes[qn.ID] = filtered
	}
	return true
}

// stream returns a fresh cursor over query node qid's node list.
func (ev *evaluator) stream(qid int) *index.Stream {
	return index.NewStream(ev.ix.Document(), ev.nodes[qid])
}

// nodeFilter returns the per-node predicate for qn, or nil when none
// applies, plus a cardinality hint — the size of the smallest predicate
// posting list, or -1 when no predicate bounds the survivor count.
func (ev *evaluator) nodeFilter(qn *twig.Node) (func(doc.NodeID) bool, int) {
	d := ev.ix.Document()
	hint := -1
	var preds []func(doc.NodeID) bool
	if qn.Parent() == nil && qn.Axis == twig.Child {
		// A rooted query (/tag): the match must be the document root.
		preds = append(preds, func(n doc.NodeID) bool { return d.Parent(n) == doc.None })
		hint = 1
	}
	addSet := func(nodes []doc.NodeID) {
		if hint < 0 || len(nodes) < hint {
			hint = len(nodes)
		}
		set := toSet(nodes)
		preds = append(preds, func(n doc.NodeID) bool { _, ok := set[n]; return ok })
	}
	switch qn.Pred.Op {
	case twig.Eq:
		addSet(ev.ix.ExactMatches(qn.Pred.Value))
	case twig.Contains:
		addSet(ev.ix.ContainsAll(qn.Pred.Value))
	}
	switch len(preds) {
	case 0:
		return nil, hint
	case 1:
		return preds[0], hint
	default:
		return func(n doc.NodeID) bool {
			for _, p := range preds {
				if !p(n) {
					return false
				}
			}
			return true
		}, hint
	}
}

func toSet(nodes []doc.NodeID) map[doc.NodeID]struct{} {
	s := make(map[doc.NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		s[n] = struct{}{}
	}
	return s
}

// edgeHolds checks the axis constraint of query node qc against candidate
// parent/ancestor p and child/descendant c.
func (ev *evaluator) edgeHolds(qc *twig.Node, p, c doc.NodeID) bool {
	d := ev.ix.Document()
	if qc.Axis == twig.Child {
		return d.Region(p).IsParent(d.Region(c))
	}
	return d.Region(p).IsAncestor(d.Region(c))
}

// addMatch appends a copy of m, honouring the cap and the context.  It
// reports whether enumeration may continue.
func (ev *evaluator) addMatch(m Match) bool {
	if !ev.tick() {
		return false
	}
	if ev.opts.MaxMatches > 0 && len(ev.matches) >= ev.opts.MaxMatches {
		ev.capped = true
		return false
	}
	// Copy m into the match arena: one growing backing array instead of one
	// allocation per match.  Earlier matches keep pointing into whatever
	// array they were appended to, so growth never invalidates them; the
	// cap keeps later appends from aliasing this copy.
	n := len(ev.matchArena)
	ev.matchArena = append(ev.matchArena, m...)
	ev.matches = append(ev.matches, Match(ev.matchArena[n:len(ev.matchArena):len(ev.matchArena)]))
	ev.stats.MatchesEnumerated++
	if ev.opts.MaxMatches > 0 && len(ev.matches) >= ev.opts.MaxMatches {
		// Stopping at the cap: further matches may exist but were not
		// enumerated.
		ev.capped = true
		return false
	}
	return true
}

// filterOrder drops matches violating the query's order constraints.
func (ev *evaluator) filterOrder() {
	if len(ev.q.Order) == 0 {
		return
	}
	d := ev.ix.Document()
	kept := ev.matches[:0]
	for _, m := range ev.matches {
		ok := true
		for _, oc := range ev.q.Order {
			if !d.Region(m[oc.Before]).Before(d.Region(m[oc.After])) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, m)
		}
	}
	ev.matches = kept
}

// sortMatches puts matches in a deterministic lexicographic order so every
// algorithm reports the same sequence.
func (ev *evaluator) sortMatches() {
	sort.Slice(ev.matches, func(i, j int) bool {
		a, b := ev.matches[i], ev.matches[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
