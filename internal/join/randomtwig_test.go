package join

import (
	"math/rand"
	"testing"

	"lotusx/internal/twig"
)

// randomQuery builds an arbitrary twig over the test vocabulary: random
// shape, axes, wildcards, predicates, output node and (sometimes) an order
// constraint between two leaves.
func randomQuery(rng *rand.Rand) *twig.Query {
	tags := []string{"a", "b", "c", "d", "*"}
	vals := []string{"x", "y", "x y", "z"}
	axes := []twig.Axis{twig.Child, twig.Descendant}

	rootTag := tags[rng.Intn(len(tags)-1)] // root: avoid wildcard half the time
	if rng.Intn(2) == 0 {
		rootTag = "*"
	}
	q := &twig.Query{Root: &twig.Node{Tag: rootTag, Axis: axes[rng.Intn(2)]}}

	var all []*twig.Node
	all = append(all, q.Root)
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		parent := all[rng.Intn(len(all))]
		c := parent.AddChild(tags[rng.Intn(len(tags))], axes[rng.Intn(2)])
		if rng.Intn(4) == 0 {
			ops := []twig.PredOp{twig.Eq, twig.Contains}
			c.Pred = twig.Pred{Op: ops[rng.Intn(2)], Value: vals[rng.Intn(len(vals))]}
		}
		all = append(all, c)
	}
	// Random output node.
	all[rng.Intn(len(all))].Output = true
	if err := q.Normalize(); err != nil {
		panic(err)
	}
	// Occasionally an order constraint between two distinct nodes.
	if len(all) >= 3 && rng.Intn(3) == 0 {
		i := 1 + rng.Intn(q.Len()-1)
		j := 1 + rng.Intn(q.Len()-1)
		if i != j {
			q.Order = append(q.Order, twig.OrderConstraint{Before: i, After: j})
			if err := q.Normalize(); err != nil {
				panic(err)
			}
		}
	}
	return q
}

// TestRandomTwigsAllAlgorithmsAgree is the strongest equivalence check:
// fully random twigs (not a hand-picked list) against random documents,
// every algorithm against the nested-loop oracle.
func TestRandomTwigsAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "x y", "z"}

	trials := 40
	queriesPerDoc := 25
	if testing.Short() {
		trials, queriesPerDoc = 10, 10
	}
	for trial := 0; trial < trials; trial++ {
		src := genWellFormed(rng, tags, vals, 50+rng.Intn(100))
		ix := mustIndex(t, src)
		for qi := 0; qi < queriesPerDoc; qi++ {
			q := randomQuery(rng)
			var ref string
			for _, alg := range Algorithms {
				res, err := Run(ix, q, alg, Options{})
				if err != nil {
					t.Fatalf("trial %d/%d %s on %s: %v", trial, qi, alg, q, err)
				}
				s := matchSetString(res)
				if alg == NestedLoop {
					ref = s
					continue
				}
				if s != ref {
					t.Fatalf("trial %d/%d: %s disagrees with oracle on %s\noracle: %s\ngot:    %s\ndoc: %s",
						trial, qi, alg, q, ref, s, src)
				}
			}
			// Auto must agree as well (it delegates to one of the above).
			res, err := Run(ix, q, Auto, Options{})
			if err != nil {
				t.Fatalf("auto on %s: %v", q, err)
			}
			if matchSetString(res) != ref {
				t.Fatalf("auto disagrees with oracle on %s", q)
			}
		}
	}
}

// TestRandomTwigsMinimizePreservesAnswers extends the equivalence check to
// minimization: for random twigs, the minimized query returns the same
// output-node answers.
func TestRandomTwigsMinimizePreservesAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tags := []string{"a", "b", "c"}
	vals := []string{"x", "y"}
	for trial := 0; trial < 25; trial++ {
		src := genWellFormed(rng, tags, vals, 70)
		ix := mustIndex(t, src)
		for qi := 0; qi < 15; qi++ {
			q := randomQuery(rng)
			if len(q.Order) > 0 {
				continue // order constraints are protected, nothing to check
			}
			m := q.Minimize()
			orig, err := Run(ix, q, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mini, err := Run(ix, m, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if nodeSet(orig.OutputNodes(q)) != nodeSet(mini.OutputNodes(m)) {
				t.Fatalf("trial %d/%d: minimization changed answers\n%s -> %s\ndoc: %s",
					trial, qi, q, m, src)
			}
		}
	}
}
