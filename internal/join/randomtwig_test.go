package join

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// randomQuery builds an arbitrary twig over the test vocabulary: random
// shape, axes, wildcards, predicates, output node and (sometimes) an order
// constraint between two leaves.
func randomQuery(rng *rand.Rand) *twig.Query {
	tags := []string{"a", "b", "c", "d", "*"}
	vals := []string{"x", "y", "x y", "z"}
	axes := []twig.Axis{twig.Child, twig.Descendant}

	rootTag := tags[rng.Intn(len(tags)-1)] // root: avoid wildcard half the time
	if rng.Intn(2) == 0 {
		rootTag = "*"
	}
	q := &twig.Query{Root: &twig.Node{Tag: rootTag, Axis: axes[rng.Intn(2)]}}

	var all []*twig.Node
	all = append(all, q.Root)
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		parent := all[rng.Intn(len(all))]
		c := parent.AddChild(tags[rng.Intn(len(tags))], axes[rng.Intn(2)])
		if rng.Intn(4) == 0 {
			ops := []twig.PredOp{twig.Eq, twig.Contains}
			c.Pred = twig.Pred{Op: ops[rng.Intn(2)], Value: vals[rng.Intn(len(vals))]}
		}
		all = append(all, c)
	}
	// Random output node.
	all[rng.Intn(len(all))].Output = true
	if err := q.Normalize(); err != nil {
		panic(err)
	}
	// Occasionally an order constraint between two distinct nodes.
	if len(all) >= 3 && rng.Intn(3) == 0 {
		i := 1 + rng.Intn(q.Len()-1)
		j := 1 + rng.Intn(q.Len()-1)
		if i != j {
			q.Order = append(q.Order, twig.OrderConstraint{Before: i, After: j})
			if err := q.Normalize(); err != nil {
				panic(err)
			}
		}
	}
	return q
}

// TestRandomTwigsAllAlgorithmsAgree is the strongest equivalence check:
// fully random twigs (not a hand-picked list) against random documents,
// every algorithm against the nested-loop oracle.
func TestRandomTwigsAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "x y", "z"}

	trials := 40
	queriesPerDoc := 25
	if testing.Short() {
		trials, queriesPerDoc = 10, 10
	}
	for trial := 0; trial < trials; trial++ {
		src := genWellFormed(rng, tags, vals, 50+rng.Intn(100))
		ix := mustIndex(t, src)
		for qi := 0; qi < queriesPerDoc; qi++ {
			q := randomQuery(rng)
			var ref string
			for _, alg := range Algorithms {
				res, err := Run(ix, q, alg, Options{})
				if err != nil {
					t.Fatalf("trial %d/%d %s on %s: %v", trial, qi, alg, q, err)
				}
				s := matchSetString(res)
				if alg == NestedLoop {
					ref = s
					continue
				}
				if s != ref {
					t.Fatalf("trial %d/%d: %s disagrees with oracle on %s\noracle: %s\ngot:    %s\ndoc: %s",
						trial, qi, alg, q, ref, s, src)
				}
			}
			// Auto must agree as well (it delegates to one of the above).
			res, err := Run(ix, q, Auto, Options{})
			if err != nil {
				t.Fatalf("auto on %s: %v", q, err)
			}
			if matchSetString(res) != ref {
				t.Fatalf("auto disagrees with oracle on %s", q)
			}
		}
	}
}

// genFragment emits a well-formed element forest — genWellFormed's walk
// without the document wrapper, plus occasional attributes so the
// compressed substrate's attribute-node handling is exercised too.
func genFragment(rng *rand.Rand, tags, vals []string, steps int) string {
	var b strings.Builder
	var open []string
	for i := 0; i < steps; i++ {
		if len(open) > 0 && (rng.Intn(3) == 0 || len(open) > 4) {
			b.WriteString("</" + open[len(open)-1] + ">")
			open = open[:len(open)-1]
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		attr := ""
		if rng.Intn(5) == 0 {
			attr = ` k="` + vals[rng.Intn(len(vals))] + `"`
		}
		if rng.Intn(2) == 0 {
			b.WriteString("<" + tag + attr + ">" + vals[rng.Intn(len(vals))] + "</" + tag + ">")
		} else {
			b.WriteString("<" + tag + attr + ">")
			open = append(open, tag)
		}
	}
	for len(open) > 0 {
		b.WriteString("</" + open[len(open)-1] + ">")
		open = open[:len(open)-1]
	}
	return b.String()
}

// genRepetitive builds a document dominated by repeated record subtrees —
// the shape the DAG substrate dedups — interleaved with unique residue
// fragments, so both fast-path passes (canonical and residue-rooted) carry
// weight.
func genRepetitive(rng *rand.Rand, tags, vals []string, records int) string {
	var tpls []string
	for i := 0; i < 3; i++ {
		tag := tags[rng.Intn(len(tags))]
		tpls = append(tpls, "<"+tag+">"+genFragment(rng, tags, vals, 5+rng.Intn(8))+"</"+tag+">")
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < records; i++ {
		b.WriteString(tpls[rng.Intn(len(tpls))])
		if rng.Intn(4) == 0 {
			b.WriteString(genFragment(rng, tags, vals, 1+rng.Intn(4)))
		}
	}
	b.WriteString("</r>")
	return b.String()
}

// TestRandomTwigsCompressedMatchesRaw is the substrate-equivalence property
// suite: for random twigs over random documents, every algorithm must
// return byte-identical results — the full ordered match list, not just the
// output projection — on the raw and DAG-compressed indexes.  Documents
// alternate between high-repetition (deep compression, both fast-path
// passes active) and zero-repetition (ForceCompress keeps the substrate on
// even though everything is residue).
func TestRandomTwigsCompressedMatchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "x y", "z"}

	trials := 30
	queriesPerDoc := 20
	if testing.Short() {
		trials, queriesPerDoc = 8, 8
	}
	algs := append(append([]Algorithm{}, Algorithms...), Auto)
	for trial := 0; trial < trials; trial++ {
		var src string
		if trial%3 == 0 {
			src = genWellFormed(rng, tags, vals, 60+rng.Intn(80))
		} else {
			src = genRepetitive(rng, tags, vals, 15+rng.Intn(25))
		}
		d, err := doc.FromString("test", src)
		if err != nil {
			t.Fatal(err)
		}
		raw := index.Build(d)
		comp := index.BuildWith(d, index.BuildOptions{ForceCompress: true})
		if comp.Compressed() == nil {
			t.Fatalf("trial %d: ForceCompress did not keep the substrate", trial)
		}
		for qi := 0; qi < queriesPerDoc; qi++ {
			q := randomQuery(rng)
			for _, alg := range algs {
				rr, err := Run(raw, q, alg, Options{})
				if err != nil {
					t.Fatalf("trial %d/%d raw %s on %s: %v", trial, qi, alg, q, err)
				}
				cr, err := Run(comp, q, alg, Options{})
				if err != nil {
					t.Fatalf("trial %d/%d compressed %s on %s: %v", trial, qi, alg, q, err)
				}
				if rr.Algorithm != cr.Algorithm {
					t.Fatalf("trial %d/%d: %s resolved to %s raw vs %s compressed on %s",
						trial, qi, alg, rr.Algorithm, cr.Algorithm, q)
				}
				if !reflect.DeepEqual(rr.Matches, cr.Matches) || rr.Capped != cr.Capped {
					t.Fatalf("trial %d/%d: %s compressed diverges from raw on %s\nraw:        %s\ncompressed: %s\ndoc: %s",
						trial, qi, alg, q, matchSetString(rr), matchSetString(cr), src)
				}
			}
		}
	}
}

// TestCompressedFallbackOnUniqueDocument pins the heuristic: a document of
// all-unique subtrees gains nothing from sharing, so the opt-in build falls
// back to the raw substrate — and still answers identically.
func TestCompressedFallbackOnUniqueDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 60; i++ {
		b.WriteString("<a><b>v" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + "</b></a>")
	}
	b.WriteString("</r>")
	d, err := doc.FromString("test", b.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := index.BuildCompressed(d)
	if ix.Compressed() != nil {
		// Identical <a><b>..</b></a> shells differ in their value leaf, so
		// every two-node subtree shape is unique and sharing cannot pay.
		t.Fatal("expected fallback to the raw substrate on a unique document")
	}
	raw := index.Build(d)
	q := twig.MustParse("//a/b")
	want, err := Run(raw, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ix, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Matches, got.Matches) {
		t.Fatal("fallback index diverges from raw")
	}
}

// TestRandomTwigsMinimizePreservesAnswers extends the equivalence check to
// minimization: for random twigs, the minimized query returns the same
// output-node answers.
func TestRandomTwigsMinimizePreservesAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tags := []string{"a", "b", "c"}
	vals := []string{"x", "y"}
	for trial := 0; trial < 25; trial++ {
		src := genWellFormed(rng, tags, vals, 70)
		ix := mustIndex(t, src)
		for qi := 0; qi < 15; qi++ {
			q := randomQuery(rng)
			if len(q.Order) > 0 {
				continue // order constraints are protected, nothing to check
			}
			m := q.Minimize()
			orig, err := Run(ix, q, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mini, err := Run(ix, m, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if nodeSet(orig.OutputNodes(q)) != nodeSet(mini.OutputNodes(m)) {
				t.Fatalf("trial %d/%d: minimization changed answers\n%s -> %s\ndoc: %s",
					trial, qi, q, m, src)
			}
		}
	}
}
