package join

import (
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// Choose selects a concrete algorithm for q from its shape and the index's
// statistics — the planner behind Algorithm("auto").  The heuristics encode
// what experiments E2/E3 show on this codebase:
//
//   - Single-node queries are stream dumps; any algorithm works, NestedLoop
//     has the least setup.
//   - When the leaf streams are small relative to the internal streams,
//     TJFast wins outright: it never reads the internal streams.
//   - Pure paths (no branching) suit PathStack — TwigStack degenerates to
//     it with extra bookkeeping.
//   - Branching twigs default to TwigStack: its getNext pruning bounds the
//     intermediate results no decomposed strategy can.
func Choose(ix *index.Index, q *twig.Query) Algorithm {
	if q.Len() == 0 {
		// Unnormalized queries error out in Run; any concrete choice works.
		return TwigStack
	}
	if q.Len() == 1 {
		return NestedLoop
	}

	internal, leaves := 0, 0
	branching := false
	for _, qn := range q.Nodes() {
		size := EstimateStream(ix, qn)
		if qn.IsLeaf() {
			leaves += size
		} else {
			internal += size
			if len(qn.Children) > 1 {
				branching = true
			}
		}
	}
	// Leaf streams an order of magnitude smaller than the internal work:
	// reading only leaves pays for the per-element path walks.
	if leaves*10 < internal {
		return TJFast
	}
	if !branching {
		return PathStack
	}
	return TwigStack
}

// EstimateStream estimates the stream size of one query node under the
// index: the tag count shrunk by the value predicate's selectivity (token
// document frequencies, independence-style).
func EstimateStream(ix *index.Index, qn *twig.Node) int {
	var base int
	if qn.IsWildcard() {
		// WildcardCount avoids materializing the wildcard stream on a
		// compressed index just to take its length.
		base = ix.WildcardCount()
	} else {
		base = ix.TagCount(ix.Document().Tags().ID(qn.Tag))
	}
	if base == 0 || qn.Pred.Op == twig.NoPred {
		return base
	}
	total := ix.ValuedNodes()
	if total == 0 {
		return 0
	}
	sel := 1.0
	for _, tok := range index.Tokenize(qn.Pred.Value) {
		sel *= float64(ix.DF(tok)) / float64(total)
	}
	if qn.Pred.Op == twig.Eq {
		// Equality is stricter than containing every token.
		sel *= 0.5
	}
	est := int(float64(base) * sel)
	if est < 1 {
		est = 1 // a predicate never proves emptiness without evaluation
	}
	return est
}

// EstimateMatches gives a coarse upper-bound estimate of a query's match
// count: the minimum stream estimate along each root-to-leaf path, summed
// over leaves.  The engine uses it to decide whether rewriting is likely
// needed before paying for evaluation.
func EstimateMatches(ix *index.Index, q *twig.Query) int {
	if q.Len() == 0 {
		return 0
	}
	total := 0
	for _, path := range rootPaths(q) {
		min := -1
		for _, qn := range path {
			est := EstimateStream(ix, qn)
			if min == -1 || est < min {
				min = est
			}
		}
		total += min
	}
	return total
}
