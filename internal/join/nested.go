package join

import (
	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// runNestedLoop is both the correctness oracle and the naive baseline: a
// direct recursive matcher that, for every candidate of the query root,
// binds each query child by scanning the child's entire node list and
// enumerates the full cross product.
func (ev *evaluator) runNestedLoop() error {
	m := make(Match, ev.q.Len())
	root := ev.q.Root
	ev.stats.ElementsScanned += len(ev.nodes[root.ID])
	for _, dn := range ev.nodes[root.ID] {
		if ev.err != nil {
			break
		}
		m[root.ID] = dn
		if !ev.nestedBindChildren(root, dn, 0, func() bool { return ev.addMatch(m) }, m) {
			break
		}
	}
	return nil
}

// nestedBindChildren binds qn's children starting at index ci, then calls
// cont; it reports whether enumeration may continue (cap not hit).
func (ev *evaluator) nestedBindChildren(qn *twig.Node, dn doc.NodeID, ci int, cont func() bool, m Match) bool {
	if ci == len(qn.Children) {
		return cont()
	}
	qc := qn.Children[ci]
	for _, cand := range ev.candidatesUnder(qc, dn) {
		m[qc.ID] = cand
		ok := ev.nestedBindChildren(qc, cand, 0, func() bool {
			return ev.nestedBindChildren(qn, dn, ci+1, cont, m)
		}, m)
		if !ok {
			return false
		}
	}
	return true
}

// candidatesUnder returns qc's stream nodes that satisfy the edge from dn by
// scanning qc's whole node list — deliberately naive, the cost model the
// structural and holistic joins are measured against (E2).
func (ev *evaluator) candidatesUnder(qc *twig.Node, dn doc.NodeID) []doc.NodeID {
	d := ev.ix.Document()
	reg := d.Region(dn)
	var out []doc.NodeID
	for _, cand := range ev.nodes[qc.ID] {
		if !ev.tick() {
			break
		}
		ev.stats.ElementsScanned++
		cr := d.Region(cand)
		if qc.Axis == twig.Child {
			if reg.IsParent(cr) {
				out = append(out, cand)
			}
		} else if reg.IsAncestor(cr) {
			out = append(out, cand)
		}
	}
	return out
}
