package join

import (
	"sort"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// edgeMap records, for one query edge, which document nodes matched the
// child query node under each match of the parent query node.  Child lists
// are sorted and deduplicated before assembly.
type edgeMap map[doc.NodeID][]doc.NodeID

// add records one (parent, child) pair.
func (em edgeMap) add(p, c doc.NodeID) { em[p] = append(em[p], c) }

// dedup sorts and uniquifies every child list and returns the total pair
// count.
func (em edgeMap) dedup() int {
	total := 0
	for p, kids := range em {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		out := kids[:0]
		var last doc.NodeID = -1
		for _, k := range kids {
			if k != last {
				out = append(out, k)
				last = k
			}
		}
		em[p] = out
		total += len(out)
	}
	return total
}

// assemble enumerates full twig matches from per-edge maps.  edges is
// indexed by the child query node's ID; roots lists candidate bindings of
// the query root.  Every edge's axis is re-checked during enumeration, so a
// superset edge map (for example the A-D superset TwigStack produces on P-C
// edges) still yields exact results.
func (ev *evaluator) assemble(roots []doc.NodeID, edges []edgeMap) {
	m := make(Match, ev.q.Len())
	emit := func() bool { return ev.addMatch(m) }
	for _, r := range roots {
		m[ev.q.Root.ID] = r
		if !ev.assembleBind(ev.q.Root, 0, m, edges, emit) {
			return
		}
	}
}

// assembleBind binds qn's children from index ci onward (each child's own
// subtree bound depth-first), then calls cont; the continuation chain emits
// a match once every query node is bound.  It reports whether enumeration
// may continue (false once the match cap is hit).
func (ev *evaluator) assembleBind(qn *twig.Node, ci int, m Match, edges []edgeMap, cont func() bool) bool {
	if ev.err != nil {
		return false
	}
	if ci == len(qn.Children) {
		return cont()
	}
	qc := qn.Children[ci]
	p := m[qn.ID]
	for _, cand := range edges[qc.ID][p] {
		if !ev.edgeHolds(qc, p, cand) {
			continue
		}
		m[qc.ID] = cand
		ok := ev.assembleBind(qc, 0, m, edges, func() bool {
			return ev.assembleBind(qn, ci+1, m, edges, cont)
		})
		if !ok {
			return false
		}
	}
	return true
}
