package join

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// TestMinimizeRandomEquivalence checks, on random documents, that tree
// pattern minimization never changes the set of output-node answers —
// the property Minimize guarantees.
func TestMinimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	tags := []string{"a", "b", "c"}
	vals := []string{"x", "y"}

	// Queries with deliberate redundancy.
	queries := []string{
		`//a[b][b]`,
		`//a[b][b = "x"]/c`,
		`//a[.//b][b]`,
		`//a[b/c][b]`,
		`//a[b][*]`,
		`//a[b contains "x"][b = "x"][c]`,
		`//a[b[c][c]]/b`,
	}
	for trial := 0; trial < 15; trial++ {
		src := genWellFormed(rng, tags, vals, 80)
		ix := mustIndex(t, src)
		for _, qs := range queries {
			q := twig.MustParse(qs)
			m := q.Minimize()
			if m.Len() > q.Len() {
				t.Fatalf("minimization grew %q", qs)
			}
			orig, err := Run(ix, q, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			mini, err := Run(ix, m, TwigStack, Options{})
			if err != nil {
				t.Fatal(err)
			}
			a := nodeSet(orig.OutputNodes(q))
			b := nodeSet(mini.OutputNodes(m))
			if a != b {
				t.Fatalf("trial %d: %q (%d answers) vs minimized %q (%d answers)\ndoc: %s",
					trial, qs, len(orig.OutputNodes(q)), m, len(mini.OutputNodes(m)), src)
			}
		}
	}
}

// nodeSet canonicalizes a document-ordered node list for comparison.
func nodeSet(ns []doc.NodeID) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, ",")
}
