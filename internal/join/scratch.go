package join

import (
	"sync"

	"lotusx/internal/doc"
)

// scratch holds the working buffers of one evaluation that do NOT escape
// Run: the in-progress path solution, the solution arena (path solutions
// are consumed by mergePathSolutions before Run returns), algorithm stacks
// and the structural-join ancestor stack.  Pooling them removes the
// per-element and per-solution allocations from the join hot loops — the
// allocs/op lines of the Benchmark* suite are the scoreboard.
//
// Full matches are NOT here: they escape into Result, so the evaluator
// copies them into its own non-pooled matchArena (see addMatch).
type scratch struct {
	// solArena backs every emitted path-solution copy; copySol appends into
	// it and hands out capped sub-slices, so a run with S solutions costs
	// O(log S) slice growths instead of S allocations.
	solArena []doc.NodeID
	// solBuf is the single in-progress solution expandPath and alignLeaf
	// mutate in place (neither is reentrant; emitters copy via copySol).
	solBuf []doc.NodeID
	// chainBuf is alignLeaf's root-to-leaf document node chain.
	chainBuf []doc.NodeID
	// nodeStack is structuralJoin's running ancestor stack.
	nodeStack []doc.NodeID
	// stackSet provides the per-query-node (TwigStack) or per-path-node
	// (PathStack) element stacks; inner capacity survives across borrows.
	stackSet [][]stackEntry
	// pathView is expandLeaf's root-path window over stackSet's stacks.
	pathView [][]stackEntry
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// maxPooledArena bounds the solution-arena capacity kept alive in the pool;
// a pathological query should not pin its peak footprint forever.
const maxPooledArena = 1 << 20 // NodeIDs (~4 MiB)

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// release resets every buffer (keeping capacity) and returns s to the pool.
// Callers must not retain anything pointing into s past this call.
func (s *scratch) release() {
	if cap(s.solArena) > maxPooledArena {
		s.solArena = nil
	}
	s.solArena = s.solArena[:0]
	s.solBuf = s.solBuf[:0]
	s.chainBuf = s.chainBuf[:0]
	s.nodeStack = s.nodeStack[:0]
	for i := range s.stackSet {
		s.stackSet[i] = s.stackSet[i][:0]
	}
	for i := range s.pathView {
		s.pathView[i] = nil
	}
	scratchPool.Put(s)
}

// borrowStacks returns n empty stacks whose backing arrays are reused
// across borrows.  The previous borrow must be dead: both users finish with
// their stacks (and every solution expanded from them) before borrowing
// again.
func (s *scratch) borrowStacks(n int) [][]stackEntry {
	for len(s.stackSet) < n {
		s.stackSet = append(s.stackSet, nil)
	}
	set := s.stackSet[:n]
	for i := range set {
		set[i] = set[i][:0]
	}
	return set
}

// borrowPathView returns an n-wide reusable window for expandLeaf.
func (s *scratch) borrowPathView(n int) [][]stackEntry {
	for len(s.pathView) < n {
		s.pathView = append(s.pathView, nil)
	}
	return s.pathView[:n]
}

// borrowSol returns the length-n in-progress solution buffer.
func (s *scratch) borrowSol(n int) []doc.NodeID {
	if cap(s.solBuf) < n {
		s.solBuf = make([]doc.NodeID, n)
	}
	s.solBuf = s.solBuf[:n]
	return s.solBuf
}

// copySol appends a copy of sol to the solution arena and returns it capped,
// so later copies cannot alias it.  The copy only lives until the evaluator
// releases its scratch — path solutions are merged before Run returns.
func (ev *evaluator) copySol(sol []doc.NodeID) []doc.NodeID {
	a := ev.scr.solArena
	n := len(a)
	a = append(a, sol...)
	ev.scr.solArena = a
	return a[n:len(a):len(a)]
}
