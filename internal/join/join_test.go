package join

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX Position-Aware Search</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>Tok Wang Ling</author>
    <title>XML Databases</title>
    <chapter><title>Twigs</title><section><title>Stacks</title></section></chapter>
  </book>
</dblp>`

func mustIndex(t testing.TB, src string) *index.Index {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(d)
}

func run(t testing.TB, ix *index.Index, query string, alg Algorithm) *Result {
	t.Helper()
	q := twig.MustParse(query)
	res, err := Run(ix, q, alg, Options{})
	if err != nil {
		t.Fatalf("%s on %q: %v", alg, query, err)
	}
	return res
}

// matchSetString canonicalizes a result for cross-algorithm comparison.
func matchSetString(r *Result) string {
	lines := make([]string, len(r.Matches))
	for i, m := range r.Matches {
		parts := make([]string, len(m))
		for j, n := range m {
			parts[j] = fmt.Sprint(n)
		}
		lines[i] = strings.Join(parts, ",")
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

func TestSingleNodeQuery(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		res := run(t, ix, "//author", alg)
		if len(res.Matches) != 4 {
			t.Errorf("%s: %d matches, want 4", alg, len(res.Matches))
		}
	}
}

func TestSimplePathQuery(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		res := run(t, ix, "//article/title", alg)
		if len(res.Matches) != 2 {
			t.Errorf("%s: %d matches, want 2", alg, len(res.Matches))
		}
	}
}

func TestDescendantVsChild(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		// book//title: 3 titles under book (direct, chapter, section).
		res := run(t, ix, "//book//title", alg)
		if len(res.Matches) != 3 {
			t.Errorf("%s //book//title: %d, want 3", alg, len(res.Matches))
		}
		res = run(t, ix, "//book/title", alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s //book/title: %d, want 1", alg, len(res.Matches))
		}
	}
}

func TestBranchingTwig(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		// article with both an author and a year: both articles; articles
		// have 1 and 2 authors -> 1 + 2 = 3 matches (author binding varies).
		res := run(t, ix, "//article[author][year]", alg)
		if len(res.Matches) != 3 {
			t.Errorf("%s: %d matches, want 3", alg, len(res.Matches))
		}
		outs := res.OutputNodes(twig.MustParse("//article[author][year]"))
		if len(outs) != 2 {
			t.Errorf("%s: %d distinct output nodes, want 2", alg, len(outs))
		}
	}
}

func TestValuePredicates(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()
	for _, alg := range Algorithms {
		res := run(t, ix, `//article[author = "Jiaheng Lu"]/title`, alg)
		if len(res.Matches) != 2 {
			t.Errorf("%s eq: %d matches, want 2", alg, len(res.Matches))
		}
		res = run(t, ix, `//article[title contains "lotusx"]`, alg)
		if len(res.Matches) != 1 {
			t.Fatalf("%s contains: %d matches, want 1", alg, len(res.Matches))
		}
		art := res.Matches[0][0]
		if !strings.Contains(d.XMLString(art), "a2") {
			t.Errorf("%s contains matched wrong article", alg)
		}
	}
}

func TestSelfPredicate(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		res := run(t, ix, `//title[. = "xml databases"]`, alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s: %d matches, want 1", alg, len(res.Matches))
		}
	}
}

func TestAttributePredicate(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		res := run(t, ix, `//article[@key = "a2"]/author`, alg)
		if len(res.Matches) != 2 {
			t.Errorf("%s: %d matches, want 2", alg, len(res.Matches))
		}
	}
}

func TestWildcardQuery(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		// Any element directly containing a title: article x2, book,
		// chapter, section.
		res := run(t, ix, `//*[title]`, alg)
		if len(res.Matches) != 5 {
			t.Errorf("%s: %d matches, want 5", alg, len(res.Matches))
		}
	}
}

func TestRootedQuery(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		res := run(t, ix, `/dblp/article`, alg)
		if len(res.Matches) != 2 {
			t.Errorf("%s /dblp/article: %d, want 2", alg, len(res.Matches))
		}
		// /article is rooted at document root; no article is the root.
		res = run(t, ix, `/article`, alg)
		if len(res.Matches) != 0 {
			t.Errorf("%s /article: %d, want 0", alg, len(res.Matches))
		}
	}
}

func TestNoMatches(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, alg := range Algorithms {
		for _, q := range []string{
			"//nosuchtag",
			`//article[author = "Nobody"]`,
			"//year/author", // wrong nesting
		} {
			res := run(t, ix, q, alg)
			if len(res.Matches) != 0 {
				t.Errorf("%s %q: %d matches, want 0", alg, q, len(res.Matches))
			}
		}
	}
}

func TestOrderSensitiveQuery(t *testing.T) {
	src := `<r>
	  <s><a/><b/></s>
	  <s><b/><a/></s>
	  <s><a/></s>
	</r>`
	ix := mustIndex(t, src)
	for _, alg := range Algorithms {
		res := run(t, ix, `//s[a << b]`, alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s ordered: %d matches, want 1", alg, len(res.Matches))
		}
		res = run(t, ix, `//s[b << a]`, alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s reversed: %d matches, want 1", alg, len(res.Matches))
		}
		res = run(t, ix, `//s[a][b]`, alg)
		if len(res.Matches) != 2 {
			t.Errorf("%s unordered: %d matches, want 2", alg, len(res.Matches))
		}
	}
}

func TestOrderConstraintRequiresDisjoint(t *testing.T) {
	// a << b uses XQuery's <<-on-disjoint semantics: an ancestor does not
	// precede its descendant.
	src := `<r><s><a><b/></a></s></r>`
	ix := mustIndex(t, src)
	for _, alg := range Algorithms {
		res := run(t, ix, `//s[.//a << .//b]`, alg)
		if len(res.Matches) != 0 {
			t.Errorf("%s: nested a/b should not satisfy a << b", alg)
		}
	}
}

func TestMaxMatchesCap(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := twig.MustParse("//author")
	for _, alg := range Algorithms {
		res, err := Run(ix, q, alg, Options{MaxMatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 2 || !res.Capped {
			t.Errorf("%s: %d matches capped=%v, want 2/true", alg, len(res.Matches), res.Capped)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	ix := mustIndex(t, bibXML)
	if _, err := Run(ix, twig.MustParse("//a"), Algorithm("bogus"), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnnormalizedQuery(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := &twig.Query{Root: &twig.Node{Tag: "a"}}
	if _, err := Run(ix, q, TwigStack, Options{}); err == nil {
		t.Fatal("expected error for unnormalized query")
	}
}

func TestRecursiveStructure(t *testing.T) {
	// Recursive same-tag nesting is where stack algorithms earn their keep.
	src := `<r><a><a><a><b/></a></a><b/></a></r>`
	ix := mustIndex(t, src)
	want := -1
	for _, alg := range Algorithms {
		res := run(t, ix, `//a//b`, alg)
		if want == -1 {
			want = len(res.Matches)
		}
		if len(res.Matches) != want {
			t.Errorf("%s: %d matches, want %d", alg, len(res.Matches), want)
		}
	}
	// a1 contains both b's (2), a2 contains inner b, a3 contains inner b:
	// 2+1+1 = 4.
	if want != 4 {
		t.Errorf("//a//b = %d matches, want 4", want)
	}
}

func TestDeepChain(t *testing.T) {
	src := `<r><a><b><c><d>x</d></c></b></a><a><b><c/></b></a></r>`
	ix := mustIndex(t, src)
	for _, alg := range Algorithms {
		res := run(t, ix, `//a/b/c/d`, alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s: %d matches, want 1", alg, len(res.Matches))
		}
	}
}

func TestTwigStackFewerIntermediateResults(t *testing.T) {
	// One branch never matches together with the other: PathStack emits
	// path solutions for both branches independently; TwigStack's getNext
	// skips elements without full extensions.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50; i++ {
		b.WriteString("<x><y/></x>") // x with y but no z
	}
	for i := 0; i < 50; i++ {
		b.WriteString("<x><z/></x>") // x with z but no y
	}
	b.WriteString("<x><y/><z/></x>") // the only full match
	b.WriteString("</r>")
	ix := mustIndex(t, b.String())

	q := twig.MustParse("//x[y][z]")
	ps, err := Run(ix, q, PathStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Run(ix, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Matches) != 1 || len(ts.Matches) != 1 {
		t.Fatalf("matches: pathstack=%d twigstack=%d, want 1", len(ps.Matches), len(ts.Matches))
	}
	if ts.Stats.PathSolutions >= ps.Stats.PathSolutions {
		t.Errorf("TwigStack path solutions (%d) should be < PathStack (%d)",
			ts.Stats.PathSolutions, ps.Stats.PathSolutions)
	}
	if ts.Stats.PathSolutions != 2 {
		t.Errorf("TwigStack should emit exactly 2 path solutions, got %d", ts.Stats.PathSolutions)
	}
}

// --- randomized cross-algorithm equivalence ---

func TestCrossAlgorithmEquivalenceRandom(t *testing.T) {
	// Random well-formed documents: build via explicit stack to guarantee
	// well-formedness.
	rng := rand.New(rand.NewSource(2012))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "x y", "z"}

	queries := []string{
		"//a",
		"//a/b",
		"//a//b",
		"//a[b][c]",
		"//a[b]//c",
		"//a/b[c]",
		"//a[b/c]",
		"//a//b//c",
		"//a[b][c]/d",
		`//a[b = "x"]`,
		`//a[.//b contains "y"]`,
		"//a[b << c]",
		"//*[b]",
		"/r//a[b]",
		"//a[b][c][d]",
		"//a[b//d]/c",
	}

	for trial := 0; trial < 30; trial++ {
		src := genWellFormed(rng, tags, vals, 60+rng.Intn(120))
		ix := mustIndex(t, src)
		for _, qs := range queries {
			q := twig.MustParse(qs)
			var ref string
			for _, alg := range Algorithms {
				res, err := Run(ix, q, alg, Options{})
				if err != nil {
					t.Fatalf("trial %d %s %q: %v", trial, alg, qs, err)
				}
				s := matchSetString(res)
				if alg == NestedLoop {
					ref = s
					continue
				}
				if s != ref {
					t.Fatalf("trial %d query %q: %s disagrees with oracle\noracle: %s\n%s:    %s\ndoc: %s",
						trial, qs, alg, ref, alg, s, src)
				}
			}
		}
	}
}

// genWellFormed emits a random well-formed document using an explicit open
// stack.
func genWellFormed(rng *rand.Rand, tags, vals []string, steps int) string {
	var b strings.Builder
	var open []string
	b.WriteString("<r>")
	for i := 0; i < steps; i++ {
		if len(open) > 0 && (rng.Intn(3) == 0 || len(open) > 6) {
			b.WriteString("</" + open[len(open)-1] + ">")
			open = open[:len(open)-1]
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		if rng.Intn(2) == 0 {
			b.WriteString("<" + tag + ">" + vals[rng.Intn(len(vals))] + "</" + tag + ">")
		} else {
			b.WriteString("<" + tag + ">")
			open = append(open, tag)
		}
	}
	for len(open) > 0 {
		b.WriteString("</" + open[len(open)-1] + ">")
		open = open[:len(open)-1]
	}
	b.WriteString("</r>")
	return b.String()
}

func TestStatsPopulated(t *testing.T) {
	ix := mustIndex(t, bibXML)
	res := run(t, ix, "//article[author][year]", TwigStack)
	if res.Stats.ElementsScanned == 0 || res.Stats.PathSolutions == 0 {
		t.Errorf("TwigStack stats empty: %+v", res.Stats)
	}
	res = run(t, ix, "//article[author][year]", Structural)
	if res.Stats.EdgePairs == 0 {
		t.Errorf("Structural stats empty: %+v", res.Stats)
	}
	if res.Stats.MatchesEnumerated != len(res.Matches) {
		t.Errorf("MatchesEnumerated = %d, matches = %d", res.Stats.MatchesEnumerated, len(res.Matches))
	}
}

func TestOutputNodesProjection(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := twig.MustParse("//article/author")
	res, err := Run(ix, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := res.OutputNodes(q)
	if len(outs) != 3 {
		t.Fatalf("output nodes = %d, want 3", len(outs))
	}
	for i := 1; i < len(outs); i++ {
		if outs[i-1] >= outs[i] {
			t.Fatal("output nodes not in document order")
		}
	}
}

func TestSingleNodeDocument(t *testing.T) {
	ix := mustIndex(t, `<only>x</only>`)
	for _, alg := range Algorithms {
		res := run(t, ix, "//only", alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s //only: %d matches, want 1", alg, len(res.Matches))
		}
		res = run(t, ix, "/only", alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s /only: %d matches, want 1", alg, len(res.Matches))
		}
		res = run(t, ix, "//only/child", alg)
		if len(res.Matches) != 0 {
			t.Errorf("%s //only/child: %d matches, want 0", alg, len(res.Matches))
		}
	}
}

func TestQueryDeeperThanDocument(t *testing.T) {
	ix := mustIndex(t, `<a><b/></a>`)
	for _, alg := range Algorithms {
		res := run(t, ix, "//a/b/c/d/e", alg)
		if len(res.Matches) != 0 {
			t.Errorf("%s: %d matches, want 0", alg, len(res.Matches))
		}
	}
}

func TestMaxMatchesWithOrderFilter(t *testing.T) {
	// The cap bounds ENUMERATED matches; order filtering runs after, so a
	// capped ordered result may hold fewer than MaxMatches answers — the
	// documented semantics.
	src := `<r><s><b/><a/></s><s><a/><b/></s><s><a/><b/></s></r>`
	ix := mustIndex(t, src)
	q := twig.MustParse(`//s[a << b]`)
	res, err := Run(ix, q, TwigStack, Options{MaxMatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("expected capped enumeration")
	}
	if len(res.Matches) > 2 {
		t.Fatalf("matches = %d exceeds cap", len(res.Matches))
	}
}

func TestSameTagQueryNodes(t *testing.T) {
	// Recursive queries where multiple query nodes share one tag exercise
	// stream independence (each query node gets its own cursor).
	src := `<r><a><a><a/></a></a></r>`
	ix := mustIndex(t, src)
	for _, alg := range Algorithms {
		res := run(t, ix, "//a//a//a", alg)
		if len(res.Matches) != 1 {
			t.Errorf("%s //a//a//a: %d matches, want 1", alg, len(res.Matches))
		}
		res = run(t, ix, "//a[a]/a", alg)
		// a1[a2]/a2, a2[a3]/a3 -> 2 matches.
		if len(res.Matches) != 2 {
			t.Errorf("%s //a[a]/a: %d matches, want 2", alg, len(res.Matches))
		}
	}
}
