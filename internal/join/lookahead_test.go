package join

import (
	"strings"
	"testing"

	"lotusx/internal/twig"
)

// TwigStackLA is exercised against the oracle by every cross-algorithm test
// (it is in Algorithms); these tests cover its distinctive pruning.

func TestLookAheadPrunesUselessSolutions(t *testing.T) {
	// Many a-elements contain b only as a grandchild; //a/b matches only
	// the one direct pair.  Plain TwigStack pushes every (a,b) A-D pair and
	// filters at expansion; the look-ahead variant never emits them.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<a><m><b/></m></a>")
	}
	sb.WriteString("<a><b/></a>")
	sb.WriteString("</r>")
	ix := mustIndex(t, sb.String())
	q := twig.MustParse("//a/b")

	plain, err := Run(ix, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	la, err := Run(ix, q, TwigStackLA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Matches) != 1 || len(la.Matches) != 1 {
		t.Fatalf("matches: plain=%d la=%d, want 1", len(plain.Matches), len(la.Matches))
	}
	// The P-C filter during expansion keeps emitted solutions equal; the
	// saving is in stack work: plain TwigStack pushes every a with a
	// descendant b, the look-ahead pushes only the one with a child b.
	if la.Stats.ElementsPushed >= plain.Stats.ElementsPushed {
		t.Errorf("look-ahead pushed %d elements, plain pushed %d — no pruning",
			la.Stats.ElementsPushed, plain.Stats.ElementsPushed)
	}
	if la.Stats.ElementsPushed != 2 { // the good a and its b
		t.Errorf("look-ahead pushed %d, want 2", la.Stats.ElementsPushed)
	}
}

func TestLookAheadBottomUpComposition(t *testing.T) {
	// The filter must compose along P-C chains: in //a/b/c, an a whose b
	// children all lack c children must be dropped too.
	src := `<r>
	  <a><b><x/></b></a>
	  <a><b><c/></b></a>
	  <a><m><b><c/></b></m></a>
	</r>`
	ix := mustIndex(t, src)
	q := twig.MustParse("//a/b/c")
	la, err := Run(ix, q, TwigStackLA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(la.Matches))
	}
	if la.Stats.PathSolutions != 1 {
		t.Errorf("path solutions = %d, want 1", la.Stats.PathSolutions)
	}
}

func TestLookAheadMixedAxes(t *testing.T) {
	// A-D edges are untouched by the pre-filter; only the P-C child gates.
	src := `<r>
	  <s><deep><n/></deep></s>
	  <s><n/><v/></s>
	</r>`
	ix := mustIndex(t, src)
	for _, qs := range []string{"//s[.//n]/v", "//s[.//n][v]", "//s[n]//v"} {
		q := twig.MustParse(qs)
		oracle, err := Run(ix, q, NestedLoop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		la, err := Run(ix, q, TwigStackLA, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if matchSetString(oracle) != matchSetString(la) {
			t.Fatalf("%s: look-ahead disagrees with oracle", qs)
		}
	}
}

func TestLookAheadWithPredicates(t *testing.T) {
	// The look-ahead consults the *filtered* child list: an a whose only b
	// child fails the value predicate must be pruned.
	src := `<r><a><b>good</b></a><a><b>bad</b></a></r>`
	ix := mustIndex(t, src)
	q := twig.MustParse(`//a/b[. = "good"]`)
	la, err := Run(ix, q, TwigStackLA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(la.Matches))
	}
	if la.Stats.PathSolutions != 1 {
		t.Errorf("predicate-aware look-ahead should emit 1 solution, got %d", la.Stats.PathSolutions)
	}
}
