package join

import (
	"sort"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// runTwigStackLA is TwigStack with parent-child look-ahead, our rendition of
// TwigStackList (Lu, Chen, Ling, CIKM 2004).  The original buffers internal
// streams in lists to look one level ahead before pushing an element whose
// edge to a child is parent-child; with the streams in memory, the same
// pruning power comes from a bottom-up pre-filter: an element of query node
// q survives only if, for every P-C child qc, it has a direct child in qc's
// (already filtered) node list.  Elements failing the check can appear in no
// match, so the filter preserves the result set (the randomized oracle tests
// cover this variant too) while eliminating the useless path solutions that
// plain TwigStack emits on P-C edges — the effect experiment E4 measures.
func (ev *evaluator) runTwigStackLA() error {
	ev.prefilterParentChild()
	return ev.runTwigStack()
}

// prefilterParentChild walks the query bottom-up, dropping elements that
// lack a direct child in some P-C child's node list.
func (ev *evaluator) prefilterParentChild() {
	var walk func(qn *twig.Node)
	walk = func(qn *twig.Node) {
		for _, qc := range qn.Children {
			walk(qc)
		}
		var pcKids []*twig.Node
		for _, qc := range qn.Children {
			if qc.Axis == twig.Child {
				pcKids = append(pcKids, qc)
			}
		}
		if len(pcKids) == 0 {
			return
		}
		nodes := ev.nodes[qn.ID]
		kept := make([]doc.NodeID, 0, len(nodes))
		for _, e := range nodes {
			if !ev.tick() {
				return
			}
			ok := true
			for _, qc := range pcKids {
				if !ev.hasDirectChildIn(e, ev.nodes[qc.ID]) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, e)
			}
		}
		ev.nodes[qn.ID] = kept
	}
	walk(ev.q.Root)
}

// hasDirectChildIn reports whether some node in list (document-ordered) is
// a direct child of e.  Children of e lie in the contiguous start range
// (e.Start, e.End) at level e.Level+1; the list is binary-searched to the
// range start, then scanned.
func (ev *evaluator) hasDirectChildIn(e doc.NodeID, list []doc.NodeID) bool {
	d := ev.ix.Document()
	reg := d.Region(e)
	lo := sort.Search(len(list), func(i int) bool {
		return d.Region(list[i]).Start > reg.Start
	})
	for _, cand := range list[lo:] {
		cr := d.Region(cand)
		if cr.Start >= reg.End {
			return false
		}
		ev.stats.ElementsScanned++
		if cr.Level == reg.Level+1 {
			return true
		}
	}
	return false
}
