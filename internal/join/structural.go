package join

import (
	"sort"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// runStructural evaluates the twig by decomposing it into one binary
// structural join per query edge (the Stack-Tree-Desc algorithm of
// Al-Khalifa et al.), then assembling full matches from the edge pair sets.
// Before assembly, a bottom-up semi-join pass prunes parent candidates with
// no match in some child edge, which keeps the enumeration from exploring
// dead branches; the edge pairs themselves are still computed per edge in
// isolation, so Stats.EdgePairs exposes the classical weakness that E2/E3
// measure against holistic evaluation.
func (ev *evaluator) runStructural() error {
	n := ev.q.Len()
	edges := make([]edgeMap, n)

	// Bottom-up: survivors[qid] is the set of document nodes of query node
	// qid that head a full match of qid's sub-twig.
	survivors := make([]map[doc.NodeID]struct{}, n)
	var reduce func(qn *twig.Node)
	reduce = func(qn *twig.Node) {
		if ev.err != nil {
			return
		}
		for _, qc := range qn.Children {
			reduce(qc)
		}
		surv := make(map[doc.NodeID]struct{})
		if len(qn.Children) == 0 {
			for _, dn := range ev.nodes[qn.ID] {
				surv[dn] = struct{}{}
			}
			survivors[qn.ID] = surv
			return
		}
		// Join qn's stream against each child's surviving nodes.
		perChild := make([]map[doc.NodeID]struct{}, len(qn.Children))
		for i, qc := range qn.Children {
			pairs := ev.structuralJoin(qn, qc, survivors[qc.ID])
			edges[qc.ID] = pairs
			parents := make(map[doc.NodeID]struct{}, len(pairs))
			for p := range pairs {
				parents[p] = struct{}{}
			}
			perChild[i] = parents
		}
		// qn survives iff it has a pair in every child edge.
		for p := range perChild[0] {
			ok := true
			for _, pc := range perChild[1:] {
				if _, in := pc[p]; !in {
					ok = false
					break
				}
			}
			if ok {
				surv[p] = struct{}{}
			}
		}
		survivors[qn.ID] = surv
	}
	reduce(ev.q.Root)
	if ev.err != nil {
		return ev.err
	}

	for _, em := range edges {
		if em != nil {
			ev.stats.EdgePairs += em.dedup()
		}
	}

	roots := make([]doc.NodeID, 0, len(survivors[ev.q.Root.ID]))
	for r := range survivors[ev.q.Root.ID] {
		roots = append(roots, r)
	}
	sortNodeIDs(roots)
	ev.assemble(roots, edges)
	return nil
}

// structuralJoin runs a stack-based merge of qn's stream against the child
// stream restricted to surviving nodes, producing all (ancestor, descendant)
// pairs that satisfy the edge axis.  Both inputs are in document order; the
// stack holds the current chain of nested ancestors.
func (ev *evaluator) structuralJoin(qn, qc *twig.Node, childSurvivors map[doc.NodeID]struct{}) edgeMap {
	d := ev.ix.Document()
	out := make(edgeMap)

	ancestors := ev.nodes[qn.ID]
	stack := ev.scr.nodeStack[:0]
	ai := 0
	for _, c := range ev.nodes[qc.ID] {
		if !ev.tick() {
			break
		}
		if _, ok := childSurvivors[c]; !ok {
			continue
		}
		creg := d.Region(c)
		ev.stats.ElementsScanned++
		// Push every ancestor-stream node that starts before c.
		for ai < len(ancestors) && d.Region(ancestors[ai]).Start < creg.Start {
			// Pop stack entries that end before this new node starts; they
			// cannot contain it or anything later.
			areg := d.Region(ancestors[ai])
			for len(stack) > 0 && d.Region(stack[len(stack)-1]).End < areg.Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ancestors[ai])
			ai++
			ev.stats.ElementsScanned++
		}
		// Pop entries that end before c starts.
		for len(stack) > 0 && d.Region(stack[len(stack)-1]).End < creg.Start {
			stack = stack[:len(stack)-1]
		}
		// Remaining stack entries all contain c.
		for _, a := range stack {
			if qc.Axis == twig.Child {
				if d.Region(a).Level+1 != creg.Level {
					continue
				}
			}
			if d.Region(a).IsAncestor(creg) {
				out.add(a, c)
			}
		}
	}
	ev.scr.nodeStack = stack // hand the grown capacity back for the next edge
	return out
}

func sortNodeIDs(ns []doc.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
