package join

import (
	"testing"

	"lotusx/internal/dataset"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// Join microbenchmarks: allocs/op on the evaluation hot path is the number
// the PR-level allocation pass is judged by (run with -benchmem).  The
// query shapes mirror the E2 workload: a plain path, a parent-child-heavy
// branch, and an order-constrained branch, all over XMark.
var benchQueries = []struct {
	name string
	text string
}{
	{"path", `//item/name`},
	{"branch_pc", `//person[profile/age]/name`},
	{"branch_deep", `//open_auction[bidder/increase][seller]`},
}

var benchIndex *index.Index

func benchIx(b *testing.B) *index.Index {
	if benchIndex == nil {
		d, err := dataset.Build(dataset.XMark, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		benchIndex = index.Build(d)
	}
	return benchIndex
}

func benchRun(b *testing.B, alg Algorithm) {
	ix := benchIx(b)
	for _, q := range benchQueries {
		query := twig.MustParse(q.text)
		b.Run(q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(ix, query, alg, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Matches) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

func BenchmarkTwigStack(b *testing.B)   { benchRun(b, TwigStack) }
func BenchmarkTwigStackLA(b *testing.B) { benchRun(b, TwigStackLA) }
func BenchmarkTJFast(b *testing.B)      { benchRun(b, TJFast) }
func BenchmarkPathStack(b *testing.B)   { benchRun(b, PathStack) }
func BenchmarkStructural(b *testing.B)  { benchRun(b, Structural) }
