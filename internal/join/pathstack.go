package join

import (
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// stackEntry is one element on an algorithm stack: the document node plus
// the index of the top of the parent query node's stack at push time.  The
// entries at or below ptr in the parent stack are exactly this node's
// stacked ancestors.
type stackEntry struct {
	node doc.NodeID
	ptr  int
}

// rootPaths decomposes the query into its root-to-leaf paths.
func rootPaths(q *twig.Query) [][]*twig.Node {
	var paths [][]*twig.Node
	var walk func(n *twig.Node, prefix []*twig.Node)
	walk = func(n *twig.Node, prefix []*twig.Node) {
		prefix = append(prefix, n)
		if n.IsLeaf() {
			paths = append(paths, append([]*twig.Node(nil), prefix...))
			return
		}
		for _, c := range n.Children {
			walk(c, prefix)
		}
	}
	walk(q.Root, nil)
	return paths
}

// expandPath enumerates every root-to-leaf solution encoded by the stack
// chain ending at stacks[len(path)-1][leafIdx].  Parent-child edges are
// enforced here (stacks only guarantee ancestor-descendant).  Solutions are
// emitted root-first.
func (ev *evaluator) expandPath(path []*twig.Node, stacks [][]stackEntry, leafIdx int, emit func(sol []doc.NodeID)) {
	d := ev.ix.Document()
	sol := ev.scr.borrowSol(len(path))
	var rec func(i, idx int)
	rec = func(i, idx int) {
		if !ev.tick() {
			return
		}
		sol[i] = stacks[i][idx].node
		if i == 0 {
			emit(sol)
			return
		}
		limit := stacks[i][idx].ptr
		for j := 0; j <= limit; j++ {
			if path[i].Axis == twig.Child &&
				!d.Region(stacks[i-1][j].node).IsParent(d.Region(sol[i])) {
				continue
			}
			rec(i-1, j)
		}
	}
	rec(len(path)-1, leafIdx)
}

// pathSolutions stores the emitted root-to-leaf solutions of one path.
type pathSolutions struct {
	path []*twig.Node
	sols [][]doc.NodeID
}

// runPathStack evaluates the twig by running the PathStack algorithm once
// per root-to-leaf path and merging the per-path solutions.  Each run prunes
// only with its own path's constraints, so paths sharing a branching node
// can emit solutions that no full twig match extends — the intermediate
// blow-up experiment E3 quantifies against TwigStack.
func (ev *evaluator) runPathStack() error {
	var all []pathSolutions
	for _, path := range rootPaths(ev.q) {
		if ev.err != nil {
			return ev.err
		}
		ps := pathSolutions{path: path}
		ev.pathStackOne(path, &ps)
		ev.stats.PathSolutions += len(ps.sols)
		all = append(all, ps)
	}
	ev.mergePathSolutions(all)
	return nil
}

// pathStackOne runs PathStack (Bruno et al. 2002) over one path.
func (ev *evaluator) pathStackOne(path []*twig.Node, out *pathSolutions) {
	k := len(path)
	streams := make([]*index.Stream, k)
	for i, qn := range path {
		streams[i] = ev.stream(qn.ID)
	}
	stacks := ev.scr.borrowStacks(k)
	leaf := k - 1

	for !streams[leaf].EOF() {
		if !ev.tick() {
			return
		}
		// qmin: the non-exhausted stream whose head starts first.
		qmin := -1
		for i := range streams {
			if streams[i].EOF() {
				continue
			}
			if qmin == -1 || streams[i].Region().Start < streams[qmin].Region().Start {
				qmin = i
			}
		}
		head := streams[qmin].Region()

		// Pop every stack entry that ends before the new head starts; such
		// entries cannot be ancestors of it or of anything later.
		for i := range stacks {
			for len(stacks[i]) > 0 && ev.endOf(stacks[i][len(stacks[i])-1]) < head.Start {
				stacks[i] = stacks[i][:len(stacks[i])-1]
			}
		}

		if qmin == 0 || len(stacks[qmin-1]) > 0 {
			stacks[qmin] = append(stacks[qmin], stackEntry{
				node: streams[qmin].Head(),
				ptr:  len(stackOrNil(stacks, qmin-1)) - 1,
			})
			ev.stats.ElementsPushed++
			if qmin == leaf {
				ev.expandPath(path, stacks, len(stacks[leaf])-1, func(sol []doc.NodeID) {
					out.sols = append(out.sols, ev.copySol(sol))
				})
				stacks[leaf] = stacks[leaf][:len(stacks[leaf])-1]
			}
		}
		streams[qmin].Advance()
		ev.stats.ElementsScanned++
	}
}

func stackOrNil(stacks [][]stackEntry, i int) []stackEntry {
	if i < 0 {
		return nil
	}
	return stacks[i]
}

func (ev *evaluator) endOf(e stackEntry) int32 {
	return ev.ix.Document().Region(e.node).End
}

// mergePathSolutions combines per-path solutions into full twig matches:
// the per-edge (parent, child) pairs observed across solutions feed the
// shared assembly, and root candidates are the intersection of every path's
// root set (a root missing from any path heads no full match).
func (ev *evaluator) mergePathSolutions(all []pathSolutions) {
	edges := make([]edgeMap, ev.q.Len())
	rootCount := make(map[doc.NodeID]int)
	for _, ps := range all {
		rootsSeen := make(map[doc.NodeID]struct{})
		for _, sol := range ps.sols {
			if !ev.tick() {
				return
			}
			rootsSeen[sol[0]] = struct{}{}
			for i := 1; i < len(ps.path); i++ {
				qc := ps.path[i]
				if edges[qc.ID] == nil {
					edges[qc.ID] = make(edgeMap)
				}
				edges[qc.ID].add(sol[i-1], sol[i])
			}
		}
		for r := range rootsSeen {
			rootCount[r]++
		}
	}
	for _, em := range edges {
		if em != nil {
			em.dedup()
		}
	}
	var roots []doc.NodeID
	for r, c := range rootCount {
		if c == len(all) {
			roots = append(roots, r)
		}
	}
	sortNodeIDs(roots)
	ev.assemble(roots, edges)
}
