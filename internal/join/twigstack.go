package join

import (
	"math"

	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// twigState is the running state of one TwigStack evaluation.
type twigState struct {
	ev      *evaluator
	streams []*index.Stream // per query node ID
	stacks  [][]stackEntry  // per query node ID
	// pathOf[leafID] is the root-to-leaf query path ending at that leaf;
	// indexed by query node ID (nil for non-leaves) to keep the per-push
	// lookup off a map.
	pathOf [][]*twig.Node
	// sols[leafID] collects the leaf's emitted path solutions.
	sols [][][]doc.NodeID
}

// runTwigStack evaluates the twig holistically (Bruno, Koudas, Srivastava,
// "Holistic Twig Joins", SIGMOD 2002).  getNext only returns query nodes
// whose head element has a descendant extension in every child stream, so
// for ancestor-descendant-only twigs every emitted root-to-leaf solution is
// part of some full match — the optimality that experiment E3 measures.
// Parent-child edges are enforced during expansion and assembly, where the
// algorithm (like the original) can do extra work; experiment E4 measures
// that.
func (ev *evaluator) runTwigStack() error {
	ts := &twigState{
		ev:      ev,
		streams: make([]*index.Stream, ev.q.Len()),
		stacks:  ev.scr.borrowStacks(ev.q.Len()),
		pathOf:  make([][]*twig.Node, ev.q.Len()),
		sols:    make([][][]doc.NodeID, ev.q.Len()),
	}
	for _, qn := range ev.q.Nodes() {
		ts.streams[qn.ID] = ev.stream(qn.ID)
	}
	for _, path := range rootPaths(ev.q) {
		leaf := path[len(path)-1]
		ts.pathOf[leaf.ID] = path
	}

	for !ts.allLeavesDone() {
		if !ev.tick() {
			return ev.err
		}
		qact := ts.getNext(ev.q.Root)
		s := ts.streams[qact.ID]
		if s.EOF() {
			// getNext signals an exhausted subtree by returning its root;
			// reaching the query root this way means nothing is left.
			break
		}
		head := s.Region()
		parent := qact.Parent()
		if parent != nil {
			ts.cleanStack(parent.ID, head.Start)
		}
		if parent == nil || len(ts.stacks[parent.ID]) > 0 {
			ts.cleanStack(qact.ID, head.Start)
			ptr := -1
			if parent != nil {
				ptr = len(ts.stacks[parent.ID]) - 1
			}
			ts.stacks[qact.ID] = append(ts.stacks[qact.ID], stackEntry{node: s.Head(), ptr: ptr})
			ev.stats.ElementsPushed++
			if qact.IsLeaf() {
				path := ts.pathOf[qact.ID]
				ts.expandLeaf(qact, path)
				ts.stacks[qact.ID] = ts.stacks[qact.ID][:len(ts.stacks[qact.ID])-1]
			}
		}
		s.Advance()
		ev.stats.ElementsScanned++
	}

	ts.merge()
	return nil
}

// expandLeaf emits the path solutions encoded by the just-pushed top of the
// leaf's stack.  The leaf's chain spans the stacks of the query nodes on
// its root path, which is exactly the layout expandPath expects.
func (ts *twigState) expandLeaf(leaf *twig.Node, path []*twig.Node) {
	stacks := ts.ev.scr.borrowPathView(len(path))
	for i, qn := range path {
		stacks[i] = ts.stacks[qn.ID]
	}
	ts.ev.expandPath(path, stacks, len(stacks[len(path)-1])-1, func(sol []doc.NodeID) {
		ts.sols[leaf.ID] = append(ts.sols[leaf.ID], ts.ev.copySol(sol))
		ts.ev.stats.PathSolutions++
	})
}

// cleanStack pops entries of query node qid's stack that end before start;
// they cannot contain the next element or anything after it.
func (ts *twigState) cleanStack(qid int, start int32) {
	st := ts.stacks[qid]
	for len(st) > 0 && ts.ev.endOf(st[len(st)-1]) < start {
		st = st[:len(st)-1]
	}
	ts.stacks[qid] = st
}

// allLeavesDone reports whether every leaf stream is exhausted — the
// paper's end(q) condition.
func (ts *twigState) allLeavesDone() bool {
	for _, leaf := range ts.ev.q.Leaves() {
		if !ts.streams[leaf.ID].EOF() {
			return false
		}
	}
	return true
}

// headStart returns the start tick of a stream's head, or +inf at EOF so
// exhausted streams lose every minimum and win every maximum.
func (ts *twigState) headStart(qid int) int32 {
	s := ts.streams[qid]
	if s.EOF() {
		return math.MaxInt32
	}
	return s.Region().Start
}

// getNext returns the query node to process next: a node whose head element
// is guaranteed to have descendant extensions in every child stream (the
// paper's Algorithm 2), or — our explicit convention — a node with an
// exhausted stream to signal that its whole subtree is drained.
func (ts *twigState) getNext(qn *twig.Node) *twig.Node {
	if qn.IsLeaf() {
		return qn
	}
	var qmin, qmax *twig.Node
	for _, qc := range qn.Children {
		r := ts.getNext(qc)
		if r != qc {
			return r
		}
		if qmin == nil || ts.headStart(qc.ID) < ts.headStart(qmin.ID) {
			qmin = qc
		}
		if qmax == nil || ts.headStart(qc.ID) > ts.headStart(qmax.ID) {
			qmax = qc
		}
	}
	// Discard own elements that end before the latest child head starts:
	// they cannot contain a future element of that child, and all their
	// descendants in the other child streams were already processed.
	own := ts.streams[qn.ID]
	maxStart := ts.headStart(qmax.ID)
	for !own.EOF() && own.Region().End < maxStart {
		if !ts.ev.tick() {
			break
		}
		own.Advance()
		ts.ev.stats.ElementsScanned++
	}
	if !own.EOF() && own.Region().Start < ts.headStart(qmin.ID) {
		return qn
	}
	if ts.streams[qmin.ID].EOF() {
		// Every child subtree is exhausted (their heads are all +inf), and
		// the loop above drained our own stream: signal exhaustion upward.
		return qn
	}
	return qmin
}

// merge assembles full twig matches from the per-leaf path solutions,
// sharing mergePathSolutions with PathStack.
func (ts *twigState) merge() {
	var all []pathSolutions
	for _, path := range rootPaths(ts.ev.q) {
		leaf := path[len(path)-1]
		all = append(all, pathSolutions{path: path, sols: ts.sols[leaf.ID]})
	}
	ts.ev.mergePathSolutions(all)
}
