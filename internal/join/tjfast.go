package join

import (
	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// runTJFast implements TJFast (Lu, Ling, Chan, Chen, "From Region Encoding
// to Extended Dewey", VLDB 2005) — the leaf-streams-only twig join from the
// LotusX authors' own lineage.  Only the streams of the query's *leaf* nodes
// are read; each leaf element's root-to-leaf tag path is recovered and
// aligned against the query path, directly yielding that leaf's path
// solutions, which the shared merge phase assembles into full matches.
//
// The original reads the tag path out of the extended Dewey label via the
// DTD's finite state transducer so it never touches ancestor nodes on disk;
// our documents are in memory with parent pointers, so the path walk is the
// equivalent O(depth) operation (DESIGN.md records the substitution).  The
// advantage TJFast keeps here is what E2 measures: internal query nodes
// contribute no stream scans at all, which dominates when internal tags are
// frequent (//S//NP//NN reads only the NN stream).
func (ev *evaluator) runTJFast() error {
	// Candidate sets of internal query nodes, for alignment checks.
	candidate := make([]map[doc.NodeID]struct{}, ev.q.Len())
	for _, qn := range ev.q.Nodes() {
		if qn.IsLeaf() {
			continue
		}
		set := make(map[doc.NodeID]struct{}, len(ev.nodes[qn.ID]))
		for _, n := range ev.nodes[qn.ID] {
			set[n] = struct{}{}
		}
		candidate[qn.ID] = set
	}

	var all []pathSolutions
	for _, path := range rootPaths(ev.q) {
		leaf := path[len(path)-1]
		ps := pathSolutions{path: path}
		for _, e := range ev.nodes[leaf.ID] {
			if !ev.tick() {
				return ev.err
			}
			ev.stats.ElementsScanned++
			ev.alignLeaf(path, e, candidate, &ps)
		}
		ev.stats.PathSolutions += len(ps.sols)
		all = append(all, ps)
	}
	ev.mergePathSolutions(all)
	return nil
}

// alignLeaf enumerates every alignment of the query path onto the root path
// of leaf element e and appends the resulting path solutions.  The tag path
// is decoded from e's extended Dewey label (pure arithmetic over the
// transducer, the TJFast signature move); the parent-pointer walk only
// recovers the ancestors' identities for the output tuples.
func (ev *evaluator) alignLeaf(path []*twig.Node, e doc.NodeID, candidate []map[doc.NodeID]struct{}, out *pathSolutions) {
	d := ev.ix.Document()
	trans, labels := ev.ix.ExtDewey()
	tagPath, err := trans.DecodeTags(labels.At(e))
	if err != nil {
		// Labels are built from this very document; decoding cannot fail.
		panic("join: extended Dewey decode failed: " + err.Error())
	}

	// Root-to-e node chain (identities for the solution tuples).
	if cap(ev.scr.chainBuf) < len(tagPath) {
		ev.scr.chainBuf = make([]doc.NodeID, len(tagPath))
	}
	chain := ev.scr.chainBuf[:len(tagPath)]
	for cur, i := e, len(chain)-1; cur != doc.None; cur, i = d.Parent(cur), i-1 {
		chain[i] = cur
	}

	k := len(path) - 1
	sol := ev.scr.borrowSol(len(path))
	sol[k] = e

	tags := d.Tags()
	// qualifies reports whether chain[pos] can be bound to query node qi,
	// checking the tag against the decoded path.
	qualifies := func(qi, pos int) bool {
		qn := path[qi]
		if !qn.IsWildcard() && tagPath[pos] != tags.ID(qn.Tag) {
			return false
		}
		if set := candidate[qn.ID]; set != nil {
			_, ok := set[chain[pos]]
			return ok
		}
		return true
	}

	// rec binds query node qi to a chain position strictly below "upper"
	// (the position bound to qi+1), walking from the leaf to the root.
	var rec func(qi, upper int)
	rec = func(qi, upper int) {
		if !ev.tick() {
			return
		}
		if qi < 0 {
			out.sols = append(out.sols, ev.copySol(sol))
			return
		}
		qn := path[qi+1] // the child whose Axis constrains qi's position
		if qn.Axis == twig.Child {
			pos := upper - 1
			if pos < 0 || !qualifies(qi, pos) {
				return
			}
			if qi == 0 && path[0].Axis == twig.Child && pos != 0 {
				return
			}
			sol[qi] = chain[pos]
			rec(qi-1, pos)
			return
		}
		for pos := upper - 1; pos >= 0; pos-- {
			if !qualifies(qi, pos) {
				continue
			}
			if qi == 0 && path[0].Axis == twig.Child && pos != 0 {
				continue
			}
			sol[qi] = chain[pos]
			rec(qi-1, pos)
		}
	}

	// The leaf itself must sit where the query wants it: a rooted
	// single-node query (/tag) was already filtered in buildStreams; for
	// longer paths the leaf can be anywhere, its ancestors constrain it.
	if k == 0 {
		out.sols = append(out.sols, ev.copySol(sol))
		return
	}
	rec(k-1, len(chain)-1)
}
