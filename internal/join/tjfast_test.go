package join

import (
	"strings"
	"testing"

	"lotusx/internal/twig"
)

// TJFast is exercised by every cross-algorithm test in join_test.go (it is
// part of Algorithms); the tests here cover its distinctive properties.

func TestTJFastReadsOnlyLeafStreams(t *testing.T) {
	// //S//NP//NN on recursive data: S and NP streams are large, NN is the
	// only stream TJFast touches.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 200; i++ {
		b.WriteString("<S><NP><NP><NN>x</NN></NP></NP></S>")
	}
	b.WriteString("</r>")
	ix := mustIndex(t, b.String())
	q := twig.MustParse("//S//NP//NN")

	tj, err := Run(ix, q, TJFast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Run(ix, q, TwigStack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if matchSetString(tj) != matchSetString(ts) {
		t.Fatal("TJFast disagrees with TwigStack")
	}
	// TJFast scanned 200 leaf elements; TwigStack walked S (200), NP (400)
	// and NN (200) streams.
	if tj.Stats.ElementsScanned != 200 {
		t.Errorf("TJFast scanned %d elements, want 200 (leaves only)", tj.Stats.ElementsScanned)
	}
	if ts.Stats.ElementsScanned <= tj.Stats.ElementsScanned {
		t.Errorf("TwigStack should scan more: %d vs %d", ts.Stats.ElementsScanned, tj.Stats.ElementsScanned)
	}
}

func TestTJFastMultipleAlignments(t *testing.T) {
	// One NN under three nested NPs: //NP//NN has three alignments.
	ix := mustIndex(t, `<r><NP><NP><NP><NN>w</NN></NP></NP></NP></r>`)
	q := twig.MustParse("//NP//NN")
	res, err := Run(ix, q, TJFast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(res.Matches))
	}
	if res.Stats.PathSolutions != 3 {
		t.Fatalf("path solutions = %d, want 3", res.Stats.PathSolutions)
	}
}

func TestTJFastChildChainAlignment(t *testing.T) {
	// Child axes admit exactly one alignment per leaf.
	ix := mustIndex(t, `<r><a><b><c>x</c></b></a><a><c>y</c></a></r>`)
	res, err := Run(ix, twig.MustParse("//a/b/c"), TJFast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res.Matches))
	}
}

func TestTJFastInternalPredicates(t *testing.T) {
	// The internal node carries the predicate; TJFast checks it during
	// alignment via the candidate sets.
	ix := mustIndex(t, `<r>
	  <item><name>anvil</name><sub><price>10</price></sub></item>
	  <item><name>apple</name><sub><price>2</price></sub></item>
	</r>`)
	q := twig.MustParse(`//item[name = "anvil"]//price`)
	res, err := Run(ix, q, TJFast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res.Matches))
	}
	d := ix.Document()
	price := res.Matches[0][q.OutputNode().ID]
	if d.Value(price) != "10" {
		t.Errorf("price = %q, want 10", d.Value(price))
	}
}

func TestChooseHeuristics(t *testing.T) {
	// Internal-heavy recursive doc: TJFast territory.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 100; i++ {
		b.WriteString("<S><NP><NP><X/></NP></NP></S>")
	}
	b.WriteString("<S><NP><NN>x</NN></NP></S>")
	b.WriteString("</r>")
	ix := mustIndex(t, b.String())

	if got := Choose(ix, twig.MustParse("//S//NP//NN")); got != TJFast {
		t.Errorf("internal-heavy: Choose = %s, want tjfast", got)
	}
	if got := Choose(ix, twig.MustParse("//NN")); got != NestedLoop {
		t.Errorf("single node: Choose = %s, want nestedloop", got)
	}
	if got := Choose(ix, twig.MustParse("//S[NP][X]")); got != TwigStack {
		t.Errorf("branching: Choose = %s, want twigstack", got)
	}
	if got := Choose(ix, twig.MustParse("//NP/NP")); got != PathStack {
		t.Errorf("pure path: Choose = %s, want pathstack", got)
	}
	if got := Choose(ix, &twig.Query{}); got != TwigStack {
		t.Errorf("unnormalized: Choose = %s, want twigstack fallback", got)
	}
}

func TestAutoAlgorithmMatchesOracle(t *testing.T) {
	ix := mustIndex(t, bibXML)
	for _, qs := range []string{
		"//article/title",
		"//article[author][year]",
		"//book//title",
		`//article[author = "Jiaheng Lu"]`,
	} {
		q := twig.MustParse(qs)
		auto, err := Run(ix, q, Auto, Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := Run(ix, q, NestedLoop, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if matchSetString(auto) != matchSetString(oracle) {
			t.Errorf("auto disagrees with oracle on %q", qs)
		}
	}
}

func TestEstimateStream(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := twig.MustParse(`//author`)
	if got := EstimateStream(ix, q.Root); got != 4 {
		t.Errorf("plain tag estimate = %d, want 4", got)
	}
	q = twig.MustParse(`//author[. contains "jiaheng"]`)
	est := EstimateStream(ix, q.Root)
	if est < 1 || est >= 4 {
		t.Errorf("predicate estimate = %d, want in [1,4)", est)
	}
	q = twig.MustParse(`//nosuch`)
	if got := EstimateStream(ix, q.Root); got != 0 {
		t.Errorf("unknown tag estimate = %d, want 0", got)
	}
	q = twig.MustParse(`//*`)
	if got := EstimateStream(ix, q.Root); got == 0 {
		t.Error("wildcard estimate should be positive")
	}
}

func TestEstimateMatches(t *testing.T) {
	ix := mustIndex(t, bibXML)
	// //article/title: min(2 articles... wait 2 articles, 4 titles) = 2.
	got := EstimateMatches(ix, twig.MustParse("//article/title"))
	if got != 2 {
		t.Errorf("estimate = %d, want 2", got)
	}
	if got := EstimateMatches(ix, twig.MustParse("//nosuch/title")); got != 0 {
		t.Errorf("estimate for dead query = %d, want 0", got)
	}
	if got := EstimateMatches(ix, &twig.Query{}); got != 0 {
		t.Errorf("estimate for empty query = %d, want 0", got)
	}
}

func TestExplain(t *testing.T) {
	ix := mustIndex(t, bibXML)
	out := Explain(ix, twig.MustParse(`//article[author = "Jiaheng Lu"]/title`))
	for _, want := range []string{
		"plan for //article",
		"node 0 //article (internal)",
		`[= "Jiaheng Lu"]`,
		"estimated matches",
		"algorithm (auto):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Unnormalized queries normalize in place; broken ones report.
	if out := Explain(ix, &twig.Query{}); !strings.Contains(out, "invalid query") {
		t.Errorf("broken query explain = %q", out)
	}
}
