package join

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lotusx/internal/twig"
)

// deepNest renders <a> nested depth times — the pathological input whose
// //a//a//... cross product makes every algorithm run long enough to observe
// cooperative cancellation.
func deepNest(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

func TestRunDeadContextFailsFast(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := twig.MustParse("//article/author")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range Algorithms {
		if _, err := Run(ix, q, alg, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
	}
}

// tripCtx is a context whose Err flips to context.Canceled after a fixed
// number of polls — deterministic mid-evaluation cancellation.
type tripCtx struct {
	context.Context
	left int
}

func (c *tripCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRunCancelsMidJoin(t *testing.T) {
	ix := mustIndex(t, deepNest(120))
	q := twig.MustParse("//a//a//a")
	for _, alg := range Algorithms {
		// The first poll happens in Run's fail-fast check; tripping on the
		// third lands the cancellation inside the algorithm's own loops.
		ctx := &tripCtx{Context: context.Background(), left: 3}
		_, err := Run(ix, q, alg, Options{Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
	}
}

func TestRunDeadlineStopsLongJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("long join")
	}
	// 300 nested <a> and a 4-node descendant chain: ~300^4/24 path
	// solutions — minutes of work if cancellation failed.
	ix := mustIndex(t, deepNest(300))
	q := twig.MustParse("//a//a//a//a")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ix, q, TwigStack, Options{Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want well under 2s", elapsed)
	}
}

func TestRunReportsAlgorithm(t *testing.T) {
	ix := mustIndex(t, bibXML)
	q := twig.MustParse("//article/author")
	res, err := Run(ix, q, Auto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "" || res.Algorithm == Auto {
		t.Fatalf("Algorithm = %q, want a concrete algorithm", res.Algorithm)
	}
	res, err = Run(ix, q, TJFast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != TJFast {
		t.Fatalf("Algorithm = %q, want tjfast", res.Algorithm)
	}
}
