// The shape-level fast path over the DAG-compressed index substrate
// (internal/index/compress.go).  Preorder NodeIDs make every occurrence of
// a shared subtree shape an exact ID-translated copy of its canonical
// occurrence: the node at offset k under occurrence root r is the copy of
// canonical r0+k, and every query-visible relation — parent/child,
// ancestor/descendant, document order, values — holds between translated
// nodes iff it holds between the canonical ones.
//
// Twig semantics bound every binding of a match inside the subtree of the
// query root's binding, so the match set splits into two disjoint classes
// by where that root binding lives:
//
//   - Class A — inside a shared occurrence.  The whole match then lies
//     inside that occurrence's subtree, so it is a translated copy of a
//     match whose root binds inside the canonical occurrence.  Pass 1
//     restricts every stream to canonical-occurrence nodes, runs the
//     algorithm once — once per distinct shape, not per instance — and
//     translates each match to the group's remaining occurrences.
//   - Class B — on a residue node (outside every shared occurrence).  Pass
//     2 restricts only the root stream to residue, leaves the other
//     streams full, and runs the algorithm again.
//
// Cover subtrees are disjoint and residue is their complement, so the two
// passes enumerate exactly the raw match set: every algorithm returns
// byte-identical results on compressed and raw substrates (the property
// suite in randomtwig_test.go holds all six to that).
package join

import (
	"lotusx/internal/index"
)

// runCompressed evaluates the query over a compressed index with the
// two-pass shape fast path.
func (ev *evaluator) runCompressed(alg Algorithm, comp *index.Compressed) error {
	// Pass 1: canonical occurrences only, then expand per occurrence.
	if ev.buildStreamsMode(streamCanonical) {
		if err := ev.dispatch(alg); err != nil {
			return err
		}
		if ev.err == nil && !ev.capped {
			ev.expandOccurrences(comp)
		}
	}
	if ev.err != nil || ev.capped {
		// A sticky context error surfaces through Run's ev.err check; at
		// the cap there is nothing more to enumerate.
		return nil
	}
	// Pass 2: residue-rooted matches against full streams.
	if ev.buildStreamsMode(streamResidueRoot) {
		return ev.dispatch(alg)
	}
	return nil
}

// expandOccurrences translates every canonical-pass match to the remaining
// occurrences of the group covering its root binding.  All bindings of a
// match sit inside the root binding's subtree, hence inside the same
// occurrence subtree, so one delta per target occurrence translates the
// whole match.
func (ev *evaluator) expandOccurrences(comp *index.Compressed) {
	rootID := ev.q.Root.ID
	base := ev.matches // snapshot: addMatch appends behind it
	tm := make(Match, ev.q.Len())
	for _, m := range base {
		r0, roots, ok := comp.Occurrence(m[rootID])
		if !ok || len(roots) < 2 {
			continue
		}
		for _, r := range roots {
			if r == r0 {
				continue
			}
			delta := r - r0
			for i, n := range m {
				tm[i] = n + delta
			}
			if !ev.addMatch(tm) {
				return
			}
		}
	}
}
