// Package xmlparse implements a from-scratch streaming XML pull parser.  It
// is the ingestion substrate of the LotusX reproduction: the document store
// consumes its event stream to assign positional labels in a single pass.
//
// The parser covers the XML subset relevant to data-centric documents:
// elements, attributes (single- or double-quoted), character data, CDATA
// sections, comments, processing instructions, an optional XML declaration
// and DOCTYPE (both skipped), and the five predefined entities plus decimal
// and hexadecimal character references.  It enforces well-formedness — tag
// balance, attribute uniqueness, name syntax — and reports errors with line
// and column positions.  DTD-defined entities and external references are
// out of scope (the paper's datasets do not need them).
package xmlparse

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// EventKind discriminates the events produced by the parser.
type EventKind uint8

const (
	// StartElement is the opening of an element; Name and Attrs are set.
	StartElement EventKind = iota
	// EndElement is the closing of an element; Name is set.
	EndElement
	// Text is character data (entity references resolved, CDATA included);
	// Value is set.  Whitespace-only text between elements is suppressed.
	Text
	// Comment is a <!-- --> comment; Value holds the comment body.
	Comment
	// ProcInst is a processing instruction; Name is the target and Value the
	// instruction body.
	ProcInst
)

func (k EventKind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Attr is a single attribute of a start element.
type Attr struct {
	Name  string
	Value string
}

// Event is one parse event.  Attrs aliases an internal buffer that is reused
// by the next call to Next; callers that retain attributes must copy them.
type Event struct {
	Kind  EventKind
	Name  string
	Value string
	Attrs []Attr
	Line  int // 1-based line of the event's first character
	Col   int // 1-based column (in runes) of the event's first character
}

// SyntaxError describes a well-formedness violation with its position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlparse: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parser is a pull parser over a byte source.  Create one with NewParser and
// call Next until it returns io.EOF.
type Parser struct {
	src  io.Reader
	buf  []byte
	r, w int  // read/write cursors into buf
	eof  bool // src exhausted

	line, col int // position of the next unread byte

	stack []string // open element names
	attrs []Attr   // reusable attribute buffer
	text  strings.Builder

	started bool // a root element has been seen
	rooted  bool // the root element has been closed

	pending            *Event // synthesized EndElement for a self-closing tag
	rootedAfterPending bool   // the pending end closes the root element
	bomChecked         bool   // a leading UTF-8 BOM has been looked for

	// KeepWhitespace retains whitespace-only text events instead of
	// suppressing them.  Set before the first call to Next.
	KeepWhitespace bool
}

// NewParser returns a Parser reading from src.
func NewParser(src io.Reader) *Parser {
	return &Parser{
		src:  src,
		buf:  make([]byte, 0, 64<<10),
		line: 1,
		col:  1,
	}
}

// NewParserString returns a Parser over a string, convenient in tests.
func NewParserString(s string) *Parser { return NewParser(strings.NewReader(s)) }

// Depth returns the number of currently open elements.
func (p *Parser) Depth() int { return len(p.stack) }

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

// fill ensures at least n unread bytes are buffered, unless the source ends
// first.  It reports whether n bytes are available.
func (p *Parser) fill(n int) bool {
	for p.w-p.r < n && !p.eof {
		if p.r > 0 && p.r == p.w {
			p.r, p.w = 0, 0
			p.buf = p.buf[:0]
		}
		if cap(p.buf)-p.w < 4096 {
			nb := make([]byte, p.w-p.r, max(2*cap(p.buf), 8192))
			copy(nb, p.buf[p.r:p.w])
			p.w -= p.r
			p.r = 0
			p.buf = nb[:p.w]
		}
		chunk := p.buf[p.w:cap(p.buf)]
		m, err := p.src.Read(chunk)
		p.buf = p.buf[:p.w+m]
		p.w += m
		if err == io.EOF {
			p.eof = true
		} else if err != nil {
			p.eof = true // surface read errors as truncation
		}
	}
	return p.w-p.r >= n
}

// peek returns the next unread byte without consuming it, or 0, false at EOF.
func (p *Parser) peek() (byte, bool) {
	if !p.fill(1) {
		return 0, false
	}
	return p.buf[p.r], true
}

// peekAt returns the byte at offset i from the cursor.
func (p *Parser) peekAt(i int) (byte, bool) {
	if !p.fill(i + 1) {
		return 0, false
	}
	return p.buf[p.r+i], true
}

// next consumes and returns one byte, tracking line/column.
func (p *Parser) next() (byte, bool) {
	if !p.fill(1) {
		return 0, false
	}
	c := p.buf[p.r]
	p.r++
	if c == '\n' {
		p.line++
		p.col = 1
	} else if c&0xC0 != 0x80 { // don't count UTF-8 continuation bytes
		p.col++
	}
	return c, true
}

// skipSpace consumes XML whitespace.
func (p *Parser) skipSpace() {
	for {
		c, ok := p.peek()
		if !ok || !isSpace(c) {
			return
		}
		p.next()
	}
}

// expect consumes the literal s or returns an error.
func (p *Parser) expect(s string) error {
	for i := 0; i < len(s); i++ {
		c, ok := p.next()
		if !ok {
			return p.errf("unexpected end of input, expected %q", s)
		}
		if c != s[i] {
			return p.errf("expected %q", s)
		}
	}
	return nil
}

// hasPrefix reports whether the unread input starts with s.
func (p *Parser) hasPrefix(s string) bool {
	if !p.fill(len(s)) {
		return false
	}
	return string(p.buf[p.r:p.r+len(s)]) == s
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// isNameStart reports whether c may begin an XML name.  Multi-byte UTF-8
// lead bytes are accepted wholesale; full Unicode name classes are overkill
// for the target datasets.
func isNameStart(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// readName consumes an XML name.
func (p *Parser) readName() (string, error) {
	c, ok := p.peek()
	if !ok || !isNameStart(c) {
		return "", p.errf("expected a name")
	}
	var b strings.Builder
	for {
		c, ok := p.peek()
		if !ok || !isNameChar(c) {
			break
		}
		p.next()
		b.WriteByte(c)
	}
	return b.String(), nil
}

// resolveCharRef decodes the body of a &#...; reference.
func resolveCharRef(body string) (rune, bool) {
	var n uint32
	if strings.HasPrefix(body, "x") || strings.HasPrefix(body, "X") {
		hex := body[1:]
		if hex == "" {
			return 0, false
		}
		for i := 0; i < len(hex); i++ {
			c := hex[i]
			var d uint32
			switch {
			case c >= '0' && c <= '9':
				d = uint32(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint32(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint32(c-'A') + 10
			default:
				return 0, false
			}
			n = n*16 + d
			if n > utf8.MaxRune {
				return 0, false
			}
		}
	} else {
		if body == "" {
			return 0, false
		}
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + uint32(c-'0')
			if n > utf8.MaxRune {
				return 0, false
			}
		}
	}
	r := rune(n)
	if !isValidXMLChar(r) {
		return 0, false
	}
	return r, true
}

// isValidXMLChar reports whether r is a legal XML 1.0 character (§2.2):
// tab, LF, CR, and everything from space up, minus surrogates (which
// utf8.ValidRune rejects) and the two non-characters U+FFFE/U+FFFF.
func isValidXMLChar(r rune) bool {
	if !utf8.ValidRune(r) {
		return false
	}
	switch {
	case r == '\t' || r == '\n' || r == '\r':
		return true
	case r < 0x20:
		return false
	case r == 0xFFFE || r == 0xFFFF:
		return false
	}
	return true
}

// readReference consumes an entity or character reference after the '&' has
// already been consumed and appends its expansion to b.
func (p *Parser) readReference(b *strings.Builder) error {
	var body strings.Builder
	for i := 0; ; i++ {
		c, ok := p.next()
		if !ok {
			return p.errf("unterminated entity reference")
		}
		if c == ';' {
			break
		}
		if i > 10 {
			return p.errf("entity reference too long")
		}
		body.WriteByte(c)
	}
	s := body.String()
	switch s {
	case "lt":
		b.WriteByte('<')
	case "gt":
		b.WriteByte('>')
	case "amp":
		b.WriteByte('&')
	case "apos":
		b.WriteByte('\'')
	case "quot":
		b.WriteByte('"')
	default:
		if len(s) > 1 && s[0] == '#' {
			r, ok := resolveCharRef(s[1:])
			if !ok {
				return p.errf("invalid character reference &%s;", s)
			}
			b.WriteRune(r)
			return nil
		}
		return p.errf("unknown entity &%s;", s)
	}
	return nil
}
