package xmlparse

import (
	"io"
	"math/rand"
	"strings"
	"testing"
)

// collect drains the parser into a slice of events.
func collect(t *testing.T, src string) []Event {
	t.Helper()
	p := NewParserString(src)
	var evs []Event
	for {
		ev, err := p.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("unexpected parse error: %v", err)
		}
		// Copy attrs: the buffer is reused.
		ev.Attrs = append([]Attr(nil), ev.Attrs...)
		evs = append(evs, ev)
	}
}

func parseErr(src string) error {
	p := NewParserString(src)
	for {
		_, err := p.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func TestSimpleDocument(t *testing.T) {
	evs := collect(t, `<a><b x="1">hi</b><c/></a>`)
	want := []struct {
		kind  EventKind
		name  string
		value string
	}{
		{StartElement, "a", ""},
		{StartElement, "b", ""},
		{Text, "", "hi"},
		{EndElement, "b", ""},
		{StartElement, "c", ""},
		{EndElement, "c", ""},
		{EndElement, "a", ""},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Name != w.name || evs[i].Value != w.value {
			t.Errorf("event %d = %v %q %q, want %v %q %q",
				i, evs[i].Kind, evs[i].Name, evs[i].Value, w.kind, w.name, w.value)
		}
	}
	if len(evs[1].Attrs) != 1 || evs[1].Attrs[0] != (Attr{"x", "1"}) {
		t.Errorf("attrs = %+v, want [{x 1}]", evs[1].Attrs)
	}
}

func TestXMLDeclarationAndDoctypeSkipped(t *testing.T) {
	evs := collect(t, `<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE dblp SYSTEM "dblp.dtd" [ <!ENTITY x "y"> ]>
<dblp></dblp>`)
	if len(evs) != 2 || evs[0].Kind != StartElement || evs[0].Name != "dblp" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEntities(t *testing.T) {
	evs := collect(t, `<a>&lt;&gt;&amp;&apos;&quot; &#65;&#x42;&#x1F600;</a>`)
	if len(evs) != 3 {
		t.Fatalf("events = %+v", evs)
	}
	want := `<>&'" AB😀`
	if evs[1].Value != want {
		t.Errorf("text = %q, want %q", evs[1].Value, want)
	}
}

func TestEntitiesInAttributes(t *testing.T) {
	evs := collect(t, `<a title="Tom &amp; Jerry&#33;"/>`)
	if got := evs[0].Attrs[0].Value; got != "Tom & Jerry!" {
		t.Errorf("attr = %q", got)
	}
}

func TestCDATA(t *testing.T) {
	evs := collect(t, `<a>pre<![CDATA[<raw> & stuff]]>post</a>`)
	if len(evs) != 3 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Value != "pre<raw> & stuffpost" {
		t.Errorf("text = %q", evs[1].Value)
	}
}

func TestWhitespaceOnlyCDATAKept(t *testing.T) {
	// CDATA is explicit content even when blank? We follow the simpler rule:
	// whitespace-only text (CDATA included) is suppressed unless
	// KeepWhitespace is set.
	evs := collect(t, "<a><![CDATA[  ]]></a>")
	if len(evs) != 2 {
		t.Fatalf("whitespace-only CDATA should be suppressed, got %+v", evs)
	}
}

func TestCommentsAndProcInst(t *testing.T) {
	evs := collect(t, `<a><!-- a comment --><?target data here?></a>`)
	if len(evs) != 4 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Kind != Comment || evs[1].Value != " a comment " {
		t.Errorf("comment = %+v", evs[1])
	}
	if evs[2].Kind != ProcInst || evs[2].Name != "target" || evs[2].Value != "data here" {
		t.Errorf("pi = %+v", evs[2])
	}
}

func TestWhitespaceSuppression(t *testing.T) {
	evs := collect(t, "<a>\n  <b>x</b>\n</a>")
	if len(evs) != 5 {
		t.Fatalf("expected pretty-print whitespace suppressed, got %+v", evs)
	}
	p := NewParserString("<a>\n  <b>x</b>\n</a>")
	p.KeepWhitespace = true
	n := 0
	for {
		_, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Fatalf("KeepWhitespace should retain 2 whitespace runs, got %d events", n)
	}
}

func TestSelfClosingRoot(t *testing.T) {
	evs := collect(t, `<a/>`)
	if len(evs) != 2 || evs[0].Kind != StartElement || evs[1].Kind != EndElement {
		t.Fatalf("events = %+v", evs)
	}
}

func TestAttributeQuoting(t *testing.T) {
	evs := collect(t, `<a x='single' y="double"/>`)
	attrs := evs[0].Attrs
	if len(attrs) != 2 || attrs[0].Value != "single" || attrs[1].Value != "double" {
		t.Fatalf("attrs = %+v", attrs)
	}
}

func TestPositionsReported(t *testing.T) {
	evs := collect(t, "<a>\n  <b>x</b>\n</a>")
	// <b> starts on line 2 col 3.
	if evs[1].Line != 2 || evs[1].Col != 3 {
		t.Errorf("<b> position = %d:%d, want 2:3", evs[1].Line, evs[1].Col)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error message
	}{
		{"mismatched tags", `<a><b></a>`, "does not match"},
		{"unclosed element", `<a><b>`, "unclosed"},
		{"stray end tag", `</a>`, "no open element"},
		{"duplicate attr", `<a x="1" x="2"/>`, "duplicate attribute"},
		{"unquoted attr", `<a x=1/>`, "must be quoted"},
		{"missing equals", `<a x/>`, "missing '='"},
		{"lt in attr", `<a x="<"/>`, "'<' not allowed"},
		{"unknown entity", `<a>&nope;</a>`, "unknown entity"},
		{"bad char ref", `<a>&#xZZ;</a>`, "invalid character reference"},
		{"char ref zero", `<a>&#0;</a>`, "invalid character reference"},
		{"double dash comment", `<a><!-- -- --></a>`, "--"},
		{"unterminated comment", `<a><!-- x`, "unterminated comment"},
		{"unterminated cdata", `<a><![CDATA[x`, "unterminated CDATA"},
		{"text outside root", `x<a/>`, "outside root"},
		{"second root", `<a/><b/>`, "after document root"},
		{"empty input", ``, "no root element"},
		{"unterminated start", `<a`, "unterminated start tag"},
		{"entity overflow", `<a>&#x110000;</a>`, "invalid character reference"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := parseErr(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("error is %T, want *SyntaxError", err)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	err := parseErr("<a>\n  <b></c>\n</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestDeeplyNested(t *testing.T) {
	depth := 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	evs := collect(t, b.String())
	if len(evs) != 2*depth+1 {
		t.Fatalf("got %d events, want %d", len(evs), 2*depth+1)
	}
}

func TestSmallReadChunks(t *testing.T) {
	// Exercise buffer refill logic with a reader that returns 1 byte at a
	// time.
	src := `<root attr="value with &amp; entity"><child>some text content</child><!-- c --></root>`
	p := NewParser(iotest1{strings.NewReader(src)})
	var kinds []EventKind
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{StartElement, StartElement, Text, EndElement, Comment, EndElement}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

// iotest1 yields one byte per Read call.
type iotest1 struct{ r io.Reader }

func (o iotest1) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestLargeDocumentStreams(t *testing.T) {
	var b strings.Builder
	b.WriteString("<items>")
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	for i := 0; i < n; i++ {
		b.WriteString(`<item id="`)
		for j := 0; j < 4; j++ {
			b.WriteByte(byte('a' + rng.Intn(26)))
		}
		b.WriteString(`">value</item>`)
	}
	b.WriteString("</items>")
	evs := collect(t, b.String())
	if len(evs) != 2+3*n {
		t.Fatalf("got %d events, want %d", len(evs), 2+3*n)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		StartElement: "StartElement", EndElement: "EndElement",
		Text: "Text", Comment: "Comment", ProcInst: "ProcInst",
		EventKind(99): "EventKind(99)",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDepth(t *testing.T) {
	p := NewParserString(`<a><b></b></a>`)
	depths := []int{1, 2, 1, 0}
	for i := 0; ; i++ {
		_, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Depth() != depths[i] {
			t.Errorf("after event %d depth = %d, want %d", i, p.Depth(), depths[i])
		}
	}
}

func TestUTF8BOMAccepted(t *testing.T) {
	evs := collect(t, "\xEF\xBB\xBF<a>x</a>")
	if len(evs) != 3 || evs[0].Name != "a" {
		t.Fatalf("events = %+v", evs)
	}
	// BOM must not shift reported columns.
	if evs[0].Col != 1 {
		t.Errorf("root col = %d, want 1", evs[0].Col)
	}
}

func TestCDATACloseSequenceRejectedInText(t *testing.T) {
	err := parseErr("<a>x ]]> y</a>")
	if err == nil || !strings.Contains(err.Error(), `"]]>"`) {
		t.Fatalf("err = %v", err)
	}
	// Inside a CDATA section the same bytes are fine (they terminate it).
	evs := collect(t, "<a><![CDATA[x ]] y]]></a>")
	if evs[1].Value != "x ]] y" {
		t.Fatalf("cdata = %q", evs[1].Value)
	}
	// Lone brackets in text are fine.
	evs = collect(t, "<a>x ]] y</a>")
	if evs[1].Value != "x ]] y" {
		t.Fatalf("text = %q", evs[1].Value)
	}
}

func TestAttributeWhitespaceNormalization(t *testing.T) {
	evs := collect(t, "<a k=\"one\ttwo\nthree\"/>")
	if got := evs[0].Attrs[0].Value; got != "one two three" {
		t.Fatalf("attr = %q, want %q", got, "one two three")
	}
}

func TestControlCharactersRejected(t *testing.T) {
	if err := parseErr("<a>bad\x01char</a>"); err == nil ||
		!strings.Contains(err.Error(), "control character") {
		t.Fatalf("err = %v", err)
	}
	// Tab, LF and CR are legal whitespace in text.
	evs := collect(t, "<a>ok\tline\nend\r</a>")
	if evs[1].Value != "ok\tline\nend\r" {
		t.Fatalf("text = %q", evs[1].Value)
	}
	// Character references to control characters are invalid too.
	for _, src := range []string{"<a>&#1;</a>", "<a>&#x0B;</a>", "<a>&#xFFFE;</a>"} {
		if err := parseErr(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
	// References to tab/LF/CR stay legal.
	evs = collect(t, "<a>&#9;x</a>")
	if evs[1].Value != "\tx" {
		t.Fatalf("tab ref = %q", evs[1].Value)
	}
}

func TestControlCharacterInAttributeRejected(t *testing.T) {
	if err := parseErr("<a k=\"x\x02y\"/>"); err == nil ||
		!strings.Contains(err.Error(), "control character") {
		t.Fatalf("err = %v", err)
	}
}
