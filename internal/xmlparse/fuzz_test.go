package xmlparse

import (
	"io"
	"strings"
	"testing"
)

// FuzzParser checks that arbitrary byte input never makes the parser panic,
// loop, or succeed-then-contradict itself: any input that parses completely
// must re-parse to the same event sequence.  The seed corpus runs on every
// plain `go test`; `go test -fuzz=FuzzParser` explores further.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"",
		"<a/>",
		"<a><b x='1'>hi</b></a>",
		`<?xml version="1.0"?><!DOCTYPE d [ <!ENTITY x "y"> ]><d/>`,
		"<a>&lt;&#65;&#x42;</a>",
		"<a><![CDATA[<raw>]]></a>",
		"<a><!-- c --><?pi data?></a>",
		"<a><b></a>",     // mismatched
		"<a x=1/>",       // unquoted
		"<a>&bogus;</a>", // unknown entity
		"<",
		"<a ",
		"\xff\xfe<a/>",
		strings.Repeat("<d>", 100) + strings.Repeat("</d>", 100),
		"<a>" + strings.Repeat("&amp;", 50) + "</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		events := func(s string) ([]Event, error) {
			p := NewParserString(s)
			var evs []Event
			for {
				ev, err := p.Next()
				if err == io.EOF {
					return evs, nil
				}
				if err != nil {
					return nil, err
				}
				ev.Attrs = append([]Attr(nil), ev.Attrs...)
				evs = append(evs, ev)
				if len(evs) > 1<<16 {
					t.Fatalf("event flood on %q", s)
				}
			}
		}
		evs1, err := events(src)
		if err != nil {
			return // rejection is fine; panics are not (would crash the fuzzer)
		}
		evs2, err := events(src)
		if err != nil {
			t.Fatalf("second parse failed where first succeeded: %v", err)
		}
		if len(evs1) != len(evs2) {
			t.Fatalf("non-deterministic parse: %d vs %d events", len(evs1), len(evs2))
		}
		for i := range evs1 {
			a, b := evs1[i], evs2[i]
			if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
				t.Fatalf("event %d differs between parses", i)
			}
		}
	})
}
