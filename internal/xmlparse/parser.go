package xmlparse

import (
	"io"
	"strings"
)

// Next returns the next parse event, or io.EOF after the root element has
// been closed and only trailing misc content remains.  Any other error is a
// *SyntaxError.
func (p *Parser) Next() (Event, error) {
	for {
		ev, ok, err := p.step()
		if err != nil {
			return Event{}, err
		}
		if ok {
			return ev, nil
		}
	}
}

// step tries to produce one event; ok is false when the scanned construct is
// skipped (declaration, doctype, suppressed whitespace).
func (p *Parser) step() (Event, bool, error) {
	if !p.bomChecked {
		p.bomChecked = true
		// A UTF-8 byte order mark before the document is legal; skip it.
		if p.hasPrefix("\xEF\xBB\xBF") {
			p.next()
			p.next()
			p.next()
			p.col = 1
		}
	}
	if p.pending != nil {
		ev := *p.pending
		p.pending = nil
		if p.rootedAfterPending {
			p.rooted = true
			p.rootedAfterPending = false
		}
		return ev, true, nil
	}
	startLine, startCol := p.line, p.col
	c, ok := p.peek()
	if !ok {
		if len(p.stack) > 0 {
			return Event{}, false, p.errf("unexpected end of input: %d unclosed element(s), innermost <%s>", len(p.stack), p.stack[len(p.stack)-1])
		}
		if !p.rooted {
			return Event{}, false, p.errf("document has no root element")
		}
		return Event{}, false, io.EOF
	}

	if c != '<' {
		return p.scanText(startLine, startCol)
	}

	// Dispatch on what follows '<'.
	c1, _ := p.peekAt(1)
	switch {
	case c1 == '?':
		return p.scanProcInst(startLine, startCol)
	case c1 == '!':
		if p.hasPrefix("<!--") {
			return p.scanComment(startLine, startCol)
		}
		if p.hasPrefix("<![CDATA[") {
			return p.scanText(startLine, startCol)
		}
		if p.hasPrefix("<!DOCTYPE") {
			return Event{}, false, p.skipDoctype()
		}
		return Event{}, false, p.errf("unsupported markup declaration")
	case c1 == '/':
		return p.scanEndTag(startLine, startCol)
	default:
		return p.scanStartTag(startLine, startCol)
	}
}

func (p *Parser) scanText(line, col int) (Event, bool, error) {
	if len(p.stack) == 0 {
		// Character data outside the root: only whitespace is legal.
		for {
			c, ok := p.peek()
			if !ok || c == '<' {
				return Event{}, false, nil
			}
			if !isSpace(c) {
				return Event{}, false, p.errf("character data outside root element")
			}
			p.next()
		}
	}
	p.text.Reset()
	allSpace := true
	for {
		c, ok := p.peek()
		if !ok {
			break
		}
		if c == '<' {
			if p.hasPrefix("<![CDATA[") {
				if err := p.scanCDATA(&allSpace); err != nil {
					return Event{}, false, err
				}
				continue
			}
			break
		}
		if c == ']' && p.hasPrefix("]]>") {
			// "]]>" must not appear bare in character data (XML 1.0 §2.4).
			return Event{}, false, p.errf(`"]]>" not allowed in character data`)
		}
		if c < 0x20 && c != '\t' && c != '\n' && c != '\r' {
			return Event{}, false, p.errf("control character 0x%02X not allowed in character data", c)
		}
		p.next()
		switch c {
		case '&':
			if err := p.readReference(&p.text); err != nil {
				return Event{}, false, err
			}
			allSpace = false
		default:
			if !isSpace(c) {
				allSpace = false
			}
			p.text.WriteByte(c)
		}
	}
	if allSpace && !p.KeepWhitespace {
		return Event{}, false, nil
	}
	return Event{Kind: Text, Value: p.text.String(), Line: line, Col: col}, true, nil
}

// scanCDATA consumes a <![CDATA[ ... ]]> section, appending its raw content
// to the current text buffer.
func (p *Parser) scanCDATA(allSpace *bool) error {
	if err := p.expect("<![CDATA["); err != nil {
		return err
	}
	for {
		if p.hasPrefix("]]>") {
			p.expect("]]>")
			return nil
		}
		c, ok := p.next()
		if !ok {
			return p.errf("unterminated CDATA section")
		}
		if !isSpace(c) {
			*allSpace = false
		}
		p.text.WriteByte(c)
	}
}

func (p *Parser) scanComment(line, col int) (Event, bool, error) {
	if err := p.expect("<!--"); err != nil {
		return Event{}, false, err
	}
	var b strings.Builder
	for {
		if p.hasPrefix("-->") {
			p.expect("-->")
			return Event{Kind: Comment, Value: b.String(), Line: line, Col: col}, true, nil
		}
		if p.hasPrefix("--") {
			return Event{}, false, p.errf("'--' not allowed inside comment")
		}
		c, ok := p.next()
		if !ok {
			return Event{}, false, p.errf("unterminated comment")
		}
		b.WriteByte(c)
	}
}

func (p *Parser) scanProcInst(line, col int) (Event, bool, error) {
	if err := p.expect("<?"); err != nil {
		return Event{}, false, err
	}
	name, err := p.readName()
	if err != nil {
		return Event{}, false, err
	}
	p.skipSpace()
	var b strings.Builder
	for {
		if p.hasPrefix("?>") {
			p.expect("?>")
			break
		}
		c, ok := p.next()
		if !ok {
			return Event{}, false, p.errf("unterminated processing instruction")
		}
		b.WriteByte(c)
	}
	if strings.EqualFold(name, "xml") {
		// The XML declaration is structural, not content; skip it.
		return Event{}, false, nil
	}
	return Event{Kind: ProcInst, Name: name, Value: b.String(), Line: line, Col: col}, true, nil
}

// skipDoctype consumes a DOCTYPE declaration including a bracketed internal
// subset, honouring nested brackets and quoted strings.
func (p *Parser) skipDoctype() error {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return err
	}
	depth := 0
	for {
		c, ok := p.next()
		if !ok {
			return p.errf("unterminated DOCTYPE")
		}
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case '"', '\'':
			quote := c
			for {
				q, ok := p.next()
				if !ok {
					return p.errf("unterminated literal in DOCTYPE")
				}
				if q == quote {
					break
				}
			}
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func (p *Parser) scanStartTag(line, col int) (Event, bool, error) {
	if err := p.expect("<"); err != nil {
		return Event{}, false, err
	}
	name, err := p.readName()
	if err != nil {
		return Event{}, false, err
	}
	if p.rooted {
		return Event{}, false, p.errf("element <%s> after document root closed", name)
	}
	p.attrs = p.attrs[:0]
	selfClose := false
	for {
		p.skipSpace()
		c, ok := p.peek()
		if !ok {
			return Event{}, false, p.errf("unterminated start tag <%s>", name)
		}
		if c == '>' {
			p.next()
			break
		}
		if c == '/' {
			p.next()
			if err := p.expect(">"); err != nil {
				return Event{}, false, err
			}
			selfClose = true
			break
		}
		attr, err := p.scanAttr()
		if err != nil {
			return Event{}, false, err
		}
		for _, a := range p.attrs {
			if a.Name == attr.Name {
				return Event{}, false, p.errf("duplicate attribute %q on <%s>", attr.Name, name)
			}
		}
		p.attrs = append(p.attrs, attr)
	}
	p.started = true
	ev := Event{Kind: StartElement, Name: name, Attrs: p.attrs, Line: line, Col: col}
	if selfClose {
		// Queue the matching end event by pushing then immediately noting a
		// pending pop: we synthesize the end on the next step via a
		// one-element pending queue.
		p.pending = &Event{Kind: EndElement, Name: name, Line: p.line, Col: p.col}
		if len(p.stack) == 0 {
			p.rootedAfterPending = true
		}
	} else {
		p.stack = append(p.stack, name)
	}
	return ev, true, nil
}

func (p *Parser) scanAttr() (Attr, error) {
	name, err := p.readName()
	if err != nil {
		return Attr{}, err
	}
	p.skipSpace()
	if err := p.expect("="); err != nil {
		return Attr{}, p.errf("attribute %q missing '='", name)
	}
	p.skipSpace()
	q, ok := p.next()
	if !ok || (q != '"' && q != '\'') {
		return Attr{}, p.errf("attribute %q value must be quoted", name)
	}
	var b strings.Builder
	for {
		c, ok := p.next()
		if !ok {
			return Attr{}, p.errf("unterminated value for attribute %q", name)
		}
		if c == q {
			break
		}
		switch c {
		case '<':
			return Attr{}, p.errf("'<' not allowed in attribute value")
		case '&':
			if err := p.readReference(&b); err != nil {
				return Attr{}, err
			}
		case '\t', '\n', '\r':
			// Attribute-value normalization (XML 1.0 §3.3.3): literal
			// whitespace characters become spaces.
			b.WriteByte(' ')
		default:
			if c < 0x20 {
				return Attr{}, p.errf("control character 0x%02X not allowed in attribute value", c)
			}
			b.WriteByte(c)
		}
	}
	return Attr{Name: name, Value: b.String()}, nil
}

func (p *Parser) scanEndTag(line, col int) (Event, bool, error) {
	if err := p.expect("</"); err != nil {
		return Event{}, false, err
	}
	name, err := p.readName()
	if err != nil {
		return Event{}, false, err
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return Event{}, false, err
	}
	if len(p.stack) == 0 {
		return Event{}, false, p.errf("closing tag </%s> with no open element", name)
	}
	open := p.stack[len(p.stack)-1]
	if open != name {
		return Event{}, false, p.errf("closing tag </%s> does not match open <%s>", name, open)
	}
	p.stack = p.stack[:len(p.stack)-1]
	if len(p.stack) == 0 {
		p.rooted = true
	}
	return Event{Kind: EndElement, Name: name, Line: line, Col: col}, true, nil
}
