package corpus

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/twig"
)

var errInjected = errors.New("injected shard failure")

// degradeCorpus builds a 4-shard XMark corpus with an armed fault registry
// and breakers disabled (so tests isolate the shard policy from the breaker,
// which has its own tests).
func degradeCorpus(t *testing.T, tuning Tuning) (*Corpus, *faults.Registry) {
	t.Helper()
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.New()
	if tuning.BreakerThreshold == 0 {
		tuning.BreakerThreshold = -1
	}
	c, err := FromDocument("xmark", d, 4, Config{Faults: reg, Tuning: tuning})
	if err != nil {
		t.Fatal(err)
	}
	return c, reg
}

func mustSearch(t *testing.T, c *Corpus, qs string, opts core.SearchOptions) *core.HitResult {
	t.Helper()
	q, err := twig.Parse(qs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SearchHits(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDegradePartialMatchesSurvivors is the core degraded-merge invariant:
// with one of four shards failing, the answer is exactly the healthy answer
// minus that shard's contribution, flagged partial with the shard named.
func TestDegradePartialMatchesSurvivors(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{})
	// //name matches in several document sections (items, categories, people),
	// so the document-order split spreads the answers over shards.
	const qs = "//name"
	opts := core.SearchOptions{K: 100000, SnippetMax: 200}

	healthy := mustSearch(t, c, qs, opts)
	if healthy.Partial || len(healthy.FailedShards) != 0 {
		t.Fatalf("healthy run flagged partial: %+v", healthy.FailedShards)
	}

	// Fail a shard contributing some but not all answers, so the degraded
	// run both loses and keeps hits.
	perShard := map[string]int{}
	for _, h := range healthy.Hits {
		perShard[h.Shard]++
	}
	victim := ""
	for shard, n := range perShard {
		if n > 0 && n < len(healthy.Hits) {
			victim = shard
			break
		}
	}
	if victim == "" {
		t.Fatalf("every shard is all-or-nothing for %s: %v", qs, perShard)
	}
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{victim}, Err: errInjected})
	got := mustSearch(t, c, qs, opts)
	if !got.Partial {
		t.Fatal("degraded run not flagged partial")
	}
	if len(got.FailedShards) != 1 || got.FailedShards[0] != victim {
		t.Fatalf("FailedShards = %v, want [%s]", got.FailedShards, victim)
	}
	if got.Shards != 4 {
		t.Fatalf("Shards = %d, want 4 (the fan-out width, not the survivors)", got.Shards)
	}

	var want []core.Hit
	for _, h := range healthy.Hits {
		if h.Shard != victim {
			want = append(want, h)
		}
	}
	if len(want) == 0 || len(want) == len(healthy.Hits) {
		t.Fatalf("victim shard contributed %d of %d hits — test is vacuous",
			len(healthy.Hits)-len(want), len(healthy.Hits))
	}
	wk, gk := hitKeys(want), hitKeys(got.Hits)
	if len(wk) != len(gk) {
		t.Fatalf("degraded run: %d hits, want %d (healthy minus victim)", len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("hit sets differ at %d:\n  want %q\n  got  %q", i, wk[i], gk[i])
		}
	}
	if got.Total != len(got.Hits) {
		t.Fatalf("Total = %d, want %d (all survivors materialized)", got.Total, len(got.Hits))
	}

	// Disarming the injection restores the full answer on the same corpus.
	reg.Reset()
	again := mustSearch(t, c, qs, opts)
	if again.Partial || len(again.Hits) != len(healthy.Hits) {
		t.Fatalf("after disarm: partial=%v hits=%d, want full %d", again.Partial, len(again.Hits), len(healthy.Hits))
	}
}

// TestDegradeTransparentRetry: a failure that clears on the second attempt
// never surfaces — the answer is whole and unflagged, and the injection
// counter proves the first attempt did fail.
func TestDegradeTransparentRetry(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{})
	const qs = "//item//name"
	opts := core.SearchOptions{K: 100000, SnippetMax: 200}
	healthy := mustSearch(t, c, qs, opts)

	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"xmark/002"}, Err: errInjected, Times: 1})
	got := mustSearch(t, c, qs, opts)
	if n := reg.Fired(FaultShardSearch); n != 1 {
		t.Fatalf("injection fired %d times, want exactly 1", n)
	}
	if got.Partial || len(got.FailedShards) != 0 {
		t.Fatalf("transient failure surfaced: partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	if len(got.Hits) != len(healthy.Hits) {
		t.Fatalf("retry run: %d hits, want %d", len(got.Hits), len(healthy.Hits))
	}
}

// TestDegradePagingInvariants: with one shard down, paging over the degraded
// result obeys the same contract as a healthy one — pages concatenate to the
// one-shot run, Total == Offset+K signals more pages, and the final page
// falls short.
func TestDegradePagingInvariants(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{})
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"xmark/000"}, Err: errInjected})
	const qs = "//person[name]//emailaddress"
	opts := core.SearchOptions{K: 100000, SnippetMax: 200}
	full := mustSearch(t, c, qs, opts)
	if !full.Partial {
		t.Fatal("want a partial run")
	}
	if len(full.Hits) < 5 {
		t.Fatalf("only %d surviving hits — paging test is vacuous", len(full.Hits))
	}

	const k = 3
	var paged []core.Hit
	for offset := 0; ; offset += k {
		page := mustSearch(t, c, qs, core.SearchOptions{K: k, Offset: offset, SnippetMax: 200})
		if !page.Partial || len(page.FailedShards) != 1 {
			t.Fatalf("offset %d: page lost the partial flag: %+v", offset, page.FailedShards)
		}
		paged = append(paged, page.Hits...)
		if page.Total < offset+k {
			// Contract: a Total short of the cut means the set is exhausted.
			if len(page.Hits) != page.Total-offset {
				t.Fatalf("last page: %d hits, Total %d, offset %d", len(page.Hits), page.Total, offset)
			}
			break
		}
		if page.Total != offset+k {
			t.Fatalf("offset %d: Total = %d, want exactly offset+k = %d mid-set", offset, page.Total, offset+k)
		}
		if len(page.Hits) != k {
			t.Fatalf("offset %d: %d hits, want a full page of %d", offset, len(page.Hits), k)
		}
	}
	if len(paged) != len(full.Hits) {
		t.Fatalf("pages concatenate to %d hits, one-shot run has %d", len(paged), len(full.Hits))
	}
	for i := range paged {
		if paged[i].Path != full.Hits[i].Path || paged[i].Snippet != full.Hits[i].Snippet {
			t.Fatalf("page walk diverges from one-shot run at %d: %q vs %q",
				i, paged[i].Path, full.Hits[i].Path)
		}
	}
}

// TestDegradeExactBeforeRewriteOrdering: the exact-before-rewrite global
// ordering survives losing a shard, and Exact counts the leading exact hits.
func TestDegradeExactBeforeRewriteOrdering(t *testing.T) {
	t.Parallel()
	d := mustDoc(t, "bib", bibXML)
	reg := faults.New()
	c, err := FromDocument("bib", d, 4, Config{Faults: reg, Tuning: Tuning{BreakerThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	// bib/002 holds a3 (year 2002): the surviving shards still contribute the
	// exact answer (a1, year 2005) and at least one relaxed answer (a2).
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"bib/002"}, Err: errInjected})

	q, err := twig.Parse(`//article[year = "2005"]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 50, Rewrite: true, SnippetMax: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("want partial")
	}
	if res.RewritesTried == 0 {
		t.Fatal("no rewrites tried — ordering test is vacuous")
	}
	if res.Exact < 0 || res.Exact > len(res.Hits) {
		t.Fatalf("Exact = %d with %d hits", res.Exact, len(res.Hits))
	}
	for i, h := range res.Hits {
		if i < res.Exact && h.Rewrite != "" {
			t.Fatalf("hit %d inside the exact prefix came from rewrite %q", i, h.Rewrite)
		}
		if i >= res.Exact && h.Rewrite == "" {
			t.Fatalf("exact hit %d ranked below the exact prefix (Exact=%d)", i, res.Exact)
		}
	}
	if len(res.Hits) <= res.Exact {
		t.Fatalf("no rewrite answers survived (%d hits, %d exact) — ordering test is vacuous",
			len(res.Hits), res.Exact)
	}
}

// TestDegradeAllShardsFailedErrors: losing every shard is an error, never an
// empty 200.
func TestDegradeAllShardsFailedErrors(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{})
	reg.Enable(faults.Injection{Site: FaultShardSearch, Err: errInjected}) // every shard, every attempt
	q, err := twig.Parse("//item//name")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 10})
	if err == nil {
		t.Fatalf("all-shards-failed returned a result (%d hits) instead of an error", len(res.Hits))
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected cause in the chain", err)
	}
	if got := err.Error(); !errors.Is(err, errInjected) || !containsAll(got, "all", "failed") {
		t.Fatalf("error %q does not say every shard failed", got)
	}
}

// TestFailFastReturnsShardError: under failfast the same single-shard
// failure that degrade absorbs fails the whole request.
func TestFailFastReturnsShardError(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{Policy: PolicyFailFast})
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"xmark/001"}, Err: errInjected})
	q, err := twig.Parse("//item//name")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SearchHits(context.Background(), q, core.SearchOptions{K: 10})
	if !errors.Is(err, errInjected) {
		t.Fatalf("failfast err = %v, want the injected failure", err)
	}
	if !containsAll(err.Error(), "xmark/001") {
		t.Fatalf("failfast error %q does not name the shard", err)
	}
}

// TestShardTimeoutMarksSlowShardFailed: a shard blowing its per-shard budget
// is a failure like any other — the survivors answer, the straggler is named.
func TestShardTimeoutMarksSlowShardFailed(t *testing.T) {
	t.Parallel()
	c, reg := degradeCorpus(t, Tuning{ShardTimeout: 15 * time.Millisecond})
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"xmark/003"}, Latency: 5 * time.Second})
	start := time.Now()
	res := mustSearch(t, c, "//item//name", core.SearchOptions{K: 100})
	if !res.Partial || len(res.FailedShards) != 1 || res.FailedShards[0] != "xmark/003" {
		t.Fatalf("partial=%v failed=%v, want the slow shard failed", res.Partial, res.FailedShards)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("degraded answer took %v — the shard budget did not cut the straggler", took)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits from the surviving shards")
	}
}

// TestBreakerQuarantinesAndResets walks the breaker through a corpus-level
// lifecycle: consecutive failures trip it, a tripped shard is skipped
// without evaluation, the admin reset restores it.
func TestBreakerQuarantinesAndResets(t *testing.T) {
	t.Parallel()
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.New()
	met := &metrics.CorpusMetrics{}
	c, err := FromDocument("xmark", d, 4, Config{
		Faults:  reg,
		Metrics: met,
		Tuning:  Tuning{BreakerThreshold: 2, BreakerCooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	const victim = "xmark/002"
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{victim}, Err: errInjected})
	const qs = "//item//name"
	opts := core.SearchOptions{K: 100}

	// Two failed fan-outs (each burns both attempts) reach the threshold.
	for i := 0; i < 2; i++ {
		res := mustSearch(t, c, qs, opts)
		if !res.Partial {
			t.Fatalf("fan-out %d: not partial", i)
		}
	}
	h, err := c.ShardHealthOf(victim)
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "open" || h.Trips != 1 {
		t.Fatalf("after threshold: %+v", h)
	}
	if got := c.QuarantinedShards(); len(got) != 1 || got[0] != victim {
		t.Fatalf("QuarantinedShards = %v", got)
	}
	if msg := c.Degraded(); msg == "" || !containsAll(msg, victim) {
		t.Fatalf("Degraded() = %q, want the quarantined shard named", msg)
	}

	// Quarantined: the fan-out skips the shard without evaluating it, even
	// though the fault is disarmed — the cooldown hasn't expired.
	reg.Reset()
	fired := reg.Fired(FaultShardSearch)
	res := mustSearch(t, c, qs, opts)
	if !res.Partial || len(res.FailedShards) != 1 || res.FailedShards[0] != victim {
		t.Fatalf("quarantined shard not skipped: partial=%v failed=%v", res.Partial, res.FailedShards)
	}
	if n := reg.Fired(FaultShardSearch); n != fired {
		t.Fatalf("quarantined shard was still evaluated (fired %d -> %d)", fired, n)
	}

	// Counters surfaced in metrics.
	if met.BreakerTrips.Load() != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", met.BreakerTrips.Load())
	}
	if met.Partial.Load() < 3 {
		t.Fatalf("Partial = %d, want >= 3", met.Partial.Load())
	}
	if met.ShardFailures.Load() < 3 {
		t.Fatalf("ShardFailures = %d, want >= 3", met.ShardFailures.Load())
	}
	if met.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", met.Quarantined())
	}

	// The admin reset closes the breaker; the healed shard serves again.
	if err := c.ResetShardHealth(victim); err != nil {
		t.Fatal(err)
	}
	res = mustSearch(t, c, qs, opts)
	if res.Partial {
		t.Fatalf("after reset: still partial (%v)", res.FailedShards)
	}
	if h, _ := c.ShardHealthOf(victim); h.State != "closed" {
		t.Fatalf("after reset+success: state %q", h.State)
	}
	if err := c.ResetShardHealth("no-such-shard"); err == nil {
		t.Fatal("resetting an unknown shard must error")
	}
}

// TestBreakerHalfOpenProbeHeals: after the cooldown, one probe request flows
// through and a success closes the breaker.
func TestBreakerHalfOpenProbeHeals(t *testing.T) {
	t.Parallel()
	d := mustDoc(t, "bib", bibXML)
	reg := faults.New()
	c, err := FromDocument("bib", d, 2, Config{
		Faults: reg,
		Tuning: Tuning{BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Times: 2 covers exactly one fan-out's two attempts; threshold 1 trips.
	reg.Enable(faults.Injection{Site: FaultShardSearch, Keys: []string{"bib/000"}, Err: errInjected, Times: 2})
	const qs = "//article/title"
	opts := core.SearchOptions{K: 10}
	if res := mustSearch(t, c, qs, opts); !res.Partial {
		t.Fatal("tripping fan-out not partial")
	}
	if h, _ := c.ShardHealthOf("bib/000"); h.State != "open" {
		t.Fatalf("state = %q, want open", h.State)
	}
	time.Sleep(50 * time.Millisecond) // let the cooldown lapse
	res := mustSearch(t, c, qs, opts) // the half-open probe; injection is spent
	if res.Partial {
		t.Fatalf("probe fan-out still partial: %v", res.FailedShards)
	}
	if h, _ := c.ShardHealthOf("bib/000"); h.State != "closed" {
		t.Fatalf("after successful probe: state %q", h.State)
	}
}

// containsAll reports whether s contains every substring.
func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
