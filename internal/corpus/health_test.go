package corpus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a health's injectable clock deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestHealth(threshold int, cooldown time.Duration) (*health, *fakeClock) {
	h := newHealth(Tuning{BreakerThreshold: threshold, BreakerCooldown: cooldown}, nil)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	h.now = clk.Now
	return h, clk
}

func TestBreakerTripCooldownProbe(t *testing.T) {
	t.Parallel()
	h, clk := newTestHealth(2, time.Minute)
	boom := errors.New("boom")

	if !h.allow("s") {
		t.Fatal("fresh breaker must allow")
	}
	h.failure("s", boom)
	if !h.allow("s") {
		t.Fatal("one failure below threshold must still allow")
	}
	h.failure("s", boom) // second consecutive failure: trip
	if h.allow("s") {
		t.Fatal("tripped breaker must refuse")
	}
	st := h.snapshot([]string{"s"})["s"]
	if st.State != "open" || st.Trips != 1 || st.ConsecutiveFailures != 2 {
		t.Fatalf("after trip: %+v", st)
	}
	if st.RetryInMS <= 0 {
		t.Fatalf("open breaker must report a retry window, got %+v", st)
	}

	// Cooldown expiry admits exactly one half-open probe.
	clk.Advance(time.Minute + time.Second)
	if !h.allow("s") {
		t.Fatal("expired cooldown must admit a probe")
	}
	if h.allow("s") {
		t.Fatal("only one probe may fly at a time")
	}
	if got := h.snapshot([]string{"s"})["s"].State; got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}

	// A failing probe reopens immediately (second trip), restarting cooldown.
	h.failure("s", boom)
	if h.allow("s") {
		t.Fatal("failed probe must reopen the breaker")
	}
	if st := h.snapshot([]string{"s"})["s"]; st.State != "open" || st.Trips != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}

	// A succeeding probe closes the breaker for good.
	clk.Advance(time.Minute + time.Second)
	if !h.allow("s") {
		t.Fatal("second probe refused")
	}
	h.success("s")
	st = h.snapshot([]string{"s"})["s"]
	if st.State != "closed" || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("after healing: %+v", st)
	}
	if st.Trips != 2 {
		t.Fatalf("trips is a lifetime counter, want 2, got %+v", st)
	}
	if !h.allow("s") {
		t.Fatal("healed breaker must allow")
	}
}

func TestBreakerReleaseReturnsProbeSlot(t *testing.T) {
	t.Parallel()
	h, clk := newTestHealth(1, time.Minute)
	h.failure("s", errors.New("boom")) // threshold 1: open
	clk.Advance(2 * time.Minute)
	if !h.allow("s") {
		t.Fatal("probe refused")
	}
	if h.allow("s") {
		t.Fatal("second concurrent probe admitted")
	}
	// The probe evaluation was abandoned without a verdict (e.g. the caller
	// cancelled); the slot must come back without a state change.
	h.release("s")
	if got := h.snapshot([]string{"s"})["s"].State; got != "half-open" {
		t.Fatalf("release changed state to %q", got)
	}
	if !h.allow("s") {
		t.Fatal("released slot must admit a fresh probe")
	}
}

func TestBreakerReset(t *testing.T) {
	t.Parallel()
	h, _ := newTestHealth(1, time.Hour)
	h.failure("s", errors.New("boom"))
	if h.allow("s") {
		t.Fatal("want open")
	}
	h.reset("s")
	st := h.snapshot([]string{"s"})["s"]
	if st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	if st.Trips != 1 {
		t.Fatalf("reset must keep the lifetime trip counter, got %+v", st)
	}
	if !h.allow("s") {
		t.Fatal("reset breaker must allow")
	}
}

func TestBreakerDisabled(t *testing.T) {
	t.Parallel()
	h := newHealth(Tuning{BreakerThreshold: -1}, nil)
	if h != nil {
		t.Fatal("negative threshold must disable breakers")
	}
	// Every operation is nil-safe and a no-op.
	if !h.allow("s") {
		t.Fatal("nil health must always allow")
	}
	h.failure("s", errors.New("boom"))
	h.success("s")
	h.release("s")
	h.reset("s")
	if !h.allow("s") {
		t.Fatal("nil health still allows after failures")
	}
	if got := h.quarantined([]string{"s"}); got != nil {
		t.Fatalf("nil health quarantined %v", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	t.Parallel()
	h := newHealth(Tuning{}, nil)
	if h == nil {
		t.Fatal("zero tuning must enable breakers with defaults")
	}
	if h.threshold != defaultBreakerThreshold || h.cooldown != defaultBreakerCooldown {
		t.Fatalf("defaults: threshold=%d cooldown=%v", h.threshold, h.cooldown)
	}
}

// TestBreakerHammer races trips, probes, resets and snapshots over a handful
// of shards; run under -race.  The invariant checked at the end is weak
// (states are well-formed) — the point is the data-race check.
func TestBreakerHammer(t *testing.T) {
	t.Parallel()
	h := newHealth(Tuning{BreakerThreshold: 2, BreakerCooldown: time.Microsecond}, nil)
	names := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			boom := fmt.Errorf("boom %d", g)
			for i := 0; i < 500; i++ {
				name := names[(g+i)%len(names)]
				if h.allow(name) {
					switch i % 3 {
					case 0:
						h.failure(name, boom)
					case 1:
						h.success(name)
					default:
						h.release(name)
					}
				}
				if i%50 == 0 {
					h.reset(name)
				}
				h.snapshot(names)
				h.quarantined(names)
			}
		}(g)
	}
	wg.Wait()
	for name, st := range h.snapshot(names) {
		switch st.State {
		case "closed", "open", "half-open":
		default:
			t.Fatalf("shard %s landed in invalid state %q", name, st.State)
		}
	}
}
