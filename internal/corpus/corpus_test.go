package corpus

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/metrics"
	"lotusx/internal/twig"
)

const bibXML = `<dblp created="2005">
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX Demo</title>
    <year>2012</year>
  </article>
  <article key="a3">
    <author>Wei Wang</author>
    <title>Structural Joins</title>
    <year>2002</year>
  </article>
  <inproceedings key="c1">
    <author>Jiaheng Lu</author>
    <title>TJFast</title>
    <year>2005</year>
  </inproceedings>
</dblp>`

func mustDoc(t testing.TB, name, xml string) *doc.Document {
	t.Helper()
	d, err := doc.FromReader(name, strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// hitKeys projects hits to (path, snippet) pairs — node IDs and scores are
// shard-local (per-shard idf differs from whole-document idf), so
// equivalence across shardings is set equality on rendered content.
func hitKeys(hits []core.Hit) []string {
	keys := make([]string, len(hits))
	for i, h := range hits {
		keys[i] = h.Path + "\x00" + h.Snippet
	}
	sort.Strings(keys)
	return keys
}

func TestSplitDocumentRoundTrip(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	for _, parts := range []int{1, 2, 3, 4} {
		docs, err := SplitDocument(d, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if len(docs) != parts {
			t.Fatalf("parts=%d: got %d documents", parts, len(docs))
		}
		// Every record must land in exactly one part; root attributes
		// replicate.
		records := 0
		for _, sd := range docs {
			root := sd.Root()
			if sd.TagName(root) != "dblp" {
				t.Fatalf("parts=%d: root tag %q", parts, sd.TagName(root))
			}
			attrs := 0
			for c := sd.FirstChild(root); c != doc.None; c = sd.NextSibling(c) {
				if sd.Kind(c) == doc.Attribute {
					attrs++
				} else {
					records++
				}
			}
			if parts > 1 && attrs != 1 {
				t.Fatalf("parts=%d: root attributes not replicated (got %d)", parts, attrs)
			}
		}
		if records != 4 {
			t.Fatalf("parts=%d: %d records across parts, want 4", parts, records)
		}
	}
}

// TestSplitDescendsContainers: a root with fewer children than parts splits
// at the next level down, replicating container elements around their
// records.
func TestSplitDescendsContainers(t *testing.T) {
	d := mustDoc(t, "site", `<site>
  <people kind="a"><p>1</p><p>2</p><p>3</p><p>4</p></people>
  <items><i>5</i><i>6</i><i>7</i><i>8</i></items>
</site>`)
	docs, err := SplitDocument(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("got %d documents, want 4", len(docs))
	}
	people, items := 0, 0
	for _, sd := range docs {
		if sd.TagName(sd.Root()) != "site" {
			t.Fatalf("root tag %q", sd.TagName(sd.Root()))
		}
		for n := doc.NodeID(0); int(n) < sd.Len(); n++ {
			switch sd.TagName(n) {
			case "p":
				people++
			case "i":
				items++
			}
		}
	}
	if people != 4 || items != 4 {
		t.Fatalf("records across parts: %d people, %d items; want 4 and 4", people, items)
	}
}

func TestSplitSingleRecordUnsplit(t *testing.T) {
	d := mustDoc(t, "one", "<root><only><x>1</x></only></root>")
	docs, err := SplitDocument(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0] != d {
		t.Fatalf("single-record document must come back unsplit, got %d docs", len(docs))
	}
}

// TestMultiShardMatchesSingleShard is the acceptance check: a query over a
// corpus split N ways returns the same answer set as over the whole
// document, for several N and several queries.
func TestMultiShardMatchesSingleShard(t *testing.T) {
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	single := core.FromDocument(d)

	queries := []string{
		"//item//name",
		"//person[name]//emailaddress",
		"//open_auction[//bidder]//increase",
	}
	for _, parts := range []int{2, 3, 5} {
		c, err := FromDocument("xmark", d, parts, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot().Len(); got != parts {
			t.Fatalf("parts=%d: snapshot has %d shards", parts, got)
		}
		for _, qs := range queries {
			q, err := twig.Parse(qs)
			if err != nil {
				t.Fatal(err)
			}
			// K large enough to fetch every answer, rewriting off so the
			// answer set is exact-match only and sharding-independent.
			opts := core.SearchOptions{K: 100000, SnippetMax: 200}
			want, err := single.SearchHits(context.Background(), q.Clone(), opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.SearchHits(context.Background(), q.Clone(), opts)
			if err != nil {
				t.Fatalf("parts=%d %s: %v", parts, qs, err)
			}
			wk, gk := hitKeys(want.Hits), hitKeys(got.Hits)
			if len(wk) == 0 {
				t.Fatalf("%s: query matched nothing — test is vacuous", qs)
			}
			if len(wk) != len(gk) {
				t.Fatalf("parts=%d %s: single=%d hits, corpus=%d hits", parts, qs, len(wk), len(gk))
			}
			for i := range wk {
				if wk[i] != gk[i] {
					t.Fatalf("parts=%d %s: hit sets differ at %d:\n  single: %q\n  corpus: %q", parts, qs, i, wk[i], gk[i])
				}
			}
			if got.Shards != parts {
				t.Errorf("parts=%d: HitResult.Shards = %d", parts, got.Shards)
			}
		}
	}
}

func TestSearchHitsGlobalOrderAndPaging(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	c, err := FromDocument("bib", d, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := twig.Parse("//article/title")
	if err != nil {
		t.Fatal(err)
	}

	all, err := c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Hits) != 3 || all.Exact != 3 {
		t.Fatalf("got %d hits (%d exact), want 3 exact", len(all.Hits), all.Exact)
	}
	// Scores must be globally non-increasing after the merge.
	for i := 1; i < len(all.Hits); i++ {
		if all.Hits[i].Score > all.Hits[i-1].Score {
			t.Fatalf("merged hits out of order at %d: %v > %v", i, all.Hits[i].Score, all.Hits[i-1].Score)
		}
	}

	// Page 2 of size 1 must equal the middle hit of the full run.
	page, err := c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 1, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) != 1 {
		t.Fatalf("page: got %d hits", len(page.Hits))
	}
	if page.Hits[0].Path != all.Hits[1].Path || page.Hits[0].Snippet != all.Hits[1].Snippet {
		t.Fatalf("page hit %q != full-run hit %q", page.Hits[0].Path, all.Hits[1].Path)
	}
	if page.Total != 2 { // Offset+K materialized ⇒ more pages may exist
		t.Fatalf("page.Total = %d, want 2", page.Total)
	}
}

func TestCorpusAddRemoveReindex(t *testing.T) {
	c := New("lib", Config{})
	if _, err := c.SearchHits(context.Background(), nil, core.SearchOptions{}); err == nil {
		t.Fatal("empty corpus should refuse to search")
	}
	if err := c.Add("bib", mustDoc(t, "bib", bibXML)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("tiny", mustDoc(t, "tiny", "<dblp><article><title>Extra</title></article></dblp>")); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Names(); len(got) != 2 || got[0] != "bib" || got[1] != "tiny" {
		t.Fatalf("names = %v", got)
	}

	q, _ := twig.Parse("//article/title")
	res, err := c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 4 {
		t.Fatalf("got %d hits across shards, want 4", len(res.Hits))
	}
	shardsSeen := map[string]bool{}
	for _, h := range res.Hits {
		shardsSeen[h.Shard] = true
	}
	if !shardsSeen["bib"] || !shardsSeen["tiny"] {
		t.Fatalf("hits not attributed to both shards: %v", shardsSeen)
	}

	seqBefore := c.Seq()
	if err := c.Reindex("tiny"); err != nil {
		t.Fatal(err)
	}
	if c.Seq() != seqBefore+1 {
		t.Fatalf("reindex did not publish: seq %d -> %d", seqBefore, c.Seq())
	}
	if err := c.Reindex("missing"); err == nil {
		t.Fatal("reindex of unknown shard should error")
	}

	if err := c.Remove("tiny"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("tiny"); err == nil {
		t.Fatal("double remove should error")
	}
	res, err = c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("after remove: %d hits, want 3", len(res.Hits))
	}

	// Removing a split group by prefix drops all its shards.
	if err := c.AddSplit("big", mustDoc(t, "big", bibXML), 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("after AddSplit: %d shards", got)
	}
	if err := c.Remove("big"); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Names(); len(got) != 1 || got[0] != "bib" {
		t.Fatalf("after group remove: %v", got)
	}
}

// TestReingestReplacesSplitGroup: re-ingesting a shard name with a
// different split factor must replace the old shards in both directions —
// group → single and single → group — never leaving both generations
// answering (which would return every record twice).
func TestReingestReplacesSplitGroup(t *testing.T) {
	q, _ := twig.Parse("//article/title")
	countHits := func(t *testing.T, c *Corpus) int {
		t.Helper()
		res, err := c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 100})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Hits)
	}

	// Group → single: the unsplit re-ingest path must drop the old group.
	c := New("lib", Config{})
	if err := c.AddSplit("s", mustDoc(t, "bib", bibXML), 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Len(); got != 4 {
		t.Fatalf("after split ingest: %d shards, want 4", got)
	}
	if err := c.AddSplit("s", mustDoc(t, "bib", bibXML), 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Names(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("after unsplit re-ingest: shards %v, want [s]", got)
	}
	if got := countHits(t, c); got != 3 {
		t.Fatalf("after unsplit re-ingest: %d hits, want 3 (old group shards still answering?)", got)
	}

	// Add over a group must replace it too.
	c2 := New("lib", Config{})
	if err := c2.AddSplit("s", mustDoc(t, "bib", bibXML), 4); err != nil {
		t.Fatal(err)
	}
	if err := c2.Add("s", mustDoc(t, "bib", bibXML)); err != nil {
		t.Fatal(err)
	}
	if got := c2.Snapshot().Names(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Add over split group: shards %v, want [s]", got)
	}

	// And single → group keeps working (the original multi-part path).
	if err := c2.AddSplit("s", mustDoc(t, "bib", bibXML), 2); err != nil {
		t.Fatal(err)
	}
	if got := c2.Snapshot().Len(); got != 2 {
		t.Fatalf("after re-split: %d shards, want 2", got)
	}
	if got := countHits(t, c2); got != 3 {
		t.Fatalf("after re-split: %d hits, want 3", got)
	}
}

// TestSetSplitReplacesEverything: SetSplit swaps in a whole new shard set,
// dropping shards under every previous name, with the sequence continuing.
func TestSetSplitReplacesEverything(t *testing.T) {
	c := New("lib", Config{})
	if err := c.Add("a", mustDoc(t, "a", bibXML)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b", mustDoc(t, "b", "<dblp><article><title>Extra</title></article></dblp>")); err != nil {
		t.Fatal(err)
	}
	seq := c.Seq()
	if err := c.SetSplit("c", mustDoc(t, "c", bibXML), 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Names(); len(got) != 2 || got[0] != "c/000" || got[1] != "c/001" {
		t.Fatalf("after SetSplit: shards %v, want [c/000 c/001]", got)
	}
	if c.Seq() != seq+1 {
		t.Fatalf("SetSplit seq %d, want %d", c.Seq(), seq+1)
	}
	if err := c.SetSplit("", nil, 1); err == nil {
		t.Fatal("SetSplit with an empty name should error")
	}
}

// TestCompletionMergeGlobalTopK: the merged top k must reflect corpus-wide
// counts even when the global winner is not some shard's local top k — the
// per-shard ask is widened to k×shards before the merge cuts back.
func TestCompletionMergeGlobalTopK(t *testing.T) {
	c := New("lib", Config{})
	// Shard 1 top-1 is x (3 > 2); shard 2 top-1 is y (2 > 1). Globally
	// y=4 beats x=3, so a merge of per-shard top-1 lists would wrongly
	// answer x.
	if err := c.Add("s1", mustDoc(t, "s1", "<r><x/><x/><x/><y/><y/></r>")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("s2", mustDoc(t, "s2", "<r><y/><y/><z/></r>")); err != nil {
		t.Fatal(err)
	}
	q, err := twig.Parse("//r")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CompleteTags(context.Background(), q, q.Root.ID, twig.Child, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "y" || got[0].Count != 4 {
		t.Fatalf("global top-1 = %+v, want y with count 4", got)
	}
}

func TestMergeAskK(t *testing.T) {
	for _, tc := range []struct{ k, shards, want int }{
		{10, 1, 10},
		{10, 4, 40},
		{0, 4, 0},
		{mergeAskKCap, 1024, mergeAskKCap},
		{1 << 62, 4, mergeAskKCap}, // multiplication overflow
	} {
		if got := mergeAskK(tc.k, tc.shards); got != tc.want {
			t.Errorf("mergeAskK(%d, %d) = %d, want %d", tc.k, tc.shards, got, tc.want)
		}
	}
}

func TestCorpusCompletionMergesWeights(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	single := core.FromDocument(d)
	c, err := FromDocument("bib", d, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Root-level tag completion: counts must sum to the whole-document
	// counts whatever the sharding.
	want, err := single.CompleteTags(context.Background(), nil, -1, twig.Descendant, "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CompleteTags(context.Background(), nil, -1, twig.Descendant, "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	wm := map[string]int64{}
	for _, cand := range want {
		wm[cand.Text] = cand.Count
	}
	gm := map[string]int64{}
	for _, cand := range got {
		gm[cand.Text] = cand.Count
	}
	if len(wm) == 0 {
		t.Fatal("no candidates — test is vacuous")
	}
	if fmt.Sprint(wm) != fmt.Sprint(gm) {
		t.Fatalf("candidates differ:\n  single: %v\n  corpus: %v", wm, gm)
	}

	// Position-aware value completion under //article/author.
	q, _ := twig.Parse("//article/author")
	focus := q.OutputNode().ID
	wantV, err := single.CompleteValues(context.Background(), q.Clone(), focus, "jia", 10)
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := c.CompleteValues(context.Background(), q.Clone(), focus, "jia", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantV) == 0 || len(gotV) != len(wantV) {
		t.Fatalf("value candidates: single=%v corpus=%v", wantV, gotV)
	}
	for i := range wantV {
		if gotV[i].Text != wantV[i].Text || gotV[i].Count != wantV[i].Count {
			t.Fatalf("value candidate %d: single=%v corpus=%v", i, wantV[i], gotV[i])
		}
	}

	// Explain merges occurrences by path.
	occs, err := c.ExplainTags(context.Background(), nil, -1, twig.Descendant, "author", 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range occs {
		if o.Path == "/dblp/article/author" && o.Count == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged occurrences missing /dblp/article/author×4: %v", occs)
	}
}

func TestCorpusInfoAggregates(t *testing.T) {
	d := mustDoc(t, "bib", bibXML)
	c, err := FromDocument("bib", d, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	info := c.Info()
	if info.Kind != "corpus" || info.Shards != 2 {
		t.Fatalf("info = %+v", info)
	}
	single := core.FromDocument(d).Info()
	// The extra shard replicates the root element and its one attribute.
	if info.Nodes != single.Nodes+2 {
		t.Errorf("nodes = %d, single+2 = %d", info.Nodes, single.Nodes+2)
	}
	if info.Tags != single.Tags {
		t.Errorf("tags = %d, want %d", info.Tags, single.Tags)
	}
	if len(c.Engines()) != 2 {
		t.Errorf("Engines() = %d entries", len(c.Engines()))
	}
}

func TestCorpusPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	met := metrics.New().Corpus("lib")
	c := New("lib", Config{Dir: dir, Metrics: met})
	if err := c.AddSplit("bib", mustDoc(t, "bib", bibXML), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("tiny", mustDoc(t, "tiny", "<dblp><article><title>Extra</title></article></dblp>")); err != nil {
		t.Fatal(err)
	}
	if met.Shards() != 3 || met.Swaps.Load() != 2 {
		t.Fatalf("metrics: shards=%d swaps=%d", met.Shards(), met.Swaps.Load())
	}

	// Reopen from disk and compare search results.
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Name() != "lib" || re.Snapshot().Len() != 3 || re.Seq() != c.Seq() {
		t.Fatalf("reopened: name=%s shards=%d seq=%d", re.Name(), re.Snapshot().Len(), re.Seq())
	}
	q, _ := twig.Parse("//article/title")
	want, err := c.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.SearchHits(context.Background(), q.Clone(), core.SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	wk, gk := hitKeys(want.Hits), hitKeys(got.Hits)
	if len(wk) == 0 || len(wk) != len(gk) {
		t.Fatalf("reopened corpus: %d hits, want %d", len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("reopened corpus differs at hit %d", i)
		}
	}

	// Remove publishes a new manifest and garbage-collects shard files.
	if err := c.Remove("bib"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	shardFiles := 0
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "shard-") {
			shardFiles++
		}
	}
	if shardFiles != 1 {
		t.Fatalf("after remove: %d shard files on disk, want 1", shardFiles)
	}
}

func TestOpenRejectsCorruptShard(t *testing.T) {
	dir := t.TempDir()
	c := New("lib", Config{Dir: dir})
	if err := c.Add("bib", mustDoc(t, "bib", bibXML)); err != nil {
		t.Fatal(err)
	}
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m.Shards[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Config{})
	if err == nil {
		t.Fatal("Open of corrupt shard must fail")
	}
	if !errors.Is(err, index.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt in chain", err)
	}
	if !strings.Contains(err.Error(), m.Shards[0].File) {
		t.Fatalf("error does not name the shard file: %v", err)
	}
}

func TestSearchHitsCancellation(t *testing.T) {
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromDocument("xmark", d, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q, _ := twig.Parse("//item//name")
	if _, err := c.SearchHits(ctx, q, core.SearchOptions{K: 100}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
