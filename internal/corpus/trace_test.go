package corpus

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// TestFanoutCancellationClosesSpans injects a failure into one shard of a
// live failfast fan-out while a sibling shard is provably mid-evaluation,
// then checks the trace contract: the failing shard's error cancels the
// sibling, every span created by the fan-out is closed (no leaked "running"
// spans in the finished trace), and the fanout span records the cancellation
// cause.
func TestFanoutCancellationClosesSpans(t *testing.T) {
	t.Parallel()
	d := mustDoc(t, "bib", bibXML)
	reg := faults.New()
	// Workers: 2 so both shards evaluate concurrently — the barrier below
	// would deadlock a single-worker pool.
	c, err := FromDocument("bib", d, 2, Config{
		Workers: 2,
		Faults:  reg,
		Tuning:  Tuning{Policy: PolicyFailFast},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Len() != 2 {
		t.Fatalf("want 2 shards, got %v", c.Snapshot().Names())
	}

	injected := errors.New("injected shard failure")
	var startOnce sync.Once
	started := make(chan struct{})
	reg.Enable(faults.Injection{Site: FaultShardSearch, Hook: func(ctx context.Context, shard string) error {
		switch shard {
		case "bib/000":
			// Prove this shard was mid-evaluation when the sibling failed:
			// release the sibling, then block until cancellation reaches us.
			startOnce.Do(func() { close(started) })
			<-ctx.Done()
			return ctx.Err()
		case "bib/001":
			<-started
			return injected
		}
		return nil
	}})

	q, err := twig.Parse("//article[author contains \"Lu\"]/title")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("query")
	ctx := obs.ContextWith(context.Background(), tr.Root())

	_, err = c.SearchHits(ctx, q, core.SearchOptions{K: 5})
	if err == nil || !strings.Contains(err.Error(), "injected shard failure") {
		t.Fatalf("SearchHits error = %v, want the injected shard failure", err)
	}
	tr.Finish()

	var fanout *obs.Span
	shardSpans := map[string]*obs.Span{}
	tr.Each(func(s *obs.Span) {
		switch s.Name() {
		case "fanout":
			fanout = s
		case "shard":
			shardSpans[s.Attr("shard")] = s
		}
		if !s.Ended() {
			t.Errorf("span %q leaked unfinished after cancellation", s.Name())
		}
	})
	if fanout == nil {
		t.Fatal("no fanout span recorded")
	}
	if cause := fanout.Attr("cancelCause"); !strings.Contains(cause, "injected shard failure") {
		t.Fatalf("fanout cancelCause = %q, want the injected failure", cause)
	}
	if len(shardSpans) != 2 {
		t.Fatalf("want spans for both shards, got %v", shardSpans)
	}
	// The cancelled sibling recorded why it stopped.
	if e := shardSpans["bib/000"].Attr("error"); !strings.Contains(e, "canceled") {
		t.Fatalf("cancelled shard error attr = %q, want context canceled", e)
	}
	if e := shardSpans["bib/001"].Attr("error"); !strings.Contains(e, "injected") {
		t.Fatalf("failing shard error attr = %q", e)
	}
}

// TestSearchHitsTraceShape runs a healthy sharded query under a trace and
// checks the span tree the serving layer returns to ?debug=trace callers:
// one fanout span with one child per shard, a merge span, and per-shard
// join/rank spans nested beneath the shard spans.
func TestSearchHitsTraceShape(t *testing.T) {
	t.Parallel()
	d := mustDoc(t, "bib", bibXML)
	c, err := FromDocument("bib", d, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := twig.Parse("//article/title")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("query")
	ctx := obs.ContextWith(context.Background(), tr.Root())
	if _, err := c.SearchHits(ctx, q, core.SearchOptions{K: 5}); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	counts := map[string]int{}
	tr.Each(func(s *obs.Span) {
		name := s.Name()
		if strings.HasPrefix(name, "join:") {
			name = "join"
		}
		counts[name]++
		if !s.Ended() {
			t.Errorf("span %q not ended", s.Name())
		}
	})
	if counts["fanout"] != 1 || counts["merge"] != 1 {
		t.Fatalf("want one fanout and one merge span, got %v", counts)
	}
	if counts["shard"] != 2 {
		t.Fatalf("want one span per shard, got %v", counts)
	}
	if counts["join"] < 2 || counts["rank"] < 2 {
		t.Fatalf("want per-shard join and rank spans, got %v", counts)
	}
	// Durations sum sensibly: the root covers the fanout, the fanout covers
	// each shard.
	var fanout *obs.Span
	tr.Each(func(s *obs.Span) {
		if s.Name() == "fanout" {
			fanout = s
		}
	})
	if fanout.Duration() > tr.Root().Duration() {
		t.Fatalf("fanout %v exceeds root %v", fanout.Duration(), tr.Root().Duration())
	}
	tr.Each(func(s *obs.Span) {
		if s.Name() == "shard" && s.Duration() > fanout.Duration() {
			t.Fatalf("shard span %v exceeds fanout %v", s.Duration(), fanout.Duration())
		}
	})
}

// TestCorpusReady exercises the readiness contract: ready once shards are
// loaded, not ready while a publish (ingest/reindex) is in flight, not ready
// when empty.
func TestCorpusReady(t *testing.T) {
	t.Parallel()
	empty := New("e", Config{})
	if err := empty.Ready(); err == nil || !strings.Contains(err.Error(), "no shards") {
		t.Fatalf("empty corpus Ready() = %v, want no-shards error", err)
	}

	d := mustDoc(t, "bib", bibXML)
	c, err := FromDocument("bib", d, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(); err != nil {
		t.Fatalf("loaded corpus not ready: %v", err)
	}

	// Simulate a mutation in flight the way publish does (the counter is
	// incremented for the whole rebuild+persist+swap window).
	c.mutating.Add(1)
	if err := c.Ready(); err == nil || !strings.Contains(err.Error(), "mutation") {
		t.Fatalf("mid-mutation Ready() = %v, want mutation error", err)
	}
	c.mutating.Add(-1)
	if err := c.Ready(); err != nil {
		t.Fatalf("Ready did not flip back: %v", err)
	}

	// A real publish leaves the corpus ready again afterwards.
	if err := c.Reindex(""); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(); err != nil {
		t.Fatalf("post-reindex Ready() = %v", err)
	}
}
