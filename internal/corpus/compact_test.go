package corpus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/twig"
)

func deltaXML(i int) string {
	return fmt.Sprintf(`<dblp created="2005"><article key="d%d"><author>Delta Author %d</author><title>Delta Title %d</title></article></dblp>`, i, i, i)
}

// searchTitles runs //article/title and returns the hit count.
func searchTitles(t *testing.T, c *Corpus) int {
	t.Helper()
	q, err := twig.Parse("//article/title")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Hits)
}

func TestDeltaShardsCountAndQuery(t *testing.T) {
	c, err := FromDocument("bib", mustDoc(t, "bib", bibXML), 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := searchTitles(t, c)
	for i := 0; i < 3; i++ {
		if err := c.AddDeltaSplit(fmt.Sprintf("delta%d", i), mustDoc(t, "d", deltaXML(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.DeltaShards(); n != 3 {
		t.Fatalf("DeltaShards = %d, want 3", n)
	}
	if got := c.Snapshot().Len(); got != 5 {
		t.Fatalf("snapshot has %d shards, want 5 (2 base + 3 delta)", got)
	}
	// Deltas are queried like any shard.
	if got := searchTitles(t, c); got != base+3 {
		t.Fatalf("with deltas: %d hits, want %d", got, base+3)
	}
	// Base-shard adds do not count as deltas.
	if err := c.AddSplit("plain", mustDoc(t, "p", deltaXML(99)), 1); err != nil {
		t.Fatal(err)
	}
	if n := c.DeltaShards(); n != 3 {
		t.Fatalf("DeltaShards after base add = %d, want 3", n)
	}
}

func TestCompactDeltasMerges(t *testing.T) {
	c, err := FromDocument("bib", mustDoc(t, "bib", bibXML), 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.AddDeltaSplit(fmt.Sprintf("delta%d", i), mustDoc(t, "d", deltaXML(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	before := searchTitles(t, c)
	seqBefore := c.Seq()

	res, err := c.CompactDeltas(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 3 || len(res.Into) != 1 {
		t.Fatalf("compaction: %+v", res)
	}
	if !strings.HasPrefix(res.Into[0], "compacted/") {
		t.Fatalf("compacted shard name %q", res.Into[0])
	}
	if res.Seq != seqBefore+1 {
		t.Fatalf("compaction published seq %d after %d", res.Seq, seqBefore)
	}
	if n := c.DeltaShards(); n != 0 {
		t.Fatalf("%d delta shards survived compaction", n)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("snapshot has %d shards, want 3 (2 base + 1 compacted)", got)
	}
	// No answers lost or duplicated.
	if got := searchTitles(t, c); got != before {
		t.Fatalf("after compaction: %d hits, want %d", got, before)
	}

	// Nothing left to do: (nil, nil).
	res, err = c.CompactDeltas(context.Background(), 0)
	if err != nil || res != nil {
		t.Fatalf("noop compaction: res=%+v err=%v", res, err)
	}
}

func TestCompactDeltasMaxBatch(t *testing.T) {
	c, err := FromDocument("bib", mustDoc(t, "bib", bibXML), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.AddDeltaSplit(fmt.Sprintf("delta%d", i), mustDoc(t, "d", deltaXML(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.CompactDeltas(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 2 {
		t.Fatalf("maxBatch=2 merged %d", res.Merged)
	}
	if n := c.DeltaShards(); n != 2 {
		t.Fatalf("%d deltas left, want 2", n)
	}
}

// TestCompactDeltasHeterogeneousRoots: deltas with different root tags
// compact into one base shard per root shape.
func TestCompactDeltasHeterogeneousRoots(t *testing.T) {
	c := New("mixed", Config{})
	if err := c.AddDeltaSplit("d1", mustDoc(t, "d1", deltaXML(1)), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDeltaSplit("d2", mustDoc(t, "d2",
		`<library><book><title>Other Root</title></book></library>`), 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.CompactDeltas(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 2 || len(res.Into) != 2 {
		t.Fatalf("heterogeneous compaction: %+v", res)
	}
	// Both shapes still answer.
	for _, qs := range []string{"//article/title", "//book/title"} {
		q, err := twig.Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Hits) != 1 {
			t.Fatalf("%s after compaction: %d hits, want 1", qs, len(r.Hits))
		}
	}
}

// TestCompactDeltasPreservesAttributesAndValues: the merged root keeps the
// first delta's root attributes.
func TestCompactDeltasPreservesAttributes(t *testing.T) {
	c := New("attrs", Config{})
	if err := c.AddDeltaSplit("d1", mustDoc(t, "d1", deltaXML(1)), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompactDeltas(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	q, err := twig.Parse("//dblp[@created]")
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 1 {
		t.Fatalf("root attribute lost in compaction: %d hits", len(r.Hits))
	}
}

// TestCompactDeltasFaultSite: the corpus/compact injection fails the round
// deterministically and leaves the shard set untouched.
func TestCompactDeltasFaultSite(t *testing.T) {
	freg := faults.New()
	freg.Enable(faults.Injection{Site: FaultCompact, Keys: []string{"bib"}, Err: errors.New("injected")})
	c, err := FromDocument("bib", mustDoc(t, "bib", bibXML), 1, Config{Faults: freg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDeltaSplit("d1", mustDoc(t, "d", deltaXML(1)), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompactDeltas(context.Background(), 0); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("compaction under injection: err=%v", err)
	}
	if n := c.DeltaShards(); n != 1 {
		t.Fatalf("failed compaction mutated the shard set: %d deltas", n)
	}
}

// TestDeltaFlagPersists: the delta marker survives a persist + Open cycle,
// so a restart resumes with the same compaction backlog.
func TestDeltaFlagPersists(t *testing.T) {
	dir := t.TempDir()
	c := New("bib", Config{Dir: dir})
	if err := c.SetSplit("bib", mustDoc(t, "bib", bibXML), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDeltaSplit("d1", mustDoc(t, "d", deltaXML(1)), 1); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := re.DeltaShards(); n != 1 {
		t.Fatalf("reopened corpus has %d delta shards, want 1", n)
	}
	// And the reopened corpus can compact them.
	res, err := re.CompactDeltas(context.Background(), 0)
	if err != nil || res.Merged != 1 {
		t.Fatalf("compaction after reopen: res=%+v err=%v", res, err)
	}
	// A second reopen sees the compacted state.
	re2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re2.DeltaShards() != 0 || re2.Snapshot().Len() != 3 {
		t.Fatalf("after compaction+reopen: %d deltas over %d shards", re2.DeltaShards(), re2.Snapshot().Len())
	}
}

// TestReindexPreservesDeltaFlag: a full reindex rebuilds every shard but
// keeps the delta markers.
func TestReindexPreservesDeltaFlag(t *testing.T) {
	c, err := FromDocument("bib", mustDoc(t, "bib", bibXML), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDeltaSplit("d1", mustDoc(t, "d", deltaXML(1)), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Reindex(""); err != nil {
		t.Fatal(err)
	}
	if n := c.DeltaShards(); n != 1 {
		t.Fatalf("reindex dropped the delta flag: %d deltas", n)
	}
}
