package corpus

import (
	"fmt"
	"io"
	"strings"

	"lotusx/internal/doc"
)

// Record splitting: a large document becomes several shard documents by
// cutting at record boundaries.  Records are the element children of the
// document root (dblp's entries, TreeBank's sentences); when the root has
// fewer children than the requested parts — XMark's <site> holds just four
// container elements — the split descends one level, treating each
// container's element children as records and replicating the container
// element itself around its records in every shard that holds some.  Each
// record subtree is self-contained, so a twig query evaluated per shard and
// merged sees exactly the matches it would have seen on the whole document
// for output nodes at or below record level (matches output at the root or
// a replicated container duplicate per shard — the inherent sharding
// caveat).

// xmlEscaper escapes attribute and text content when re-wrapping records.
var xmlEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
)

// record is one splittable unit with its optional depth-1 container.
type record struct {
	node      doc.NodeID
	container doc.NodeID // doc.None for direct children of the root
	// first marks the container's first record, which carries the
	// container's direct text.
	first bool
}

// SplitDocument partitions d's records into at most parts contiguous groups
// of roughly equal node count, re-wrapping each group under a copy of the
// root element (root attributes are replicated; direct root text, rare in
// record-oriented data, travels with the first part).  It returns fewer
// than parts documents when there are fewer records.  parts <= 1, or a
// document with a single record, returns d itself unsplit.
func SplitDocument(d *doc.Document, parts int) ([]*doc.Document, error) {
	if parts <= 1 {
		return []*doc.Document{d}, nil
	}
	root := d.Root()

	var level1 []doc.NodeID // element children of the root, document order
	var attrs []doc.NodeID  // root attribute children, replicated on every part
	for c := d.FirstChild(root); c != doc.None; c = d.NextSibling(c) {
		if d.Kind(c) == doc.Attribute {
			attrs = append(attrs, c)
		} else {
			level1 = append(level1, c)
		}
	}

	records := make([]record, 0, len(level1))
	for _, c := range level1 {
		records = append(records, record{node: c, container: doc.None})
	}
	if len(records) < parts {
		// Too few top-level records: descend one level through containers.
		expanded := make([]record, 0, len(records)*4)
		for _, r := range records {
			var inner []doc.NodeID
			for c := d.FirstChild(r.node); c != doc.None; c = d.NextSibling(c) {
				if d.Kind(c) != doc.Attribute {
					inner = append(inner, c)
				}
			}
			if len(inner) == 0 {
				expanded = append(expanded, r) // leaf record: keep as-is
				continue
			}
			for i, c := range inner {
				expanded = append(expanded, record{node: c, container: r.node, first: i == 0})
			}
		}
		records = expanded
	}
	if len(records) <= 1 {
		return []*doc.Document{d}, nil
	}
	if parts > len(records) {
		parts = len(records)
	}

	// Contiguous partition balanced by subtree size, so shards carry
	// comparable evaluation work whatever the record-size skew.
	sizes := make([]int, len(records))
	total := 0
	for i, r := range records {
		sizes[i] = d.SubtreeSize(r.node)
		total += sizes[i]
	}
	target := float64(total) / float64(parts)

	var out []*doc.Document
	start := 0
	acc := 0
	part := 0
	for i := range records {
		acc += sizes[i]
		remainingParts := parts - part - 1
		if remainingParts == 0 {
			break // the last part takes everything left
		}
		// Cut when the running group reached its share — but never cut so
		// late that the outstanding parts cannot get one record each.
		cut := float64(acc) >= target && len(records)-(i+1) >= remainingParts
		if !cut && len(records)-(i+1) == remainingParts {
			cut = true
		}
		if cut {
			sd, err := wrapRecords(d, part, attrs, records[start:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, sd)
			start = i + 1
			acc = 0
			part++
		}
	}
	sd, err := wrapRecords(d, part, attrs, records[start:])
	if err != nil {
		return nil, err
	}
	out = append(out, sd)
	return out, nil
}

// SplitReader parses XML from r and splits it into parts shard documents;
// see SplitDocument.
func SplitReader(name string, r io.Reader, parts int) ([]*doc.Document, error) {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return nil, err
	}
	return SplitDocument(d, parts)
}

// openTag renders n's start tag with its attribute children.
func openTag(d *doc.Document, b *strings.Builder, n doc.NodeID) {
	b.WriteByte('<')
	b.WriteString(d.TagName(n))
	for c := d.FirstChild(n); c != doc.None; c = d.NextSibling(c) {
		if d.Kind(c) != doc.Attribute {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(d.TagName(c)[1:]) // strip '@'
		b.WriteString(`="`)
		xmlEscaper.WriteString(b, d.Value(c))
		b.WriteByte('"')
	}
	b.WriteByte('>')
	b.WriteByte('\n')
}

// wrapRecords renders the records — re-opening their containers as the
// group crosses container boundaries — under a copy of the root element and
// re-parses the fragment into a standalone document.
func wrapRecords(d *doc.Document, part int, attrs []doc.NodeID, records []record) (*doc.Document, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("corpus: split produced an empty part %d", part)
	}
	root := d.Root()
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(d.TagName(root))
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(d.TagName(a)[1:]) // strip '@'
		b.WriteString(`="`)
		xmlEscaper.WriteString(&b, d.Value(a))
		b.WriteByte('"')
	}
	b.WriteString(">\n")
	if part == 0 && d.Value(root) != "" {
		xmlEscaper.WriteString(&b, d.Value(root))
		b.WriteByte('\n')
	}
	container := doc.None
	closeContainer := func() {
		if container != doc.None {
			b.WriteString("</")
			b.WriteString(d.TagName(container))
			b.WriteString(">\n")
		}
	}
	for _, rec := range records {
		if rec.container != container {
			closeContainer()
			container = rec.container
			if container != doc.None {
				openTag(d, &b, container)
				// The container's direct text travels with its first record
				// so it appears exactly once across all parts.
				if rec.first && d.Value(container) != "" {
					xmlEscaper.WriteString(&b, d.Value(container))
					b.WriteByte('\n')
				}
			}
		}
		if err := d.WriteXML(&b, rec.node); err != nil {
			return nil, err
		}
	}
	closeContainer()
	b.WriteString("</")
	b.WriteString(d.TagName(root))
	b.WriteString(">\n")

	name := fmt.Sprintf("%s#%d", d.Name(), part)
	sd, err := doc.FromReader(name, strings.NewReader(b.String()))
	if err != nil {
		return nil, fmt.Errorf("corpus: re-parsing split part %d: %w", part, err)
	}
	return sd, nil
}
