package corpus

import (
	"context"
	"testing"
	"time"
)

// TestShardBudget pins the per-attempt budget derivation: a negative
// configured timeout disables budgets, a request deadline derives a cap
// (4/5 of the remainder, bounded by remainder minus the network
// allowance), and a configured positive timeout is clamped by that
// derivation so a per-hop timeout can never promise more time than the
// caller has left.
func TestShardBudget(t *testing.T) {
	t.Parallel()
	const tol = 15 * time.Millisecond
	cases := []struct {
		name     string
		timeout  time.Duration // tuning.ShardTimeout
		deadline time.Duration // request deadline from now; 0 = none
		want     time.Duration // 0 = unbounded
	}{
		{"no-timeout-no-deadline", 0, 0, 0},
		{"fixed-timeout-no-deadline", 500 * time.Millisecond, 0, 500 * time.Millisecond},
		{"disabled", -1, 200 * time.Millisecond, 0},
		// 100ms remaining: 4/5 = 80ms beats 100-20 = 80ms; both 80ms.
		{"derived-from-deadline", 0, 100 * time.Millisecond, 80 * time.Millisecond},
		// Configured 50ms is tighter than the 80ms derivation: keep it.
		{"timeout-tighter-than-deadline", 50 * time.Millisecond, 100 * time.Millisecond, 50 * time.Millisecond},
		// Configured 10s is looser than what the caller has left: clamp.
		{"deadline-clamps-timeout", 10 * time.Second, 100 * time.Millisecond, 80 * time.Millisecond},
		// 30ms remaining: allowance bound (30-20 = 10ms) beats 4/5 (24ms).
		{"allowance-dominates-short-deadline", 0, 30 * time.Millisecond, 10 * time.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := &Corpus{tuning: Tuning{ShardTimeout: tc.timeout}}
			ctx := context.Background()
			if tc.deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, tc.deadline)
				defer cancel()
			}
			got := c.shardBudget(ctx)
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("shardBudget = %v, want unbounded", got)
				}
				return
			}
			if got > tc.want || tc.want-got > tol {
				t.Fatalf("shardBudget = %v, want ~%v (tolerance %v)", got, tc.want, tol)
			}
		})
	}
}

// TestShardBudgetExpiredDeadline: an already-expired deadline derives no
// budget — the attempt's context is dead anyway and fails immediately.
func TestShardBudgetExpiredDeadline(t *testing.T) {
	t.Parallel()
	c := &Corpus{tuning: Tuning{ShardTimeout: 0}}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if got := c.shardBudget(ctx); got != 0 {
		t.Fatalf("shardBudget past deadline = %v, want 0", got)
	}
}
