package corpus

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lotusx/internal/metrics"
)

// Per-shard circuit breakers.
//
// Every fan-out consults the breaker before evaluating a shard and reports
// the outcome after.  A shard that fails BreakerThreshold consecutive
// evaluations trips open: the fan-out skips it (counting it among the failed
// shards of a degraded answer) for BreakerCooldown, after which exactly one
// request is let through as a half-open probe — success closes the breaker,
// failure reopens it for another cooldown.  The state machine is a single
// mutex over a small map: it sits on the query path, but the critical
// sections are a few field reads per shard, far below the cost of a twig
// join, and the map only ever holds one entry per shard name.

// Breaker states, rendered verbatim in /api/v1/metrics and the admin
// health route.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// shardBreaker is the mutable breaker record of one shard.
type shardBreaker struct {
	state       string
	consecutive int       // failures since the last success
	trips       int64     // closed→open transitions, incl. failed probes
	lastErr     string    // failure that last advanced the breaker
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
}

// health tracks one breaker per shard of a corpus.
type health struct {
	threshold int
	cooldown  time.Duration
	met       *metrics.CorpusMetrics
	now       func() time.Time // injectable for tests

	mu     sync.Mutex
	shards map[string]*shardBreaker
}

// newHealth builds the breaker set; a negative threshold disables breakers
// entirely and returns nil (every caller nil-checks).
func newHealth(t Tuning, met *metrics.CorpusMetrics) *health {
	threshold := t.BreakerThreshold
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = defaultBreakerThreshold
	}
	cooldown := t.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &health{
		threshold: threshold,
		cooldown:  cooldown,
		met:       met,
		now:       time.Now,
		shards:    make(map[string]*shardBreaker),
	}
}

// get returns (creating on first use) the named shard's breaker record.
// Callers hold h.mu.
func (h *health) get(name string) *shardBreaker {
	b := h.shards[name]
	if b == nil {
		b = &shardBreaker{state: breakerClosed}
		h.shards[name] = b
	}
	return b
}

// allow reports whether the named shard may be evaluated right now.  An open
// breaker whose cooldown has expired admits exactly one caller as the
// half-open probe; concurrent callers are refused until the probe resolves.
func (h *health) allow(name string) bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(name)
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if h.now().Sub(b.openedAt) < h.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed evaluation: the breaker closes whatever state
// it was in.
func (h *health) success(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(name)
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	b.lastErr = ""
}

// failure records a failed evaluation.  A half-open probe failing reopens
// immediately; a closed breaker trips once consecutive failures reach the
// threshold.  Each closed/half-open → open transition counts as one trip.
func (h *health) failure(name string, err error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(name)
	b.consecutive++
	if err != nil {
		b.lastErr = err.Error()
	}
	b.probing = false
	switch {
	case b.state == breakerHalfOpen:
		h.trip(b)
	case b.state == breakerClosed && b.consecutive >= h.threshold:
		h.trip(b)
	}
}

// trip opens b.  Callers hold h.mu.
func (h *health) trip(b *shardBreaker) {
	b.state = breakerOpen
	b.openedAt = h.now()
	b.trips++
	if h.met != nil {
		h.met.BreakerTrips.Add(1)
	}
}

// retryIn reports the cooldown remaining before the named shard's open
// breaker will admit a half-open probe — what a Retry-After header should
// promise.  0 for closed/half-open breakers, expired cooldowns, or disabled
// health tracking.
func (h *health) retryIn(name string) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.shards[name]
	if b == nil || b.state != breakerOpen {
		return 0
	}
	if rem := h.cooldown - h.now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return 0
}

// release ends a half-open probe without a verdict — the evaluation was
// abandoned (sibling cancellation, caller deadline) so the probe neither
// closes nor reopens the breaker; the next allow admits a fresh probe.
func (h *health) release(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.shards[name]; b != nil {
		b.probing = false
	}
}

// reset force-closes the named shard's breaker (the admin POST).  The trip
// counter survives — it is a lifetime counter, not state.
func (h *health) reset(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(name)
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	b.lastErr = ""
}

// status renders one shard's breaker for metrics and the admin route.
// Callers hold h.mu.
func (h *health) status(b *shardBreaker) metrics.ShardHealth {
	s := metrics.ShardHealth{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Trips:               b.trips,
		LastError:           b.lastErr,
	}
	if b.state == breakerOpen {
		if rem := h.cooldown - h.now().Sub(b.openedAt); rem > 0 {
			s.RetryInMS = float64(rem) / float64(time.Millisecond)
		}
	}
	return s
}

// snapshot renders every shard named in names (breakers default to closed
// for shards never seen by a fan-out).
func (h *health) snapshot(names []string) map[string]metrics.ShardHealth {
	out := make(map[string]metrics.ShardHealth, len(names))
	if h == nil {
		for _, n := range names {
			out[n] = metrics.ShardHealth{State: breakerClosed}
		}
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, n := range names {
		out[n] = h.status(h.get(n))
	}
	return out
}

// quarantined lists the shards among names whose breaker is not closed,
// in order.
func (h *health) quarantined(names []string) []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, n := range names {
		if b := h.shards[n]; b != nil && b.state != breakerClosed {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------- accessors

// ShardHealth reports the breaker state of every shard in the current
// snapshot, keyed by shard name.
func (c *Corpus) ShardHealth() map[string]metrics.ShardHealth {
	snap := c.Snapshot()
	names := snap.Names()
	if c.health == nil {
		out := make(map[string]metrics.ShardHealth, len(names))
		for _, n := range names {
			out[n] = metrics.ShardHealth{State: breakerClosed}
		}
		return out
	}
	return c.health.snapshot(names)
}

// ShardHealthOf reports the named shard's breaker state, erroring when the
// current snapshot has no such shard.
func (c *Corpus) ShardHealthOf(name string) (metrics.ShardHealth, error) {
	for _, sh := range c.Snapshot().shards {
		if sh.name == name {
			m := c.health.snapshot([]string{name})
			return m[name], nil
		}
	}
	return metrics.ShardHealth{}, fmt.Errorf("corpus: no shard %q in %s", name, c.name)
}

// ResetShardHealth force-closes the named shard's breaker, erroring when the
// current snapshot has no such shard.
func (c *Corpus) ResetShardHealth(name string) error {
	for _, sh := range c.Snapshot().shards {
		if sh.name == name {
			c.health.reset(name)
			return nil
		}
	}
	return fmt.Errorf("corpus: no shard %q in %s", name, c.name)
}

// QuarantinedShards lists the shards of the current snapshot whose breaker
// is open or half-open, sorted.
func (c *Corpus) QuarantinedShards() []string {
	if c.health == nil {
		return nil
	}
	return c.health.quarantined(c.Snapshot().Names())
}

// Degraded reports a human-readable reason when the corpus is serving but
// impaired — shards quarantined by their breakers, or shard files
// quarantined at startup — and "" when whole.  /readyz renders it as
// "ready (degraded): ...".
func (c *Corpus) Degraded() string {
	var parts []string
	if q := c.QuarantinedShards(); len(q) > 0 {
		parts = append(parts, fmt.Sprintf("%d shard(s) breaker-quarantined: %s",
			len(q), strings.Join(q, ", ")))
	}
	if len(c.loadQuarantined) > 0 {
		parts = append(parts, fmt.Sprintf("%d shard file(s) quarantined at startup: %s",
			len(c.loadQuarantined), strings.Join(c.loadQuarantined, ", ")))
	}
	if len(parts) == 0 {
		return ""
	}
	return fmt.Sprintf("corpus %s: %s", c.name, strings.Join(parts, "; "))
}
