package corpus

import (
	"context"
	"fmt"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// ShardBackend is one evaluatable shard of a corpus — the seam between the
// fan-out machinery (worker pool, retries, budgets, breakers, merge) and
// where a shard actually lives.  The in-process engine shard (localShard) is
// the first implementation; internal/remote.Shard speaks the same interface
// over HTTP to a shard server, which is how one corpus fans out across
// machines.  Everything above the interface — degrade/failfast policy,
// per-shard circuit breakers, time budgets with one transparent retry,
// partial-result envelopes — applies identically to both, so a dead shard
// server degrades exactly like a dead local shard.
//
// Implementations must be safe for concurrent use; the fan-out may call one
// backend from several requests at once.
type ShardBackend interface {
	// ShardName names the shard for merges, metrics, breaker records and
	// trace spans.  It must be stable for the backend's lifetime.
	ShardName() string

	// SearchShard evaluates q (normalized; implementations that mutate
	// evaluation state must clone it) and returns the shard's ranked page.
	// opts arrive canonicalized with K already widened to the global
	// offset+k cut and Offset zeroed — paging happens after the global
	// merge.
	SearchShard(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*ShardPage, error)

	// CompleteTags, CompleteValues and ExplainTags mirror core.Backend for
	// one shard; the corpus merges candidates/occurrences across shards by
	// summed count.
	CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error)
	CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error)
	ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error)
}

// ShardAnswer is one ranked answer of a shard page.  The merge ranks on the
// inline fields and calls Render only for answers that survive the global
// page cut, so a local shard renders snippets lazily (the expensive part)
// while a remote shard just replays what came over the wire.
type ShardAnswer struct {
	// Node orders ties deterministically; IDs are scoped to the shard.
	Node doc.NodeID
	// Score ranks within the exact and rewrite partitions.
	Score float64
	// Penalty is the rewrite penalty (0 for exact answers); rewrites rank by
	// penalty ascending before score.
	Penalty float64
	// Render materializes the final hit at the given snippet bound.
	Render func(snippetMax int) core.Hit
}

// ShardPage is one shard's ranked answer page plus the counters the merge
// aggregates.  Answers[:Exact] are exact matches, the rest rewrites —
// both partitions already ranked by the shard.
type ShardPage struct {
	Exact         int
	Answers       []ShardAnswer
	Total         int
	RewritesTried int
	Stats         join.Stats
	Algorithm     join.Algorithm
	// PartialShards names sub-shards that failed when the backend is itself
	// a degraded corpus — a remote shard server running its own fan-out
	// answered partial:true.  The router surfaces them (prefixed with this
	// shard's name) in the merged result's FailedShards.
	PartialShards []string
}

// localShard adapts a shard's in-process engine to ShardBackend.  It is a
// view over the same struct ((*localShard)(sh)), so wrapping allocates
// nothing on the query path.
type localShard shard

func (l *localShard) ShardName() string { return l.name }

// SearchShard evaluates one clone of q on the shard's engine.  Each call
// clones: twig evaluation mutates stack state keyed by node IDs, and
// Normalize assigns the same preorder IDs to the same tree, so clones are
// interchangeable with q for ID-based bookkeeping.
func (l *localShard) SearchShard(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*ShardPage, error) {
	sq := q.Clone()
	res, err := l.engine.SearchContext(ctx, sq, opts)
	if err != nil {
		return nil, err
	}
	page := &ShardPage{
		Exact:         res.Exact,
		Total:         res.Total,
		RewritesTried: res.RewritesTried,
		Stats:         res.Stats,
		Algorithm:     res.Algorithm,
		Answers:       make([]ShardAnswer, len(res.Answers)),
	}
	name, engine := l.name, l.engine
	for i, a := range res.Answers {
		a := a
		sa := ShardAnswer{Node: a.Node, Score: a.Score}
		if a.Rewrite != nil {
			sa.Penalty = a.Rewrite.Penalty
		}
		// Render against the clone the shard evaluated — the answer's rewrite
		// pointers belong to that clone's ID space.
		sa.Render = func(snippetMax int) core.Hit {
			return engine.RenderHit(name, sq, a, snippetMax)
		}
		page.Answers[i] = sa
	}
	return page, nil
}

func (l *localShard) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	return l.engine.CompleteTags(ctx, q, anchor, axis, prefix, k)
}

func (l *localShard) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	return l.engine.CompleteValues(ctx, q, focus, prefix, k)
}

func (l *localShard) ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error) {
	return l.engine.ExplainTags(ctx, q, anchor, axis, tag, max)
}

// be returns the shard's backend: the explicit one for remote shards, the
// zero-allocation local view otherwise.
func (sh *shard) be() ShardBackend {
	if sh.backend != nil {
		return sh.backend
	}
	return (*localShard)(sh)
}

// QuarantineError reports a shard skipped because its circuit breaker is
// open, carrying the cooldown remaining before a half-open probe will be
// admitted.  It unwraps to ErrShardQuarantined; the HTTP layer surfaces
// RetryAfter as a Retry-After header when a whole corpus is quarantined.
type QuarantineError struct {
	// Shard names the quarantined shard.
	Shard string
	// RetryAfter is the cooldown remaining before the next probe (0 when the
	// breaker is due to probe immediately).
	RetryAfter time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("corpus: shard %s: %v (retry in %v)", e.Shard, ErrShardQuarantined, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap chains to ErrShardQuarantined so errors.Is keeps working.
func (e *QuarantineError) Unwrap() error { return ErrShardQuarantined }

// ShardError reports a search or completion that failed because a shard
// could not answer — an upstream failure, not a client error.  The HTTP
// layer maps it to 502 so availability objectives and clients see shard
// outages as server-side failures.
type ShardError struct {
	// Shard names the failed shard.
	Shard string
	// Err is the underlying failure (replica error, decode error, budget
	// expiry of the shard's own attempt).
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("corpus: shard %s: %v", e.Shard, e.Err)
}

// Unwrap exposes the underlying failure so errors.Is/As keep working
// (context errors, quarantine sentinels).
func (e *ShardError) Unwrap() error { return e.Err }
