package corpus

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// mkGenDoc builds a tiny document whose three titles identify generation
// gen — every shard in the race test contributes exactly 3 title hits.
func mkGenDoc(t testing.TB, gen int) *doc.Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<dblp>")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "<article><author>gen%d</author><title>t%d-%d</title></article>", gen, gen, i)
	}
	b.WriteString("</dblp>")
	return mustDoc(t, fmt.Sprintf("gen%d", gen), b.String())
}

// TestConcurrentIngestAndQuery hammers one corpus with searches and
// completions while a writer adds, removes and reindexes shards — the
// scenario the atomic snapshot swap exists for; run it under -race.
// Correctness invariant: every shard holds exactly 3 titles, so every
// query must see a multiple of 3 hits whatever interleaving it races with;
// a request observing a half-applied mutation would break that.
func TestConcurrentIngestAndQuery(t *testing.T) {
	t.Parallel()
	c := New("race", Config{Workers: 2})
	if err := c.Add("base", mkGenDoc(t, 0)); err != nil {
		t.Fatal(err)
	}

	const mutations = 60
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: churn a rotating shard through add/replace/reindex/remove.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for gen := 1; gen <= mutations; gen++ {
			name := fmt.Sprintf("churn%d", gen%3)
			switch gen % 4 {
			case 0:
				if err := c.Reindex("base"); err != nil {
					t.Error(err)
					return
				}
			case 3:
				// Remove only what an earlier iteration added.
				if err := c.Remove(name); err != nil && !strings.Contains(err.Error(), "no shard") {
					t.Error(err)
					return
				}
			default:
				if err := c.Add(name, mkGenDoc(t, gen)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Readers: full search plus completion on every spin; each request must
	// see an internally consistent shard set.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				q, err := twig.Parse("//article/title")
				if err != nil {
					t.Error(err)
					return
				}
				res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 10000})
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Hits)%3 != 0 || len(res.Hits) == 0 {
					t.Errorf("inconsistent snapshot: %d hits (want a positive multiple of 3 across %d shards)", len(res.Hits), res.Shards)
					return
				}
				if _, err := c.CompleteTags(context.Background(), nil, -1, twig.Descendant, "t", 5); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// The corpus must land consistent: base plus whatever churn shards
	// survived, each contributing its 3 titles.
	q, _ := twig.Parse("//article/title")
	res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Snapshot().Len() * 3; len(res.Hits) != want {
		t.Fatalf("final state: %d hits, want %d", len(res.Hits), want)
	}
}

// TestConcurrentPersistedSwaps exercises the copy-on-write persistence
// under concurrent readers: every publish rewrites manifest + shard files
// while searches keep running against pinned snapshots.
func TestConcurrentPersistedSwaps(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := New("race", Config{Dir: dir, Workers: 2})
	if err := c.Add("base", mkGenDoc(t, 0)); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for gen := 1; gen <= 20; gen++ {
			if err := c.Add("hot", mkGenDoc(t, gen)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			q, err := twig.Parse("//article/author")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 100}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Disk state equals memory state after the dust settles.
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Snapshot().Len() != c.Snapshot().Len() || re.Seq() != c.Seq() {
		t.Fatalf("reopened: %d shards seq %d; live: %d shards seq %d",
			re.Snapshot().Len(), re.Seq(), c.Snapshot().Len(), c.Seq())
	}
}
