package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lotusx/internal/core"
	"lotusx/internal/index"
)

// On-disk layout of a corpus directory:
//
//	<dir>/MANIFEST.json          the versioned shard table (below)
//	<dir>/shard-<seq>-<i>.ltx    one full index file per shard (index.SaveFull)
//
// The manifest is the single source of truth: shard files are immutable once
// written (copy-on-write — a republish writes new files rather than
// rewriting live ones), and the manifest is swapped atomically by writing
// MANIFEST.json.tmp and renaming over MANIFEST.json.  A crash between shard
// writes and the rename leaves orphan shard files and the previous intact
// manifest; orphans are garbage-collected on the next successful publish.
const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	shardFilePrefix = "shard-"
	shardFileSuffix = ".ltx"
)

// manifest is the persisted shard table.
type manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Name is the corpus name.
	Name string `json:"name"`
	// Seq is the snapshot sequence number, monotonically increasing across
	// publishes.
	Seq uint64 `json:"seq"`
	// Shards lists the live shards, sorted by name.
	Shards []manifestShard `json:"shards"`
}

// manifestShard is one shard entry.
type manifestShard struct {
	Name  string `json:"name"`
	File  string `json:"file"`
	Nodes int    `json:"nodes"`
}

// loadManifest reads and validates <dir>/MANIFEST.json.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("corpus: manifest version %d in %s, want %d", m.Version, dir, manifestVersion)
	}
	return &m, nil
}

// saveManifest atomically replaces <dir>/MANIFEST.json.
func saveManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// openShardFile loads one persisted shard, translating the index package's
// typed failures into actionable corpus errors: corruption names the file
// so the operator can drop or re-ingest it, version skew tells them the
// shard only needs a reindex with the current binary.
func openShardFile(dir, file string) (*core.Engine, error) {
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e, err := core.Open(f)
	switch {
	case err == nil:
		return e, nil
	case errors.Is(err, index.ErrBadVersion):
		return nil, fmt.Errorf("corpus: shard file %s was written by an incompatible version — re-ingest or reindex the corpus: %w", file, err)
	case errors.Is(err, index.ErrCorrupt):
		return nil, fmt.Errorf("corpus: shard file %s is corrupt — remove it from the manifest or re-ingest: %w", file, err)
	default:
		return nil, fmt.Errorf("corpus: opening shard file %s: %w", file, err)
	}
}

// writeShardFile persists one shard under a fresh copy-on-write file name
// and returns the file's base name.
func writeShardFile(dir string, seq uint64, i int, e *core.Engine) (string, error) {
	name := fmt.Sprintf("%s%06d-%03d%s", shardFilePrefix, seq, i, shardFileSuffix)
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", err
	}
	if err := e.SaveFull(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	if err := os.Rename(f.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return name, nil
}

// cleanShardFiles removes shard-*.ltx files not referenced by live — the
// previous snapshots' files and crash leftovers.  In-memory readers pinning
// an older snapshot never touch the files again, so removal is safe.
// Cleanup failures are ignored: orphans cost disk, not correctness.
func cleanShardFiles(dir string, live map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, shardFilePrefix) {
			continue
		}
		if !strings.HasSuffix(name, shardFileSuffix) && !strings.Contains(name, shardFileSuffix+".tmp") {
			continue
		}
		if live[name] {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}
