package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/index"
)

// FaultShardOpen names the injection site on the persisted-shard open path;
// the key is the shard file's base name.  A ShortRead injection truncates
// the stream mid-payload — the torn-write crash the quarantine policy exists
// for.
const FaultShardOpen = "corpus/shard-open"

// quarantineSuffix is appended to a shard file that failed to load; the
// suffix takes the file out of the manifest's namespace and shields it from
// the shard-file GC, preserving the evidence for offline inspection.
const quarantineSuffix = ".quarantined"

// On-disk layout of a corpus directory:
//
//	<dir>/MANIFEST.json          the versioned shard table (below)
//	<dir>/shard-<seq>-<i>.ltx    one full index file per shard (index.SaveFull)
//
// The manifest is the single source of truth: shard files are immutable once
// written (copy-on-write — a republish writes new files rather than
// rewriting live ones), and the manifest is swapped atomically by writing
// MANIFEST.json.tmp and renaming over MANIFEST.json.  A crash between shard
// writes and the rename leaves orphan shard files and the previous intact
// manifest; orphans are garbage-collected on the next successful publish.
const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	shardFilePrefix = "shard-"
	shardFileSuffix = ".ltx"
)

// manifest is the persisted shard table.
type manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Name is the corpus name.
	Name string `json:"name"`
	// Seq is the snapshot sequence number, monotonically increasing across
	// publishes.
	Seq uint64 `json:"seq"`
	// Shards lists the live shards, sorted by name.
	Shards []manifestShard `json:"shards"`
}

// manifestShard is one shard entry.
type manifestShard struct {
	Name  string `json:"name"`
	File  string `json:"file"`
	Nodes int    `json:"nodes"`
	// Delta marks an async-ingested delta shard awaiting compaction; absent
	// (false) for base shards, so pre-delta manifests load unchanged.
	Delta bool `json:"delta,omitempty"`
	// Compressed marks a shard whose index runs on the DAG-compressed
	// substrate (its file carries the version-2 payload); absent (false) for
	// raw shards, so pre-compression manifests load unchanged.  Informational:
	// the shard file itself is self-describing, this flag lets operators see
	// which shards compressed without opening files.
	Compressed bool `json:"compressed,omitempty"`
}

// loadManifest reads and validates <dir>/MANIFEST.json.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("corpus: manifest version %d in %s, want %d", m.Version, dir, manifestVersion)
	}
	return &m, nil
}

// saveManifest atomically and durably replaces <dir>/MANIFEST.json: the
// temp file is fsynced before the rename (so the rename can never publish a
// torn manifest) and the directory is fsynced after (so the rename itself
// survives a crash).
func saveManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// openShardFile loads one persisted shard, translating the index package's
// typed failures into actionable corpus errors: corruption names the file
// so the operator can drop or re-ingest it, version skew tells them the
// shard only needs a reindex with the current binary.
func openShardFile(dir, file string, reg *faults.Registry) (*core.Engine, error) {
	f, err := os.Open(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// A firing ShortRead injection truncates the stream exactly as a torn
	// write would; an unarmed (or nil) registry returns f untouched.
	var rd io.Reader = f
	rd = reg.Reader(FaultShardOpen, file, rd)
	e, err := core.Open(rd)
	switch {
	case err == nil:
		return e, nil
	case errors.Is(err, index.ErrBadVersion):
		return nil, fmt.Errorf("corpus: shard file %s was written by an incompatible version — re-ingest or reindex the corpus: %w", file, err)
	case errors.Is(err, index.ErrCorrupt):
		return nil, fmt.Errorf("corpus: shard file %s is corrupt — remove it from the manifest or re-ingest: %w", file, err)
	default:
		return nil, fmt.Errorf("corpus: opening shard file %s: %w", file, err)
	}
}

// writeShardFile persists one shard under a fresh copy-on-write file name
// and returns the file's base name.
func writeShardFile(dir string, seq uint64, i int, e *core.Engine) (string, error) {
	name := fmt.Sprintf("%s%06d-%03d%s", shardFilePrefix, seq, i, shardFileSuffix)
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", err
	}
	if err := e.SaveFull(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	// Durability: the bytes must be on stable storage before the rename
	// makes the file reachable, else a crash can publish a torn shard.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	if err := os.Rename(f.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return name, nil
}

// cleanShardFiles removes shard-*.ltx files not referenced by live — the
// previous snapshots' files and crash leftovers — plus stale MANIFEST.json
// temps (a crash between writing the temp and the rename leaves one behind,
// and nothing else ever touches it again).  Quarantined files (*.quarantined)
// are preserved for inspection.  In-memory readers pinning an older snapshot
// never touch the files again, so removal is safe.  Cleanup failures are
// ignored: orphans cost disk, not correctness.
func cleanShardFiles(dir string, live map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, manifestName+".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, shardFilePrefix) {
			continue
		}
		if !strings.HasSuffix(name, shardFileSuffix) && !strings.Contains(name, shardFileSuffix+".tmp") {
			continue
		}
		if live[name] {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// quarantineable reports whether a shard-open failure is one the startup
// load policy should quarantine and serve around (data damage or version
// skew confined to that file) rather than refuse the whole corpus (anything
// environmental, like permissions).
func quarantineable(err error) bool {
	return errors.Is(err, index.ErrCorrupt) ||
		errors.Is(err, index.ErrBadVersion) ||
		errors.Is(err, fs.ErrNotExist)
}

// quarantineShardFile renames a failed shard file to <file>.quarantined
// (missing files have nothing to rename) and logs the quarantine.
func quarantineShardFile(dir, file string, cause error, log *slog.Logger) {
	renamed := false
	if !errors.Is(cause, fs.ErrNotExist) {
		if err := os.Rename(filepath.Join(dir, file), filepath.Join(dir, file+quarantineSuffix)); err == nil {
			renamed = true
		}
	}
	log.Warn("corpus: quarantined shard file",
		"dir", dir, "file", file, "renamed", renamed, "cause", cause)
}
