// Package corpus manages a dataset as a set of shards — each shard an
// independent document + index + engine — behind one queryable façade.
// Query evaluation fans out across shards on a bounded worker pool and
// merges per-shard ranked matches into a single globally ranked page;
// completion merges candidates by summed weight.
//
// The shard set is mutable while serving: Add/Remove/Reindex build new
// shards off the hot path and publish them with an atomic copy-on-write
// snapshot swap.  Readers pin a snapshot (one atomic pointer load) for the
// life of a request, so the query path takes no locks and every request
// sees a consistent shard set; writers serialize on a mutation mutex.  With
// a directory configured, every publish persists a versioned manifest plus
// per-shard full-index files, so a corpus reopens without reparsing XML.
//
// corpus.Corpus implements core.Backend, so the HTTP server, the REPL and
// the CLI serve a sharded corpus exactly as they serve one engine.
package corpus

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
)

// shard is one immutable storage unit: a parsed document with its engine,
// or — for remote corpora — a ShardBackend speaking to a shard server.
type shard struct {
	name   string
	engine *core.Engine // nil for remote shards
	// backend, when non-nil, overrides the in-process evaluation: the
	// fan-out calls it instead of engine (see backend.go and
	// internal/remote).  Local shards leave it nil and evaluate through the
	// zero-allocation localShard view.
	backend ShardBackend
	// file is the persisted full-index file (base name), "" while unsaved.
	file string
	// delta marks a shard produced by async ingest that the background
	// compactor may merge into a base shard (see compact.go).  Base shards
	// are never rewritten by compaction.
	delta bool
}

// Snapshot is an immutable shard set.  Every query pins one Snapshot and
// evaluates entirely against it; mutations publish new Snapshots and never
// touch old ones.
type Snapshot struct {
	seq    uint64
	shards []*shard // sorted by name
}

// Seq returns the snapshot's publish sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Len returns the number of shards.
func (s *Snapshot) Len() int { return len(s.shards) }

// Names lists the shard names in order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.name
	}
	return out
}

// DeltaCount counts the delta shards awaiting compaction.
func (s *Snapshot) DeltaCount() int {
	n := 0
	for _, sh := range s.shards {
		if sh.delta {
			n++
		}
	}
	return n
}

// DeltaNames lists the delta shard names in order.
func (s *Snapshot) DeltaNames() []string {
	var out []string
	for _, sh := range s.shards {
		if sh.delta {
			out = append(out, sh.name)
		}
	}
	return out
}

// ShardPolicy selects what a fan-out does when a shard fails.
type ShardPolicy string

const (
	// PolicyDegrade (the default) marks a failing shard failed and answers
	// from the survivors, flagging the result partial.
	PolicyDegrade ShardPolicy = "degrade"
	// PolicyFailFast cancels sibling evaluations on the first shard error
	// and fails the whole request — the pre-fault-tolerance behavior.
	PolicyFailFast ShardPolicy = "failfast"
)

// ParsePolicy validates a -shard-policy flag value ("" means degrade).
func ParsePolicy(s string) (ShardPolicy, error) {
	switch ShardPolicy(s) {
	case "", PolicyDegrade:
		return PolicyDegrade, nil
	case PolicyFailFast:
		return PolicyFailFast, nil
	}
	return "", fmt.Errorf("corpus: unknown shard policy %q (want %q or %q)", s, PolicyDegrade, PolicyFailFast)
}

// Fault-tolerance defaults; see Tuning.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 30 * time.Second
	// retryBackoff seeds the jittered pause before the single transparent
	// per-shard retry.
	retryBackoff = 2 * time.Millisecond
)

// Tuning holds the fault-tolerance knobs of a corpus; the zero value means
// degrade policy, derived shard budgets, and a 5-failure/30s breaker.
type Tuning struct {
	// Policy is the shard-failure policy; "" means PolicyDegrade.
	Policy ShardPolicy
	// ShardTimeout caps each per-shard evaluation attempt.  0 derives a
	// budget from the request deadline (when one is set); negative disables
	// per-shard budgets entirely.
	ShardTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that quarantines a
	// shard; 0 means the default (5), negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped shard stays quarantined before
	// a half-open probe; 0 means the default (30s).
	BreakerCooldown time.Duration
}

// Config tunes a Corpus.
type Config struct {
	// Workers bounds the fan-out worker pool; 0 means GOMAXPROCS.
	Workers int
	// Dir, when non-empty, persists the corpus there (manifest + per-shard
	// full-index files) on every publish.
	Dir string
	// Metrics, when non-nil, receives shard-count, swap, fan-out and merge
	// observations.
	Metrics *metrics.CorpusMetrics
	// Tuning holds the fault-tolerance knobs (shard policy, time budgets,
	// circuit breaker); the zero value is production defaults.
	Tuning Tuning
	// Faults, when non-nil, arms deterministic fault-injection sites on the
	// shard-evaluation and shard-open paths (tests and benches only;
	// production leaves it nil, paying one pointer check per site).
	Faults *faults.Registry
	// Logger receives quarantine and degradation warnings; nil means
	// slog.Default().
	Logger *slog.Logger
	// Compress opts new shard indexes into the DAG-compressed substrate
	// (index.BuildOptions.Compress): repeated subtree shapes are stored once
	// and joins run once per distinct shape.  Per shard the builder falls
	// back to the raw substrate when the document doesn't repeat enough to
	// pay for itself, so enabling this on mixed corpora is safe.
	Compress bool
}

// Corpus is a mutable, concurrently queryable shard set.
type Corpus struct {
	name    string
	dir     string
	workers int
	met     *metrics.CorpusMetrics
	tuning  Tuning
	health  *health // nil when breakers are disabled
	faults  *faults.Registry
	log     *slog.Logger
	// compress opts shard builds into the DAG-compressed index substrate.
	compress bool
	// loadQuarantined names manifest shards Open quarantined at startup
	// (written once before the corpus is shared; read-only after).
	loadQuarantined []string
	// remote marks a corpus whose shards live behind ShardBackends on other
	// processes (NewRemote): the shard set is fixed at construction and
	// mutators refuse — the data belongs to the shard servers.
	remote bool

	// mu serializes mutations (Add/Remove/Reindex and their persistence);
	// the query path never takes it.
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
	// mutating counts publishes in flight — nonzero while a snapshot swap
	// (ingest, remove, reindex rebuild, persistence) is underway.  Readiness
	// probes read it: queries still serve the old snapshot during a mutation,
	// but a load balancer should stop steering fresh traffic at an instance
	// that is mid-reindex.
	mutating atomic.Int32
}

// New returns an empty corpus.
func New(name string, cfg Config) *Corpus {
	c := &Corpus{
		name:     name,
		dir:      cfg.Dir,
		workers:  cfg.Workers,
		met:      cfg.Metrics,
		tuning:   cfg.Tuning,
		faults:   cfg.Faults,
		log:      cfg.Logger,
		compress: cfg.Compress,
	}
	if c.tuning.Policy == "" {
		c.tuning.Policy = PolicyDegrade
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	if c.log == nil {
		c.log = slog.Default()
	}
	c.health = newHealth(c.tuning, c.met)
	if c.met != nil {
		// The metrics registry renders breaker states without importing
		// corpus; hand it a closure over this corpus's health map.
		c.met.SetHealthProvider(c.ShardHealth)
	}
	c.snap.Store(&Snapshot{})
	return c
}

// Open loads a persisted corpus from cfg.Dir (or dir when cfg.Dir is "")
// without reparsing any XML: the manifest names per-shard full-index files
// that rebuild in one pass each.
//
// Shard files that fail to load with damage confined to the file itself —
// corruption (a torn write), version skew, or the file missing — are
// quarantined (renamed to *.quarantined and logged) and the corpus serves
// the survivors, so one bad file degrades a dataset instead of taking it
// offline.  Environmental failures (permissions, I/O errors) still fail the
// whole Open, as does a manifest whose every shard is unloadable.
func Open(dir string, cfg Config) (*Corpus, error) {
	if cfg.Dir == "" {
		cfg.Dir = dir
	}
	m, err := loadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	name := m.Name
	if name == "" {
		name = filepath.Base(cfg.Dir)
	}
	c := New(name, cfg)
	shards := make([]*shard, 0, len(m.Shards))
	type badShard struct {
		ms  manifestShard
		err error
	}
	var bad []badShard
	for _, ms := range m.Shards {
		e, err := openShardFile(cfg.Dir, ms.File, c.faults)
		if err != nil {
			if !quarantineable(err) {
				return nil, err
			}
			bad = append(bad, badShard{ms: ms, err: err})
			continue
		}
		shards = append(shards, &shard{name: ms.Name, engine: e, file: ms.File, delta: ms.Delta})
	}
	if len(shards) == 0 && len(m.Shards) > 0 {
		// Nothing survived: refuse the corpus (and leave the files where they
		// are — an all-corrupt directory is an operator problem, not a
		// degradation) with the first cause in the chain.
		return nil, fmt.Errorf("corpus: every shard of %s failed to load: %w", cfg.Dir, bad[0].err)
	}
	for _, b := range bad {
		quarantineShardFile(cfg.Dir, b.ms.File, b.err, c.log)
		c.loadQuarantined = append(c.loadQuarantined, b.ms.Name)
	}
	sort.Strings(c.loadQuarantined)
	sortShards(shards)
	snap := &Snapshot{seq: m.Seq, shards: shards}
	c.snap.Store(snap)
	if c.met != nil {
		c.met.SetShards(len(shards))
		c.met.SetDeltaShards(snap.DeltaCount())
		c.updateResident(shards)
	}
	return c, nil
}

// FromDocument builds a corpus by splitting d into parts shards (see
// SplitDocument) named after the corpus.
func FromDocument(name string, d *doc.Document, parts int, cfg Config) (*Corpus, error) {
	c := New(name, cfg)
	if err := c.AddSplit(name, d, parts); err != nil {
		return nil, err
	}
	return c, nil
}

// NewRemote builds a read-only corpus whose shards are the given backends —
// typically internal/remote.Shard clients over shard servers.  The whole
// fan-out stack (policy, budgets, retries, breakers, partial envelopes,
// merge) applies to them exactly as to local shards; only mutation and
// persistence are refused, since the data belongs to the shard servers.
func NewRemote(name string, backends []ShardBackend, cfg Config) (*Corpus, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("corpus: remote corpus %s needs at least one shard backend", name)
	}
	if cfg.Dir != "" {
		return nil, fmt.Errorf("corpus: remote corpus %s cannot persist (Dir must be empty)", name)
	}
	c := New(name, cfg)
	c.remote = true
	shards := make([]*shard, len(backends))
	seen := make(map[string]bool, len(backends))
	for i, be := range backends {
		sn := be.ShardName()
		if err := validShardName(sn); err != nil {
			return nil, err
		}
		if seen[sn] {
			return nil, fmt.Errorf("corpus: duplicate remote shard name %q in %s", sn, name)
		}
		seen[sn] = true
		shards[i] = &shard{name: sn, backend: be}
	}
	sortShards(shards)
	c.snap.Store(&Snapshot{seq: 1, shards: shards})
	if c.met != nil {
		c.met.SetShards(len(shards))
	}
	return c, nil
}

// Remote reports whether this corpus fans out to remote shard backends.
func (c *Corpus) Remote() bool { return c.remote }

// Name returns the corpus name.
func (c *Corpus) Name() string { return c.name }

// Dir returns the persistence directory, "" for an in-memory corpus.
func (c *Corpus) Dir() string { return c.dir }

// Snapshot pins the current shard set: one atomic load, no locks.  The
// returned snapshot stays valid (and immutable) however many swaps follow.
func (c *Corpus) Snapshot() *Snapshot { return c.snap.Load() }

// Seq returns the current snapshot's sequence number.
func (c *Corpus) Seq() uint64 { return c.Snapshot().seq }

// DeltaShards counts the current snapshot's delta shards — the compaction
// backlog the ingest pipeline watches.
func (c *Corpus) DeltaShards() int { return c.Snapshot().DeltaCount() }

// Generation implements core.Backend: every publish (Add, Remove, Reindex,
// AddSplit) bumps the snapshot sequence, so generation-keyed cache entries
// from before a mutation become unreachable the instant it lands.
func (c *Corpus) Generation() uint64 { return c.Seq() }

// updateResident publishes the snapshot's index-substrate size accounting —
// resident vs raw-equivalent bytes, dedup-DAG shape/instance counts, and how
// many shards compressed — to the corpus gauges.  Remote shards have no
// local engine and contribute nothing.  Caller holds c.met != nil.
func (c *Corpus) updateResident(shards []*shard) {
	var resident, raw, shapes, instances int64
	compressed := 0
	for _, sh := range shards {
		if sh.engine == nil {
			continue
		}
		st := sh.engine.CompressionStats()
		resident += st.ResidentBytes
		raw += st.RawBytes
		if st.Compressed {
			compressed++
			shapes += int64(st.Shapes)
			instances += int64(st.Instances)
		}
	}
	c.met.SetResident(resident, raw, shapes, instances, compressed)
}

// sortShards orders shards by name for deterministic iteration and merges.
func sortShards(shards []*shard) {
	sort.Slice(shards, func(i, j int) bool { return shards[i].name < shards[j].name })
}

// validShardName rejects names that would break manifest or route parsing.
func validShardName(name string) error {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		return fmt.Errorf("corpus: invalid shard name %q", name)
	}
	return nil
}

// Add builds a shard from d off the hot path and publishes a snapshot with
// it.  An existing shard of the same name — or a "name/NNN" split group left
// by an earlier AddSplit — is replaced atomically, so re-ingesting under a
// name never duplicates its records.
func (c *Corpus) Add(name string, d *doc.Document) error {
	if err := validShardName(name); err != nil {
		return err
	}
	// Index construction is the expensive part — do it before taking the
	// mutation lock so concurrent readers and other writers never wait on
	// parsing or index builds.
	engine := core.FromDocumentOpts(d, core.BuildOptions{Compress: c.compress})
	return c.publish(func(shards []*shard) ([]*shard, error) {
		return replaceShard(shards, &shard{name: name, engine: engine}), nil
	})
}

// AddReader parses XML from r and adds it as one shard named name.
func (c *Corpus) AddReader(name string, r io.Reader) error {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return err
	}
	return c.Add(name, d)
}

// AddSplit splits d at top-level record boundaries into parts shards named
// "name/000", "name/001", ... and publishes them in one swap.  Existing
// shards under the same name prefix are replaced.
func (c *Corpus) AddSplit(name string, d *doc.Document, parts int) error {
	return c.addSplit(name, d, parts, false)
}

// AddDeltaSplit is AddSplit with the resulting shards marked as deltas:
// small async-ingested shards the background compactor (CompactDeltas) may
// later fold into a compacted base shard off the read path.  Queries see
// delta shards exactly like base shards — they only differ in lifecycle.
func (c *Corpus) AddDeltaSplit(name string, d *doc.Document, parts int) error {
	return c.addSplit(name, d, parts, true)
}

func (c *Corpus) addSplit(name string, d *doc.Document, parts int, delta bool) error {
	if err := validShardName(name); err != nil {
		return err
	}
	fresh, err := buildShards(name, d, parts, delta, c.compress)
	if err != nil {
		return err
	}
	return c.publish(func(shards []*shard) ([]*shard, error) {
		next := removeByName(shards, name) // drop same-name shard and group
		return append(next, fresh...), nil
	})
}

// buildShards splits d and indexes each part (the expensive work, done
// before the caller takes the mutation lock): one shard named name for an
// unsplit document, or a "name/NNN" group.
func buildShards(name string, d *doc.Document, parts int, delta, compress bool) ([]*shard, error) {
	docs, err := SplitDocument(d, parts)
	if err != nil {
		return nil, err
	}
	opts := core.BuildOptions{Compress: compress}
	if len(docs) == 1 {
		return []*shard{{name: name, engine: core.FromDocumentOpts(docs[0], opts), delta: delta}}, nil
	}
	out := make([]*shard, len(docs))
	for i, sd := range docs {
		out[i] = &shard{name: fmt.Sprintf("%s/%03d", name, i), engine: core.FromDocumentOpts(sd, opts), delta: delta}
	}
	return out, nil
}

// AddSplitReader parses XML from r and splits it into parts shards; see
// AddSplit.
func (c *Corpus) AddSplitReader(name string, r io.Reader, parts int) error {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return err
	}
	return c.AddSplit(name, d, parts)
}

// AddDeltaSplitReader parses XML from r and adds it as delta shard(s); see
// AddDeltaSplit.
func (c *Corpus) AddDeltaSplitReader(name string, r io.Reader, parts int) error {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return err
	}
	return c.AddDeltaSplit(name, d, parts)
}

// SetSplit replaces the entire shard set with the split of d in one swap —
// the "re-ingest the whole dataset" operation.  Whatever shards existed
// before, under any name, are gone after the publish; a persisted corpus
// keeps its directory and its monotonically increasing sequence, so
// re-ingesting over a live corpus never races its on-disk files.
func (c *Corpus) SetSplit(name string, d *doc.Document, parts int) error {
	if err := validShardName(name); err != nil {
		return err
	}
	fresh, err := buildShards(name, d, parts, false, c.compress)
	if err != nil {
		return err
	}
	return c.publish(func([]*shard) ([]*shard, error) {
		return fresh, nil
	})
}

// SetSplitReader parses XML from r and replaces the whole shard set with
// its split; see SetSplit.
func (c *Corpus) SetSplitReader(name string, r io.Reader, parts int) error {
	d, err := doc.FromReader(name, r)
	if err != nil {
		return err
	}
	return c.SetSplit(name, d, parts)
}

// Remove drops the shard named name — or, when name is a split-group
// prefix, every "name/NNN" shard — in one swap.
func (c *Corpus) Remove(name string) error {
	return c.publish(func(shards []*shard) ([]*shard, error) {
		next := removeByName(shards, name)
		if len(next) == len(shards) {
			return nil, fmt.Errorf("corpus: no shard %q in %s", name, c.name)
		}
		return next, nil
	})
}

// Reindex rebuilds the named shard (or split group; "" means every shard)
// from its in-memory document — fresh index, guide, tries — and publishes
// the rebuilt engines in one swap.  Persisted corpora rewrite the shard
// files, which is how a version-skewed corpus heals after an upgrade.
func (c *Corpus) Reindex(name string) error {
	return c.publish(func(shards []*shard) ([]*shard, error) {
		next := make([]*shard, len(shards))
		hit := false
		for i, sh := range shards {
			if name == "" || sh.name == name || strings.HasPrefix(sh.name, name+"/") {
				hit = true
				next[i] = &shard{name: sh.name, engine: core.FromDocumentOpts(sh.engine.Document(), core.BuildOptions{Compress: c.compress}), delta: sh.delta}
			} else {
				next[i] = sh
			}
		}
		if !hit && name != "" {
			return nil, fmt.Errorf("corpus: no shard %q in %s", name, c.name)
		}
		return next, nil
	})
}

// replaceShard swaps in sh, replacing a same-named shard — or a split group
// under sh's name, so Add("s") after AddSplit("s", ..., N) cannot leave the
// old "s/NNN" shards answering alongside the new whole document — or
// appending.
func replaceShard(shards []*shard, sh *shard) []*shard {
	return append(removeByName(shards, sh.name), sh)
}

// removeByName filters out the shard named name and any "name/NNN" group
// members.
func removeByName(shards []*shard, name string) []*shard {
	out := make([]*shard, 0, len(shards))
	for _, sh := range shards {
		if sh.name == name || strings.HasPrefix(sh.name, name+"/") {
			continue
		}
		out = append(out, sh)
	}
	return out
}

// publish applies mutate to the current shard list and swaps the result in
// as a new snapshot: copy-on-write, one writer at a time, persisted before
// the swap so a reopened corpus never regresses past what queries saw.
func (c *Corpus) publish(mutate func([]*shard) ([]*shard, error)) error {
	if c.remote {
		return fmt.Errorf("corpus: %s is remote (read-only): mutate the shard servers instead", c.name)
	}
	c.mutating.Add(1)
	defer c.mutating.Add(-1)
	c.mu.Lock()
	defer c.mu.Unlock()

	cur := c.snap.Load()
	next, err := mutate(append([]*shard(nil), cur.shards...))
	if err != nil {
		return err
	}
	sortShards(next)
	ns := &Snapshot{seq: cur.seq + 1, shards: next}

	if c.dir != "" {
		if err := c.persist(ns); err != nil {
			return fmt.Errorf("corpus: persisting snapshot %d: %w", ns.seq, err)
		}
	}
	c.snap.Store(ns)
	if c.met != nil {
		c.met.SetShards(len(ns.shards))
		c.met.SetDeltaShards(ns.DeltaCount())
		c.updateResident(ns.shards)
		c.met.Swapped()
	}
	if c.dir != "" {
		live := map[string]bool{}
		for _, sh := range ns.shards {
			live[sh.file] = true
		}
		cleanShardFiles(c.dir, live)
	}
	return nil
}

// persist writes the snapshot's unsaved shards and the manifest.  Shard
// files are copy-on-write: already-saved shards keep their files, new or
// rebuilt ones get fresh names, and the manifest rename publishes the set
// atomically.
func (c *Corpus) persist(ns *Snapshot) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	m := &manifest{Version: manifestVersion, Name: c.name, Seq: ns.seq}
	for i, sh := range ns.shards {
		if sh.file == "" {
			file, err := writeShardFile(c.dir, ns.seq, i, sh.engine)
			if err != nil {
				return err
			}
			sh.file = file
		}
		m.Shards = append(m.Shards, manifestShard{
			Name:       sh.name,
			File:       sh.file,
			Nodes:      sh.engine.Document().Len(),
			Delta:      sh.delta,
			Compressed: sh.engine.Compressed(),
		})
	}
	return saveManifest(c.dir, m)
}

// Ready reports whether the corpus should receive fresh traffic: nil when a
// snapshot is loaded and no mutation is in flight, an error naming the
// condition otherwise.  GET /readyz on the debug listener aggregates this
// over every serving backend.
func (c *Corpus) Ready() error {
	if n := c.mutating.Load(); n > 0 {
		return fmt.Errorf("corpus %s: %d mutation(s) in flight", c.name, n)
	}
	if c.Snapshot().Len() == 0 {
		return fmt.Errorf("corpus %s: no shards loaded", c.name)
	}
	return nil
}

// Shard returns the engine of the named shard in the current snapshot.
func (c *Corpus) Shard(name string) (*core.Engine, error) {
	for _, sh := range c.Snapshot().shards {
		if sh.name == name {
			if sh.engine == nil {
				return nil, fmt.Errorf("corpus: shard %q of %s is remote (no local engine)", name, c.name)
			}
			return sh.engine, nil
		}
	}
	return nil, fmt.Errorf("corpus: no shard %q in %s", name, c.name)
}

// ---------------------------------------------------------- core.Backend

// Compile-time check: a corpus serves wherever an engine does.
var _ core.Backend = (*Corpus)(nil)

// Info implements core.Backend, aggregating over the pinned snapshot.
// Remote shards contribute through the optional ShardInfoer interface
// (best-effort: an unreachable shard server just reports zero sizes, since
// Info feeds banners and dashboards, not answers).
func (c *Corpus) Info() core.BackendInfo {
	snap := c.Snapshot()
	kind := "corpus"
	if c.remote {
		kind = "remote-corpus"
	}
	info := core.BackendInfo{
		Name:        c.name,
		Kind:        kind,
		Shards:      len(snap.shards),
		DeltaShards: snap.DeltaCount(),
	}
	tags := map[string]struct{}{}
	remoteTags := 0
	for _, sh := range snap.shards {
		if sh.engine == nil {
			if si, ok := sh.backend.(ShardInfoer); ok {
				ri, err := si.ShardInfo()
				if err != nil {
					continue
				}
				info.Nodes += ri.Nodes
				info.GuidePaths += ri.GuidePaths
				info.Valued += ri.Valued
				// Distinct tags cannot be deduped across the wire; the summed
				// count is an upper bound, good enough for a banner.
				remoteTags += ri.Tags
			}
			continue
		}
		st := sh.engine.Stats()
		info.Nodes += st.Nodes
		info.GuidePaths += st.GuidePaths
		info.Valued += st.Valued
		d := sh.engine.Document()
		for id := 0; id < d.Tags().Len(); id++ {
			tags[d.Tags().Name(doc.TagID(id))] = struct{}{}
		}
	}
	info.Tags = len(tags) + remoteTags
	return info
}

// ShardInfoer is the optional interface a ShardBackend implements to
// contribute sizes to Corpus.Info (internal/remote.Shard fetches the shard
// server's /api/v1/stats, best-effort with a short budget).
type ShardInfoer interface {
	ShardInfo() (core.BackendInfo, error)
}

// Engines implements core.Backend: the pinned snapshot's shard engines.
// Remote shards have no local engine and are skipped — per-document views
// (/node, /guide) must be asked of the shard server that owns the document.
func (c *Corpus) Engines() []core.NamedEngine {
	snap := c.Snapshot()
	out := make([]core.NamedEngine, 0, len(snap.shards))
	for _, sh := range snap.shards {
		if sh.engine == nil {
			continue
		}
		out = append(out, core.NamedEngine{Name: sh.name, Engine: sh.engine})
	}
	return out
}
