package corpus

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/metrics"
	"lotusx/internal/twig"
)

// repetitiveXML emits n copies of a few fixed record templates — repeated
// subtrees by construction, so every shard of the split clears the
// compression heuristic's pay-for-itself bar.
func repetitiveXML(n int) string {
	records := []string{
		`<article key="a1"><author>Jiaheng Lu</author><author>Ting Chen</author><title>Holistic Twig Joins</title><year>2005</year><pages>310</pages><publisher>VLDB</publisher></article>`,
		`<article key="a2"><author>Chunbin Lin</author><author>Jiaheng Lu</author><title>LotusX Demo</title><year>2012</year><pages>1515</pages><publisher>ICDE</publisher></article>`,
		`<book key="b1"><author>Tok Wang Ling</author><author>Ting Chen</author><title>XML Databases</title><year>2008</year><publisher>Springer</publisher><isbn>978</isbn></book>`,
	}
	var b strings.Builder
	b.WriteString("<dblp>")
	for i := 0; i < n; i++ {
		b.WriteString(records[i%len(records)])
	}
	b.WriteString("</dblp>")
	return b.String()
}

// TestCorpusCompressedEndToEnd drives the DAG-compressed substrate through
// the full corpus lifecycle: Config.Compress builds compressed shards, the
// manifest marks them, queries match a raw-substrate corpus over the same
// document, reopening from disk restores the compressed substrate (the shard
// files are self-describing), and the metrics carry the size accounting.
func TestCorpusCompressedEndToEnd(t *testing.T) {
	xml := repetitiveXML(1200)
	queries := []string{
		`//article/title`,
		`//article[author][year]/title`,
		`//book[publisher]/author`,
		`//dblp//author`,
	}

	dir := t.TempDir()
	met := metrics.New().Corpus("lib")
	comp := New("lib", Config{Dir: dir, Compress: true, Metrics: met})
	if err := comp.AddSplit("bib", mustDoc(t, "bib", xml), 3); err != nil {
		t.Fatal(err)
	}
	raw := New("lib", Config{})
	if err := raw.AddSplit("bib", mustDoc(t, "bib", xml), 3); err != nil {
		t.Fatal(err)
	}

	assertCompressed := func(c *Corpus, label string) {
		t.Helper()
		for _, ne := range c.Engines() {
			if !ne.Engine.Compressed() {
				t.Fatalf("%s: shard %s not compressed", label, ne.Name)
			}
		}
	}
	assertCompressed(comp, "built corpus")
	for _, ne := range raw.Engines() {
		if ne.Engine.Compressed() {
			t.Fatalf("raw corpus: shard %s unexpectedly compressed", ne.Name)
		}
	}

	// The manifest flags every compressed shard, so operators can see the
	// substrate without opening shard files.
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 3 {
		t.Fatalf("manifest: %d shards, want 3", len(m.Shards))
	}
	for _, ms := range m.Shards {
		if !ms.Compressed {
			t.Fatalf("manifest: shard %s not marked compressed", ms.Name)
		}
	}

	// The metrics snapshot carries the size accounting the gauges export.
	if met.ResidentBytes() <= 0 {
		t.Fatalf("metrics: residentBytes=%d, want > 0", met.ResidentBytes())
	}
	if met.CompressedShards() != 3 {
		t.Fatalf("metrics: compressedShards=%d, want 3", met.CompressedShards())
	}

	search := func(c *Corpus, text string) []string {
		t.Helper()
		q, err := twig.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 5000})
		if err != nil {
			t.Fatal(err)
		}
		return hitKeys(res.Hits)
	}
	compare := func(a, b *Corpus, label string) {
		t.Helper()
		for _, text := range queries {
			wk, gk := search(a, text), search(b, text)
			if len(wk) == 0 {
				t.Fatalf("%s: %s returned no hits", label, text)
			}
			if fmt.Sprint(wk) != fmt.Sprint(gk) {
				t.Fatalf("%s: %s differs (%d vs %d hits)", label, text, len(wk), len(gk))
			}
		}
	}
	compare(raw, comp, "compressed vs raw")

	// Reopen from disk: the version-2 shard files are self-describing, so the
	// reloaded corpus runs compressed with no Config.Compress hint, and its
	// answers still match the raw corpus.
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Snapshot().Len() != 3 || re.Seq() != comp.Seq() {
		t.Fatalf("reopened: shards=%d seq=%d", re.Snapshot().Len(), re.Seq())
	}
	assertCompressed(re, "reopened corpus")
	compare(raw, re, "reopened vs raw")
}
