package corpus

import (
	"context"
	"fmt"
	"sort"

	"lotusx/internal/complete"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Completion across shards: every shard proposes candidates from its own
// DataGuide and tries, then the corpus merges them by summed weight.  A
// merged count sums the shards where the candidate surfaced; to keep the
// merged top k faithful to the whole-document ranking, each shard is asked
// for k×shards candidates (see mergeAskK) — a candidate would have to fall
// outside that widened cut on some shard for its merged count to run low.
// Fuzzy (edit-distance fallback) candidates only survive a merge that
// produced no exact-prefix candidates, matching the single-engine fallback
// rule.

// CompleteTags implements core.Backend.
func (c *Corpus) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	return c.mergeCandidates(ctx, k, func(be ShardBackend, sq *twig.Query, askK int) ([]complete.Candidate, error) {
		return be.CompleteTags(ctx, sq, anchor, axis, prefix, askK)
	}, q)
}

// CompleteValues implements core.Backend.
func (c *Corpus) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	return c.mergeCandidates(ctx, k, func(be ShardBackend, sq *twig.Query, askK int) ([]complete.Candidate, error) {
		return be.CompleteValues(ctx, sq, focus, prefix, askK)
	}, q)
}

// mergeAskKCap bounds the widened per-shard ask so a large k over a wide
// corpus cannot request an absurd candidate list from every shard.
const mergeAskKCap = 1 << 16

// mergeAskK widens the caller's k for the per-shard asks: a shard's top k
// is not the corpus's top k (a globally frequent candidate may be locally
// rare), so each shard is asked for k×shards candidates before the merge
// cuts back to k.
func mergeAskK(k, shards int) int {
	if k <= 0 || shards <= 1 {
		return k
	}
	askK := k * shards
	if askK/shards != k || askK > mergeAskKCap { // overflow or cap
		return mergeAskKCap
	}
	return askK
}

// forEachShard applies ask to every shard of the pinned snapshot under the
// same breaker discipline as the search fan-out: a quarantined shard is
// skipped (under failfast the request fails with its QuarantineError), a
// failed ask advances the shard's breaker and the merge degrades to the
// survivors, and when no shard answered the request fails — preferring the
// quarantine error when breakers caused it — never an empty success.  A
// context casualty with the caller's context dead is no verdict on a shard.
func (c *Corpus) forEachShard(ctx context.Context, snap *Snapshot, ask func(sh *shard) error) error {
	failfast := c.tuning.Policy == PolicyFailFast
	var (
		answered int
		lastErr  error
		quarErr  error
	)
	for _, sh := range snap.shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		name := sh.name
		if !c.health.allow(name) {
			qe := &QuarantineError{Shard: name, RetryAfter: c.health.retryIn(name)}
			if failfast {
				return qe
			}
			if quarErr == nil {
				quarErr = qe
			}
			continue
		}
		if err := ask(sh); err != nil {
			if isCtxErr(err) && ctx.Err() != nil {
				c.health.release(name)
				return err
			}
			c.health.failure(name, err)
			wrapped := error(&ShardError{Shard: name, Err: err})
			if failfast {
				return wrapped
			}
			lastErr = wrapped
			continue
		}
		c.health.success(name)
		answered++
	}
	if answered == 0 && len(snap.shards) > 0 {
		switch {
		case lastErr != nil:
			return fmt.Errorf("corpus: all %d shard(s) of %s failed: %w", len(snap.shards), c.name, lastErr)
		case quarErr != nil:
			return quarErr
		}
	}
	return nil
}

// mergeCandidates runs ask on every shard backend of the pinned snapshot
// (sequentially — completion is sub-millisecond per local shard, and remote
// backends answer their own k-widened ask in one round trip each) and merges
// by (Text, Kind) with summed counts.
func (c *Corpus) mergeCandidates(ctx context.Context, k int, ask func(ShardBackend, *twig.Query, int) ([]complete.Candidate, error), q *twig.Query) ([]complete.Candidate, error) {
	snap := c.Snapshot()
	sp, ctx := obs.Start(ctx, "complete:merge")
	sp.SetInt("shards", len(snap.shards))
	defer sp.End()
	askK := mergeAskK(k, len(snap.shards))
	type key struct {
		text string
		kind complete.Kind
	}
	acc := make(map[key]*complete.Candidate)
	err := c.forEachShard(ctx, snap, func(sh *shard) error {
		sq := q
		if sq != nil {
			sq = sq.Clone() // per-shard clone: Normalize mutates the tree
		}
		cands, err := ask(sh.be(), sq, askK)
		if err != nil {
			return err
		}
		for _, cand := range cands {
			kk := key{cand.Text, cand.Kind}
			if got := acc[kk]; got != nil {
				got.Count += cand.Count
				// Exact-prefix evidence from any shard outranks fuzzy.
				got.Fuzzy = got.Fuzzy && cand.Fuzzy
			} else {
				cc := cand
				acc[kk] = &cc
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	exactSeen := false
	for _, cand := range acc {
		if !cand.Fuzzy {
			exactSeen = true
			break
		}
	}
	out := make([]complete.Candidate, 0, len(acc))
	for _, cand := range acc {
		if cand.Fuzzy && exactSeen {
			continue // fuzzy fallback only when no shard had an exact match
		}
		out = append(out, *cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Text < out[j].Text
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ExplainTags implements core.Backend: per-shard occurrences merge by label
// path with summed counts, most frequent path first.
func (c *Corpus) ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error) {
	snap := c.Snapshot()
	acc := make(map[string]int)
	err := c.forEachShard(ctx, snap, func(sh *shard) error {
		sq := q
		if sq != nil {
			sq = sq.Clone()
		}
		occs, err := sh.be().ExplainTags(ctx, sq, anchor, axis, tag, 0)
		if err != nil {
			return err
		}
		for _, o := range occs {
			acc[o.Path] += o.Count
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]complete.Occurrence, 0, len(acc))
	for p, n := range acc {
		out = append(out, complete.Occurrence{Path: p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Path < out[j].Path
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, nil
}
