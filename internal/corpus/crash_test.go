package corpus

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/dataset"
	"lotusx/internal/faults"
	"lotusx/internal/index"
	"lotusx/internal/twig"
)

// persistedXMark writes a 4-shard XMark corpus to a temp dir and returns the
// dir and the manifest.
func persistedXMark(t *testing.T) (string, *manifest) {
	t.Helper()
	dir := t.TempDir()
	d, err := dataset.Build(dataset.XMark, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDocument("xmark", d, 4, Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("persisted %d shards, want 4", len(m.Shards))
	}
	return dir, m
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// quietConfig silences quarantine warnings in test output.
func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// TestStaleManifestTempSwept: a crash between writing MANIFEST.json.tmp* and
// the rename leaves the temp behind; the next successful publish sweeps it.
func TestStaleManifestTempSwept(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c := New("lib", Config{Dir: dir})
	if err := c.Add("bib", mustDoc(t, "bib", bibXML)); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, manifestName+".tmp1234567")
	if err := os.WriteFile(stale, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("bib2", mustDoc(t, "bib2", bibXML)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale manifest temp survived the publish: %v", err)
	}
	// The real manifest is intact and the corpus reopens.
	re, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Snapshot().Len() != 2 {
		t.Fatalf("reopened %d shards, want 2", re.Snapshot().Len())
	}
}

// TestOpenQuarantinesCorruptShard: one torn shard file of four is renamed
// *.quarantined and the corpus serves the other three.
func TestOpenQuarantinesCorruptShard(t *testing.T) {
	t.Parallel()
	dir, m := persistedXMark(t)
	victim := m.Shards[1]
	corruptFile(t, filepath.Join(dir, victim.File))

	c, err := Open(dir, quietConfig())
	if err != nil {
		t.Fatalf("Open must serve around one corrupt shard: %v", err)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("serving %d shards, want 3", got)
	}
	for _, name := range c.Snapshot().Names() {
		if name == victim.Name {
			t.Fatalf("quarantined shard %s still in the snapshot", name)
		}
	}
	// The damaged file moved out of the manifest namespace, evidence intact.
	if _, err := os.Stat(filepath.Join(dir, victim.File)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt file still under its live name: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, victim.File+quarantineSuffix)); err != nil {
		t.Fatalf("no quarantined copy: %v", err)
	}
	// The degradation is visible to readiness probes...
	if msg := c.Degraded(); msg == "" || !strings.Contains(msg, victim.Name) {
		t.Fatalf("Degraded() = %q, want the quarantined shard named", msg)
	}
	// ...but queries over the survivors are whole, not partial: the shard is
	// out of the fan-out entirely.
	q, err := twig.Parse("//name")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SearchHits(context.Background(), q, core.SearchOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("startup quarantine must not flag fan-outs partial")
	}
	if res.Shards != 3 {
		t.Fatalf("fan-out width %d, want 3", res.Shards)
	}
}

// TestOpenServesAroundMissingShardFile: a missing file (crash before the
// shard write, manual deletion) degrades the corpus the same way, with
// nothing to rename.
func TestOpenServesAroundMissingShardFile(t *testing.T) {
	t.Parallel()
	dir, m := persistedXMark(t)
	victim := m.Shards[2]
	if err := os.Remove(filepath.Join(dir, victim.File)); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, quietConfig())
	if err != nil {
		t.Fatalf("Open must serve around a missing shard file: %v", err)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("serving %d shards, want 3", got)
	}
	if _, err := os.Stat(filepath.Join(dir, victim.File+quarantineSuffix)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("a missing file has nothing to quarantine-rename")
	}
	if msg := c.Degraded(); !strings.Contains(msg, victim.Name) {
		t.Fatalf("Degraded() = %q, want the missing shard named", msg)
	}
}

// TestOpenQuarantinesShortRead: a truncated stream (the torn-write shape,
// injected without touching the file) quarantines exactly like on-disk
// corruption.
func TestOpenQuarantinesShortRead(t *testing.T) {
	t.Parallel()
	dir, m := persistedXMark(t)
	victim := m.Shards[0]
	reg := faults.New()
	reg.Enable(faults.Injection{Site: FaultShardOpen, Keys: []string{victim.File}, ShortRead: 64})

	cfg := quietConfig()
	cfg.Faults = reg
	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open must serve around a short read: %v", err)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("serving %d shards, want 3", got)
	}
	if n := reg.Fired(FaultShardOpen); n != 1 {
		t.Fatalf("short-read injection fired %d times, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, victim.File+quarantineSuffix)); err != nil {
		t.Fatalf("short-read shard not quarantined: %v", err)
	}
}

// TestOpenAllShardsCorruptFails: when nothing survives, Open refuses the
// corpus with the cause in the chain and leaves the files untouched — an
// all-corrupt directory is an operator problem, not a degradation.
func TestOpenAllShardsCorruptFails(t *testing.T) {
	t.Parallel()
	dir, m := persistedXMark(t)
	for _, ms := range m.Shards {
		corruptFile(t, filepath.Join(dir, ms.File))
	}
	_, err := Open(dir, quietConfig())
	if err == nil {
		t.Fatal("Open of an all-corrupt corpus must fail")
	}
	if !errors.Is(err, index.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt in the chain", err)
	}
	if !strings.Contains(err.Error(), "all") && !strings.Contains(err.Error(), "every") {
		t.Fatalf("error %q does not say every shard failed", err)
	}
	for _, ms := range m.Shards {
		if _, statErr := os.Stat(filepath.Join(dir, ms.File)); statErr != nil {
			t.Fatalf("refused Open must not rename files: %v", statErr)
		}
	}
}

// TestReopenAfterQuarantineIsStable: the quarantine rename means a second
// Open sees a manifest entry whose file is now missing — it must degrade the
// same way, not fail.
func TestReopenAfterQuarantineIsStable(t *testing.T) {
	t.Parallel()
	dir, m := persistedXMark(t)
	corruptFile(t, filepath.Join(dir, m.Shards[3].File))
	if _, err := Open(dir, quietConfig()); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, quietConfig())
	if err != nil {
		t.Fatalf("second Open after a quarantine must still serve: %v", err)
	}
	if got := c.Snapshot().Len(); got != 3 {
		t.Fatalf("second Open serves %d shards, want 3", got)
	}
}
