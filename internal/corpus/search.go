package corpus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/join"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Parallel twig fan-out and global merge.
//
// SearchHits pins one snapshot, clones the query per shard (twig evaluation
// mutates stack state keyed by node IDs; Clone yields an identical
// normalized tree, so per-shard answers speak the same ID space), and runs
// the per-shard searches on a bounded worker pool.  What a shard failure
// does depends on the corpus's shard policy:
//
//   - PolicyDegrade (default): the shard is marked failed — after one
//     transparent retry with a jittered backoff — and the merge proceeds
//     over the survivors; the result carries Partial plus the failed shard
//     names.  Only when every shard fails does the request error.
//   - PolicyFailFast: the first shard error cancels the shared context so
//     sibling evaluations stop mid-join (the twig algorithms poll the
//     context cooperatively) and the request fails with that error.
//
// Each evaluation attempt runs under a per-shard time budget (Tuning
// .ShardTimeout, or 4/5 of the remaining request deadline when unset), and
// each shard is gated by its circuit breaker (health.go): a quarantined
// shard is skipped — counted failed — without burning a worker on it.
//
// Per-shard results then merge into one globally ranked page: every exact
// answer outranks every rewrite answer (matching single-engine semantics),
// exacts order by score, rewrites by penalty then score, with shard/node as
// deterministic tie-breaks.  The paging contract (Total/Exact/nextOffset)
// is computed over surviving shards only, so it holds verbatim for partial
// answers.

// FaultShardSearch names the injection site at the head of every per-shard
// evaluation attempt; the key is the shard name.  A firing injection fails
// (or delays) the attempt as if the shard's engine had.
const FaultShardSearch = "corpus/shard-search"

// ErrShardQuarantined marks a shard skipped because its circuit breaker is
// open (see health.go); under the degrade policy it counts the shard among
// the failed without spending a worker on it.  Skips wrap it in a
// *QuarantineError carrying the cooldown remaining (see backend.go).
var ErrShardQuarantined = errors.New("shard quarantined by circuit breaker")

// SearchHits implements core.Backend over the pinned snapshot.
func (c *Corpus) SearchHits(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*core.HitResult, error) {
	start := time.Now()
	snap := c.Snapshot()
	if len(snap.shards) == 0 {
		return nil, fmt.Errorf("corpus: %s has no shards", c.name)
	}
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	// One canonicalization, shared with the single-engine path and the cache
	// key builder: see core.SearchOptions.Canonical.
	opts = opts.Canonical()
	// Every shard materializes the full global page prefix: the merged
	// page's contents can come from any single shard in the worst case.
	want := opts.K + opts.Offset

	fanSpan, fanCtx := obs.Start(ctx, "fanout")
	fanSpan.SetInt("shards", len(snap.shards))
	pages, failed, err := c.fanout(fanCtx, fanSpan, snap, q, opts, want)
	if err == nil && len(failed) > 0 {
		fanSpan.Set("partial", "true")
		fanSpan.Set("failedShards", strings.Join(failed, ","))
	}
	fanSpan.SetErr(err)
	fanSpan.End()
	if err != nil {
		return nil, err
	}
	fanoutDone := time.Now()

	mergeSpan := obs.StartLeaf(ctx, "merge")
	out := c.merge(pages, opts, want)
	mergeSpan.SetInt("hits", len(out.Hits))
	mergeSpan.End()
	out.Shards = len(snap.shards)
	out.Partial = len(failed) > 0
	out.FailedShards = failed
	out.Elapsed = time.Since(start)

	if c.met != nil {
		c.met.Searches.Add(1)
		if out.Partial {
			c.met.Partial.Add(1)
		}
		c.met.Fanout.Observe(fanoutDone.Sub(start))
		c.met.Merge.Observe(time.Since(fanoutDone))
	}
	return out, nil
}

// fanout evaluates q on every shard of snap with a pool of at most
// c.workers goroutines and returns the per-shard results plus the names of
// shards that failed (degrade policy; always empty under failfast, which
// errors instead).  fanSpan (nil when untraced) receives one child span per
// shard and, on a failfast cancellation, a cancelCause attribute naming the
// shard error that cancelled the siblings.
func (c *Corpus) fanout(ctx context.Context, fanSpan *obs.Span, snap *Snapshot, q *twig.Query, opts core.SearchOptions, want int) ([]*ShardPage, []string, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	failfast := c.tuning.Policy == PolicyFailFast

	shardOpts := opts
	shardOpts.K = want
	shardOpts.Offset = 0 // paging happens after the global merge

	n := len(snap.shards)
	workers := c.workers
	if workers > n {
		workers = n
	}

	results := make([]*ShardPage, n)
	errs := make([]error, n) // per-index: race-free without a lock
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) { // failfast only
		errOnce.Do(func() {
			firstErr = err
			// Record why the siblings are about to stop before cancelling, so
			// a traced request shows the cause alongside the cut-short spans.
			fanSpan.Set("cancelCause", err.Error())
			cancel() // stop sibling shard evaluations mid-join
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if fctx.Err() != nil {
					continue // drain after cancellation
				}
				sh := snap.shards[i]
				name := sh.name
				// One span and one always-on latency observation per shard:
				// the span feeds the per-request trace, the histogram feeds
				// GET /metrics whether or not anyone asked for a trace.
				ssp := fanSpan.Child("shard")
				ssp.Set("shard", name)
				if !c.health.allow(name) {
					err := error(&QuarantineError{Shard: name, RetryAfter: c.health.retryIn(name)})
					ssp.Set("skipped", "breaker-open")
					ssp.SetErr(err)
					ssp.End()
					errs[i] = err
					if failfast {
						fail(err)
					}
					continue
				}
				shardStart := time.Now()
				page, attempts, err := c.evalShard(fctx, ssp, sh, q, shardOpts)
				if c.met != nil {
					c.met.Shard(name).Observe(time.Since(shardStart))
				}
				if attempts > 1 {
					ssp.SetInt("attempts", attempts)
				}
				if err != nil {
					ssp.SetErr(err)
					ssp.End()
					errs[i] = &ShardError{Shard: name, Err: err}
					// A context casualty with the fan-out context already dead
					// is no verdict on the shard (a failfast sibling or the
					// caller cancelled it mid-join) — release any probe instead
					// of advancing the breaker.
					if isCtxErr(err) && fctx.Err() != nil {
						c.health.release(name)
					} else {
						c.health.failure(name, err)
					}
					if failfast {
						fail(errs[i])
					}
					continue
				}
				c.health.success(name)
				ssp.SetInt("hits", len(page.Answers))
				if len(page.PartialShards) > 0 {
					ssp.Set("partialShards", strings.Join(page.PartialShards, ","))
				}
				ssp.End()
				results[i] = page
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if failfast && firstErr != nil {
		return nil, nil, firstErr
	}
	// The caller's context may have died before (or while) workers touched
	// the shards; a degraded answer must never paper over that.
	if err := fctx.Err(); err != nil {
		fanSpan.Set("cancelCause", err.Error())
		return nil, nil, err
	}
	var failed []string
	var firstFail error
	for i := range errs {
		if errs[i] != nil {
			failed = append(failed, snap.shards[i].name)
			if firstFail == nil {
				firstFail = errs[i]
			}
		}
	}
	if c.met != nil && len(failed) > 0 {
		c.met.ShardFailures.Add(int64(len(failed)))
	}
	if len(failed) == n {
		// Nothing survived: a degraded answer needs at least one shard, so
		// this is an error, not an empty page.
		return nil, nil, fmt.Errorf("corpus: all %d shard(s) of %s failed: %w", n, c.name, firstFail)
	}
	// A remote shard server may itself have answered degraded; surface its
	// failed sub-shards (prefixed with the shard's name) so the router's
	// clients see exactly how partial the merged page is.
	for i, page := range results {
		if page == nil {
			continue
		}
		for _, sub := range page.PartialShards {
			failed = append(failed, snap.shards[i].name+"/"+sub)
		}
	}
	sort.Strings(failed)
	return results, failed, nil
}

// evalShard runs one shard's evaluation: up to two attempts (one transparent
// retry after a jittered backoff, so a transient failure never surfaces),
// each under the per-shard time budget, each preceded by the
// FaultShardSearch injection site.  Returns the shard's page and the attempt
// count.  The budget is resolved per attempt, so the retry of a
// deadline-derived budget only gets what actually remains of the request.
func (c *Corpus) evalShard(fctx context.Context, ssp *obs.Span, sh *shard, q *twig.Query, shardOpts core.SearchOptions) (*ShardPage, int, error) {
	be := sh.be()
	var lastErr error
	attempt := 1
	for ; attempt <= 2; attempt++ {
		budget := c.shardBudget(fctx)
		actx := fctx
		acancel := func() {}
		if budget > 0 {
			actx, acancel = context.WithTimeout(fctx, budget)
		}
		sctx := obs.ContextWith(actx, ssp)
		err := c.faults.Fire(sctx, FaultShardSearch, sh.name)
		var page *ShardPage
		if err == nil {
			page, err = be.SearchShard(sctx, q, shardOpts)
		}
		acancel()
		if err == nil {
			return page, attempt, nil
		}
		lastErr = err
		if fctx.Err() != nil {
			break // the fan-out itself is dying; retrying can't help
		}
		if attempt == 1 && !sleepJittered(fctx, retryBackoff) {
			break
		}
	}
	if attempt > 2 {
		attempt = 2
	}
	return nil, attempt, lastErr
}

// shardNetAllowance is the slice of the remaining request deadline reserved
// for everything a shard attempt is not: the merge, response encoding, and —
// for remote shards — the network hop back.  Deducting it from the per-hop
// budget keeps router retries and hedges from overrunning the caller.
const shardNetAllowance = 20 * time.Millisecond

// shardBudget resolves the per-attempt time budget.  A negative configured
// ShardTimeout disables budgets.  When the request carries a deadline, a
// budget is derived from what remains of it — 4/5 of the remainder, further
// capped at remainder-minus-allowance — and a configured positive
// ShardTimeout is clamped by that derivation, so a per-hop timeout can never
// promise a shard more time than the caller has left.
func (c *Corpus) shardBudget(ctx context.Context) time.Duration {
	t := c.tuning.ShardTimeout
	if t < 0 {
		return 0
	}
	var derived time.Duration
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			derived = rem * 4 / 5
			if a := rem - shardNetAllowance; a > 0 && a < derived {
				derived = a
			}
		}
	}
	switch {
	case t == 0:
		return derived
	case derived > 0 && derived < t:
		return derived
	default:
		return t
	}
}

// sleepJittered pauses for base/2 plus up to base of jitter (so concurrent
// retries against one struggling shard don't land in lockstep), returning
// false if ctx died first.
func sleepJittered(ctx context.Context, base time.Duration) bool {
	d := base/2 + time.Duration(rand.Int63n(int64(base)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// mergedAnswer pairs a per-shard answer with its origin for global ranking.
type mergedAnswer struct {
	shard int // index into the page slice (snapshot shard order)
	ans   ShardAnswer
}

// merge fuses per-shard pages into one globally ranked, paged HitResult,
// rendering only the surviving page (ShardAnswer.Render — lazy snippet
// materialization for local shards, wire replay for remote ones).  Failed
// shards have nil entries in pages and simply contribute nothing — the
// ranking and paging arithmetic is identical for whole and partial answers.
func (c *Corpus) merge(pages []*ShardPage, opts core.SearchOptions, want int) *core.HitResult {
	out := &core.HitResult{}
	var exacts, rewrites []mergedAnswer
	algo := ""
	for i, page := range pages {
		if page == nil {
			continue
		}
		out.RewritesTried += page.RewritesTried
		out.Stats.Add(page.Stats)
		switch algo {
		case "":
			algo = string(page.Algorithm)
		case string(page.Algorithm):
		default:
			algo = "mixed"
		}
		for j, a := range page.Answers {
			ma := mergedAnswer{shard: i, ans: a}
			if j < page.Exact {
				exacts = append(exacts, ma)
			} else {
				rewrites = append(rewrites, ma)
			}
		}
	}
	out.Algorithm = join.Algorithm(algo)

	// Exact answers: score descending; shard then node break ties so pages
	// are stable across identical snapshots.
	sort.SliceStable(exacts, func(i, j int) bool {
		a, b := exacts[i], exacts[j]
		if a.ans.Score != b.ans.Score {
			return a.ans.Score > b.ans.Score
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.ans.Node < b.ans.Node
	})
	// Rewrite answers rank below all exacts: penalty ascending, then score.
	sort.SliceStable(rewrites, func(i, j int) bool {
		a, b := rewrites[i], rewrites[j]
		if a.ans.Penalty != b.ans.Penalty {
			return a.ans.Penalty < b.ans.Penalty
		}
		if a.ans.Score != b.ans.Score {
			return a.ans.Score > b.ans.Score
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.ans.Node < b.ans.Node
	})

	merged := append(exacts, rewrites...)
	// Match single-engine paging: Total stops counting at want, so
	// Total == Offset+K keeps meaning "further pages may exist".
	if len(merged) > want {
		merged = merged[:want]
	}
	out.Total = len(merged)
	exactCount := len(exacts)
	if exactCount > want {
		exactCount = want
	}
	out.Exact = exactCount - opts.Offset
	if out.Exact < 0 {
		out.Exact = 0
	}
	if opts.Offset >= len(merged) {
		merged = nil
	} else {
		merged = merged[opts.Offset:]
	}

	snippetMax := opts.SnippetMax // already resolved by Canonical in SearchHits
	for _, ma := range merged {
		out.Hits = append(out.Hits, ma.ans.Render(snippetMax))
	}
	return out
}
