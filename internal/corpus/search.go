package corpus

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/join"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Parallel twig fan-out and global merge.
//
// SearchHits pins one snapshot, clones the query per shard (twig evaluation
// mutates stack state keyed by node IDs; Clone yields an identical
// normalized tree, so per-shard answers speak the same ID space), and runs
// the per-shard searches on a bounded worker pool.  The first shard error
// cancels the shared context so sibling evaluations stop mid-join (the
// twig algorithms poll the context cooperatively).  Per-shard results then
// merge into one globally ranked page: every exact answer outranks every
// rewrite answer (matching single-engine semantics), exacts order by score,
// rewrites by penalty then score, with shard/node as deterministic
// tie-breaks.

// shardResult is one worker's output, index-addressed so the merge is
// deterministic whatever the completion order.
type shardResult struct {
	res *core.SearchResult
	q   *twig.Query // the clone the shard evaluated (rewrites reference it)
}

// SearchHits implements core.Backend over the pinned snapshot.
func (c *Corpus) SearchHits(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*core.HitResult, error) {
	start := time.Now()
	snap := c.Snapshot()
	if len(snap.shards) == 0 {
		return nil, fmt.Errorf("corpus: %s has no shards", c.name)
	}
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}
	// Every shard materializes the full global page prefix: the merged
	// page's contents can come from any single shard in the worst case.
	want := opts.K + opts.Offset

	fanSpan, fanCtx := obs.Start(ctx, "fanout")
	fanSpan.SetInt("shards", len(snap.shards))
	results, err := c.fanout(fanCtx, fanSpan, snap, q, opts, want)
	fanSpan.SetErr(err)
	fanSpan.End()
	if err != nil {
		return nil, err
	}
	fanoutDone := time.Now()

	mergeSpan := obs.StartLeaf(ctx, "merge")
	out := c.merge(snap, q, results, opts, want)
	mergeSpan.SetInt("hits", len(out.Hits))
	mergeSpan.End()
	out.Shards = len(snap.shards)
	out.Elapsed = time.Since(start)

	if c.met != nil {
		c.met.Searches.Add(1)
		c.met.Fanout.Observe(fanoutDone.Sub(start))
		c.met.Merge.Observe(time.Since(fanoutDone))
	}
	return out, nil
}

// testSearchHook, when non-nil, runs at the start of every per-shard
// evaluation; a non-nil return fails the shard as if its engine had.  Tests
// use it to inject deterministic shard failures into a live fan-out.
var testSearchHook func(ctx context.Context, shard string) error

// fanout evaluates q on every shard of snap with a pool of at most
// c.workers goroutines.  The first error cancels the rest and is returned.
// fanSpan (nil when untraced) receives one child span per shard evaluated
// and, on failure, a cancelCause attribute naming the shard error that
// cancelled the siblings.
func (c *Corpus) fanout(ctx context.Context, fanSpan *obs.Span, snap *Snapshot, q *twig.Query, opts core.SearchOptions, want int) ([]shardResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	shardOpts := opts
	shardOpts.K = want
	shardOpts.Offset = 0 // paging happens after the global merge

	n := len(snap.shards)
	workers := c.workers
	if workers > n {
		workers = n
	}

	results := make([]shardResult, n)
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			// Record why the siblings are about to stop before cancelling, so
			// a traced request shows the cause alongside the cut-short spans.
			fanSpan.Set("cancelCause", err.Error())
			cancel() // stop sibling shard evaluations mid-join
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				name := snap.shards[i].name
				// One span and one always-on latency observation per shard:
				// the span feeds the per-request trace, the histogram feeds
				// GET /metrics whether or not anyone asked for a trace.
				ssp := fanSpan.Child("shard")
				ssp.Set("shard", name)
				sctx := obs.ContextWith(ctx, ssp)
				shardStart := time.Now()
				if hook := testSearchHook; hook != nil {
					if err := hook(sctx, name); err != nil {
						ssp.SetErr(err)
						ssp.End()
						fail(fmt.Errorf("corpus: shard %s: %w", name, err))
						continue
					}
				}
				// Each worker evaluates its own clone: Normalize assigns the
				// same preorder IDs to the same tree, so clones are
				// interchangeable with q for ID-based bookkeeping.
				sq := q.Clone()
				res, err := snap.shards[i].engine.SearchContext(sctx, sq, shardOpts)
				if c.met != nil {
					c.met.Shard(name).Observe(time.Since(shardStart))
				}
				if err != nil {
					ssp.SetErr(err)
					ssp.End()
					fail(fmt.Errorf("corpus: shard %s: %w", name, err))
					continue
				}
				ssp.SetInt("hits", len(res.Answers))
				ssp.End()
				results[i] = shardResult{res: res, q: sq}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context may have died before any worker touched a shard
	// (every job then drains without recording an error).
	if err := ctx.Err(); err != nil {
		fanSpan.Set("cancelCause", err.Error())
		return nil, err
	}
	return results, nil
}

// mergedAnswer pairs a per-shard answer with its origin for global ranking.
type mergedAnswer struct {
	shard int // index into snap.shards
	ans   core.Answer
}

// merge fuses per-shard results into one globally ranked, paged HitResult,
// rendering only the surviving page under the still-pinned snapshot.
func (c *Corpus) merge(snap *Snapshot, q *twig.Query, results []shardResult, opts core.SearchOptions, want int) *core.HitResult {
	out := &core.HitResult{}
	var exacts, rewrites []mergedAnswer
	algo := ""
	for i, sr := range results {
		if sr.res == nil {
			continue
		}
		out.RewritesTried += sr.res.RewritesTried
		out.Stats.Add(sr.res.Stats)
		switch algo {
		case "":
			algo = string(sr.res.Algorithm)
		case string(sr.res.Algorithm):
		default:
			algo = "mixed"
		}
		for j, a := range sr.res.Answers {
			ma := mergedAnswer{shard: i, ans: a}
			if j < sr.res.Exact {
				exacts = append(exacts, ma)
			} else {
				rewrites = append(rewrites, ma)
			}
		}
	}
	out.Algorithm = join.Algorithm(algo)

	// Exact answers: score descending; shard then node break ties so pages
	// are stable across identical snapshots.
	sort.SliceStable(exacts, func(i, j int) bool {
		a, b := exacts[i], exacts[j]
		if a.ans.Score != b.ans.Score {
			return a.ans.Score > b.ans.Score
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.ans.Node < b.ans.Node
	})
	// Rewrite answers rank below all exacts: penalty ascending, then score.
	sort.SliceStable(rewrites, func(i, j int) bool {
		a, b := rewrites[i], rewrites[j]
		ap, bp := a.ans.Rewrite.Penalty, b.ans.Rewrite.Penalty
		if ap != bp {
			return ap < bp
		}
		if a.ans.Score != b.ans.Score {
			return a.ans.Score > b.ans.Score
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.ans.Node < b.ans.Node
	})

	merged := append(exacts, rewrites...)
	// Match single-engine paging: Total stops counting at want, so
	// Total == Offset+K keeps meaning "further pages may exist".
	if len(merged) > want {
		merged = merged[:want]
	}
	out.Total = len(merged)
	exactCount := len(exacts)
	if exactCount > want {
		exactCount = want
	}
	out.Exact = exactCount - opts.Offset
	if out.Exact < 0 {
		out.Exact = 0
	}
	if opts.Offset >= len(merged) {
		merged = nil
	} else {
		merged = merged[opts.Offset:]
	}

	snippetMax := opts.SnippetMax
	if snippetMax == 0 {
		snippetMax = 400
	}
	for _, ma := range merged {
		sh := snap.shards[ma.shard]
		// Render against the clone the shard evaluated — its rewrite
		// pointers belong to that clone's ID space.
		out.Hits = append(out.Hits, sh.engine.RenderHit(sh.name, results[ma.shard].q, ma.ans, snippetMax))
	}
	return out
}
