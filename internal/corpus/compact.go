package corpus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/obs"
)

// Delta compaction: async ingest (internal/ingest + the admin shard routes)
// lands small delta shards, each carrying a handful of records under its own
// root copy.  Every delta widens the fan-out — one more engine per query —
// so a background compactor periodically folds them into one compacted base
// shard: it pins a snapshot, renders the pinned deltas' records under one
// fresh root, indexes the merged document (all off the read path), and
// publishes a swap that removes exactly those deltas and adds the compacted
// shard.  Readers see the old shard set or the new one, never both halves.
//
// Deltas that landed after the pin simply stay for the next round, and a
// pinned delta removed mid-build aborts the swap with ErrCompactConflict —
// compaction never overwrites a concurrent mutation, it just retries later.

// FaultCompact names the injection site at the head of CompactDeltas; the
// key is the corpus name.  A firing injection fails the compaction as if the
// merge had — the deterministic path to a failed compaction job.
const FaultCompact = "corpus/compact"

// ErrCompactConflict reports that a concurrent mutation removed one of the
// pinned delta shards between build and publish; the compaction gave way and
// should be retried against the new snapshot.
var ErrCompactConflict = errors.New("corpus: delta set changed during compaction")

// compactedPrefix names compacted base shards: "compacted/<seq>-<i>" where
// seq is the pinned snapshot's sequence, so names are unique across rounds
// (a pinned sequence compacts successfully at most once).
const compactedPrefix = "compacted"

// CompactionResult reports one compaction round.
type CompactionResult struct {
	// Merged counts the delta shards folded away.
	Merged int
	// Into names the compacted shards produced (one per distinct root tag).
	Into []string
	// Nodes is the total node count of the compacted shards.
	Nodes int
	// Seq is the snapshot sequence the compaction published.
	Seq uint64
	// Elapsed is the wall-clock of the whole round (build + publish).
	Elapsed time.Duration
}

// CompactDeltas merges up to maxBatch delta shards (0 or negative means all)
// into compacted base shards and publishes the swap.  Deltas are grouped by
// their document's root tag — heterogeneous datasets compact into one base
// shard per root shape.  With no deltas it returns (nil, nil): nothing to do
// is not an error.  The merge and index build run before the mutation lock
// is taken, so queries and other writers never wait on compaction work.
func (c *Corpus) CompactDeltas(ctx context.Context, maxBatch int) (*CompactionResult, error) {
	start := time.Now()
	if err := c.faults.Fire(ctx, FaultCompact, c.name); err != nil {
		return nil, fmt.Errorf("corpus: compacting %s: %w", c.name, err)
	}
	snap := c.Snapshot()
	var deltas []*shard
	for _, sh := range snap.shards {
		if sh.delta {
			deltas = append(deltas, sh)
		}
		if maxBatch > 0 && len(deltas) == maxBatch {
			break
		}
	}
	if len(deltas) == 0 {
		return nil, nil
	}

	sp, ctx := obs.Start(ctx, "compact:build")
	sp.SetInt("deltas", len(deltas))
	fresh, err := buildCompacted(c.name, snap.seq, deltas, c.compress)
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &CompactionResult{Merged: len(deltas)}
	for _, sh := range fresh {
		res.Into = append(res.Into, sh.name)
		res.Nodes += sh.engine.Document().Len()
	}

	pub := obs.StartLeaf(ctx, "compact:publish")
	err = c.publish(func(shards []*shard) ([]*shard, error) {
		// The publish lock serializes us against every other mutation; verify
		// the pinned deltas are all still live (same shard values, not merely
		// same names) before swapping them out.
		live := make(map[*shard]bool, len(shards))
		for _, sh := range shards {
			live[sh] = true
		}
		for _, d := range deltas {
			if !live[d] {
				return nil, ErrCompactConflict
			}
		}
		drop := make(map[*shard]bool, len(deltas))
		for _, d := range deltas {
			drop[d] = true
		}
		next := make([]*shard, 0, len(shards)-len(deltas)+len(fresh))
		for _, sh := range shards {
			if !drop[sh] {
				next = append(next, sh)
			}
		}
		return append(next, fresh...), nil
	})
	pub.SetErr(err)
	pub.End()
	if err != nil {
		return nil, err
	}
	res.Seq = c.Seq()
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildCompacted renders each root-tag group of deltas into one merged
// document and indexes it — the expensive half of compaction, done with no
// locks held.  Groups preserve delta order, and the compacted shard carries
// the root attributes of its group's first delta (replicated identically
// across a split group's parts, so first-wins loses nothing).
func buildCompacted(corpusName string, pinSeq uint64, deltas []*shard, compress bool) ([]*shard, error) {
	type group struct {
		rootTag string
		members []*shard
	}
	var groups []*group
	byTag := make(map[string]*group)
	for _, sh := range deltas {
		tag := sh.engine.Document().TagName(sh.engine.Document().Root())
		g := byTag[tag]
		if g == nil {
			g = &group{rootTag: tag}
			byTag[tag] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, sh)
	}

	out := make([]*shard, 0, len(groups))
	for gi, g := range groups {
		merged, err := mergeDeltaDocs(fmt.Sprintf("%s-compacted-%06d-%d", corpusName, pinSeq, gi), g.members)
		if err != nil {
			return nil, err
		}
		out = append(out, &shard{
			name:   fmt.Sprintf("%s/%06d-%d", compactedPrefix, pinSeq, gi),
			engine: core.FromDocumentOpts(merged, core.BuildOptions{Compress: compress}),
		})
	}
	return out, nil
}

// mergeDeltaDocs concatenates the members' records under one copy of the
// shared root element and re-parses the fragment — the same re-wrap scheme
// SplitDocument uses, run in reverse.
func mergeDeltaDocs(name string, members []*shard) (*doc.Document, error) {
	var b strings.Builder
	first := members[0].engine.Document()
	root := first.Root()
	b.WriteByte('<')
	b.WriteString(first.TagName(root))
	for a := first.FirstChild(root); a != doc.None; a = first.NextSibling(a) {
		if first.Kind(a) != doc.Attribute {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(first.TagName(a)[1:]) // strip '@'
		b.WriteString(`="`)
		xmlEscaper.WriteString(&b, first.Value(a))
		b.WriteByte('"')
	}
	b.WriteString(">\n")
	for _, m := range members {
		d := m.engine.Document()
		r := d.Root()
		if d.Value(r) != "" {
			xmlEscaper.WriteString(&b, d.Value(r))
			b.WriteByte('\n')
		}
		for c := d.FirstChild(r); c != doc.None; c = d.NextSibling(c) {
			if d.Kind(c) == doc.Attribute {
				continue
			}
			if err := d.WriteXML(&b, c); err != nil {
				return nil, fmt.Errorf("corpus: rendering delta %s: %w", m.name, err)
			}
		}
	}
	b.WriteString("</")
	b.WriteString(first.TagName(root))
	b.WriteString(">\n")

	merged, err := doc.FromReader(name, strings.NewReader(b.String()))
	if err != nil {
		return nil, fmt.Errorf("corpus: re-parsing compacted shard %s: %w", name, err)
	}
	return merged, nil
}
