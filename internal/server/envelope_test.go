package server

import (
	"net/http"

	"lotusx/internal/metrics"
	"strings"
	"testing"
)

// TestAdminErrorEnvelopes is the satellite contract check: every admin-route
// failure mode answers the uniform v1 envelope — {"error": {code, message,
// requestId}} — with the code matching the status class.
func TestAdminErrorEnvelopes(t *testing.T) {
	const smallXML = "<dblp><article><title>A</title></article></dblp>"
	ts, _ := adminServer(t, Config{MaxIngestBytes: 64})

	if code := do(t, "POST", ts.URL+"/api/v1/datasets/seeded?sync=1", smallXML, nil); code != http.StatusCreated {
		t.Fatalf("seed dataset: status %d", code)
	}

	big := strings.Repeat("x", 65)
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		status   int
		code     string
		allow    bool // a 405 must carry the Allow header
		contains string
	}{
		{name: "create bad name", method: "POST", path: "/api/v1/datasets/.hidden?sync=1", body: smallXML,
			status: http.StatusBadRequest, code: "bad_query", contains: "dataset name"},
		{name: "create bad shards", method: "POST", path: "/api/v1/datasets/x?shards=0&sync=1", body: smallXML,
			status: http.StatusBadRequest, code: "bad_query"},
		{name: "create bad xml sync", method: "POST", path: "/api/v1/datasets/x?sync=1", body: "<not-xml",
			status: http.StatusBadRequest, code: "bad_query"},
		{name: "shard add bad name", method: "POST", path: "/api/v1/datasets/seeded/shards/..%2Fevil", body: "<a/>",
			status: http.StatusBadRequest, code: "bad_query"},

		{name: "delete missing dataset", method: "DELETE", path: "/api/v1/datasets/missing",
			status: http.StatusNotFound, code: "not_found"},
		{name: "reindex missing dataset", method: "POST", path: "/api/v1/datasets/missing/reindex",
			status: http.StatusNotFound, code: "not_found"},
		{name: "compact missing dataset", method: "POST", path: "/api/v1/datasets/missing/compact",
			status: http.StatusNotFound, code: "not_found"},
		{name: "shard delete missing", method: "DELETE", path: "/api/v1/datasets/seeded/shards/nope",
			status: http.StatusNotFound, code: "not_found"},
		{name: "unknown job", method: "GET", path: "/api/v1/jobs/j424242",
			status: http.StatusNotFound, code: "not_found"},

		{name: "jobs wrong method", method: "DELETE", path: "/api/v1/jobs",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: true},
		{name: "dataset wrong method", method: "PATCH", path: "/api/v1/datasets/seeded",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: true},
		{name: "compact wrong method", method: "GET", path: "/api/v1/datasets/seeded/compact",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: true},
		{name: "query wrong method", method: "DELETE", path: "/api/v1/query",
			status: http.StatusMethodNotAllowed, code: "method_not_allowed", allow: true},

		{name: "create too large sync", method: "POST", path: "/api/v1/datasets/x?sync=1", body: big,
			status: http.StatusRequestEntityTooLarge, code: "too_large"},
		{name: "create too large async", method: "POST", path: "/api/v1/datasets/x", body: big,
			status: http.StatusRequestEntityTooLarge, code: "too_large"},
		{name: "shard add too large", method: "POST", path: "/api/v1/datasets/seeded/shards/x?sync=1", body: big,
			status: http.StatusRequestEntityTooLarge, code: "too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env errEnvelope
			res, code := doFull(t, tc.method, ts.URL+tc.path, tc.body, &env)
			if code != tc.status {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.status)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
			if env.Error.RequestID == "" {
				t.Error("missing requestId in error envelope")
			}
			if tc.contains != "" && !strings.Contains(env.Error.Message, tc.contains) {
				t.Errorf("message %q does not mention %q", env.Error.Message, tc.contains)
			}
			if tc.allow {
				if allow := res.Header.Get("Allow"); allow == "" {
					t.Error("405 without Allow header")
				}
			}
		})
	}
}

// TestLegacyAliasHeaders: the un-versioned aliases answer identically but
// carry the RFC 8594 deprecation trio, and flipping DisableLegacyRoutes
// turns them into 410 Gone envelopes.
func TestLegacyAliasHeaders(t *testing.T) {
	reg := metrics.New()
	ts, _ := adminServer(t, Config{Metrics: reg})

	res, code := doFull(t, "GET", ts.URL+"/api/stats", "", nil)
	if code != http.StatusOK {
		t.Fatalf("legacy stats: status %d", code)
	}
	if res.Header.Get("Sunset") != sunsetDate {
		t.Fatalf("Sunset header %q", res.Header.Get("Sunset"))
	}
	if res.Header.Get("Deprecation") == "" {
		t.Fatal("legacy alias without Deprecation header")
	}
	if link := res.Header.Get("Link"); !strings.Contains(link, "/api/v1/stats") {
		t.Fatalf("Link header %q does not point at the v1 route", link)
	}
	// The v1 twin carries none of them.
	res, code = doFull(t, "GET", ts.URL+"/api/v1/stats", "", nil)
	if code != http.StatusOK || res.Header.Get("Sunset") != "" || res.Header.Get("Deprecation") != "" {
		t.Fatalf("v1 route leaked deprecation headers (status %d)", code)
	}
	if n := reg.LegacyHits(); n != 1 {
		t.Fatalf("lotusx_http_legacy_requests_total = %d, want 1", n)
	}

	off, _ := adminServer(t, Config{DisableLegacyRoutes: true})
	var env errEnvelope
	res, code = doFull(t, "GET", off.URL+"/api/stats", "", &env)
	if code != http.StatusGone || env.Error.Code != "gone" {
		t.Fatalf("disabled legacy route: status %d code %q, want 410 gone", code, env.Error.Code)
	}
	if res.Header.Get("Sunset") != sunsetDate {
		t.Fatal("410 legacy answer dropped the Sunset header")
	}
	if code := getJSON(t, off.URL+"/api/v1/stats", &struct{}{}); code != http.StatusOK {
		t.Fatalf("v1 route broken with legacy disabled: %d", code)
	}
}
