package server

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotusx/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_contract.golden from the live route table")

// TestAPIContract diffs the served API surface — route table + envelope
// shapes — against the checked-in golden.  A mismatch means the HTTP
// contract changed: if intentional, regenerate with -update and let the
// golden's diff document the change in review.
func TestAPIContract(t *testing.T) {
	// Admin on so the full surface (jobs API included) is in the table.
	s := NewCatalogConfig(core.NewCatalog(), Config{EnableAdmin: true})
	t.Cleanup(s.Close)
	got := s.ContractDump()

	path := filepath.Join("testdata", "api_contract.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("API contract drifted from %s.\nIf the change is intentional, regenerate with:\n  go test ./internal/server/ -run TestAPIContract -update\n\n%s", path, contractDiff(string(want), got))
	}
}

// contractDiff renders a minimal line diff, enough to see what moved.
func contractDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	inWant := make(map[string]bool, len(wl))
	for _, l := range wl {
		inWant[l] = true
	}
	inGot := make(map[string]bool, len(gl))
	for _, l := range gl {
		inGot[l] = true
	}
	var b strings.Builder
	for _, l := range wl {
		if !inGot[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range gl {
		if !inWant[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
