package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"

	"log/slog"
)

// shardedServer builds a server over bibXML split into two shards — the
// setup whose traces exercise the full pipeline: parse, fan-out, per-shard
// joins, merge.
func shardedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	d, err := doc.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	c, err := corpus.FromDocument("bib", d, 2, corpus.Config{Metrics: cfg.Metrics.Corpus("bib")})
	if err != nil {
		t.Fatal(err)
	}
	catalog := core.NewCatalog()
	catalog.AddBackend("bib", c)
	srv := NewCatalogConfig(catalog, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// traceNode mirrors obs.Node for decoding the trace out of the v1 envelope.
type traceNode struct {
	Name       string            `json:"name"`
	DurationMS float64           `json:"durationMs"`
	Attrs      map[string]string `json:"attrs"`
	Children   []traceNode       `json:"children"`
}

func countSpans(n *traceNode, counts map[string]int) {
	name := n.Name
	if strings.HasPrefix(name, "join:") {
		name = "join"
	}
	counts[name]++
	for i := range n.Children {
		countSpans(&n.Children[i], counts)
	}
}

// TestQueryDebugTrace opts a request into tracing and checks the span tree
// in the response: the parse, fan-out, one span per shard, and the merge are
// all there with sane durations — and that an untraced request pays nothing
// and carries no tree.
func TestQueryDebugTrace(t *testing.T) {
	_, ts := shardedServer(t, Config{})

	var resp struct {
		Answers []any      `json:"answers"`
		Trace   *traceNode `json:"trace"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?debug=trace", `{"query": "//article/author"}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers")
	}
	if resp.Trace == nil {
		t.Fatal("?debug=trace returned no trace")
	}
	if resp.Trace.Name != "query" {
		t.Fatalf("root span = %q, want query", resp.Trace.Name)
	}
	counts := map[string]int{}
	countSpans(resp.Trace, counts)
	if counts["parse"] != 1 || counts["fanout"] != 1 || counts["merge"] != 1 {
		t.Fatalf("span counts = %v, want one parse/fanout/merge", counts)
	}
	if counts["shard"] != 2 {
		t.Fatalf("span counts = %v, want one span per shard", counts)
	}
	if counts["join"] < 2 || counts["rank"] < 2 {
		t.Fatalf("span counts = %v, want per-shard join and rank", counts)
	}
	if resp.Trace.DurationMS <= 0 {
		t.Fatalf("root duration = %v", resp.Trace.DurationMS)
	}

	// The header spelling works too.
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/query", strings.NewReader(`{"query": "//article/author"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Lotusx-Trace", "1")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var hdr struct {
		Trace *traceNode `json:"trace"`
	}
	if err := json.NewDecoder(res.Body).Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Trace == nil {
		t.Fatal("X-Lotusx-Trace: 1 returned no trace")
	}

	// Without opting in there is no trace key at all.
	var raw map[string]json.RawMessage
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author"}`, &raw); code != 200 {
		t.Fatalf("status %d", code)
	}
	if _, ok := raw["trace"]; ok {
		t.Fatal("untraced request leaked a trace")
	}
}

// TestCompleteDebugTrace checks the completion endpoint's trace: parse plus
// the per-shard completion scans and the candidate merge.
func TestCompleteDebugTrace(t *testing.T) {
	_, ts := shardedServer(t, Config{})
	var resp struct {
		Candidates []any      `json:"candidates"`
		Trace      *traceNode `json:"trace"`
	}
	url := ts.URL + "/api/v1/complete?kind=tag&path=%2F%2Farticle&prefix=a&debug=trace"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("no trace on completion")
	}
	counts := map[string]int{}
	countSpans(resp.Trace, counts)
	if counts["parse"] != 1 || counts["complete:merge"] != 1 {
		t.Fatalf("span counts = %v, want parse and complete:merge", counts)
	}
	if counts["complete:tags"] < 2 {
		t.Fatalf("span counts = %v, want a completion scan per shard", counts)
	}
}

// TestPrometheusExposition scrapes GET /metrics over HTTP after traffic and
// checks the text exposition: content type, the endpoint counters, the
// always-on stage histograms (folded from traces), and the per-shard corpus
// latency series.
func TestPrometheusExposition(t *testing.T) {
	// SlowQuery arms always-on tracing (and stage folding) without ever
	// firing the log.
	_, ts := shardedServer(t, Config{SlowQuery: time.Hour})

	var out struct{ Answers []any }
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author"}`, &out); code != 200 {
		t.Fatalf("query status %d", code)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the Prometheus text format", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`lotusx_endpoint_requests_total{endpoint="query"} 1`,
		`# TYPE lotusx_stage_latency_seconds histogram`,
		`lotusx_stage_latency_seconds_count{stage="parse"} 1`,
		`lotusx_stage_latency_seconds_count{stage="fanout"} 1`,
		`lotusx_stage_latency_seconds_count{stage="merge"} 1`,
		`lotusx_corpus_shard_latency_seconds_count{corpus="bib",shard="bib/000"} 1`,
		`lotusx_corpus_shard_latency_seconds_count{corpus="bib",shard="bib/001"} 1`,
		`lotusx_corpus_shards{corpus="bib"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestReadyzFlips wires the server's aggregate readiness into the debug mux
// the way cmd/lotusx-server does and watches /readyz flip: not ready while a
// catalog backend has no data, ready once it does.
func TestReadyzFlips(t *testing.T) {
	catalog := core.NewCatalog()
	empty := corpus.New("late", corpus.Config{})
	catalog.AddBackend("late", empty)
	srv := NewCatalogConfig(catalog, Config{})

	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "no shards") {
		t.Fatalf("Ready() = %v, want no-shards error", err)
	}

	dbg := httptest.NewServer(obs.DebugMux(obs.DebugOptions{Ready: srv.Ready}))
	t.Cleanup(dbg.Close)

	get := func(path string) int {
		res, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if code := get("/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code := get("/readyz"); code != 503 {
		t.Fatalf("readyz before data = %d, want 503", code)
	}

	d, err := doc.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Add("s1", d); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != 200 {
		t.Fatalf("readyz after ingest = %d, want 200", code)
	}
	if err := srv.Ready(); err != nil {
		t.Fatalf("Ready() after ingest = %v", err)
	}
}

// syncWriter is a goroutine-safe log sink: the server logs from handler
// goroutines while the test polls the contents.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// waitForLog polls the sink until the wanted substring shows up — the log
// line lands after the response is written, so the client can observe the
// response first.
func waitForLog(t *testing.T, w *syncWriter, want string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := w.String(); strings.Contains(s, want) {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("log never contained %q; log:\n%s", want, w.String())
	return ""
}

// TestSlowQueryLogSanitized arms a threshold every query exceeds and checks
// the WARN line: present, query shape preserved, predicate operand redacted,
// with a per-stage breakdown and the request ID for joining.
func TestSlowQueryLogSanitized(t *testing.T) {
	sink := &syncWriter{}
	_, ts := shardedServer(t, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(sink, nil)),
	})

	var out struct{ Answers []any }
	body := `{"query": "//article[author contains \"Jiaheng\"]/title"}`
	if code := postJSON(t, ts.URL+"/api/v1/query", body, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	logs := waitForLog(t, sink, "slow query")
	line := ""
	for _, l := range strings.Split(logs, "\n") {
		if strings.Contains(l, "slow query") {
			line = l
			break
		}
	}
	if strings.Contains(line, "Jiaheng") {
		t.Fatalf("slow-query log leaked the predicate operand: %s", line)
	}
	for _, want := range []string{"author", "…", "durationMs=", "requestId=", "trace="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %s", want, line)
		}
	}
	// The breakdown names the pipeline stages.
	for _, stage := range []string{"fanout", "merge"} {
		if !strings.Contains(line, stage) {
			t.Errorf("slow-query breakdown missing %q: %s", stage, line)
		}
	}
}

// TestRequestLogAnnotations checks that facts only the handler knows — the
// resolved algorithm, the result count — reach the access log line, joinable
// with the rest of the request's telemetry via the request ID.
func TestRequestLogAnnotations(t *testing.T) {
	sink := &syncWriter{}
	_, ts := shardedServer(t, Config{
		Logger: slog.New(slog.NewTextHandler(sink, nil)),
	})

	var out struct{ Answers []any }
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author"}`, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	logs := waitForLog(t, sink, "algorithm=")
	line := ""
	for _, l := range strings.Split(logs, "\n") {
		if strings.Contains(l, "path=/api/v1/query") {
			line = l
			break
		}
	}
	for _, want := range []string{"msg=request", "algorithm=twigstack", "results=2", "shards=2", "requestId="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}

	// Completion annotates its candidate count the same way.
	var cr struct{ Candidates []any }
	if code := getJSON(t, ts.URL+"/api/v1/complete?kind=tag&path=%2F%2Farticle&prefix=a", &cr); code != 200 {
		t.Fatalf("complete status %d", code)
	}
	logs = waitForLog(t, sink, "candidates=")
	if !strings.Contains(logs, "path=/api/v1/complete") {
		t.Errorf("no access log line for completion:\n%s", logs)
	}
}
