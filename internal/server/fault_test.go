package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
)

var errShardDown = errors.New("injected shard failure")

// faultBibXML has four records so a 4-way split is one record per shard:
// bib/000=a1, bib/001=a2, bib/002=a3, bib/003=c1.
const faultBibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <title>LotusX Demo</title>
    <year>2012</year>
  </article>
  <article key="a3">
    <author>Wei Wang</author>
    <title>Structural Joins</title>
    <year>2002</year>
  </article>
  <inproceedings key="c1">
    <author>Jiaheng Lu</author>
    <title>TJFast</title>
    <year>2005</year>
  </inproceedings>
</dblp>`

// faultServer serves a 4-shard bib corpus (one record per shard) with an
// armed fault registry, admin routes on.
func faultServer(t *testing.T, tuning corpus.Tuning) (*httptest.Server, *Server, *faults.Registry, *metrics.Registry) {
	t.Helper()
	reg := faults.New()
	mreg := metrics.New()
	d, err := doc.FromReader("bib", strings.NewReader(faultBibXML))
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.FromDocument("bib", d, 4, corpus.Config{
		Faults:  reg,
		Metrics: mreg.Corpus("bib"),
		Tuning:  tuning,
	})
	if err != nil {
		t.Fatal(err)
	}
	catalog := core.NewCatalog()
	catalog.AddBackend("bib", c)
	srv := NewCatalogConfig(catalog, Config{Metrics: mreg, EnableAdmin: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, reg, mreg
}

// TestQueryDegradedAnswersPartial is the acceptance scenario: one of four
// shards fault-injected, the API answers 200 with partial:true, the failed
// shard named, and correctly ranked answers from the survivors.
func TestQueryDegradedAnswersPartial(t *testing.T) {
	ts, _, reg, _ := faultServer(t, corpus.Tuning{BreakerThreshold: -1})
	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{"bib/002"}, Err: errShardDown})

	var resp struct {
		Answers []struct {
			Path    string  `json:"path"`
			Score   float64 `json:"score"`
			Shard   string  `json:"shard"`
			Snippet string  `json:"snippet"`
		} `json:"answers"`
		Total        int      `json:"total"`
		Shards       int      `json:"shards"`
		Partial      bool     `json:"partial"`
		FailedShards []string `json:"failedShards"`
	}
	code := postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("degraded query: status %d, want 200", code)
	}
	if !resp.Partial {
		t.Fatal("partial flag missing from the envelope")
	}
	if len(resp.FailedShards) != 1 || resp.FailedShards[0] != "bib/002" {
		t.Fatalf("failedShards = %v, want [bib/002]", resp.FailedShards)
	}
	if resp.Shards != 4 {
		t.Fatalf("shards = %d, want the full fan-out width 4", resp.Shards)
	}
	// bib/002 holds a3 ("Structural Joins"); the two other article titles
	// survive, ranked and attributed.
	if len(resp.Answers) != 2 || resp.Total != 2 {
		t.Fatalf("answers = %d (total %d), want the 2 surviving titles", len(resp.Answers), resp.Total)
	}
	for i, a := range resp.Answers {
		if a.Shard == "bib/002" {
			t.Fatalf("answer %d came from the failed shard", i)
		}
		if strings.Contains(a.Snippet, "Structural Joins") {
			t.Fatalf("answer %d leaked the failed shard's record: %q", i, a.Snippet)
		}
		if i > 0 && resp.Answers[i-1].Score < a.Score {
			t.Fatalf("answers not ranked: score[%d]=%v < score[%d]=%v",
				i-1, resp.Answers[i-1].Score, i, a.Score)
		}
	}
}

// TestQueryFailFastSurfacesShardError: the same single-shard failure under
// failfast fails the whole request with the shard named in the envelope.
func TestQueryFailFastSurfacesShardError(t *testing.T) {
	ts, _, reg, _ := faultServer(t, corpus.Tuning{Policy: corpus.PolicyFailFast, BreakerThreshold: -1})
	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{"bib/002"}, Err: errShardDown})

	var resp struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	code := postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &resp)
	if code == http.StatusOK {
		t.Fatal("failfast answered 200 for a failed fan-out")
	}
	if resp.Error.Code == "" {
		t.Fatal("no error envelope")
	}
	if !strings.Contains(resp.Error.Message, "bib/002") {
		t.Fatalf("error %q does not name the failed shard", resp.Error.Message)
	}
}

// TestShardHealthAdminRoutes: the breaker is observable and resettable over
// the admin API (split-group shard names ride in one escaped path segment).
func TestShardHealthAdminRoutes(t *testing.T) {
	ts, _, reg, _ := faultServer(t, corpus.Tuning{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{"bib/001"}, Err: errShardDown})

	var q struct {
		Partial bool `json:"partial"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &q); code != http.StatusOK {
		t.Fatalf("tripping query: status %d", code)
	}
	if !q.Partial {
		t.Fatal("tripping query not partial")
	}

	healthURL := ts.URL + "/api/v1/datasets/bib/shards/bib%2F001/health"
	var hs struct {
		Dataset string `json:"dataset"`
		Shard   string `json:"shard"`
		Health  struct {
			State     string `json:"state"`
			Trips     int64  `json:"trips"`
			LastError string `json:"lastError"`
		} `json:"health"`
		Reset bool `json:"reset"`
	}
	if code := getJSON(t, healthURL, &hs); code != http.StatusOK {
		t.Fatalf("GET shard health: status %d", code)
	}
	if hs.Shard != "bib/001" || hs.Health.State != "open" || hs.Health.Trips != 1 {
		t.Fatalf("GET shard health: %+v", hs)
	}
	if !strings.Contains(hs.Health.LastError, "injected") {
		t.Fatalf("lastError %q does not carry the cause", hs.Health.LastError)
	}

	// Unknown shards 404 with the envelope.
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/datasets/bib/shards/nope/health", &e); code != http.StatusNotFound {
		t.Fatalf("GET unknown shard health: status %d", code)
	}

	// POST resets the breaker; with the fault disarmed the shard serves again.
	reg.Reset()
	hs = struct {
		Dataset string `json:"dataset"`
		Shard   string `json:"shard"`
		Health  struct {
			State     string `json:"state"`
			Trips     int64  `json:"trips"`
			LastError string `json:"lastError"`
		} `json:"health"`
		Reset bool `json:"reset"`
	}{}
	if code := postJSON(t, healthURL, "", &hs); code != http.StatusOK {
		t.Fatalf("POST shard health reset: status %d", code)
	}
	if !hs.Reset || hs.Health.State != "closed" {
		t.Fatalf("after reset: %+v", hs)
	}
	// Fresh struct: partial is omitempty, so a stale true would survive a
	// re-decode.
	var q2 struct {
		Partial      bool     `json:"partial"`
		FailedShards []string `json:"failedShards"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &q2); code != http.StatusOK {
		t.Fatalf("post-reset query: status %d", code)
	}
	if q2.Partial {
		t.Fatalf("reset shard still degraded: failed %v", q2.FailedShards)
	}
}

// TestMetricsExposeShardHealth: breaker states and fault-tolerance counters
// surface in /api/v1/metrics.
func TestMetricsExposeShardHealth(t *testing.T) {
	ts, _, reg, _ := faultServer(t, corpus.Tuning{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{"bib/003"}, Err: errShardDown})
	var q struct{}
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &q)

	var snap struct {
		Corpora map[string]struct {
			PartialSearches int64                          `json:"partialSearches"`
			ShardFailures   int64                          `json:"shardFailures"`
			BreakerTrips    int64                          `json:"breakerTrips"`
			Health          map[string]metrics.ShardHealth `json:"health"`
		} `json:"corpora"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	cs, ok := snap.Corpora["bib"]
	if !ok {
		t.Fatalf("no corpus metrics for bib: %+v", snap.Corpora)
	}
	if cs.PartialSearches < 1 || cs.ShardFailures < 1 || cs.BreakerTrips != 1 {
		t.Fatalf("fault counters: %+v", cs)
	}
	if got := cs.Health["bib/003"].State; got != "open" {
		t.Fatalf("health[bib/003] = %q, want open", got)
	}
	if got := cs.Health["bib/000"].State; got != "closed" {
		t.Fatalf("health[bib/000] = %q, want closed", got)
	}

	// The Prometheus exposition carries the same counters.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, res.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"lotusx_corpus_partial_searches_total",
		"lotusx_corpus_shard_failures_total",
		"lotusx_corpus_breaker_trips_total",
		"lotusx_corpus_quarantined_shards",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("prometheus exposition missing %s", family)
		}
	}
}

// TestReadyzDegraded: a quarantined shard keeps the instance ready (200) but
// the body says degraded, so orchestration keeps routing and operators see it.
func TestReadyzDegraded(t *testing.T) {
	ts, srv, reg, _ := faultServer(t, corpus.Tuning{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	debug := httptest.NewServer(obs.DebugMux(obs.DebugOptions{Ready: srv.Ready, Degraded: srv.Degraded}))
	t.Cleanup(debug.Close)

	body := getText(t, debug.URL+"/readyz", http.StatusOK)
	if strings.TrimSpace(body) != "ready" {
		t.Fatalf("healthy readyz body %q", body)
	}

	reg.Enable(faults.Injection{Site: corpus.FaultShardSearch, Keys: []string{"bib/000"}, Err: errShardDown})
	var q struct{}
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":10}`, &q)

	body = getText(t, debug.URL+"/readyz", http.StatusOK)
	if !strings.HasPrefix(body, "ready (degraded):") || !strings.Contains(body, "bib/000") {
		t.Fatalf("degraded readyz body %q", body)
	}
}

func getText(t *testing.T, url string, wantCode int) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, res.Body); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d (body %q)", url, res.StatusCode, wantCode, sb.String())
	}
	return sb.String()
}
