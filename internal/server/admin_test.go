package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/metrics"
)

const tinyXML = `<dblp>
  <article><author>Ada</author><title>Alpha</title></article>
  <article><author>Bo</author><title>Beta</title></article>
  <article><author>Cy</author><title>Gamma</title></article>
</dblp>`

// adminServer builds a server with the admin surface on and one plain
// engine dataset pre-registered.
func adminServer(t *testing.T, cfg Config) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	cfg.EnableAdmin = true
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCatalog()
	c.Add("bib", e)
	ts := httptest.NewServer(NewCatalogConfig(c, cfg))
	t.Cleanup(ts.Close)
	return ts, cfg.Metrics
}

func do(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, url, err)
		}
	}
	return res.StatusCode
}

func TestAdminDatasetLifecycle(t *testing.T) {
	ts, _ := adminServer(t, Config{})

	// Create a corpus dataset split into 2 shards (sync escape hatch: the
	// async default answers 202 + a job; see jobs_test.go).
	var created statusEnvelope
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.Status.Dataset != "lib" || created.Status.Shards != 2 {
		t.Fatalf("create response: %+v", created)
	}

	// It serves queries, fanned out and merged, with shard attribution.
	var qr struct {
		Answers []struct {
			Shard string `json:"shard"`
			Path  string `json:"path"`
		} `json:"answers"`
		Shards int `json:"shards"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Answers) != 3 || qr.Shards != 2 {
		t.Fatalf("query: %d answers over %d shards, want 3 over 2", len(qr.Answers), qr.Shards)
	}
	for _, a := range qr.Answers {
		if a.Shard == "" {
			t.Fatalf("corpus answer without shard attribution: %+v", a)
		}
	}

	// Stats answers the aggregated corpus shape.
	var info struct {
		Kind   string `json:"kind"`
		Shards int    `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/stats?dataset=lib", &info); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if info.Kind != "corpus" || info.Shards != 2 {
		t.Fatalf("stats: %+v", info)
	}

	// Add a third shard, then drop it.
	var st statusEnvelope
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib/shards/extra?sync=1", "<dblp><article><title>Delta</title></article></dblp>", &st); code != http.StatusCreated {
		t.Fatalf("shard add: status %d", code)
	}
	if st.Status.Shards != 3 {
		t.Fatalf("after shard add: %d shards", st.Status.Shards)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/lib/shards/extra", "", &st); code != http.StatusOK {
		t.Fatalf("shard delete: status %d", code)
	}
	if st.Status.Shards != 2 {
		t.Fatalf("after shard delete: %d shards", st.Status.Shards)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/lib/shards/extra", "", nil); code != http.StatusNotFound {
		t.Fatalf("double shard delete: status %d", code)
	}

	// Reindex republishes.
	var ri statusEnvelope
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib/reindex", "", &ri); code != http.StatusOK {
		t.Fatalf("reindex: status %d", code)
	}
	if ri.Status.Seq == 0 {
		t.Fatal("reindex did not bump the snapshot seq")
	}

	// Dataset listing includes it; deleting removes it.
	var ds struct {
		Datasets []string `json:"datasets"`
	}
	getJSON(t, ts.URL+"/api/v1/datasets", &ds)
	if len(ds.Datasets) != 2 {
		t.Fatalf("datasets: %v", ds.Datasets)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/lib", "", nil); code != http.StatusOK {
		t.Fatalf("dataset delete: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/stats?dataset=lib", &errEnvelope{}); code != http.StatusNotFound {
		t.Fatalf("stats after delete: status %d", code)
	}
}

func TestAdminDisabledByDefault(t *testing.T) {
	ts := testServer(t)
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib", tinyXML, nil); code == http.StatusCreated {
		t.Fatal("admin route reachable without EnableAdmin")
	}
}

func TestAdminShardOpsNeedCorpus(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	var env errEnvelope
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/bib/shards/x", tinyXML, &env); code != http.StatusNotFound {
		t.Fatalf("shard add on engine dataset: status %d", code)
	}
	if !strings.Contains(env.Error.Message, "not a corpus") {
		t.Fatalf("error message: %q", env.Error.Message)
	}
}

func TestAdminBadInputs(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=0", tinyXML, nil); code != http.StatusBadRequest {
		t.Fatalf("shards=0: status %d", code)
	}
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?sync=1", "<not-xml", nil); code != http.StatusBadRequest {
		t.Fatalf("bad xml: status %d", code)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/missing", "", nil); code != http.StatusNotFound {
		t.Fatalf("delete missing: status %d", code)
	}
}

// TestCorpusNodeAndGuideNeedShard: per-document views address a corpus
// shard with ?shard=.
func TestCorpusNodeAndGuideNeedShard(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	var env errEnvelope
	if code := getJSON(t, ts.URL+"/api/v1/guide?dataset=lib", &env); code != http.StatusNotFound {
		t.Fatalf("guide without shard: status %d", code)
	}
	if !strings.Contains(env.Error.Message, "shard") {
		t.Fatalf("error message: %q", env.Error.Message)
	}
	var created statusEnvelope
	// Re-create to learn shard names (idempotent replace).
	do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, &created)
	var guide struct {
		Tag string `json:"tag"`
	}
	url := fmt.Sprintf("%s/api/v1/guide?dataset=lib&shard=%s", ts.URL, created.Status.Names[0])
	if code := getJSON(t, url, &guide); code != http.StatusOK || guide.Tag != "dblp" {
		t.Fatalf("guide with shard: %+v", guide)
	}
}

// TestMetricsExposeCorpora is the satellite check: corpus gauges and the
// fan-out/merge histograms appear in GET /api/v1/metrics after corpus
// traffic.
func TestMetricsExposeCorpora(t *testing.T) {
	reg := metrics.New()
	ts, _ := adminServer(t, Config{Metrics: reg})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &struct{}{}); code != http.StatusOK {
		t.Fatal("query failed")
	}

	var snap struct {
		Corpora map[string]struct {
			Shards   int64 `json:"shards"`
			Swaps    int64 `json:"swaps"`
			Searches int64 `json:"searches"`
			Fanout   struct {
				Count int64 `json:"count"`
			} `json:"fanout"`
			Merge struct {
				Count int64 `json:"count"`
			} `json:"merge"`
		} `json:"corpora"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != http.StatusOK {
		t.Fatal("metrics failed")
	}
	cs, ok := snap.Corpora["lib"]
	if !ok {
		t.Fatalf("metrics missing corpus lib: %+v", snap.Corpora)
	}
	if cs.Shards != 2 || cs.Swaps < 1 || cs.Searches != 1 || cs.Fanout.Count != 1 || cs.Merge.Count != 1 {
		t.Fatalf("corpus metrics: %+v", cs)
	}
}

// TestAdminRejectsTraversalNames: ServeMux unescapes wildcard segments, so
// a %2F-smuggled name like "../evil" reaches the handler — it must be
// rejected before it is joined into CorpusDir and used for file writes.
func TestAdminRejectsTraversalNames(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "corpora")
	ts, _ := adminServer(t, Config{CorpusDir: dir})
	for _, bad := range []string{
		"..%2Fevil",              // one level up: DIR/../evil
		"..%2F..%2Fevil",         // two levels up
		"%2E%2E%2Fevil",          // fully escaped ../
		"%2E%2E",                 // escaped bare ".." (literal ".." never survives ServeMux path cleaning)
		".hidden",                // leading dot
		"a%20b",                  // whitespace
		"a%5Cb",                  // backslash
		"with%2Fslash",           // embedded separator
		strings.Repeat("x", 129), // over-long
	} {
		var env errEnvelope
		if code := do(t, "POST", ts.URL+"/api/v1/datasets/"+bad, tinyXML, &env); code != http.StatusBadRequest {
			t.Errorf("create %q: status %d, want 400 (%+v)", bad, code, env)
		} else if !strings.Contains(env.Error.Message, "dataset name") {
			t.Errorf("create %q rejected for the wrong reason: %q", bad, env.Error.Message)
		}
	}
	// Nothing may have been written outside (or inside) the corpus root.
	if _, err := os.Stat(filepath.Join(root, "evil")); !os.IsNotExist(err) {
		t.Fatal("traversal name escaped the corpus root")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("rejected creates still wrote under the corpus root")
	}

	// The shard route applies the same validation.
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/bib/shards/..%2Fx", tinyXML, nil); code != http.StatusBadRequest {
		t.Error("shard add with traversal name not rejected")
	}
}

// TestAdminRecreateReplacesDataset: re-POSTing a live corpus-backed name
// must flow through the existing corpus object — the sequence keeps
// climbing (no second corpus racing the same directory) and the old shards
// are gone, so answers never double up.
func TestAdminRecreateReplacesDataset(t *testing.T) {
	dir := t.TempDir()
	ts, _ := adminServer(t, Config{CorpusDir: dir})
	var first, second statusEnvelope
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, &first); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?sync=1", tinyXML, &second); code != http.StatusCreated {
		t.Fatalf("re-create: status %d", code)
	}
	if second.Status.Shards != 1 {
		t.Fatalf("re-create left %d shards, want 1", second.Status.Shards)
	}
	if second.Status.Seq != first.Status.Seq+1 {
		t.Fatalf("re-create seq %d after %d — a fresh corpus raced the directory", second.Status.Seq, first.Status.Seq)
	}
	var qr struct {
		Answers []struct{} `json:"answers"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":100}`, &qr); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Answers) != 3 {
		t.Fatalf("after re-create: %d answers, want 3 (old shards still answering?)", len(qr.Answers))
	}
	// The persisted directory reflects only the latest generation.
	re, err := corpus.Open(filepath.Join(dir, "lib"), corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Snapshot().Len() != 1 || re.Seq() != second.Status.Seq {
		t.Fatalf("reopened: %d shards seq %d, want 1 shard seq %d", re.Snapshot().Len(), re.Seq(), second.Status.Seq)
	}
}

// TestAdminConcurrentCreates: parallel creates of the same persisted
// dataset must not corrupt its directory (run under -race in CI).
func TestAdminConcurrentCreates(t *testing.T) {
	dir := t.TempDir()
	ts, _ := adminServer(t, Config{CorpusDir: dir})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", strings.NewReader(tinyXML))
			if err != nil {
				t.Error(err)
				return
			}
			res, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			res.Body.Close()
			if res.StatusCode != http.StatusCreated {
				t.Errorf("concurrent create: status %d", res.StatusCode)
			}
		}()
	}
	wg.Wait()
	re, err := corpus.Open(filepath.Join(dir, "lib"), corpus.Config{})
	if err != nil {
		t.Fatalf("corpus did not survive concurrent creates: %v", err)
	}
	if re.Snapshot().Len() != 2 {
		t.Fatalf("reopened corpus has %d shards, want 2", re.Snapshot().Len())
	}
}

// TestAdminDeletePurgesPersistedDir: DELETE must remove the corpus's
// on-disk directory, or the next restart's reload resurrects the dataset.
func TestAdminDeletePurgesPersistedDir(t *testing.T) {
	dir := t.TempDir()
	ts, _ := adminServer(t, Config{CorpusDir: dir})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	sub := filepath.Join(dir, "lib")
	if _, err := os.Stat(sub); err != nil {
		t.Fatalf("corpus dir not persisted: %v", err)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/lib", "", nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(sub); !os.IsNotExist(err) {
		t.Fatalf("corpus dir survived the delete (err=%v) — it would reload on restart", err)
	}
	// An engine-backed dataset deletes cleanly too (nothing on disk).
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/bib", "", nil); code != http.StatusOK {
		t.Fatal("engine dataset delete failed")
	}
}

// TestAdminPersistedCorpus: with CorpusDir set, admin-created corpora
// reopen from disk.
func TestAdminPersistedCorpus(t *testing.T) {
	dir := t.TempDir()
	ts, _ := adminServer(t, Config{CorpusDir: dir})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	re, err := corpus.Open(dir+"/lib", corpus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Snapshot().Len() != 2 {
		t.Fatalf("reopened corpus has %d shards", re.Snapshot().Len())
	}
}
