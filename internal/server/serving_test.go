package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/metrics"
)

// deepNestXML renders <a> nested depth times; //a//a//a//a over it has a
// combinatorial cross product — the deterministic "slow query" the timeout
// and load-shed tests rely on.
func deepNestXML(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

const slowQueryBody = `{"query": "//a//a//a//a", "k": 5}`

func slowEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.FromReader("nest", strings.NewReader(deepNestXML(300)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestVersionedRoutesAndLegacyAliases(t *testing.T) {
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)

	// The v1 route answers without deprecation marks.
	res, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 || res.Header.Get("Deprecation") != "" {
		t.Fatalf("v1: status %d, Deprecation %q", res.StatusCode, res.Header.Get("Deprecation"))
	}
	if res.Header.Get("X-Request-Id") == "" {
		t.Error("v1: X-Request-Id missing")
	}

	// The legacy alias still answers, flagged deprecated and pointing at
	// its successor.
	res, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("legacy: status %d", res.StatusCode)
	}
	if res.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy: Deprecation = %q, want true", res.Header.Get("Deprecation"))
	}
	if link := res.Header.Get("Link"); !strings.Contains(link, "/api/v1/stats") {
		t.Errorf("legacy: Link = %q", link)
	}

	// Every legacy GET endpoint has a working alias.
	for _, path := range []string{"/api/datasets", "/api/guide", "/api/node/0",
		"/api/complete?kind=tag", "/api/explain?tag=author"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 200 || res.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: status %d, Deprecation %q", path, res.StatusCode, res.Header.Get("Deprecation"))
		}
	}
}

// TestErrorEnvelopeTable drives every handler failure path and asserts the
// uniform {"error": {"code", "message"}} envelope with the right status.
func TestErrorEnvelopeTable(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"bad body", "POST", "/api/v1/query", `not json`, 400, "bad_query"},
		{"bad query", "POST", "/api/v1/query", `{"query": "]bad["}`, 400, "bad_query"},
		{"negative k", "POST", "/api/v1/query", `{"query": "//a", "k": -1}`, 400, "bad_query"},
		{"huge k", "POST", "/api/v1/query", `{"query": "//a", "k": 100000}`, 400, "bad_query"},
		{"negative offset", "POST", "/api/v1/query", `{"query": "//a", "offset": -5}`, 400, "bad_query"},
		{"huge offset", "POST", "/api/v1/query", `{"query": "//a", "offset": 99999999}`, 400, "bad_query"},
		{"unknown algorithm", "POST", "/api/v1/query", `{"query": "//a", "algorithm": "quantum"}`, 400, "bad_query"},
		{"unknown dataset query", "POST", "/api/v1/query?dataset=nope", `{"query": "//a"}`, 404, "not_found"},
		{"unknown dataset stats", "GET", "/api/v1/stats?dataset=nope", "", 404, "not_found"},
		{"unknown node", "GET", "/api/v1/node/99999", "", 404, "not_found"},
		{"bad node id", "GET", "/api/v1/node/xyz", "", 404, "not_found"},
		{"bad complete k", "GET", "/api/v1/complete?k=0", "", 400, "bad_query"},
		{"bad complete kind", "GET", "/api/v1/complete?kind=bogus", "", 400, "bad_query"},
		{"bad complete path", "GET", "/api/v1/complete?path=%5B%5B", "", 400, "bad_query"},
		{"value without path", "GET", "/api/v1/complete?kind=value", "", 400, "bad_query"},
		{"explain missing tag", "GET", "/api/v1/explain", "", 400, "bad_query"},
		{"explain bad max", "GET", "/api/v1/explain?tag=a&max=9999", "", 400, "bad_query"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res *http.Response
			var err error
			if tc.method == "POST" {
				res, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			} else {
				res, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer res.Body.Close()
			if res.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", res.StatusCode, tc.wantStatus)
			}
			var e errEnvelope
			if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
				t.Fatalf("not an envelope: %v", err)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Error.Code, tc.wantCode)
			}
			if e.Error.Message == "" {
				t.Error("empty message")
			}
		})
	}
}

func TestQueryAcceptsEveryImplementedAlgorithm(t *testing.T) {
	ts := testServer(t)
	for _, alg := range []string{"nestedloop", "structural", "pathstack", "twigstack", "twigstack-la", "tjfast", "auto"} {
		var resp struct {
			Answers   []any  `json:"answers"`
			Algorithm string `json:"algorithm"`
		}
		body := fmt.Sprintf(`{"query": "//article/author", "algorithm": %q}`, alg)
		if code := postJSON(t, ts.URL+"/api/v1/query", body, &resp); code != 200 {
			t.Errorf("%s: status %d", alg, code)
			continue
		}
		if len(resp.Answers) == 0 || resp.Algorithm == "" || resp.Algorithm == "auto" {
			t.Errorf("%s: answers = %d, algorithm = %q", alg, len(resp.Answers), resp.Algorithm)
		}
	}
}

func TestQueryPaginationContract(t *testing.T) {
	const threeXML = `<dblp>
	  <article><author>A</author></article>
	  <article><author>B</author></article>
	  <article><author>C</author></article>
	</dblp>`
	e, err := core.FromReader("three", strings.NewReader(threeXML))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)

	type page struct {
		Answers    []struct{ Path string } `json:"answers"`
		Total      int                     `json:"total"`
		Offset     int                     `json:"offset"`
		NextOffset int                     `json:"nextOffset"`
	}
	// Three author nodes.  Page size 2: page 1 is full and points at page 2.
	var p1 page
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author", "k": 2}`, &p1); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(p1.Answers) != 2 || p1.Total != 2 || p1.Offset != 0 || p1.NextOffset != 2 {
		t.Fatalf("page1 = %+v", p1)
	}
	// Page 2 holds the final answer and advertises no further page.
	var p2 page
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author", "k": 2, "offset": 2}`, &p2); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(p2.Answers) != 1 || p2.Total != 3 || p2.Offset != 2 || p2.NextOffset != 0 {
		t.Fatalf("page2 = %+v", p2)
	}
	// Paging past the end is a valid empty page, not an error.
	var p3 page
	if code := postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author", "k": 2, "offset": 10}`, &p3); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(p3.Answers) != 0 || p3.NextOffset != 0 {
		t.Fatalf("page3 = %+v", p3)
	}
}

func TestQueryTimeoutEnvelopeAndMetrics(t *testing.T) {
	reg := metrics.New()
	srv := NewConfig(slowEngine(t), Config{QueryTimeout: 75 * time.Millisecond, Metrics: reg})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	start := time.Now()
	res, err := http.Post(ts.URL+"/api/v1/query", "application/json", strings.NewReader(slowQueryBody))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	elapsed := time.Since(start)
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", res.StatusCode)
	}
	var e errEnvelope
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "timeout" {
		t.Fatalf("code = %q, want timeout", e.Error.Code)
	}
	// Cooperative cancellation: the join must stop within a small multiple
	// of the 75ms deadline, not run the full cross product.
	if elapsed > time.Second {
		t.Fatalf("timed-out query took %v", elapsed)
	}

	snap := reg.Snapshot()
	q := snap.Endpoints["query"]
	if q.Requests != 1 || q.Timeouts != 1 || q.Errors != 1 {
		t.Fatalf("query metrics = %+v", q)
	}
	if q.Latency.Count != 1 || q.Latency.P99MS <= 0 {
		t.Fatalf("latency snapshot = %+v", q.Latency)
	}
}

func TestLoadShed503(t *testing.T) {
	reg := metrics.New()
	srv := NewConfig(slowEngine(t), Config{
		QueryTimeout: 2 * time.Second, // bounds the blocking query
		MaxInflight:  1,
		Metrics:      reg,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Occupy the single slot with the slow query.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := http.Post(ts.URL+"/api/v1/query", "application/json", strings.NewReader(slowQueryBody))
		if err == nil {
			res.Body.Close()
		}
	}()

	// Wait until the slow query is actually in flight, then expect sheds.
	deadline := time.Now().Add(2 * time.Second)
	var shedRes *http.Response
	for time.Now().Before(deadline) {
		res, err := http.Get(ts.URL + "/api/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode == http.StatusServiceUnavailable {
			shedRes = res
			break
		}
		res.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if shedRes == nil {
		t.Fatal("never saw a 503 while the limiter was full")
	}
	defer shedRes.Body.Close()
	if shedRes.Header.Get("Retry-After") == "" {
		t.Error("Retry-After missing on shed response")
	}
	var e errEnvelope
	if err := json.NewDecoder(shedRes.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "overloaded" {
		t.Fatalf("code = %q, want overloaded", e.Error.Code)
	}

	// The metrics endpoint is exempt from the limiter and reflects the shed.
	res, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("metrics under load: status %d", res.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Endpoints["stats"].Shed < 1 {
		t.Fatalf("stats shed = %d, want >= 1", snap.Endpoints["stats"].Shed)
	}
	wg.Wait()
}

func TestMetricsEndpoint(t *testing.T) {
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)

	var out struct{ Answers []any }
	postJSON(t, ts.URL+"/api/v1/query", `{"query": "//article/author"}`, &out)
	getJSON(t, ts.URL+"/api/v1/complete?kind=tag&prefix=a", &struct{}{})

	var snap metrics.Snapshot
	if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != 200 {
		t.Fatalf("status %d", code)
	}
	if snap.Endpoints["query"].Requests != 1 || snap.Endpoints["complete"].Requests != 1 {
		t.Fatalf("endpoints = %+v", snap.Endpoints)
	}
	if snap.Endpoints["query"].Latency.P50MS <= 0 {
		t.Fatalf("query latency = %+v", snap.Endpoints["query"].Latency)
	}
	if snap.Algorithms["twigstack"].Count != 1 {
		t.Fatalf("algorithms = %+v", snap.Algorithms)
	}
	if snap.UptimeSeconds <= 0 {
		t.Fatal("uptime missing")
	}
}

// TestConcurrentTraffic exercises /api/v1/query and /api/v1/complete from
// many goroutines; run with -race this doubles as the data-race check over
// the serving layer (see the tier-1 recipe in ROADMAP.md).
func TestConcurrentTraffic(t *testing.T) {
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewConfig(e, Config{QueryTimeout: 5 * time.Second, MaxInflight: 64})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := http.Post(ts.URL+"/api/v1/query", "application/json",
					strings.NewReader(`{"query": "//article/author", "k": 3, "rewrite": true}`))
				if err != nil {
					errs <- err
					return
				}
				res.Body.Close()
				if res.StatusCode != 200 {
					errs <- fmt.Errorf("query status %d", res.StatusCode)
					return
				}
				res, err = http.Get(ts.URL + "/api/v1/complete?kind=tag&path=%2F%2Farticle&prefix=a")
				if err != nil {
					errs <- err
					return
				}
				res.Body.Close()
				if res.StatusCode != 200 {
					errs <- fmt.Errorf("complete status %d", res.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Endpoints["query"].Requests != 160 || snap.Endpoints["complete"].Requests != 160 {
		t.Fatalf("request counts = %+v", snap.Endpoints)
	}
}
