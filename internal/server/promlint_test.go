package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/metrics"
	"lotusx/internal/slo"
)

// A minimal linter for Prometheus text exposition format 0.0.4, run over
// every serving configuration's /metrics: each family must declare HELP and
// TYPE before its samples, names and labels must be legal, and histogram
// families must be internally coherent (cumulative buckets, +Inf == _count,
// _sum present).

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// histState tracks one histogram series' buckets while linting.
type histState struct {
	buckets map[float64]float64 // le -> cumulative count
	count   float64
	hasCnt  bool
	hasSum  bool
}

// baseFamily strips histogram sample suffixes back to the declared family.
func baseFamily(name string) string {
	for _, suffix := range []string{"_bucket", "_count", "_sum"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// lintExposition checks one exposition body, returning every violation.
func lintExposition(t *testing.T, body string) []string {
	t.Helper()
	var problems []string
	helped := map[string]bool{}
	typed := map[string]string{}
	hists := map[string]*histState{} // family + label signature (minus le)

	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) < 2 || parts[1] == "" {
				problems = append(problems, "HELP without text: "+line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				problems = append(problems, "malformed TYPE: "+line)
				continue
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, "unknown TYPE "+parts[1]+": "+line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			problems = append(problems, "unparseable sample: "+line)
			continue
		}
		name, labels, valText := m[1], m[3], m[4]
		if !metricNameRe.MatchString(name) {
			problems = append(problems, "illegal metric name: "+name)
		}
		family := baseFamily(name)
		if !helped[family] {
			problems = append(problems, "sample before/without HELP: "+name)
		}
		typ, ok := typed[family]
		if !ok {
			problems = append(problems, "sample before/without TYPE: "+name)
		}
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			problems = append(problems, "bad sample value: "+line)
			continue
		}
		if (typ == "counter" || typ == "histogram") && val < 0 {
			problems = append(problems, "negative "+typ+" sample: "+line)
		}

		var le string
		var sig []string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					problems = append(problems, "malformed label in "+line)
					continue
				}
				if !labelNameRe.MatchString(lm[1]) {
					problems = append(problems, "illegal label name "+lm[1]+" in "+line)
				}
				if lm[1] == "le" {
					le = lm[2]
					continue
				}
				sig = append(sig, pair)
			}
		}
		if typ != "histogram" {
			continue
		}
		key := family + "|" + strings.Join(sig, ",")
		h := hists[key]
		if h == nil {
			h = &histState{buckets: map[float64]float64{}}
			hists[key] = h
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			bound, err := parseLE(le)
			if err != nil {
				problems = append(problems, "bad le in "+line)
				continue
			}
			h.buckets[bound] = val
		case strings.HasSuffix(name, "_count"):
			h.count, h.hasCnt = val, true
		case strings.HasSuffix(name, "_sum"):
			h.hasSum = true
		default:
			problems = append(problems, "histogram family has a bare sample: "+line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for key, h := range hists {
		if !h.hasCnt || !h.hasSum {
			problems = append(problems, fmt.Sprintf("histogram %s missing _count or _sum", key))
			continue
		}
		inf, ok := h.buckets[infBound]
		if !ok {
			problems = append(problems, "histogram "+key+" missing +Inf bucket")
		} else if inf != h.count {
			problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %v != count %v", key, inf, h.count))
		}
		prev, first := 0.0, true
		for _, bound := range sortedBounds(h.buckets) {
			c := h.buckets[bound]
			if !first && c < prev {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket le=%v count %v < previous %v (not cumulative)", key, bound, c, prev))
			}
			prev, first = c, false
		}
	}
	return problems
}

var infBound = math.Inf(1)

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return infBound, nil
	}
	return strconv.ParseFloat(le, 64)
}

func sortedBounds(buckets map[float64]float64) []float64 {
	bounds := make([]float64, 0, len(buckets))
	for b := range buckets {
		bounds = append(bounds, b)
	}
	for i := range bounds {
		for j := i + 1; j < len(bounds); j++ {
			if bounds[j] < bounds[i] {
				bounds[i], bounds[j] = bounds[j], bounds[i]
			}
		}
	}
	return bounds
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// scrape pulls /metrics off a server after driving some traffic.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	var out struct{ Answers []any }
	postJSON(t, ts.URL+"/api/v1/query", `{"query":"//article/author","k":5}`, &out)
	getJSON(t, ts.URL+"/api/v1/complete?kind=tag&path=%2F%2Farticle&prefix=a", &struct{}{})
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPrometheusLint lints the exposition of every serving configuration:
// a single engine, a sharded corpus, and a router-shaped registry carrying
// cluster, remote and SLO families.
func TestPrometheusLint(t *testing.T) {
	t.Run("engine", func(t *testing.T) {
		d, err := doc.FromReader("bib", strings.NewReader(bibXML))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(core.FromDocument(d)))
		defer ts.Close()
		for _, p := range lintExposition(t, scrape(t, ts)) {
			t.Error(p)
		}
	})

	t.Run("corpus", func(t *testing.T) {
		_, ts := shardedServer(t, Config{})
		for _, p := range lintExposition(t, scrape(t, ts)) {
			t.Error(p)
		}
	})

	t.Run("lifecycle", func(t *testing.T) {
		// Admin + per-client rate limiting: the lifecycle and admission
		// families must be present and lint-clean.
		reg := metrics.New()
		ts, _ := adminServer(t, Config{Metrics: reg, RateQPS: 1000, RateBurst: 2000})
		body := scrape(t, ts)
		for _, family := range []string{
			"lotusx_lifecycle_draining",
			"lotusx_lifecycle_drain_rejected_total",
			"lotusx_lifecycle_journal_pending",
			"lotusx_lifecycle_journal_accepted_total",
			"lotusx_admission_allowed_total",
			"lotusx_admission_limited_total",
			"lotusx_admission_clients",
		} {
			if !strings.Contains(body, family) {
				t.Errorf("lifecycle exposition missing %s family", family)
			}
		}
		for _, p := range lintExposition(t, body) {
			t.Error(p)
		}
	})

	t.Run("router", func(t *testing.T) {
		reg := metrics.New()
		// Cluster rollup: one healthy server (snapshot from a scratch
		// registry), one marked down.
		peer := metrics.New()
		peer.Endpoint("query").Record(200, 12*time.Millisecond)
		reg.Cluster().Update("shard-0", peer.Snapshot())
		reg.Cluster().MarkDown("shard-1", fmt.Errorf("connection refused"))
		// Remote RPC families.
		rem := reg.Remote("cluster")
		rem.ObserveReplica("shard-0", 4*time.Millisecond)
		rem.HedgesFired.Add(1)
		rem.HedgeWins.Add(1)
		tracker, err := slo.New(slo.Config{Objectives: []slo.Objective{
			{Name: "availability", Target: 0.999},
			{Name: "search-p99", Endpoint: "query", Target: 0.99, Threshold: 50 * time.Millisecond},
		}})
		if err != nil {
			t.Fatal(err)
		}
		_, ts := shardedServer(t, Config{Metrics: reg, SLO: tracker})
		body := scrape(t, ts)
		for _, family := range []string{"lotusx_cluster_server_up", "lotusx_remote_", "lotusx_slo_burn_rate", "lotusx_process_goroutines", "lotusx_build_info"} {
			if !strings.Contains(body, family) {
				t.Errorf("router exposition missing %s family", family)
			}
		}
		for _, p := range lintExposition(t, body) {
			t.Error(p)
		}
	})
}
