package server

import (
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"lotusx/internal/cache"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/httpmw"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Per-request tracing: the query and completion handlers run under an
// obs.Trace on every request once the tail-sampled trace store is on (the
// default), when slow-query logging is armed, or when the client asked to
// see the tree (?debug=trace, X-Lotusx-Trace: 1, or the passive
// X-Lotusx-Trace: sample a router uses).  Finished traces are folded into
// the always-on per-stage histograms and offered to the trace store, which
// retains the interesting ones (errors, partials, quarantines, hedges, slow
// crossings) plus a uniform sample; the span tree itself is only serialized
// into the response for clients that asked.

// traceRequested reports whether the client opted into receiving the trace
// AND measuring the uncached pipeline (?debug=trace bypasses the hot-path
// caches).
func traceRequested(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "trace" || r.Header.Get("X-Lotusx-Trace") == "1"
}

// traceSampled reports the passive trace mode (X-Lotusx-Trace: sample): the
// response carries the span tree but the request serves through the caches
// like any other.  Routers use it on shard RPCs so always-on tail sampling
// never turns shard-side cache hits into misses.
func traceSampled(r *http.Request) bool {
	return r.Header.Get("X-Lotusx-Trace") == "sample"
}

// startTrace begins a trace named name for r when tracing is on for this
// request, returning the (possibly nil) trace and the context to evaluate
// under.  A nil trace costs nothing downstream: every span operation on the
// untraced path is a nil-check.
func (s *Server) startTrace(r *http.Request, name string) (*obs.Trace, *http.Request) {
	traced := traceRequested(r)
	if !traced && s.slowQuery <= 0 && s.traces == nil && !traceSampled(r) {
		return nil, r
	}
	ctx := r.Context()
	if traced {
		// A debug trace is a measurement of the real evaluation pipeline;
		// serving it from the hot-path cache would trace nothing.  Bypass
		// the caches for explicitly traced requests only — tail-sampled and
		// slow-query tracing cover normal traffic and must see cache behavior.
		ctx = cache.WithBypass(ctx)
	}
	tr := obs.New(name)
	return tr, r.WithContext(obs.ContextWith(ctx, tr.Root()))
}

// finishTrace closes the trace, folds its spans into the per-stage
// histograms, offers the trace to the tail-sampling store, and emits the
// slow-query log when the request exceeded the threshold.  It returns the
// rendered span tree when the client asked for it, nil otherwise.
func (s *Server) finishTrace(r *http.Request, tr *obs.Trace, q *twig.Query) *obs.Node {
	if tr == nil {
		return nil
	}
	tr.Finish()
	foldTrace(s.reg, tr)
	facts := traceFacts(tr)
	d := tr.Root().Duration()
	if s.slowQuery > 0 && d >= s.slowQuery {
		s.logSlowQuery(r, tr, q, d, facts)
	}
	if s.traces != nil {
		s.traces.Offer(&obs.TraceRecord{
			RequestID:   httpmw.RequestIDFrom(r.Context()),
			Endpoint:    tr.Root().Name(),
			Dataset:     r.URL.Query().Get("dataset"),
			Start:       tr.Root().Start(),
			DurationMS:  float64(d.Microseconds()) / 1000,
			Error:       facts.err,
			Partial:     facts.partial,
			Quarantined: facts.quarantined,
			Hedged:      facts.hedged,
		}, tr)
	}
	if traceRequested(r) || traceSampled(r) {
		return tr.Render()
	}
	return nil
}

// requestFacts are the classification facts of one finished request,
// collected from the span tree: what the handler recorded on the root span
// (error, partial, quarantine) plus what the fan-out recorded on its shard
// and rpc spans (hedging, cache behavior).  They drive both trace-store
// retention and the slow-query log's enrichment.
type requestFacts struct {
	err          string
	partial      bool
	failedShards string
	quarantined  bool
	cache        string // "hit", "miss", or "" outside the cached paths
	hedged       bool   // at least one hedge RPC fired
	hedgeWon     bool   // a hedged RPC answered first
}

// traceFacts walks the finished trace for the request's classification.
func traceFacts(tr *obs.Trace) requestFacts {
	root := tr.Root()
	f := requestFacts{
		err:          root.Attr("error"),
		partial:      root.Attr("partial") == "true",
		failedShards: root.Attr("failedShards"),
		quarantined:  root.Attr("quarantined") == "true",
		cache:        root.Attr("cache"),
	}
	tr.Each(func(sp *obs.Span) {
		switch sp.Name() {
		case "rpc":
			if sp.Attr("hedged") == "true" {
				f.hedged = true
			}
		case "shard":
			if sp.Attr("hedge") == "won" {
				f.hedgeWon = true
			}
		}
	})
	return f
}

// annotateTraceError records a failed request on its root span so the trace
// store retains the trace: the error text, and the quarantine classification
// when the failure was open shard circuit breakers.
func annotateTraceError(r *http.Request, err error) {
	root := obs.FromContext(r.Context())
	root.SetErr(err)
	if errors.Is(err, corpus.ErrShardQuarantined) {
		root.Set("quarantined", "true")
	}
}

// foldTrace feeds every finished span's duration into the registry's
// per-stage histograms, so stage aggregates are always on whether or not a
// client asked to see a trace.  The root span (the whole request, already
// covered by endpoint latency) and per-shard spans (covered by the corpus's
// per-shard histograms, which would explode stage cardinality here) are
// skipped.
func foldTrace(reg *metrics.Registry, tr *obs.Trace) {
	root := tr.Root()
	tr.Each(func(sp *obs.Span) {
		if sp == root || sp.Name() == "shard" {
			return
		}
		reg.Stage(sp.Name()).Observe(sp.Duration())
	})
}

// logSlowQuery emits one structured warning for a query that exceeded the
// slow-query threshold: the sanitized query, the full per-stage breakdown in
// compact form, the request ID to join with the access log, and the
// classification facts the handler already knew — so an operator reads why
// the query was slow (partial fan-out, cache miss, hedging) without re-
// running it under ?debug=trace.
func (s *Server) logSlowQuery(r *http.Request, tr *obs.Trace, q *twig.Query, d time.Duration, facts requestFacts) {
	attrs := []slog.Attr{
		slog.String("query", sanitizeQuery(q)),
		slog.Float64("durationMs", float64(d.Microseconds())/1000),
		slog.Float64("thresholdMs", float64(s.slowQuery.Microseconds())/1000),
		slog.String("dataset", r.URL.Query().Get("dataset")),
		slog.String("requestId", httpmw.RequestIDFrom(r.Context())),
		slog.String("trace", tr.Compact()),
	}
	if facts.err != "" {
		attrs = append(attrs, slog.String("error", facts.err))
	}
	if facts.partial {
		attrs = append(attrs, slog.Bool("partial", true),
			slog.String("failedShards", facts.failedShards))
	}
	if facts.cache != "" {
		attrs = append(attrs, slog.String("cache", facts.cache))
	}
	if facts.hedged {
		attrs = append(attrs, slog.Bool("hedgeFired", true),
			slog.Bool("hedgeWon", facts.hedgeWon))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
}

// sanitizeQuery renders q with predicate operands redacted — slow-query logs
// keep the query's shape (tags, axes, operators) without persisting what
// users searched for.
func sanitizeQuery(q *twig.Query) string {
	if q == nil {
		return ""
	}
	c := q.Clone()
	for _, n := range c.Nodes() {
		if n.Pred.Op != twig.NoPred && n.Pred.Value != "" {
			n.Pred.Value = "…"
		}
	}
	return c.String()
}

// readyReporter is the readiness slice of a backend.  Sharded corpora
// implement it (not ready mid-mutation or empty); plain engines — immutable
// once built — are always ready.
type readyReporter interface{ Ready() error }

// Ready aggregates readiness over every serving dataset: nil when each
// backend that reports readiness is ready.  GET /readyz on the debug
// listener serves this.  A draining server reports not ready first — the
// load balancer's cue to route elsewhere while shutdown completes.
func (s *Server) Ready() error {
	if s.draining.Load() {
		return errors.New("draining for shutdown")
	}
	for _, name := range s.catalog.Names() {
		b, err := s.catalog.GetBackend(name)
		if err != nil {
			return err
		}
		if rr, ok := b.(readyReporter); ok {
			if err := rr.Ready(); err != nil {
				return err
			}
		}
	}
	return nil
}

// degradedReporter is the degradation slice of a backend: serving, but
// impaired (quarantined shards).  Sharded corpora implement it.
type degradedReporter interface{ Degraded() string }

// Degraded aggregates degradation over every serving dataset: "" when every
// backend is whole, else the joined reasons.  GET /readyz renders a ready
// but degraded instance as "ready (degraded): ...".
func (s *Server) Degraded() string {
	var parts []string
	for _, name := range s.catalog.Names() {
		b, err := s.catalog.GetBackend(name)
		if err != nil {
			continue
		}
		if dr, ok := b.(degradedReporter); ok {
			if msg := dr.Degraded(); msg != "" {
				parts = append(parts, msg)
			}
		}
	}
	return strings.Join(parts, "; ")
}

// handlePrometheus serves the hand-rolled Prometheus text exposition —
// GET /metrics, the conventional scrape path, next to the JSON snapshot at
// /api/v1/metrics.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	s.slo.WritePrometheus(w)
}

// metricsPath reports whether path is one of the metrics endpoints, which
// stay exempt from load shedding: observability must survive overload.
func metricsPath(path string) bool {
	return path == "/api/v1/metrics" || path == "/metrics"
}

// annotateSearch enriches the access log — and, for degraded answers, the
// request's root span — with the facts the handler learned doing the work:
// the resolved algorithm, the result count, and partial-coverage details.
// The root-span attrs are what classifies the trace as interesting in the
// tail-sampling store.
func annotateSearch(r *http.Request, res *core.HitResult) {
	httpmw.Annotate(r.Context(), "algorithm", string(res.Algorithm))
	httpmw.Annotate(r.Context(), "results", len(res.Hits))
	if res.Shards > 1 {
		httpmw.Annotate(r.Context(), "shards", res.Shards)
	}
	if res.Partial {
		httpmw.Annotate(r.Context(), "partial", true)
		httpmw.Annotate(r.Context(), "failedShards", strings.Join(res.FailedShards, ","))
		root := obs.FromContext(r.Context())
		root.Set("partial", "true")
		root.Set("failedShards", strings.Join(res.FailedShards, ","))
	}
	if res.RewritesTried > 0 {
		httpmw.Annotate(r.Context(), "rewritesTried", res.RewritesTried)
	}
}

// parseTraced parses the query under a "parse" span.
func parseTraced(r *http.Request, query string) (*twig.Query, error) {
	sp := obs.StartLeaf(r.Context(), "parse")
	q, err := twig.Parse(query)
	sp.SetErr(err)
	sp.End()
	return q, err
}
