package server

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"lotusx/internal/cache"
	"lotusx/internal/core"
	"lotusx/internal/httpmw"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Per-request tracing: the query and completion handlers run under an
// obs.Trace whenever the client asked to see it (?debug=trace or
// X-Lotusx-Trace: 1) or slow-query logging is armed.  Finished traces are
// folded into the always-on per-stage histograms either way; the span tree
// itself is only serialized into the response for clients that asked.

// traceRequested reports whether the client opted into receiving the trace.
func traceRequested(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "trace" || r.Header.Get("X-Lotusx-Trace") == "1"
}

// startTrace begins a trace named name for r when tracing is on for this
// request, returning the (possibly nil) trace and the context to evaluate
// under.  A nil trace costs nothing downstream: every span operation on the
// untraced path is a nil-check.
func (s *Server) startTrace(r *http.Request, name string) (*obs.Trace, *http.Request) {
	traced := traceRequested(r)
	if !traced && s.slowQuery <= 0 {
		return nil, r
	}
	ctx := r.Context()
	if traced {
		// A debug trace is a measurement of the real evaluation pipeline;
		// serving it from the hot-path cache would trace nothing.  Bypass
		// the caches for explicitly traced requests only — slow-query
		// tracing covers normal traffic and must see cache behavior.
		ctx = cache.WithBypass(ctx)
	}
	tr := obs.New(name)
	return tr, r.WithContext(obs.ContextWith(ctx, tr.Root()))
}

// finishTrace closes the trace, folds its spans into the per-stage
// histograms, and emits the slow-query log when the request exceeded the
// threshold.  It returns the rendered span tree when the client asked for
// it, nil otherwise.
func (s *Server) finishTrace(r *http.Request, tr *obs.Trace, q *twig.Query) *obs.Node {
	if tr == nil {
		return nil
	}
	tr.Finish()
	foldTrace(s.reg, tr)
	if d := tr.Root().Duration(); s.slowQuery > 0 && d >= s.slowQuery {
		s.logSlowQuery(r, tr, q, d)
	}
	if traceRequested(r) {
		return tr.Render()
	}
	return nil
}

// foldTrace feeds every finished span's duration into the registry's
// per-stage histograms, so stage aggregates are always on whether or not a
// client asked to see a trace.  The root span (the whole request, already
// covered by endpoint latency) and per-shard spans (covered by the corpus's
// per-shard histograms, which would explode stage cardinality here) are
// skipped.
func foldTrace(reg *metrics.Registry, tr *obs.Trace) {
	root := tr.Root()
	tr.Each(func(sp *obs.Span) {
		if sp == root || sp.Name() == "shard" {
			return
		}
		reg.Stage(sp.Name()).Observe(sp.Duration())
	})
}

// logSlowQuery emits one structured warning for a query that exceeded the
// slow-query threshold: the sanitized query, the full per-stage breakdown in
// compact form, and the request ID to join with the access log.
func (s *Server) logSlowQuery(r *http.Request, tr *obs.Trace, q *twig.Query, d time.Duration) {
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
		slog.String("query", sanitizeQuery(q)),
		slog.Float64("durationMs", float64(d.Microseconds())/1000),
		slog.Float64("thresholdMs", float64(s.slowQuery.Microseconds())/1000),
		slog.String("dataset", r.URL.Query().Get("dataset")),
		slog.String("requestId", httpmw.RequestIDFrom(r.Context())),
		slog.String("trace", tr.Compact()),
	)
}

// sanitizeQuery renders q with predicate operands redacted — slow-query logs
// keep the query's shape (tags, axes, operators) without persisting what
// users searched for.
func sanitizeQuery(q *twig.Query) string {
	if q == nil {
		return ""
	}
	c := q.Clone()
	for _, n := range c.Nodes() {
		if n.Pred.Op != twig.NoPred && n.Pred.Value != "" {
			n.Pred.Value = "…"
		}
	}
	return c.String()
}

// readyReporter is the readiness slice of a backend.  Sharded corpora
// implement it (not ready mid-mutation or empty); plain engines — immutable
// once built — are always ready.
type readyReporter interface{ Ready() error }

// Ready aggregates readiness over every serving dataset: nil when each
// backend that reports readiness is ready.  GET /readyz on the debug
// listener serves this.
func (s *Server) Ready() error {
	for _, name := range s.catalog.Names() {
		b, err := s.catalog.GetBackend(name)
		if err != nil {
			return err
		}
		if rr, ok := b.(readyReporter); ok {
			if err := rr.Ready(); err != nil {
				return err
			}
		}
	}
	return nil
}

// degradedReporter is the degradation slice of a backend: serving, but
// impaired (quarantined shards).  Sharded corpora implement it.
type degradedReporter interface{ Degraded() string }

// Degraded aggregates degradation over every serving dataset: "" when every
// backend is whole, else the joined reasons.  GET /readyz renders a ready
// but degraded instance as "ready (degraded): ...".
func (s *Server) Degraded() string {
	var parts []string
	for _, name := range s.catalog.Names() {
		b, err := s.catalog.GetBackend(name)
		if err != nil {
			continue
		}
		if dr, ok := b.(degradedReporter); ok {
			if msg := dr.Degraded(); msg != "" {
				parts = append(parts, msg)
			}
		}
	}
	return strings.Join(parts, "; ")
}

// handlePrometheus serves the hand-rolled Prometheus text exposition —
// GET /metrics, the conventional scrape path, next to the JSON snapshot at
// /api/v1/metrics.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// metricsPath reports whether path is one of the metrics endpoints, which
// stay exempt from load shedding: observability must survive overload.
func metricsPath(path string) bool {
	return path == "/api/v1/metrics" || path == "/metrics"
}

// annotateSearch enriches the access log with the facts the handler learned
// doing the work: the resolved algorithm and the result count.
func annotateSearch(r *http.Request, res *core.HitResult) {
	httpmw.Annotate(r.Context(), "algorithm", string(res.Algorithm))
	httpmw.Annotate(r.Context(), "results", len(res.Hits))
	if res.Shards > 1 {
		httpmw.Annotate(r.Context(), "shards", res.Shards)
	}
	if res.Partial {
		httpmw.Annotate(r.Context(), "partial", true)
		httpmw.Annotate(r.Context(), "failedShards", strings.Join(res.FailedShards, ","))
	}
	if res.RewritesTried > 0 {
		httpmw.Annotate(r.Context(), "rewritesTried", res.RewritesTried)
	}
}

// parseTraced parses the query under a "parse" span.
func parseTraced(r *http.Request, query string) (*twig.Query, error) {
	sp := obs.StartLeaf(r.Context(), "parse")
	q, err := twig.Parse(query)
	sp.SetErr(err)
	sp.End()
	return q, err
}
