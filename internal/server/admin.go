package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/httpmw"
	"lotusx/internal/metrics"
)

// The admin surface (mounted only with Config.EnableAdmin) manages served
// datasets without a restart.  Admin-created datasets are corpus-backed, so
// shards can be added, dropped and reindexed while queries keep flowing —
// every mutation publishes an atomic snapshot, in-flight requests finish on
// the snapshot they pinned.
//
//	POST   /api/v1/datasets/{name}?shards=N      ingest body XML as a new dataset
//	DELETE /api/v1/datasets/{name}               drop a dataset
//	POST   /api/v1/datasets/{name}/shards/{shard}?shards=N   ingest body XML as shard(s)
//	DELETE /api/v1/datasets/{name}/shards/{shard}            drop one shard (or split group)
//	POST   /api/v1/datasets/{name}/reindex?shard=S           rebuild all (or one) shard
//
// Ingest bodies are raw XML documents.  ?shards=N > 1 splits the document at
// record boundaries into N shards (see corpus.SplitDocument).  Dataset and
// shard names are strict path segments (see nameRE): dataset names become
// directories under CorpusDir, so anything traversal-shaped is rejected
// before it reaches the filesystem.

// maxIngestSize bounds admin ingest bodies — far above query bodies, since
// whole datasets arrive here.
const maxIngestSize = 256 << 20 // 256 MiB

// corpusFor resolves an admin route's dataset to its corpus.
func (s *Server) corpusFor(name string) (*corpus.Corpus, error) {
	b, err := s.catalog.GetBackend(name)
	if err != nil {
		return nil, err
	}
	c, ok := b.(*corpus.Corpus)
	if !ok {
		return nil, fmt.Errorf("dataset %q is a single document, not a corpus; shard management needs a corpus-backed dataset", name)
	}
	return c, nil
}

// nameRE is the shape of a dataset or shard path segment.  It is
// deliberately strict — one alphanumeric-led filesystem- and URL-safe
// token.  Dataset names become directories under CorpusDir, and Go's
// ServeMux unescapes wildcard segments, so a request for
// /api/v1/datasets/..%2Fetc would otherwise reach us as name "../etc";
// the leading-alphanumeric rule rejects "." and ".." (and hidden files),
// and the charset rejects separators outright.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// validSegment rejects dataset and shard names that could escape the
// corpus directory or break route addressing.
func validSegment(kind, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("bad %s name %q: want 1-128 chars of [A-Za-z0-9._-], starting with a letter or digit", kind, name)
	}
	return nil
}

// shardCount parses the optional ?shards=N split factor.
func shardCount(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shards")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > 1024 {
		return 0, fmt.Errorf("bad shards %q: want 1..1024", v)
	}
	return n, nil
}

// datasetStatus is the success payload of the mutating dataset routes.
type datasetStatus struct {
	Dataset string   `json:"dataset"`
	Shards  int      `json:"shards"`
	Seq     uint64   `json:"seq"`
	Names   []string `json:"shardNames,omitempty"`
}

func statusOf(name string, c *corpus.Corpus) datasetStatus {
	snap := c.Snapshot()
	return datasetStatus{Dataset: name, Shards: snap.Len(), Seq: snap.Seq(), Names: snap.Names()}
}

// handleDatasetCreate ingests the XML body as a new (or replacement)
// corpus-backed dataset, optionally split into ?shards=N shards.  Creates
// are serialized: re-POSTing a live corpus-backed name replaces its whole
// shard set through the existing corpus object (one snapshot swap, the
// sequence keeps climbing), so two creates can never interleave writes to
// the same persistence directory.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validSegment("dataset", name); err != nil {
		badQuery(w, err)
		return
	}
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, err)
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	dir := ""
	if s.corpusDir != "" {
		dir = filepath.Join(s.corpusDir, name)
	}
	var c *corpus.Corpus
	var replaced core.Backend
	if b, err := s.catalog.GetBackend(name); err == nil {
		if existing, ok := b.(*corpus.Corpus); ok && existing.Dir() == dir {
			c = existing
		} else {
			replaced = b
		}
	}
	if c == nil {
		c = corpus.New(name, corpus.Config{
			Dir:     dir,
			Metrics: s.reg.Corpus(name),
			Tuning:  s.corpusTuning,
			Logger:  s.logger,
		})
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestSize)
	if err := c.SetSplitReader(name, body, parts); err != nil {
		badQuery(w, fmt.Errorf("ingesting %q: %w", name, err))
		return
	}
	s.catalog.AddBackend(name, c)
	if replaced != nil {
		// The name now resolves to a brand-new backend whose generation
		// counter restarts from zero; drop the old wrapper so its cached
		// entries can never be keyed identically to the new dataset's.
		// (Re-ingest through the SAME corpus needs no drop: the snapshot
		// swap bumps the generation, which is part of every cache key.)
		s.dropCached(replaced)
	}
	writeJSON(w, http.StatusCreated, statusOf(name, c))
}

// handleDatasetDelete drops a dataset (engine- or corpus-backed) from the
// catalog.  A corpus persisted under CorpusDir also loses its on-disk
// directory — otherwise the next restart's corpus reload would resurrect
// the dataset.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	b, err := s.catalog.GetBackend(name)
	if err != nil || name == "" {
		notFound(w, fmt.Errorf("no dataset %q in catalog", name))
		return
	}
	if err := s.catalog.Remove(name); err != nil {
		notFound(w, err)
		return
	}
	s.dropCached(b)
	if c, ok := b.(*corpus.Corpus); ok {
		// Only purge directories directly under our own corpus root; the
		// corpus's recorded dir — not a fresh join of the request's name —
		// is what gets deleted, so a hostile name cannot aim this at
		// anything we did not create.
		if dir := c.Dir(); dir != "" && s.corpusDir != "" && filepath.Dir(dir) == filepath.Clean(s.corpusDir) {
			os.RemoveAll(dir)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name, "removed": true, "default": s.catalog.DefaultName(),
	})
}

// handleShardAdd ingests the XML body as one shard (or, with ?shards=N, a
// split group) of an existing corpus-backed dataset.
func (s *Server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	// Shard names never touch the filesystem (shard files are named by
	// sequence), but the same strict shape keeps them addressable in the
	// delete/reindex routes and unambiguous in the "name/NNN" group scheme.
	if err := validSegment("shard", shard); err != nil {
		badQuery(w, err)
		return
	}
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestSize)
	if err := c.AddSplitReader(shard, body, parts); err != nil {
		badQuery(w, fmt.Errorf("ingesting shard %q: %w", shard, err))
		return
	}
	writeJSON(w, http.StatusCreated, statusOf(name, c))
}

// handleShardDelete drops one shard (or a whole split group) from a
// corpus-backed dataset.
func (s *Server) handleShardDelete(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	if err := c.Remove(shard); err != nil {
		notFound(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(name, c))
}

// shardHealthStatus is the payload of the shard-health admin routes.
type shardHealthStatus struct {
	Dataset string              `json:"dataset"`
	Shard   string              `json:"shard"`
	Health  metrics.ShardHealth `json:"health"`
	// Reset reports that this response follows a breaker reset (POST).
	Reset bool `json:"reset,omitempty"`
}

// handleShardHealth reports one shard's circuit-breaker state.
//
//	GET /api/v1/datasets/{name}/shards/{shard}/health
func (s *Server) handleShardHealth(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	h, err := c.ShardHealthOf(shard)
	if err != nil {
		notFound(w, err)
		return
	}
	writeJSON(w, http.StatusOK, shardHealthStatus{Dataset: name, Shard: shard, Health: h})
}

// handleShardHealthReset force-closes one shard's circuit breaker — the
// operator's "I fixed it, let traffic back in" lever; the next fan-out
// evaluates the shard immediately instead of waiting out the cooldown.
//
//	POST /api/v1/datasets/{name}/shards/{shard}/health
func (s *Server) handleShardHealthReset(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	if err := c.ResetShardHealth(shard); err != nil {
		notFound(w, err)
		return
	}
	h, err := c.ShardHealthOf(shard)
	if err != nil {
		notFound(w, err)
		return
	}
	writeJSON(w, http.StatusOK, shardHealthStatus{Dataset: name, Shard: shard, Health: h, Reset: true})
}

// handleReindex rebuilds every shard of a corpus-backed dataset — or just
// ?shard=S — publishing the rebuilt engines in one snapshot swap.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	if err := c.Reindex(r.URL.Query().Get("shard")); err != nil {
		httpmw.WriteError(w, http.StatusNotFound, httpmw.CodeNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, statusOf(name, c))
}
