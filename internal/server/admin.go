package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"

	"lotusx/internal/corpus"
	"lotusx/internal/httpmw"
)

// The admin surface (mounted only with Config.EnableAdmin) manages served
// datasets without a restart.  Admin-created datasets are corpus-backed, so
// shards can be added, dropped and reindexed while queries keep flowing —
// every mutation publishes an atomic snapshot, in-flight requests finish on
// the snapshot they pinned.
//
//	POST   /api/v1/datasets/{name}?shards=N      ingest body XML as a new dataset
//	DELETE /api/v1/datasets/{name}               drop a dataset
//	POST   /api/v1/datasets/{name}/shards/{shard}?shards=N   ingest body XML as shard(s)
//	DELETE /api/v1/datasets/{name}/shards/{shard}            drop one shard (or split group)
//	POST   /api/v1/datasets/{name}/reindex?shard=S           rebuild all (or one) shard
//
// Ingest bodies are raw XML documents.  ?shards=N > 1 splits the document at
// record boundaries into N shards (see corpus.SplitDocument).

// maxIngestSize bounds admin ingest bodies — far above query bodies, since
// whole datasets arrive here.
const maxIngestSize = 256 << 20 // 256 MiB

// corpusFor resolves an admin route's dataset to its corpus.
func (s *Server) corpusFor(name string) (*corpus.Corpus, error) {
	b, err := s.catalog.GetBackend(name)
	if err != nil {
		return nil, err
	}
	c, ok := b.(*corpus.Corpus)
	if !ok {
		return nil, fmt.Errorf("dataset %q is a single document, not a corpus; shard management needs a corpus-backed dataset", name)
	}
	return c, nil
}

// shardCount parses the optional ?shards=N split factor.
func shardCount(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shards")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > 1024 {
		return 0, fmt.Errorf("bad shards %q: want 1..1024", v)
	}
	return n, nil
}

// datasetStatus is the success payload of the mutating dataset routes.
type datasetStatus struct {
	Dataset string   `json:"dataset"`
	Shards  int      `json:"shards"`
	Seq     uint64   `json:"seq"`
	Names   []string `json:"shardNames,omitempty"`
}

func statusOf(name string, c *corpus.Corpus) datasetStatus {
	snap := c.Snapshot()
	return datasetStatus{Dataset: name, Shards: snap.Len(), Seq: snap.Seq(), Names: snap.Names()}
}

// handleDatasetCreate ingests the XML body as a new (or replacement)
// corpus-backed dataset, optionally split into ?shards=N shards.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, err)
		return
	}
	cfg := corpus.Config{Metrics: s.reg.Corpus(name)}
	if s.corpusDir != "" {
		cfg.Dir = filepath.Join(s.corpusDir, name)
	}
	c := corpus.New(name, cfg)
	body := http.MaxBytesReader(w, r.Body, maxIngestSize)
	if err := c.AddSplitReader(name, body, parts); err != nil {
		badQuery(w, fmt.Errorf("ingesting %q: %w", name, err))
		return
	}
	s.catalog.AddBackend(name, c)
	writeJSON(w, http.StatusCreated, statusOf(name, c))
}

// handleDatasetDelete drops a dataset (engine- or corpus-backed) from the
// catalog.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.catalog.Remove(name); err != nil {
		notFound(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name, "removed": true, "default": s.catalog.DefaultName(),
	})
}

// handleShardAdd ingests the XML body as one shard (or, with ?shards=N, a
// split group) of an existing corpus-backed dataset.
func (s *Server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestSize)
	if err := c.AddSplitReader(shard, body, parts); err != nil {
		badQuery(w, fmt.Errorf("ingesting shard %q: %w", shard, err))
		return
	}
	writeJSON(w, http.StatusCreated, statusOf(name, c))
}

// handleShardDelete drops one shard (or a whole split group) from a
// corpus-backed dataset.
func (s *Server) handleShardDelete(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	if err := c.Remove(shard); err != nil {
		notFound(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(name, c))
}

// handleReindex rebuilds every shard of a corpus-backed dataset — or just
// ?shard=S — publishing the rebuilt engines in one snapshot swap.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, err)
		return
	}
	if err := c.Reindex(r.URL.Query().Get("shard")); err != nil {
		httpmw.WriteError(w, http.StatusNotFound, httpmw.CodeNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, statusOf(name, c))
}
