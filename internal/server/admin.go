package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/httpmw"
	"lotusx/internal/ingest"
	"lotusx/internal/metrics"
)

// The admin surface (mounted only with Config.EnableAdmin) manages served
// datasets without a restart.  Admin-created datasets are corpus-backed, so
// shards can be added, dropped and reindexed while queries keep flowing —
// every mutation publishes an atomic snapshot, in-flight requests finish on
// the snapshot they pinned.
//
//	POST   /api/v1/datasets/{name}?shards=N      ingest body XML as a new dataset
//	DELETE /api/v1/datasets/{name}               drop a dataset
//	POST   /api/v1/datasets/{name}/shards/{shard}?shards=N   ingest body XML as shard(s)
//	DELETE /api/v1/datasets/{name}/shards/{shard}            drop one shard (or split group)
//	POST   /api/v1/datasets/{name}/reindex?shard=S           rebuild all (or one) shard
//	POST   /api/v1/datasets/{name}/compact                   fold delta shards into base shards
//
// Ingest bodies are raw XML documents.  ?shards=N > 1 splits the document at
// record boundaries into N shards (see corpus.SplitDocument).  Dataset and
// shard names are strict path segments (see nameRE): dataset names become
// directories under CorpusDir, so anything traversal-shaped is rejected
// before it reaches the filesystem.
//
// # Async ingestion
//
// The two ingest routes are asynchronous by default: the body is spooled to
// a temp file (hashed while it streams), a job is enqueued on the bounded
// worker pool (internal/ingest), and the response is 202 Accepted with a
// {"job": ...} envelope plus a Location header pointing at
// /api/v1/jobs/{id} for polling.  Identical concurrent submissions (same
// dataset, same content hash, same split factor) coalesce onto one job.
// ?sync=1 restores the blocking behavior: the work runs on the request
// goroutine and the response is the final 201 + {"status": ...}.
//
// A dataset create replaces the whole shard set (base shards) either way; an
// asynchronous shard add lands as a DELTA shard — a small independent shard
// published without touching the base set — and a background compaction job
// folds accumulated deltas into base shards once the dataset crosses the
// compaction threshold (or on explicit POST .../compact).  See
// docs/API.md for the jobs lifecycle.

// maxIngestSize bounds admin ingest bodies — far above query bodies, since
// whole datasets arrive here.
const maxIngestSize = 256 << 20 // 256 MiB

// corpusFor resolves an admin route's dataset to its corpus.
func (s *Server) corpusFor(name string) (*corpus.Corpus, error) {
	b, err := s.catalog.GetBackend(name)
	if err != nil {
		return nil, err
	}
	c, ok := b.(*corpus.Corpus)
	if !ok {
		return nil, fmt.Errorf("dataset %q is a single document, not a corpus; shard management needs a corpus-backed dataset", name)
	}
	return c, nil
}

// nameRE is the shape of a dataset or shard path segment.  It is
// deliberately strict — one alphanumeric-led filesystem- and URL-safe
// token.  Dataset names become directories under CorpusDir, and Go's
// ServeMux unescapes wildcard segments, so a request for
// /api/v1/datasets/..%2Fetc would otherwise reach us as name "../etc";
// the leading-alphanumeric rule rejects "." and ".." (and hidden files),
// and the charset rejects separators outright.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// validSegment rejects dataset and shard names that could escape the
// corpus directory or break route addressing.
func validSegment(kind, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("bad %s name %q: want 1-128 chars of [A-Za-z0-9._-], starting with a letter or digit", kind, name)
	}
	return nil
}

// shardCount parses the optional ?shards=N split factor.
func shardCount(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shards")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > 1024 {
		return 0, fmt.Errorf("bad shards %q: want 1..1024", v)
	}
	return n, nil
}

// syncRequested reports the ?sync=1 escape hatch: run the write on the
// request goroutine instead of the async job queue.
func syncRequested(r *http.Request) bool {
	return r.URL.Query().Get("sync") == "1"
}

// datasetStatus is the typed status object of every dataset/shard write
// route's success envelope, {"status": {...}}.
type datasetStatus struct {
	Dataset string `json:"dataset"`
	Shards  int    `json:"shards"`
	// DeltaShards counts async-ingested delta shards awaiting compaction.
	DeltaShards int      `json:"deltaShards,omitempty"`
	Seq         uint64   `json:"seq"`
	Names       []string `json:"shardNames,omitempty"`
	// Removed marks the response of a successful DELETE.
	Removed bool `json:"removed,omitempty"`
	// Default names the catalog's default dataset after a DELETE changed it.
	Default string `json:"default,omitempty"`
}

// statusEnvelope wraps datasetStatus — the uniform success body of the
// mutating admin routes.
type statusEnvelope struct {
	Status datasetStatus `json:"status"`
}

func statusOf(name string, c *corpus.Corpus) datasetStatus {
	snap := c.Snapshot()
	return datasetStatus{
		Dataset:     name,
		Shards:      snap.Len(),
		DeltaShards: snap.DeltaCount(),
		Seq:         snap.Seq(),
		Names:       snap.Names(),
	}
}

// writeStatus answers a successful mutation: the {"status": ...} envelope,
// with a Location header on resource-creating statuses (201/202).
func writeStatus(w http.ResponseWriter, code int, location string, st datasetStatus) {
	if location != "" && (code == http.StatusCreated || code == http.StatusAccepted) {
		w.Header().Set("Location", location)
	}
	writeJSON(w, code, statusEnvelope{Status: st})
}

// spooled is a request body staged to disk for async ingestion: the handler
// streams (and hashes) the body before answering 202, so the job needs no
// live connection and identical uploads dedup by content.
type spooled struct {
	path string
	size int64
	hash string // hex sha256 of the body
}

// cleanup removes the spool file; safe to call more than once.
func (sp *spooled) cleanup() { os.Remove(sp.path) }

// spoolBody streams the request body to a temp file, hashing as it copies.
// The caller owns the file and must arrange cleanup on every path.
func (s *Server) spoolBody(w http.ResponseWriter, r *http.Request) (*spooled, error) {
	dir := os.TempDir()
	if s.corpusDir != "" {
		// Spool next to the corpus directories: same filesystem as the final
		// shard files, and a place the operator already watches for space.
		if err := os.MkdirAll(s.corpusDir, 0o755); err == nil {
			dir = s.corpusDir
		}
	}
	f, err := os.CreateTemp(dir, "ingest-spool-*.xml")
	if err != nil {
		return nil, fmt.Errorf("spooling ingest body: %w", err)
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(f, h), http.MaxBytesReader(w, r.Body, s.maxIngest))
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return nil, err
	}
	return &spooled{path: f.Name(), size: n, hash: hex.EncodeToString(h.Sum(nil))}, nil
}

// isTooLarge reports whether err came from the MaxBytesReader bound.
func isTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// limitTracker remembers when the MaxBytesReader under it tripped.  The XML
// lexer deliberately folds read errors into a truncation SyntaxError, which
// would turn an over-limit body into a 400; the tracker lets the sync
// handlers still answer 413.
type limitTracker struct {
	r       io.Reader
	tripped bool
}

func (l *limitTracker) Read(p []byte) (int, error) {
	n, err := l.r.Read(p)
	if err != nil && isTooLarge(err) {
		l.tripped = true
	}
	return n, err
}

// syncBody wraps the request body for a synchronous ingest: bounded, with
// the bound's trip observable after the parse fails.
func (s *Server) syncBody(w http.ResponseWriter, r *http.Request) *limitTracker {
	return &limitTracker{r: http.MaxBytesReader(w, r.Body, s.maxIngest)}
}

// ingestErr substitutes the over-limit error when the tracker tripped, so
// writeIngestError classifies it as 413 even though the parser rewrote it.
func ingestErr(lt *limitTracker, err error) error {
	if err != nil && lt.tripped && !isTooLarge(err) {
		return &http.MaxBytesError{}
	}
	return err
}

// writeIngestError maps a sync-ingest failure to its envelope: 413 for an
// over-limit body, 400 for everything else (parse errors, bad XML).
func writeIngestError(w http.ResponseWriter, r *http.Request, err error) {
	if isTooLarge(err) {
		tooLarge(w, r, err)
		return
	}
	badQuery(w, r, err)
}

// createDataset ingests body as a new (or replacement) corpus-backed dataset
// split into parts shards — the shared core of the sync handler and the
// async job.  Creates are serialized under adminMu: re-POSTing a live
// corpus-backed name replaces its whole shard set through the existing
// corpus object (one snapshot swap, the sequence keeps climbing), so two
// creates can never interleave writes to the same persistence directory.
func (s *Server) createDataset(name string, body io.Reader, parts int) (datasetStatus, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	dir := ""
	if s.corpusDir != "" {
		dir = filepath.Join(s.corpusDir, name)
	}
	var c *corpus.Corpus
	var replaced core.Backend
	if b, err := s.catalog.GetBackend(name); err == nil {
		if existing, ok := b.(*corpus.Corpus); ok && existing.Dir() == dir {
			c = existing
		} else {
			replaced = b
		}
	}
	if c == nil {
		c = corpus.New(name, corpus.Config{
			Dir:      dir,
			Metrics:  s.reg.Corpus(name),
			Tuning:   s.corpusTuning,
			Logger:   s.logger,
			Faults:   s.faults,
			Compress: s.compress,
		})
	}
	if err := c.SetSplitReader(name, body, parts); err != nil {
		return datasetStatus{}, fmt.Errorf("ingesting %q: %w", name, err)
	}
	s.catalog.AddBackend(name, c)
	if replaced != nil {
		// The name now resolves to a brand-new backend whose generation
		// counter restarts from zero; drop the old wrapper so its cached
		// entries can never be keyed identically to the new dataset's.
		// (Re-ingest through the SAME corpus needs no drop: the snapshot
		// swap bumps the generation, which is part of every cache key.)
		s.dropCached(replaced)
	}
	return statusOf(name, c), nil
}

// handleDatasetCreate ingests the XML body as a new (or replacement)
// corpus-backed dataset, optionally split into ?shards=N shards.  Default:
// async — spool, enqueue, 202 + {"job": ...}.  ?sync=1: ingest on the
// request goroutine, 201 + {"status": ...}.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validSegment("dataset", name); err != nil {
		badQuery(w, r, err)
		return
	}
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, r, err)
		return
	}
	if syncRequested(r) {
		lt := s.syncBody(w, r)
		st, err := s.createDataset(name, lt, parts)
		if err != nil {
			writeIngestError(w, r, ingestErr(lt, err))
			return
		}
		writeStatus(w, http.StatusCreated, "/api/v1/datasets/"+name, st)
		return
	}
	sp, err := s.spoolBody(w, r)
	if err != nil {
		writeIngestError(w, r, err)
		return
	}
	s.enqueueJournaled(w, r, sp, "", parts, ingest.Request{
		Kind:    "dataset",
		Dataset: name,
		Key:     fmt.Sprintf("dataset:%s:%s:%d", name, sp.hash, parts),
		Bytes:   sp.size,
		Run: func(ctx context.Context) (ingest.Result, error) {
			f, err := os.Open(sp.path)
			if err != nil {
				return ingest.Result{}, err
			}
			defer f.Close()
			st, err := s.createDataset(name, f, parts)
			if err != nil {
				return ingest.Result{}, err
			}
			return ingest.Result{Shards: st.Shards, Seq: st.Seq}, nil
		},
	})
}

// handleDatasetDelete drops a dataset (engine- or corpus-backed) from the
// catalog.  A corpus persisted under CorpusDir also loses its on-disk
// directory — otherwise the next restart's corpus reload would resurrect
// the dataset.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	b, err := s.catalog.GetBackend(name)
	if err != nil || name == "" {
		notFound(w, r, fmt.Errorf("no dataset %q in catalog", name))
		return
	}
	if err := s.catalog.Remove(name); err != nil {
		notFound(w, r, err)
		return
	}
	s.dropCached(b)
	if c, ok := b.(*corpus.Corpus); ok {
		// Only purge directories directly under our own corpus root; the
		// corpus's recorded dir — not a fresh join of the request's name —
		// is what gets deleted, so a hostile name cannot aim this at
		// anything we did not create.
		if dir := c.Dir(); dir != "" && s.corpusDir != "" && filepath.Dir(dir) == filepath.Clean(s.corpusDir) {
			os.RemoveAll(dir)
		}
	}
	writeStatus(w, http.StatusOK, "", datasetStatus{
		Dataset: name, Removed: true, Default: s.catalog.DefaultName(),
	})
}

// addShard ingests body as one shard (or a ?shards=N split group) of an
// existing corpus-backed dataset.  delta selects the async landing: a delta
// shard published without touching the base set, left for compaction.
func (s *Server) addShard(name, shard string, body io.Reader, parts int, delta bool) (datasetStatus, error) {
	c, err := s.corpusFor(name)
	if err != nil {
		return datasetStatus{}, err
	}
	if delta {
		err = c.AddDeltaSplitReader(shard, body, parts)
	} else {
		err = c.AddSplitReader(shard, body, parts)
	}
	if err != nil {
		return datasetStatus{}, fmt.Errorf("ingesting shard %q: %w", shard, err)
	}
	return statusOf(name, c), nil
}

// handleShardAdd ingests the XML body as one shard (or, with ?shards=N, a
// split group) of an existing corpus-backed dataset.  Default: async — the
// shard lands as a delta shard and the response is 202 + {"job": ...};
// crossing the compaction threshold schedules a background compaction.
// ?sync=1: ingest on the request goroutine as a base shard, 201 +
// {"status": ...}.
func (s *Server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	// Shard names never touch the filesystem (shard files are named by
	// sequence), but the same strict shape keeps them addressable in the
	// delete/reindex routes and unambiguous in the "name/NNN" group scheme.
	if err := validSegment("shard", shard); err != nil {
		badQuery(w, r, err)
		return
	}
	if _, err := s.corpusFor(name); err != nil {
		notFound(w, r, err)
		return
	}
	parts, err := shardCount(r)
	if err != nil {
		badQuery(w, r, err)
		return
	}
	if syncRequested(r) {
		lt := s.syncBody(w, r)
		st, err := s.addShard(name, shard, lt, parts, false)
		if err != nil {
			writeIngestError(w, r, ingestErr(lt, err))
			return
		}
		writeStatus(w, http.StatusCreated, "/api/v1/datasets/"+name+"/shards/"+shard, st)
		return
	}
	sp, err := s.spoolBody(w, r)
	if err != nil {
		writeIngestError(w, r, err)
		return
	}
	s.enqueueJournaled(w, r, sp, shard, parts, ingest.Request{
		Kind:    "shard",
		Dataset: name,
		Key:     fmt.Sprintf("shard:%s/%s:%s:%d", name, shard, sp.hash, parts),
		Bytes:   sp.size,
		Run: func(ctx context.Context) (ingest.Result, error) {
			f, err := os.Open(sp.path)
			if err != nil {
				return ingest.Result{}, err
			}
			defer f.Close()
			st, err := s.addShard(name, shard, f, parts, true)
			if err != nil {
				return ingest.Result{}, err
			}
			s.maybeCompact(name)
			return ingest.Result{Shards: st.Shards, Seq: st.Seq}, nil
		},
	})
}

// handleShardDelete drops one shard (or a whole split group) from a
// corpus-backed dataset.
func (s *Server) handleShardDelete(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, r, err)
		return
	}
	if err := c.Remove(shard); err != nil {
		notFound(w, r, err)
		return
	}
	writeStatus(w, http.StatusOK, "", statusOf(name, c))
}

// shardHealthStatus is the payload of the shard-health admin routes.
type shardHealthStatus struct {
	Dataset string              `json:"dataset"`
	Shard   string              `json:"shard"`
	Health  metrics.ShardHealth `json:"health"`
	// Reset reports that this response follows a breaker reset (POST).
	Reset bool `json:"reset,omitempty"`
}

// handleShardHealth reports one shard's circuit-breaker state.
//
//	GET /api/v1/datasets/{name}/shards/{shard}/health
func (s *Server) handleShardHealth(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, r, err)
		return
	}
	h, err := c.ShardHealthOf(shard)
	if err != nil {
		notFound(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, shardHealthStatus{Dataset: name, Shard: shard, Health: h})
}

// handleShardHealthReset force-closes one shard's circuit breaker — the
// operator's "I fixed it, let traffic back in" lever; the next fan-out
// evaluates the shard immediately instead of waiting out the cooldown.
//
//	POST /api/v1/datasets/{name}/shards/{shard}/health
func (s *Server) handleShardHealthReset(w http.ResponseWriter, r *http.Request) {
	name, shard := r.PathValue("name"), r.PathValue("shard")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, r, err)
		return
	}
	if err := c.ResetShardHealth(shard); err != nil {
		notFound(w, r, err)
		return
	}
	h, err := c.ShardHealthOf(shard)
	if err != nil {
		notFound(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, shardHealthStatus{Dataset: name, Shard: shard, Health: h, Reset: true})
}

// handleReindex rebuilds every shard of a corpus-backed dataset — or just
// ?shard=S — publishing the rebuilt engines in one snapshot swap.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c, err := s.corpusFor(name)
	if err != nil {
		notFound(w, r, err)
		return
	}
	if err := c.Reindex(r.URL.Query().Get("shard")); err != nil {
		httpmw.WriteErrorCtx(r.Context(), w, http.StatusNotFound, httpmw.CodeNotFound, err.Error())
		return
	}
	writeStatus(w, http.StatusOK, "", statusOf(name, c))
}
