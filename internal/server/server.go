// Package server exposes the LotusX engine over HTTP — the production
// serving layer that grew out of the demo paper's web GUI.  The versioned
// JSON API under /api/v1 mirrors the GUI's interactions one-to-one:
// statistics, position-aware completion while a twig grows, query evaluation
// with ranking and rewriting, and answer snippets.  Every request runs under
// a configurable deadline with cooperative mid-join cancellation, behind a
// middleware stack (request IDs, structured logging, panic recovery, load
// shedding) with per-endpoint metrics at /api/v1/metrics.  The legacy
// un-versioned /api/... paths remain as deprecated aliases.  See README.md
// in this directory for the full v1 surface.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotusx/internal/cache"
	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/faults"
	"lotusx/internal/httpmw"
	"lotusx/internal/ingest"
	"lotusx/internal/join"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/slo"
	"lotusx/internal/twig"
)

// Request-validation bounds, enforced server-side so one request cannot ask
// for unbounded work.
const (
	maxK        = 1000
	maxOffset   = 1_000_000
	maxBodySize = 1 << 20 // 1 MiB query bodies
)

// Config tunes the serving layer.  The zero value serves with no deadline,
// no concurrency cap, and silent logs — the permissive demo setup.
type Config struct {
	// QueryTimeout bounds every API request; expired requests answer 504
	// with the timeout envelope.  0 disables the deadline.
	QueryTimeout time.Duration
	// MaxInflight caps concurrent API requests; excess load is shed with
	// 503 + Retry-After (the server as a whole is saturated — retry against
	// another instance).  0 disables the limiter.
	MaxInflight int
	// RateQPS enables per-client admission control: each client (the
	// X-Lotusx-Client header, else the remote address) gets a token bucket
	// refilled at this rate, and requests beyond it answer 429 + Retry-After
	// (this client specifically is over its rate — slow down).  0 disables
	// the limiter.  Health, metrics and job-poll routes are exempt, like the
	// in-flight limiter's.
	RateQPS float64
	// RateBurst is the rate limiter's bucket depth — how far a client may
	// burst above the sustained rate.  0 derives a default from RateQPS.
	RateBurst int
	// Logger receives structured request and panic logs; nil discards them.
	Logger *slog.Logger
	// Metrics is the registry backing /api/v1/metrics; nil allocates a
	// fresh one.
	Metrics *metrics.Registry
	// EnableAdmin mounts the mutating dataset-management routes (POST/DELETE
	// under /api/v1/datasets/...); off by default — the admin surface changes
	// and deletes served data, so it must be an explicit opt-in.
	EnableAdmin bool
	// CorpusDir, when non-empty with EnableAdmin, persists admin-created
	// corpora under <CorpusDir>/<dataset>/ (manifest + shard files).
	CorpusDir string
	// Corpus carries the fault-tolerance knobs (shard policy, time budgets,
	// circuit breaker) applied to admin-created corpora; the zero value is
	// the corpus package's production defaults.
	Corpus corpus.Tuning
	// CompressIndex opts admin-created corpora into the DAG-compressed index
	// substrate (corpus.Config.Compress): repeated subtree shapes are stored
	// once and joins run once per distinct shape, with a per-shard fallback
	// to the raw substrate when the data doesn't repeat enough.
	CompressIndex bool
	// SlowQuery is the slow-query log threshold: query and completion
	// requests taking at least this long are logged at WARN with their full
	// per-stage trace breakdown and a sanitized query.  0 disables the log
	// (and with it the always-on tracing of every request; ?debug=trace
	// still traces individual requests on demand).
	SlowQuery time.Duration
	// DisableResultCache turns off the snapshot-keyed search-result cache.
	// The zero value serves query answers through the cache (bounded by
	// CacheBytes, invalidated by snapshot generation — see internal/cache
	// and docs/PERFORMANCE.md).
	DisableResultCache bool
	// DisableCompletionCache turns off the completion cache (with its
	// prefix-extension fast path); on by default like the result cache.
	DisableCompletionCache bool
	// CacheBytes bounds the hot-path caches together (results 3/4,
	// completions 1/4).  0 means 64 MiB; negative disables both caches
	// regardless of the Disable* flags.
	CacheBytes int64
	// IngestWorkers sizes the async-ingest worker pool (admin only; 0 means
	// the ingest package default of 2).
	IngestWorkers int
	// IngestQueue bounds the queued-but-not-running ingest backlog; enqueues
	// beyond it answer 503 (0 means the default of 32).
	IngestQueue int
	// CompactThreshold is the delta-shard count at which a finished async
	// ingest schedules a background compaction of its dataset.  0 means the
	// default (4); negative disables automatic compaction (the explicit
	// POST .../compact route still works).
	CompactThreshold int
	// MaxIngestBytes bounds admin ingest bodies; larger uploads answer 413
	// (0 means the default of 256 MiB).
	MaxIngestBytes int64
	// DisableLegacyRoutes turns the deprecated un-versioned /api/... aliases
	// into 410 Gone answers (they still carry the Sunset header), the
	// rollout lever for retiring the legacy surface.
	DisableLegacyRoutes bool
	// Faults, when non-nil, arms deterministic fault-injection sites in the
	// ingest pipeline and in admin-created corpora (tests and fault drills).
	Faults *faults.Registry
	// ClusterStatus, when non-nil, mounts GET /api/v1/cluster answering the
	// callback's value — the router mode's topology, replication and hedging
	// view (see docs/CLUSTER.md).  Nil (every non-router deployment) leaves
	// the route unmounted.
	ClusterStatus func() any
	// TraceCapacity bounds the tail-sampled trace store behind
	// GET /api/v1/traces: every request roots a trace, and interesting ones
	// (errors, partials, quarantines, hedges, slow-threshold crossings) plus
	// a uniform sample are retained for after-the-fact inspection.  0 means
	// the default (512 records); negative disables the store (and with it
	// the always-on rooting it implies).
	TraceCapacity int
	// TraceSampleEvery keeps one of every N uninteresting traces in the
	// store's uniform sample; 0 means the store default (64), negative
	// disables the sample (interesting traces are still retained).
	TraceSampleEvery int
	// SLO, when non-nil, tracks the declared service-level objectives over
	// the serving routes: every non-admin, non-observability response feeds
	// it, /api/v1/metrics and the Prometheus exposition report compliance
	// and burn rates, and /readyz flips to "ready (slo-burning)" while the
	// fast window burns (see internal/slo and docs/OBSERVABILITY.md).
	SLO *slo.Tracker
}

// defaultCompactThreshold is the delta-shard backlog that triggers an
// automatic background compaction after an async ingest completes.
const defaultCompactThreshold = 4

// Server handles the LotusX HTTP API.  It serves one or more datasets from
// a core.Catalog; requests select one with ?dataset=, defaulting to the
// first registered.  A dataset may be a single engine or a sharded corpus —
// query, completion and explain answer identically for both (?shard= addresses
// one shard where a single document is needed, e.g. /node and /guide).
type Server struct {
	catalog      *core.Catalog
	mux          *http.ServeMux
	handler      http.Handler
	reg          *metrics.Registry
	corpusDir    string
	corpusTuning corpus.Tuning
	compress     bool // admin-created corpora use the compressed substrate
	slowQuery    time.Duration
	logger       *slog.Logger
	faults       *faults.Registry
	// clusterStatus backs GET /api/v1/cluster; nil leaves it unmounted.
	clusterStatus func() any
	// traces is the tail-sampled trace store behind GET /api/v1/traces; nil
	// when Config.TraceCapacity is negative.
	traces *obs.Store
	// slo tracks the declared service-level objectives; nil when none are.
	slo *slo.Tracker

	// queue is the async ingestion pipeline (nil unless EnableAdmin): admin
	// writes enqueue jobs here and answer 202; see internal/ingest.
	queue            *ingest.Queue
	compactThreshold int
	maxIngest        int64
	// journal is the durable accept/terminal log behind the async admin
	// writes, opened lazily under journalMu on the first accepted write (or
	// at startup when the corpus dir already exists); nil unless EnableAdmin
	// with a CorpusDir.  journalOff latches an open failure so the server
	// keeps serving (without durability) instead of retrying forever.  See
	// lifecycle.go.
	journal    *ingest.Journal
	journalMu  sync.Mutex
	journalOff bool
	// draining flips on BeginDrain: the drain gate refuses new non-exempt
	// requests and /readyz reports not ready.
	draining atomic.Bool

	// routes is the mounted route table — the single source of truth for the
	// HTTP surface, kept for the API contract dump (see contract.go).
	routes []route
	// adminMu serializes the admin routes that create or delete whole
	// datasets: concurrent creates of the same name must not race each
	// other (or a delete) over the dataset's persistence directory.
	adminMu sync.Mutex

	// caches is the hot-path cache pair (results + completions); the catalog
	// always holds RAW backends (type asserts in engineFor/handleStats and
	// the admin routes must keep seeing concrete types), and the serving
	// handlers fetch a memoized cache-wrapped view per backend instead.
	caches   *cache.Set
	cachedMu sync.Mutex
	cached   map[core.Backend]core.Backend
}

// New returns a Server over a single engine (a one-dataset catalog) with
// the zero Config.
func New(engine *core.Engine) *Server { return NewConfig(engine, Config{}) }

// NewConfig returns a Server over a single engine with the given Config.
func NewConfig(engine *core.Engine, cfg Config) *Server {
	c := core.NewCatalog()
	c.Add(engine.Stats().Document, engine)
	return NewCatalogConfig(c, cfg)
}

// NewCatalog returns a Server over several named datasets with the zero
// Config.
func NewCatalog(catalog *core.Catalog) *Server { return NewCatalogConfig(catalog, Config{}) }

// NewCatalogConfig returns a Server over several named datasets, wiring the
// middleware stack and per-endpoint metrics from cfg.
func NewCatalogConfig(catalog *core.Catalog, cfg Config) *Server {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	compactThreshold := cfg.CompactThreshold
	switch {
	case compactThreshold == 0:
		compactThreshold = defaultCompactThreshold
	case compactThreshold < 0:
		compactThreshold = 0 // disabled
	}
	s := &Server{
		catalog:      catalog,
		mux:          http.NewServeMux(),
		reg:          reg,
		corpusDir:    cfg.CorpusDir,
		corpusTuning: cfg.Corpus,
		compress:     cfg.CompressIndex,
		slowQuery:    cfg.SlowQuery,
		logger:       logger,
		faults:       cfg.Faults,
		caches: cache.NewSet(cache.Config{
			Results:     !cfg.DisableResultCache,
			Completions: !cfg.DisableCompletionCache,
			MaxBytes:    cacheBytes,
			Metrics:     reg,
		}),
		cached:           make(map[core.Backend]core.Backend),
		compactThreshold: compactThreshold,
		maxIngest:        cfg.MaxIngestBytes,
		clusterStatus:    cfg.ClusterStatus,
		slo:              cfg.SLO,
	}
	if cfg.TraceCapacity >= 0 {
		s.traces = obs.NewStore(obs.StoreConfig{
			Capacity:      cfg.TraceCapacity,
			SlowThreshold: cfg.SlowQuery,
			SampleEvery:   cfg.TraceSampleEvery,
		})
	}
	if s.maxIngest <= 0 {
		s.maxIngest = maxIngestSize
	}
	// Lifecycle metrics exist on every server so the exposition is uniform
	// (draining 0 until a drain starts, journal counters 0 without admin).
	lifecycle := reg.Lifecycle()
	if cfg.EnableAdmin {
		s.queue = ingest.New(ingest.Config{
			Workers:  cfg.IngestWorkers,
			Capacity: cfg.IngestQueue,
			Metrics:  reg.Ingest(),
			Stages:   reg,
			Faults:   cfg.Faults,
			Logger:   logger,
		})
		if s.corpusDir != "" {
			s.startJournal()
		}
	}

	s.routes = routeTable(s)
	s.mount(cfg)

	exempt := shedExemptMatcher(s.routes)
	mws := []httpmw.Middleware{
		httpmw.RequestID(),
		httpmw.Logging(cfg.Logger),
		httpmw.Recover(cfg.Logger),
		// The drain gate sits ahead of the limiters: once BeginDrain flips,
		// new non-exempt requests answer 503 immediately while requests
		// already past the gate finish on their own time.
		httpmw.DrainGate(s.draining.Load, httpmw.DrainGateOptions{
			RetryAfter: time.Second,
			OnReject: func(r *http.Request) {
				lifecycle.DrainRejected.Add(1)
				ep := reg.Endpoint(endpointName(r.URL.Path))
				ep.Record(http.StatusServiceUnavailable, 0)
				ep.Shed.Add(1)
			},
			Exempt: exempt,
		}),
		httpmw.Limit(cfg.MaxInflight, httpmw.LimitOptions{
			RetryAfter: time.Second,
			OnShed: func(r *http.Request) {
				// Shed requests never reach per-endpoint instrumentation;
				// record them here so the endpoint's counters stay honest.
				ep := reg.Endpoint(endpointName(r.URL.Path))
				ep.Record(http.StatusServiceUnavailable, 0)
				ep.Shed.Add(1)
			},
			// Shed-exempt routes (marked in the route table) bypass the
			// limiter: observability must survive overload, and job polls
			// must answer while the ingest that created them loads the box.
			Exempt: exempt,
		}),
	}
	if cfg.RateQPS > 0 {
		mws = append(mws, httpmw.RateLimit(httpmw.RateLimitOptions{
			QPS:     cfg.RateQPS,
			Burst:   cfg.RateBurst,
			Metrics: reg.Admission(),
			OnLimited: func(r *http.Request, client string) {
				// Record tallies 429s into Shed itself.
				reg.Endpoint(endpointName(r.URL.Path)).Record(http.StatusTooManyRequests, 0)
			},
			Exempt: exempt,
		}))
	}
	mws = append(mws, httpmw.Deadline(cfg.QueryTimeout))
	s.handler = httpmw.Chain(s.mux, mws...)
	return s
}

// route is one row of the server's route table — the single source of truth
// for the HTTP surface.  Everything derives from it: the mux registrations,
// the legacy aliases, the per-path 405 fallbacks with their Allow headers,
// the load-shedding exemptions, and the API contract dump (contract.go).
type route struct {
	method string // HTTP method
	path   string // Go 1.22 ServeMux pattern
	name   string // metrics endpoint name
	h      http.HandlerFunc
	admin  bool // mounted only with Config.EnableAdmin
	legacy bool // also aliased under un-versioned /api/ with Deprecation+Sunset
	exempt bool // bypasses the load limiter
	router bool // mounted only with Config.ClusterStatus (router mode)
}

// routeTable declares every route the server can serve.
func routeTable(s *Server) []route {
	return []route{
		// The read surface, aliased under the legacy un-versioned prefix.
		{method: "GET", path: "/api/v1/stats", name: "stats", h: s.handleStats, legacy: true},
		{method: "GET", path: "/api/v1/datasets", name: "datasets", h: s.handleDatasets, legacy: true},
		{method: "GET", path: "/api/v1/complete", name: "complete", h: s.handleComplete, legacy: true},
		{method: "GET", path: "/api/v1/explain", name: "explain", h: s.handleExplain, legacy: true},
		{method: "POST", path: "/api/v1/query", name: "query", h: s.handleQuery, legacy: true},
		{method: "GET", path: "/api/v1/node/{id}", name: "node", h: s.handleNode, legacy: true},
		{method: "GET", path: "/api/v1/guide", name: "guide", h: s.handleGuide, legacy: true},
		// Observability; exempt from load shedding.
		{method: "GET", path: "/api/v1/cluster", name: "cluster", h: s.handleCluster, router: true, exempt: true},
		{method: "GET", path: "/api/v1/cluster/metrics", name: "cluster", h: s.handleClusterMetrics, router: true, exempt: true},
		{method: "GET", path: "/api/v1/metrics", name: "metrics", h: s.handleMetrics, exempt: true},
		{method: "GET", path: "/api/v1/traces", name: "traces", h: s.handleTraces, exempt: true},
		{method: "GET", path: "/api/v1/traces/{id}", name: "traces", h: s.handleTrace, exempt: true},
		{method: "GET", path: "/metrics", name: "prometheus", h: s.handlePrometheus, exempt: true},
		// The async-ingestion jobs API; polls stay exempt so clients can watch
		// a job while the ingest it describes loads the server.
		{method: "GET", path: "/api/v1/jobs", name: "jobs", h: s.handleJobs, admin: true, exempt: true},
		{method: "GET", path: "/api/v1/jobs/{id}", name: "jobs", h: s.handleJob, admin: true, exempt: true},
		// The admin write surface.
		{method: "POST", path: "/api/v1/datasets/{name}", name: "admin", h: s.handleDatasetCreate, admin: true},
		{method: "DELETE", path: "/api/v1/datasets/{name}", name: "admin", h: s.handleDatasetDelete, admin: true},
		{method: "POST", path: "/api/v1/datasets/{name}/shards/{shard}", name: "admin", h: s.handleShardAdd, admin: true},
		{method: "DELETE", path: "/api/v1/datasets/{name}/shards/{shard}", name: "admin", h: s.handleShardDelete, admin: true},
		{method: "GET", path: "/api/v1/datasets/{name}/shards/{shard}/health", name: "admin", h: s.handleShardHealth, admin: true},
		{method: "POST", path: "/api/v1/datasets/{name}/shards/{shard}/health", name: "admin", h: s.handleShardHealthReset, admin: true},
		{method: "POST", path: "/api/v1/datasets/{name}/reindex", name: "admin", h: s.handleReindex, admin: true},
		{method: "POST", path: "/api/v1/datasets/{name}/compact", name: "admin", h: s.handleCompact, admin: true},
	}
}

// sunsetDate is the RFC 8594 Sunset value advertised on every legacy alias:
// the date after which the un-versioned /api/... surface may be removed.
const sunsetDate = "Wed, 01 Sep 2027 00:00:00 GMT"

// fallbackMethods is the method set considered when generating per-path 405
// fallbacks; HEAD is omitted for paths that serve GET (the mux routes HEAD
// through GET patterns).
var fallbackMethods = []string{"GET", "HEAD", "POST", "PUT", "DELETE", "PATCH", "OPTIONS"}

// mount derives the full mux from the route table: instrumented method
// registrations, legacy aliases, and 405+Allow fallbacks for every known
// path under each unregistered method.
func (s *Server) mount(cfg Config) {
	// methodsByPath collects, per mounted path, the methods it serves — the
	// source of both the Allow headers and the fallback registrations.
	methodsByPath := make(map[string][]string)
	for _, rt := range s.routes {
		if rt.admin && !cfg.EnableAdmin {
			continue
		}
		if rt.router && s.clusterStatus == nil {
			continue
		}
		h := httpmw.Chain(rt.h, httpmw.Instrument(s.reg.Endpoint(rt.name)))
		if s.slo != nil && !rt.admin && !rt.exempt {
			// The serving surface feeds the SLO engine; admin writes and the
			// observability routes are operations, not the product.
			h = sloObserve(s.slo, rt.name)(h)
		}
		s.mux.Handle(rt.method+" "+rt.path, h)
		methodsByPath[rt.path] = append(methodsByPath[rt.path], rt.method)
		if rt.legacy {
			alias := legacyAlias(rt.path)
			s.mux.Handle(rt.method+" "+alias, s.deprecated(rt.path, cfg.DisableLegacyRoutes, h))
			methodsByPath[alias] = append(methodsByPath[alias], rt.method)
		}
	}
	for path, methods := range methodsByPath {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		serves := make(map[string]bool, len(methods))
		for _, m := range methods {
			serves[m] = true
		}
		for _, m := range fallbackMethods {
			if serves[m] || (m == "HEAD" && serves["GET"]) {
				continue
			}
			s.mux.Handle(m+" "+path, methodNotAllowed(allow))
		}
	}
	s.mux.Handle("GET /", httpmw.Chain(http.HandlerFunc(s.handleIndex),
		httpmw.Instrument(s.reg.Endpoint("page"))))
}

// legacyAlias maps a v1 path to its deprecated un-versioned twin.
func legacyAlias(path string) string {
	return strings.Replace(path, "/api/v1/", "/api/", 1)
}

// methodNotAllowed answers 405 with the Allow header and the v1 envelope —
// a known path, an unsupported method.
func methodNotAllowed(allow string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		httpmw.WriteErrorCtx(r.Context(), w, http.StatusMethodNotAllowed,
			httpmw.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed here; allowed: %s", r.Method, allow))
	})
}

// deprecated wraps a legacy alias: RFC 8594 Deprecation/Sunset headers
// pointing at the v1 successor, a hit counter, then the normal handler — or
// 410 Gone when the legacy surface has been turned off.
func (s *Server) deprecated(successor string, disabled bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.LegacyHit()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", sunsetDate)
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		if disabled {
			httpmw.WriteErrorCtx(r.Context(), w, http.StatusGone, httpmw.CodeGone,
				"legacy route disabled: use "+successor)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// shedExemptMatcher compiles the route table's exempt marks into the load
// limiter's bypass predicate.  Wildcard segments match any path with the
// pattern's literal prefix (the table's exempt patterns put wildcards last).
func shedExemptMatcher(routes []route) func(*http.Request) bool {
	exact := make(map[string]bool)
	var prefixes []string
	for _, rt := range routes {
		if !rt.exempt {
			continue
		}
		if i := strings.IndexByte(rt.path, '{'); i >= 0 {
			prefixes = append(prefixes, rt.path[:i])
		} else {
			exact[rt.path] = true
		}
	}
	return func(r *http.Request) bool {
		p := r.URL.Path
		if exact[p] {
			return true
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(p, pre) {
				return true
			}
		}
		return false
	}
}

// Close stops the async-ingestion pipeline (waiting for running jobs'
// contexts to unwind) and closes the ingest journal.  The HTTP handler
// itself is stateless.
func (s *Server) Close() {
	if s.queue != nil {
		s.queue.Close()
	}
	if j := s.journalRef(); j != nil {
		j.Close()
	}
}

// endpointName maps a request path to its metrics endpoint name.
func endpointName(path string) string {
	p := strings.TrimPrefix(path, "/api/v1/")
	p = strings.TrimPrefix(p, "/api/")
	if p == "" || p == "/" {
		return "page"
	}
	if i := strings.IndexByte(p, '/'); i > 0 {
		p = p[:i]
	}
	return p
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// backendFor resolves the request's dataset to its Backend — single engine
// or sharded corpus, the caller need not care.
func (s *Server) backendFor(r *http.Request) (core.Backend, error) {
	return s.catalog.GetBackend(r.URL.Query().Get("dataset"))
}

// cachedBackendFor is backendFor through the hot-path caches: the memoized
// cache-wrapped view of the request's dataset.  Only the serving handlers
// (query, complete) use it; everything that needs the concrete backend type
// stays on backendFor.
func (s *Server) cachedBackendFor(r *http.Request) (core.Backend, error) {
	b, err := s.backendFor(r)
	if err != nil {
		return nil, err
	}
	s.cachedMu.Lock()
	defer s.cachedMu.Unlock()
	w, ok := s.cached[b]
	if !ok {
		w = s.caches.Wrap(b)
		s.cached[b] = w
	}
	return w, nil
}

// dropCached forgets the wrapped view of a backend that left the catalog,
// so a later dataset under the same name gets a fresh key space (wrapper
// identity is part of every cache key — a recreated corpus restarts its
// generation counter and must not collide with the old one's entries).
func (s *Server) dropCached(b core.Backend) {
	s.cachedMu.Lock()
	delete(s.cached, b)
	s.cachedMu.Unlock()
}

// engineFor resolves the request to one backing document engine: the
// dataset itself when single-engine, or the shard named by ?shard= when the
// dataset is a corpus (node and guide views are per-document).
func (s *Server) engineFor(r *http.Request) (*core.Engine, error) {
	b, err := s.backendFor(r)
	if err != nil {
		return nil, err
	}
	if e, ok := b.(*core.Engine); ok {
		return e, nil
	}
	engines := b.Engines()
	shard := r.URL.Query().Get("shard")
	if shard == "" {
		return nil, fmt.Errorf("dataset %q is sharded (%d shards): select one with ?shard=", b.Info().Name, len(engines))
	}
	for _, ne := range engines {
		if ne.Name == shard {
			return ne.Engine, nil
		}
	}
	return nil, fmt.Errorf("no shard %q in dataset %q", shard, b.Info().Name)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.catalog.Names()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if s.slo != nil {
		snap.SLO = s.slo.Snapshot()
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCluster serves the router's topology and hedging status (mounted
// only when Config.ClusterStatus is set).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.clusterStatus())
}

// ServeHTTP implements http.Handler, serving through the middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Error envelope helpers — every failure path answers with the uniform
// {"error": {"code", "message", "requestId"}} body (see internal/httpmw).
// All take the request so the envelope carries its ID.

func badQuery(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusBadRequest, httpmw.CodeBadQuery, err.Error())
}

func notFound(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusNotFound, httpmw.CodeNotFound, err.Error())
}

func internalError(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusInternalServerError, httpmw.CodeInternal, err.Error())
}

// tooLarge answers 413 for an ingest body that outgrew the request bound.
func tooLarge(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusRequestEntityTooLarge, httpmw.CodeTooLarge, err.Error())
}

// overloaded answers 503 for writes the ingest queue cannot absorb.
func overloaded(w http.ResponseWriter, r *http.Request, err error) {
	w.Header().Set("Retry-After", "1")
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusServiceUnavailable, httpmw.CodeOverloaded, err.Error())
}

// quarantined answers 503 for a search that failed on open shard circuit
// breakers, with Retry-After set to the breaker cooldown remaining (rounded
// up) so well-behaved clients back off until the next half-open probe.
func quarantined(w http.ResponseWriter, r *http.Request, err error) {
	secs := 1
	var qe *corpus.QuarantineError
	if errors.As(err, &qe) && qe.RetryAfter > 0 {
		secs = int((qe.RetryAfter + time.Second - 1) / time.Second)
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusServiceUnavailable, httpmw.CodeOverloaded, err.Error())
}

// upstreamFailed answers 502 for a search the corpus could not complete
// because a shard failed (failfast policy, or every shard down).  Distinct
// from badQuery so availability objectives and clients see shard outages
// as server-side failures, never as their own malformed input.
func upstreamFailed(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusBadGateway, httpmw.CodeUpstream, err.Error())
}

// isShardError reports whether err is (or wraps) a shard upstream failure.
func isShardError(err error) bool {
	var se *corpus.ShardError
	return errors.As(err, &se)
}

// writeCtxError answers a request whose context died mid-evaluation: 504
// with the timeout envelope.  (A client disconnect surfaces as
// context.Canceled; the response goes nowhere, but the status keeps logs
// and metrics honest.)
func writeCtxError(w http.ResponseWriter, r *http.Request, err error) {
	httpmw.WriteErrorCtx(r.Context(), w, http.StatusGatewayTimeout, httpmw.CodeTimeout,
		"query deadline exceeded: "+err.Error())
}

// isCtxError reports whether err is a context cancellation or deadline.
func isCtxError(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	b, err := s.backendFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	// Single-engine datasets keep the original Stats payload shape; corpora
	// answer with the aggregated BackendInfo (kind, shards, summed sizes).
	if e, ok := b.(*core.Engine); ok {
		writeJSON(w, http.StatusOK, e.Stats())
		return
	}
	writeJSON(w, http.StatusOK, b.Info())
}

// completeResponse is the payload of /api/v1/complete.
type completeResponse struct {
	Candidates []complete.Candidate `json:"candidates"`
	// Trace is present only when requested (?debug=trace / X-Lotusx-Trace).
	Trace *obs.Node `json:"trace,omitempty"`
}

// handleComplete serves position-aware completion.
//
//	GET /api/v1/complete?kind=tag&path=//article&axis=child&prefix=au&k=8
//	GET /api/v1/complete?kind=value&path=//article/author&prefix=ji&k=8
//
// path is the partial twig's root-to-focus chain in the XPath subset; kind
// "tag" suggests tags for a new node under the path's last node via axis,
// kind "value" suggests values for the last node itself.  An empty path with
// kind=tag suggests root tags.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	b, err := s.cachedBackendFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	qv := r.URL.Query()
	kind := qv.Get("kind")
	prefix := qv.Get("prefix")
	k := 10
	if kv := qv.Get("k"); kv != "" {
		n, err := strconv.Atoi(kv)
		if err != nil || n < 1 || n > maxK {
			badQuery(w, r, fmt.Errorf("bad k %q: want 1..%d", kv, maxK))
			return
		}
		k = n
	}
	axis := twig.Child
	if a := qv.Get("axis"); a == "descendant" || a == "//" {
		axis = twig.Descendant
	}

	tr, r := s.startTrace(r, "complete")
	path := strings.TrimSpace(qv.Get("path"))
	var q *twig.Query
	focus := complete.NewRoot
	if path != "" {
		parsed, err := parseTraced(r, path)
		if err != nil {
			annotateTraceError(r, err)
			s.finishTrace(r, tr, nil)
			badQuery(w, r, fmt.Errorf("bad path: %w", err))
			return
		}
		q = parsed
		focus = q.OutputNode().ID
	}

	var cands []complete.Candidate
	switch kind {
	case "tag", "":
		cands, err = b.CompleteTags(r.Context(), q, focus, axis, prefix, k)
	case "value":
		if focus == complete.NewRoot {
			s.finishTrace(r, tr, q)
			badQuery(w, r, fmt.Errorf("value completion needs a path"))
			return
		}
		cands, err = b.CompleteValues(r.Context(), q, focus, prefix, k)
	default:
		s.finishTrace(r, tr, q)
		badQuery(w, r, fmt.Errorf("unknown kind %q", kind))
		return
	}
	if err != nil {
		annotateTraceError(r, err)
	}
	httpmw.Annotate(r.Context(), "candidates", len(cands))
	trace := s.finishTrace(r, tr, q)
	if err != nil {
		switch {
		case isCtxError(err):
			writeCtxError(w, r, err)
		case errors.Is(err, corpus.ErrShardQuarantined):
			quarantined(w, r, err)
		case isShardError(err):
			upstreamFailed(w, r, err)
		default:
			internalError(w, r, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, completeResponse{Candidates: cands, Trace: trace})
}

// handleExplain reports where a candidate tag occurs at a position — the
// hover card next to a suggestion.
//
//	GET /api/v1/explain?path=//article&axis=child&tag=author&max=3
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	b, err := s.backendFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	qv := r.URL.Query()
	tag := qv.Get("tag")
	if tag == "" {
		badQuery(w, r, fmt.Errorf("tag is required"))
		return
	}
	axis := twig.Child
	if a := qv.Get("axis"); a == "descendant" || a == "//" {
		axis = twig.Descendant
	}
	max := 5
	if m := qv.Get("max"); m != "" {
		n, err := strconv.Atoi(m)
		if err != nil || n < 0 || n > 100 {
			badQuery(w, r, fmt.Errorf("bad max %q: want 0..100", m))
			return
		}
		max = n
	}
	path := strings.TrimSpace(qv.Get("path"))
	var q *twig.Query
	focus := complete.NewRoot
	if path != "" {
		parsed, err := twig.Parse(path)
		if err != nil {
			badQuery(w, r, fmt.Errorf("bad path: %w", err))
			return
		}
		q = parsed
		focus = q.OutputNode().ID
	}
	occs, err := b.ExplainTags(r.Context(), q, focus, axis, tag, max)
	if err != nil {
		switch {
		case isCtxError(err):
			writeCtxError(w, r, err)
		case errors.Is(err, corpus.ErrShardQuarantined):
			quarantined(w, r, err)
		default:
			internalError(w, r, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tag": tag, "occurrences": occs})
}

// queryRequest is the body of POST /api/v1/query.
type queryRequest struct {
	Query   string `json:"query"`
	K       int    `json:"k"`
	Offset  int    `json:"offset"`
	Rewrite bool   `json:"rewrite"`
	// Algorithm optionally overrides the default TwigStack; it must name an
	// implemented algorithm (or "auto").
	Algorithm string `json:"algorithm"`
	// SnippetMax overrides the snippet byte bound (1..65536); 0 keeps the
	// 400-byte default.  Routers forward their bound here so shard servers
	// render snippets once, at the size the client asked for.
	SnippetMax int `json:"snippetMax"`
}

// maxSnippetMax bounds client-chosen snippet sizes.
const maxSnippetMax = 1 << 16

// queryAnswer is one answer in the response.
type queryAnswer struct {
	Node    int32   `json:"node"`
	Path    string  `json:"path"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet"`
	// Shard names the answering shard for corpus datasets (it scopes Node:
	// pass it back as ?shard= to /api/v1/node); absent for single engines.
	Shard      string           `json:"shard,omitempty"`
	Rewrite    string           `json:"rewrite,omitempty"`
	Penalty    float64          `json:"penalty,omitempty"`
	Highlights []core.Highlight `json:"highlights,omitempty"`
}

// queryResponse is the payload of /api/v1/query.  The paging contract:
// Total counts the answers materialized server-side (at most offset+k —
// equal means further pages may exist), Offset echoes the request, and
// NextOffset, when present, is the offset of the next page.
type queryResponse struct {
	Answers    []queryAnswer `json:"answers"`
	Exact      int           `json:"exact"`
	Total      int           `json:"total"`
	Offset     int           `json:"offset"`
	NextOffset int           `json:"nextOffset,omitempty"`
	Rewrites   int           `json:"rewritesTried"`
	Algorithm  string        `json:"algorithm"`
	// Shards counts the shards fanned out to; present for corpus datasets
	// only.
	Shards int `json:"shards,omitempty"`
	// Partial reports a degraded answer: some shards failed and the page
	// covers only the survivors (the corpus's -shard-policy=degrade).  The
	// paging contract above still holds, computed over surviving shards.
	Partial bool `json:"partial,omitempty"`
	// FailedShards names the shards that failed, sorted; present only when
	// Partial.
	FailedShards []string `json:"failedShards,omitempty"`
	ElapsedMS    float64  `json:"elapsedMs"`
	XQuery       string   `json:"xquery"`
	// Trace is the per-stage span tree of this request; present only when
	// requested with ?debug=trace or X-Lotusx-Trace: 1.
	Trace *obs.Node `json:"trace,omitempty"`
}

// validAlgorithm reports whether name selects an implemented algorithm.
func validAlgorithm(name string) bool {
	if name == "" || join.Algorithm(name) == join.Auto {
		return true
	}
	for _, alg := range join.Algorithms {
		if join.Algorithm(name) == alg {
			return true
		}
	}
	return false
}

func algorithmNames() string {
	names := make([]string, 0, len(join.Algorithms)+1)
	for _, alg := range join.Algorithms {
		names = append(names, string(alg))
	}
	return strings.Join(append(names, string(join.Auto)), ", ")
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	b, err := s.cachedBackendFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodySize)).Decode(&req); err != nil {
		badQuery(w, r, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.K < 0 || req.K > maxK {
		badQuery(w, r, fmt.Errorf("bad k %d: want 0..%d", req.K, maxK))
		return
	}
	if req.Offset < 0 || req.Offset > maxOffset {
		badQuery(w, r, fmt.Errorf("bad offset %d: want 0..%d", req.Offset, maxOffset))
		return
	}
	if !validAlgorithm(req.Algorithm) {
		badQuery(w, r, fmt.Errorf("unknown algorithm %q: want one of %s", req.Algorithm, algorithmNames()))
		return
	}
	if req.SnippetMax < 0 || req.SnippetMax > maxSnippetMax {
		badQuery(w, r, fmt.Errorf("bad snippetMax %d: want 0..%d", req.SnippetMax, maxSnippetMax))
		return
	}
	tr, r := s.startTrace(r, "query")
	q, err := parseTraced(r, req.Query)
	if err != nil {
		annotateTraceError(r, err)
		s.finishTrace(r, tr, nil)
		badQuery(w, r, err)
		return
	}
	opts := core.SearchOptions{K: req.K, Offset: req.Offset, Rewrite: req.Rewrite, SnippetMax: 400}
	if req.SnippetMax > 0 {
		opts.SnippetMax = req.SnippetMax
	}
	if req.Algorithm != "" {
		opts.Algorithm = join.Algorithm(req.Algorithm)
	}
	res, err := b.SearchHits(r.Context(), q, opts)
	if err != nil {
		annotateTraceError(r, err)
		s.finishTrace(r, tr, q)
		switch {
		case isCtxError(err):
			writeCtxError(w, r, err)
		case errors.Is(err, corpus.ErrShardQuarantined):
			quarantined(w, r, err)
		case isShardError(err):
			upstreamFailed(w, r, err)
		default:
			badQuery(w, r, err)
		}
		return
	}
	s.reg.Algorithm(string(res.Algorithm)).Observe(res.Elapsed)
	annotateSearch(r, res)
	trace := s.finishTrace(r, tr, q)
	resp := queryResponse{
		Exact:     res.Exact,
		Total:     res.Total,
		Offset:    req.Offset,
		Rewrites:  res.RewritesTried,
		Algorithm: string(res.Algorithm),
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		XQuery:    q.ToXQuery(),
		Trace:     trace,
	}
	if res.Shards > 1 {
		resp.Shards = res.Shards
	}
	resp.Partial = res.Partial
	resp.FailedShards = res.FailedShards
	for _, h := range res.Hits {
		resp.Answers = append(resp.Answers, queryAnswer{
			Node:       int32(h.Node),
			Path:       h.Path,
			Score:      h.Score,
			Snippet:    h.Snippet,
			Shard:      h.Shard,
			Rewrite:    h.Rewrite,
			Penalty:    h.Penalty,
			Highlights: h.Highlights,
		})
	}
	// Materialization stopped at the offset+k cut, so further answers may
	// exist: point the client at the next page.  A Total short of the cut
	// means the result set is exhausted and this is the last page.
	effK := req.K
	if effK == 0 {
		effK = 10 // SearchOptions' default page size
	}
	if res.Total == req.Offset+effK {
		resp.NextOffset = res.Total
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= engine.Document().Len() {
		notFound(w, r, fmt.Errorf("no node %q", r.PathValue("id")))
		return
	}
	d := engine.Document()
	n := doc.NodeID(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":    id,
		"tag":   d.TagName(n),
		"path":  d.Path(n),
		"value": d.Value(n),
		"xml":   engine.Snippet(n, 2000),
	})
}
