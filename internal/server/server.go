// Package server exposes the LotusX engine over HTTP — the stand-in for the
// demo paper's web GUI.  The JSON API mirrors the GUI's interactions
// one-to-one: statistics, position-aware completion while a twig grows,
// query evaluation with ranking and rewriting, and answer snippets.  A
// minimal embedded HTML page at / exercises the API interactively.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

// Server handles the LotusX HTTP API.  It serves one or more datasets from
// a core.Catalog; requests select one with ?dataset= (or the "dataset" JSON
// field), defaulting to the first registered.
type Server struct {
	catalog *core.Catalog
	mux     *http.ServeMux
}

// New returns a Server over a single engine (a one-dataset catalog).
func New(engine *core.Engine) *Server {
	c := core.NewCatalog()
	c.Add(engine.Stats().Document, engine)
	return NewCatalog(c)
}

// NewCatalog returns a Server over several named datasets.
func NewCatalog(catalog *core.Catalog) *Server {
	s := &Server{catalog: catalog, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /api/complete", s.handleComplete)
	s.mux.HandleFunc("GET /api/explain", s.handleExplain)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/node/{id}", s.handleNode)
	s.mux.HandleFunc("GET /api/guide", s.handleGuide)
	s.mux.HandleFunc("GET /", s.handleIndex)
	return s
}

// engineFor resolves the request's dataset.
func (s *Server) engineFor(r *http.Request) (*core.Engine, error) {
	return s.catalog.Get(r.URL.Query().Get("dataset"))
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.catalog.Names()})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, engine.Stats())
}

// completeResponse is the payload of /api/complete.
type completeResponse struct {
	Candidates []complete.Candidate `json:"candidates"`
}

// handleComplete serves position-aware completion.
//
//	GET /api/complete?kind=tag&path=//article&axis=child&prefix=au&k=8
//	GET /api/complete?kind=value&path=//article/author&prefix=ji&k=8
//
// path is the partial twig's root-to-focus chain in the XPath subset; kind
// "tag" suggests tags for a new node under the path's last node via axis,
// kind "value" suggests values for the last node itself.  An empty path with
// kind=tag suggests root tags.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	qv := r.URL.Query()
	kind := qv.Get("kind")
	prefix := qv.Get("prefix")
	k := 10
	if kv := qv.Get("k"); kv != "" {
		n, err := strconv.Atoi(kv)
		if err != nil || n < 1 || n > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", kv))
			return
		}
		k = n
	}
	axis := twig.Child
	if a := qv.Get("axis"); a == "descendant" || a == "//" {
		axis = twig.Descendant
	}

	path := strings.TrimSpace(qv.Get("path"))
	var q *twig.Query
	var focus int
	if path == "" {
		focus = complete.NewRoot
		q = twig.NewQuery(twig.Wildcard)
		if err := q.Normalize(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else {
		parsed, err := twig.Parse(path)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad path: %w", err))
			return
		}
		q = parsed
		focus = q.OutputNode().ID
	}

	var cands []complete.Candidate
	switch kind {
	case "tag", "":
		cands = engine.Completer().SuggestTags(q, focus, axis, prefix, k)
	case "value":
		if focus == complete.NewRoot {
			writeError(w, http.StatusBadRequest, fmt.Errorf("value completion needs a path"))
			return
		}
		cands = engine.Completer().SuggestValues(q, focus, prefix, k)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", kind))
		return
	}
	writeJSON(w, http.StatusOK, completeResponse{Candidates: cands})
}

// handleExplain reports where a candidate tag occurs at a position — the
// hover card next to a suggestion.
//
//	GET /api/explain?path=//article&axis=child&tag=author&max=3
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	qv := r.URL.Query()
	tag := qv.Get("tag")
	if tag == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("tag is required"))
		return
	}
	axis := twig.Child
	if a := qv.Get("axis"); a == "descendant" || a == "//" {
		axis = twig.Descendant
	}
	max := 5
	if m := qv.Get("max"); m != "" {
		n, err := strconv.Atoi(m)
		if err != nil || n < 0 || n > 100 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", m))
			return
		}
		max = n
	}
	path := strings.TrimSpace(qv.Get("path"))
	var q *twig.Query
	focus := complete.NewRoot
	if path != "" {
		parsed, err := twig.Parse(path)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad path: %w", err))
			return
		}
		q = parsed
		focus = q.OutputNode().ID
	}
	occs := engine.Completer().ExplainTag(q, focus, axis, tag, max)
	writeJSON(w, http.StatusOK, map[string]any{"tag": tag, "occurrences": occs})
}

// queryRequest is the body of POST /api/query.
type queryRequest struct {
	Query   string `json:"query"`
	K       int    `json:"k"`
	Offset  int    `json:"offset"`
	Rewrite bool   `json:"rewrite"`
	// Algorithm optionally overrides the default TwigStack.
	Algorithm string `json:"algorithm"`
}

// queryAnswer is one answer in the response.
type queryAnswer struct {
	Node       int32            `json:"node"`
	Path       string           `json:"path"`
	Score      float64          `json:"score"`
	Snippet    string           `json:"snippet"`
	Rewrite    string           `json:"rewrite,omitempty"`
	Penalty    float64          `json:"penalty,omitempty"`
	Highlights []core.Highlight `json:"highlights,omitempty"`
}

// queryResponse is the payload of /api/query.
type queryResponse struct {
	Answers   []queryAnswer `json:"answers"`
	Exact     int           `json:"exact"`
	Rewrites  int           `json:"rewritesTried"`
	ElapsedMS float64       `json:"elapsedMs"`
	XQuery    string        `json:"xquery"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	q, err := twig.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := core.SearchOptions{K: req.K, Offset: req.Offset, Rewrite: req.Rewrite}
	if req.Algorithm != "" {
		opts.Algorithm = join.Algorithm(req.Algorithm)
	}
	res, err := engine.Search(q, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{
		Exact:     res.Exact,
		Rewrites:  res.RewritesTried,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		XQuery:    q.ToXQuery(),
	}
	d := engine.Document()
	for _, a := range res.Answers {
		qa := queryAnswer{
			Node:    int32(a.Node),
			Path:    d.Path(a.Node),
			Score:   a.Score,
			Snippet: engine.Snippet(a.Node, 400),
		}
		answerQuery := q
		if a.Rewrite != nil {
			qa.Rewrite = a.Rewrite.Query.String()
			qa.Penalty = a.Rewrite.Penalty
			answerQuery = a.Rewrite.Query
		}
		qa.Highlights = engine.Highlights(answerQuery, a.Scored.Match)
		resp.Answers = append(resp.Answers, qa)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= engine.Document().Len() {
		writeError(w, http.StatusNotFound, fmt.Errorf("no node %q", r.PathValue("id")))
		return
	}
	d := engine.Document()
	n := doc.NodeID(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":    id,
		"tag":   d.TagName(n),
		"path":  d.Path(n),
		"value": d.Value(n),
		"xml":   engine.Snippet(n, 2000),
	})
}
