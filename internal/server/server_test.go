package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lotusx/internal/core"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
</dblp>`

// errEnvelope mirrors the uniform v1 error body.
type errEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"requestId"`
	} `json:"error"`
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return res.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return res.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["Document"] != "bib" {
		t.Fatalf("stats = %v", stats)
	}
}

func TestCompleteTagEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Candidates []struct {
			Text  string
			Count int64
		} `json:"candidates"`
	}
	url := ts.URL + "/api/complete?kind=tag&path=" + escape("//article") + "&axis=child&prefix=a&k=5"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Text != "author" {
		t.Fatalf("candidates = %+v", resp.Candidates)
	}
}

func TestCompleteRootEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Candidates []struct{ Text string } `json:"candidates"`
	}
	url := ts.URL + "/api/complete?kind=tag&axis=descendant&prefix=art"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Text != "article" {
		t.Fatalf("candidates = %+v", resp.Candidates)
	}
}

func TestCompleteValueEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Candidates []struct{ Text string } `json:"candidates"`
	}
	url := ts.URL + "/api/complete?kind=value&path=" + escape("//article/author") + "&prefix=ji"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Text != "jiaheng lu" {
		t.Fatalf("candidates = %+v", resp.Candidates)
	}
}

func TestCompleteErrors(t *testing.T) {
	ts := testServer(t)
	var e errEnvelope
	if code := getJSON(t, ts.URL+"/api/complete?kind=value", &e); code != 400 {
		t.Errorf("value without path: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/complete?kind=bogus", &e); code != 400 {
		t.Errorf("bad kind: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/complete?path=%5B%5B", &e); code != 400 {
		t.Errorf("bad path: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/complete?k=-1", &e); code != 400 {
		t.Errorf("bad k: status %d", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Answers []struct {
			Path    string  `json:"path"`
			Snippet string  `json:"snippet"`
			Score   float64 `json:"score"`
		} `json:"answers"`
		Exact  int    `json:"exact"`
		XQuery string `json:"xquery"`
	}
	code := postJSON(t, ts.URL+"/api/query",
		`{"query": "//article[author = \"Jiaheng Lu\"]/title", "k": 5}`, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Answers) != 1 || resp.Exact != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Path != "/dblp/article/title" {
		t.Errorf("path = %q", resp.Answers[0].Path)
	}
	if !strings.Contains(resp.Answers[0].Snippet, "Holistic") {
		t.Errorf("snippet = %q", resp.Answers[0].Snippet)
	}
	if !strings.Contains(resp.XQuery, "for $v0") {
		t.Errorf("xquery = %q", resp.XQuery)
	}
}

func TestQueryEndpointRewrite(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Answers []struct {
			Rewrite string  `json:"rewrite"`
			Penalty float64 `json:"penalty"`
		} `json:"answers"`
		Exact    int `json:"exact"`
		Rewrites int `json:"rewritesTried"`
	}
	code := postJSON(t, ts.URL+"/api/query",
		`{"query": "//article/autor", "k": 3, "rewrite": true}`, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Exact != 0 || len(resp.Answers) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Answers[0].Rewrite == "" || resp.Answers[0].Penalty <= 0 {
		t.Errorf("rewrite annotation missing: %+v", resp.Answers[0])
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	var e map[string]any
	if code := postJSON(t, ts.URL+"/api/query", `{"query": "]bad["}`, &e); code != 400 {
		t.Errorf("bad query: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query", `not json`, &e); code != 400 {
		t.Errorf("bad body: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query", `{"query": "//a", "algorithm": "bogus"}`, &e); code != 400 {
		t.Errorf("bad algorithm: status %d", code)
	}
}

func TestNodeEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Tag  string `json:"tag"`
		Path string `json:"path"`
		XML  string `json:"xml"`
	}
	if code := getJSON(t, ts.URL+"/api/node/0", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Tag != "dblp" || resp.Path != "/dblp" {
		t.Fatalf("resp = %+v", resp)
	}
	var e errEnvelope
	if code := getJSON(t, ts.URL+"/api/node/99999", &e); code != 404 {
		t.Errorf("overflow id: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/node/xyz", &e); code != 404 {
		t.Errorf("bad id: status %d", code)
	}
}

func TestIndexPage(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	buf := make([]byte, 1024)
	n, _ := res.Body.Read(buf)
	if res.StatusCode != 200 || !strings.Contains(string(buf[:n]), "LotusX") {
		t.Fatalf("index page broken: %d %q", res.StatusCode, buf[:n])
	}
	// Unknown paths 404.
	res2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 404 {
		t.Errorf("unknown path: status %d", res2.StatusCode)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("/", "%2F", "[", "%5B", "]", "%5D", `"`, "%22", " ", "%20", "=", "%3D")
	return r.Replace(s)
}

func TestGuideEndpoint(t *testing.T) {
	ts := testServer(t)
	var root struct {
		Tag      string `json:"tag"`
		Path     string `json:"path"`
		Count    int    `json:"count"`
		Children []struct {
			Tag    string   `json:"tag"`
			Count  int      `json:"count"`
			Values []string `json:"values"`
		} `json:"children"`
	}
	if code := getJSON(t, ts.URL+"/api/guide?values=2", &root); code != 200 {
		t.Fatalf("status %d", code)
	}
	if root.Tag != "dblp" || root.Path != "/dblp" || root.Count != 1 {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Tag != "article" || root.Children[0].Count != 2 {
		t.Fatalf("children = %+v", root.Children)
	}
	// Without values= the sample is omitted.
	if code := getJSON(t, ts.URL+"/api/guide", &root); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(root.Children[0].Values) != 0 {
		t.Fatalf("values should be omitted: %+v", root.Children[0])
	}
}

func TestMultiDatasetCatalog(t *testing.T) {
	e1, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.FromReader("tiny", strings.NewReader("<shop><item>anvil</item></shop>"))
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCatalog()
	c.Add("bib", e1)
	c.Add("tiny", e2)
	ts := httptest.NewServer(NewCatalog(c))
	t.Cleanup(ts.Close)

	var list struct {
		Datasets []string `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/api/datasets", &list); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(list.Datasets) != 2 || list.Datasets[0] != "bib" {
		t.Fatalf("datasets = %v", list.Datasets)
	}

	var stats map[string]any
	if code := getJSON(t, ts.URL+"/api/stats?dataset=tiny", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["Document"] != "tiny" {
		t.Fatalf("stats = %v", stats)
	}
	// Default is the first added.
	getJSON(t, ts.URL+"/api/stats", &stats)
	if stats["Document"] != "bib" {
		t.Fatalf("default stats = %v", stats)
	}
	// Unknown dataset is a 404 on every endpoint.
	var e errEnvelope
	if code := getJSON(t, ts.URL+"/api/stats?dataset=nope", &e); code != 404 {
		t.Errorf("unknown dataset: status %d", code)
	}
	if e.Error.Code != "not_found" {
		t.Errorf("unknown dataset code = %q", e.Error.Code)
	}
	if code := getJSON(t, ts.URL+"/api/guide?dataset=nope", &e); code != 404 {
		t.Errorf("unknown dataset guide: status %d", code)
	}

	// Queries route to the right dataset.
	var resp struct {
		Answers []struct {
			Path string `json:"path"`
		} `json:"answers"`
	}
	res, err := http.Post(ts.URL+"/api/query?dataset=tiny", "application/json",
		strings.NewReader(`{"query": "//item", "k": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Path != "/shop/item" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Tag         string `json:"tag"`
		Occurrences []struct {
			Path  string
			Count int
		} `json:"occurrences"`
	}
	url := ts.URL + "/api/explain?path=" + escape("//article") + "&axis=child&tag=author"
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Occurrences) != 1 || resp.Occurrences[0].Path != "/dblp/article/author" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Occurrences[0].Count != 2 {
		t.Fatalf("count = %d, want 2", resp.Occurrences[0].Count)
	}
	// Root-level explain without a path.
	if code := getJSON(t, ts.URL+"/api/explain?axis=descendant&tag=year", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Occurrences) != 1 {
		t.Fatalf("root explain = %+v", resp)
	}
	var e map[string]any
	if code := getJSON(t, ts.URL+"/api/explain", &e); code != 400 {
		t.Errorf("missing tag: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/explain?tag=a&max=9999", &e); code != 400 {
		t.Errorf("bad max: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/explain?tag=a&path=%5B", &e); code != 400 {
		t.Errorf("bad path: status %d", code)
	}
}

func TestQueryEndpointHighlights(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Answers []struct {
			Highlights []struct {
				Tag   string `json:"tag"`
				Value string `json:"value"`
				Spans []struct {
					Start int `json:"start"`
					End   int `json:"end"`
				} `json:"spans"`
			} `json:"highlights"`
		} `json:"answers"`
	}
	code := postJSON(t, ts.URL+"/api/query",
		`{"query": "//article[title contains \"twig\"]", "k": 5}`, &resp)
	if code != 200 || len(resp.Answers) != 1 {
		t.Fatalf("status %d answers %d", code, len(resp.Answers))
	}
	hs := resp.Answers[0].Highlights
	if len(hs) != 1 || hs[0].Tag != "title" || len(hs[0].Spans) != 1 {
		t.Fatalf("highlights = %+v", hs)
	}
	if got := hs[0].Value[hs[0].Spans[0].Start:hs[0].Spans[0].End]; got != "Twig" {
		t.Fatalf("span text = %q", got)
	}
}
