package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lotusx/internal/httpmw"
	"lotusx/internal/obs"
	"lotusx/internal/slo"
)

// The cluster observability surface: the tail-sampled trace store behind
// GET /api/v1/traces, the federated cluster rollup behind
// GET /api/v1/cluster/metrics, and the SLO middleware feeding the declared
// objectives.  See docs/OBSERVABILITY.md, "The cluster tier".

// tracesResponse is the payload of GET /api/v1/traces: summaries (no span
// trees) newest-first, plus the store's retention counters.
type tracesResponse struct {
	// Traces lists matching retained records without their span trees; fetch
	// /api/v1/traces/{requestId} for the tree.
	Traces []obs.TraceRecord `json:"traces"`
	// Retained is the store's live record count before filtering; Offered and
	// Kept are its lifetime counters (kept/offered is the effective sampling
	// rate).
	Retained int64 `json:"retained"`
	Offered  int64 `json:"offered"`
	Kept     int64 `json:"kept"`
}

// handleTraces lists retained traces.
//
//	GET /api/v1/traces?stage=fanout&minMs=5&error=1&endpoint=query&limit=20
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		notFound(w, r, fmt.Errorf("trace store disabled (negative trace capacity)"))
		return
	}
	qv := r.URL.Query()
	f := obs.Filter{
		Stage:    qv.Get("stage"),
		Endpoint: qv.Get("endpoint"),
	}
	if v := qv.Get("minMs"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			badQuery(w, r, fmt.Errorf("bad minMs %q: want a non-negative number", v))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := qv.Get("error"); v != "" {
		f.ErrorsOnly = v == "1" || v == "true"
	}
	if v := qv.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxK {
			badQuery(w, r, fmt.Errorf("bad limit %q: want 1..%d", v, maxK))
			return
		}
		f.Limit = n
	}
	records, retained := s.traces.List(f)
	offered, kept, _ := s.traces.Stats()
	if records == nil {
		records = []obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Traces:   records,
		Retained: int64(retained),
		Offered:  offered,
		Kept:     kept,
	})
}

// handleTrace fetches one retained trace with its full span tree — grafted
// remote shard spans included — by the request ID the original response
// carried in X-Request-Id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		notFound(w, r, fmt.Errorf("trace store disabled (negative trace capacity)"))
		return
	}
	id := r.PathValue("id")
	rec := s.traces.Get(id)
	if rec == nil {
		notFound(w, r, fmt.Errorf("no retained trace for request %q (never offered, classified out, or evicted)", id))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleClusterMetrics serves the federated rollup of shard-server metrics
// snapshots (mounted only in router mode, next to GET /api/v1/cluster).
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Cluster().Snapshot())
}

// sloObserve feeds every finished response on a serving route into the SLO
// tracker: the endpoint name, final status, and wall-clock latency.
func sloObserve(t *slo.Tracker, endpoint string) httpmw.Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := httpmw.NewStatusWriter(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.Status()
			if status == 0 {
				status = http.StatusOK
			}
			t.Observe(endpoint, status, time.Since(start))
		})
	}
}

// SLOBurning reports the objectives currently burning their fast window, ""
// when none (or no tracker) — /readyz on the debug listener renders it as
// "ready (slo-burning): ...".
func (s *Server) SLOBurning() string {
	if s.slo == nil {
		return ""
	}
	return s.slo.Burning()
}
