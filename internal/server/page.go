package server

import "net/http"

// handleIndex serves the embedded single-page demo client: a query box with
// live position-aware completion and a result pane — the minimal stand-in
// for the paper's graphical twig builder.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(indexHTML))
}

const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>LotusX — position-aware XML search</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 56rem; }
  input, button, select { font: inherit; padding: .4rem; }
  #query { width: 70%; }
  #suggest { color: #555; margin: .5rem 0; }
  .answer { border: 1px solid #ddd; border-radius: 6px; padding: .6rem; margin: .6rem 0; }
  .answer pre { margin: .4rem 0 0; overflow-x: auto; background: #f7f7f7; padding: .4rem; }
  .rewrite { color: #a50; font-size: .85rem; }
  .score { color: #06c; font-size: .85rem; }
</style>
</head>
<body>
<h1>LotusX</h1>
<p>
  <select id="dataset" onchange="loadStats()"></select>
  <span id="stats"></span>
</p>
<div>
  <input id="query" placeholder='e.g. //article[author = "..."]/title' autocomplete="off">
  <label><input type="checkbox" id="rewrite" checked> rewrite</label>
  <button onclick="runQuery()">Search</button>
</div>
<div id="suggest"></div>
<div id="results"></div>
<script>
function ds() {
  const v = document.getElementById('dataset').value;
  return v ? '&dataset=' + encodeURIComponent(v) : '';
}
async function loadDatasets() {
  const r = await (await fetch('/api/v1/datasets')).json();
  const sel = document.getElementById('dataset');
  for (const name of r.datasets || []) {
    const opt = document.createElement('option');
    opt.value = name;
    opt.textContent = name;
    sel.appendChild(opt);
  }
  loadStats();
}
async function loadStats() {
  const s = await (await fetch('/api/v1/stats?x=1' + ds())).json();
  document.getElementById('stats').textContent =
    s.Nodes + ' nodes, ' + s.Tags + ' tags, ' + s.GuidePaths + ' paths';
  document.getElementById('results').innerHTML = '';
}
loadDatasets();

// Live completion: when the query ends in a path step being typed, split it
// into (path so far, prefix) and ask the server for candidates.
const qbox = document.getElementById('query');
qbox.addEventListener('input', async () => {
  const text = qbox.value;
  const m = text.match(/^(.*[\/]{1,2})([A-Za-z_@][\w.-]*)?$/);
  if (!m) { document.getElementById('suggest').textContent = ''; return; }
  let path = m[1].replace(/[\/]+$/, '');
  const axis = m[1].endsWith('//') ? 'descendant' : 'child';
  const prefix = m[2] || '';
  const url = '/api/v1/complete?kind=tag&axis=' + axis +
    '&path=' + encodeURIComponent(path) + '&prefix=' + encodeURIComponent(prefix) + '&k=8' + ds();
  try {
    const res = await (await fetch(url)).json();
    const names = (res.candidates || []).map(c => c.Text + ' (' + c.Count + ')');
    document.getElementById('suggest').textContent =
      names.length ? 'candidates: ' + names.join(', ') : '';
  } catch (e) { /* mid-edit queries can be unparseable; stay quiet */ }
});

async function runQuery() {
  const body = { query: qbox.value, k: 10, rewrite: document.getElementById('rewrite').checked };
  const res = await (await fetch('/api/v1/query?x=1' + ds(), {
    method: 'POST', headers: {'Content-Type': 'application/json'},
    body: JSON.stringify(body)})).json();
  const out = document.getElementById('results');
  out.innerHTML = '';
  if (res.error) { out.textContent = res.error.message || res.error; return; }
  const head = document.createElement('p');
  head.textContent = (res.answers ? res.answers.length : 0) + ' answers (' +
    res.exact + ' exact, ' + res.rewritesTried + ' rewrites tried, ' +
    res.elapsedMs.toFixed(2) + ' ms)';
  out.appendChild(head);
  for (const a of res.answers || []) {
    const div = document.createElement('div');
    div.className = 'answer';
    const score = document.createElement('span');
    score.className = 'score';
    score.textContent = a.path + '  score=' + a.score.toFixed(3);
    div.appendChild(score);
    if (a.rewrite) {
      const rw = document.createElement('div');
      rw.className = 'rewrite';
      rw.textContent = 'via rewrite: ' + a.rewrite + ' (penalty ' + a.penalty.toFixed(1) + ')';
      div.appendChild(rw);
    }
    const pre = document.createElement('pre');
    pre.textContent = a.snippet;
    div.appendChild(pre);
    out.appendChild(div);
  }
}
qbox.addEventListener('keydown', e => { if (e.key === 'Enter') runQuery(); });
</script>
</body>
</html>
`
