package server

import (
	"net/http"
	"sort"

	"lotusx/internal/core"
	"lotusx/internal/dataguide"
)

// guideNode is the JSON shape of one DataGuide node — the schema browser
// the GUI shows so users can click a path instead of typing it.
type guideNode struct {
	Tag      string      `json:"tag"`
	Path     string      `json:"path"`
	Count    int         `json:"count"`
	Values   []string    `json:"values,omitempty"` // top sampled values
	Children []guideNode `json:"children,omitempty"`
}

// handleGuide serves the document's structural summary.
//
//	GET /api/v1/guide            the whole guide tree
//	GET /api/v1/guide?values=3   include up to 3 top values per path
func (s *Server) handleGuide(w http.ResponseWriter, r *http.Request) {
	engine, err := s.engineFor(r)
	if err != nil {
		notFound(w, r, err)
		return
	}
	nvals := 0
	if v := r.URL.Query().Get("values"); v != "" {
		switch v {
		case "1":
			nvals = 1
		case "2":
			nvals = 2
		case "3":
			nvals = 3
		case "5":
			nvals = 5
		default:
			nvals = 3
		}
	}
	g := engine.Guide()
	writeJSON(w, http.StatusOK, s.guideJSON(engine, g.Root(), nvals))
}

func (s *Server) guideJSON(engine *core.Engine, gn *dataguide.Node, nvals int) guideNode {
	tags := engine.Document().Tags()
	out := guideNode{
		Tag:   tags.Name(gn.Tag),
		Path:  gn.Path(tags),
		Count: gn.Count,
	}
	if nvals > 0 {
		for i, vc := range gn.Values() {
			if i >= nvals {
				break
			}
			out.Values = append(out.Values, vc.Value)
		}
	}
	// Children in deterministic (tag name) order.
	kids := make([]*dataguide.Node, 0, len(gn.Children))
	for _, c := range gn.Children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		return tags.Name(kids[i].Tag) < tags.Name(kids[j].Tag)
	})
	for _, c := range kids {
		out.Children = append(out.Children, s.guideJSON(engine, c, nvals))
	}
	return out
}
