package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"lotusx/internal/ingest"
)

// The jobs API exposes the async ingestion pipeline (internal/ingest):
//
//	GET /api/v1/jobs          every retained job, newest first
//	GET /api/v1/jobs/{id}     one job's status — poll until "done"/"failed"
//
// Admin writes that enqueue work answer 202 Accepted with {"job": {...}}
// and a Location header pointing at the job's poll URL; the job object is
// the same shape everywhere.  See docs/API.md for the lifecycle.

// jobEnvelope wraps one job — the body of the 202 responses and of
// GET /api/v1/jobs/{id}.
type jobEnvelope struct {
	Job ingest.Job `json:"job"`
}

// jobsEnvelope wraps the job listing.
type jobsEnvelope struct {
	Jobs []ingest.Job `json:"jobs"`
}

// jobLocation is the poll URL of a job.
func jobLocation(id string) string { return "/api/v1/jobs/" + id }

// enqueue submits req to the ingest queue and answers for it: 202 +
// {"job": ...} + Location normally (whether the job is fresh or the
// submission coalesced onto a live identical one), 503 when the queue is
// full or shutting down.  With ?sync=1 handled upstream, this is only
// reached on the async path.
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, req ingest.Request) {
	job, _, err := s.queue.Enqueue(req)
	if err != nil {
		if errors.Is(err, ingest.ErrQueueFull) || errors.Is(err, ingest.ErrClosed) {
			overloaded(w, r, err)
		} else {
			internalError(w, r, err)
		}
		return
	}
	w.Header().Set("Location", jobLocation(job.ID))
	writeJSON(w, http.StatusAccepted, jobEnvelope{Job: job})
}

// handleJobs lists every retained job, newest enqueue first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.List()
	if jobs == nil {
		jobs = []ingest.Job{}
	}
	writeJSON(w, http.StatusOK, jobsEnvelope{Jobs: jobs})
}

// handleJob reports one job's status.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.queue.Get(id)
	if err != nil {
		notFound(w, r, fmt.Errorf("no job %q (terminal jobs age out of retention)", id))
		return
	}
	writeJSON(w, http.StatusOK, jobEnvelope{Job: job})
}

// maybeCompact schedules a background compaction of name when its delta
// backlog has crossed the threshold.  Called from a finished delta-shard
// job; the per-dataset dedup key means at most one compaction is ever
// queued or running per dataset, and a full queue just defers the work to
// the next ingest.
func (s *Server) maybeCompact(name string) {
	if s.compactThreshold <= 0 || s.queue == nil {
		return
	}
	c, err := s.corpusFor(name)
	if err != nil || c.DeltaShards() < s.compactThreshold {
		return
	}
	s.enqueueCompact(name)
}

// enqueueCompact submits the compaction job for name.
func (s *Server) enqueueCompact(name string) (ingest.Job, error) {
	job, _, err := s.queue.Enqueue(ingest.Request{
		Kind:    "compact",
		Dataset: name,
		Key:     "compact:" + name,
		Run: func(ctx context.Context) (ingest.Result, error) {
			return s.runCompaction(ctx, name)
		},
	})
	return job, err
}

// runCompaction folds name's delta shards into base shards, recording the
// round in the ingest metrics.
func (s *Server) runCompaction(ctx context.Context, name string) (ingest.Result, error) {
	c, err := s.corpusFor(name)
	if err != nil {
		return ingest.Result{}, err
	}
	im := s.reg.Ingest()
	res, err := c.CompactDeltas(ctx, 0)
	if err != nil {
		im.CompactionFailures.Add(1)
		return ingest.Result{}, err
	}
	if res == nil { // no deltas: nothing to do is not an error
		im.CompactionNoops.Add(1)
		return ingest.Result{}, nil
	}
	im.Compactions.Add(1)
	im.CompactedShards.Add(int64(res.Merged))
	im.CompactionRun.Observe(res.Elapsed)
	return ingest.Result{Shards: len(res.Into), Seq: res.Seq}, nil
}

// handleCompact explicitly folds a dataset's delta shards into base shards.
// Default: async — 202 + {"job": ...}.  ?sync=1: enqueue and wait for the
// job, answering 200 with its terminal state.
//
//	POST /api/v1/datasets/{name}/compact
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.corpusFor(name); err != nil {
		notFound(w, r, err)
		return
	}
	job, err := s.enqueueCompact(name)
	if err != nil {
		if errors.Is(err, ingest.ErrQueueFull) || errors.Is(err, ingest.ErrClosed) {
			overloaded(w, r, err)
		} else {
			internalError(w, r, err)
		}
		return
	}
	if syncRequested(r) {
		final, err := s.queue.Wait(r.Context(), job.ID)
		if err != nil {
			writeCtxError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, jobEnvelope{Job: final})
		return
	}
	w.Header().Set("Location", jobLocation(job.ID))
	writeJSON(w, http.StatusAccepted, jobEnvelope{Job: job})
}
