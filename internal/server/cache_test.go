package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"lotusx/internal/metrics"
)

const tinyXML2 = `<dblp>
  <article><author>Dee</author><title>Delta</title></article>
  <article><author>Ed</author><title>Epsilon</title></article>
</dblp>`

type queryAnswers struct {
	Answers []struct {
		Path    string `json:"path"`
		Snippet string `json:"snippet"`
	} `json:"answers"`
	Total int `json:"total"`
}

func cacheCounters(t *testing.T, reg *metrics.Registry, name string) (hits, misses int64) {
	t.Helper()
	snap := reg.Snapshot()
	cs, ok := snap.Caches[name]
	if !ok {
		t.Fatalf("metrics snapshot has no %q cache: %+v", name, snap.Caches)
	}
	return cs.Hits, cs.Misses
}

// TestCacheWarmHitAndReingestInvalidation drives the result cache through
// the HTTP surface: a repeated query is a hit, and re-ingesting the dataset
// (same corpus, snapshot swap bumps the generation) must serve the new
// content, never the cached old answer.
func TestCacheWarmHitAndReingestInvalidation(t *testing.T) {
	ts, reg := adminServer(t, Config{})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	query := func() queryAnswers {
		var qr queryAnswers
		if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
		return qr
	}

	first := query()
	if first.Total != 3 {
		t.Fatalf("cold query: total %d, want 3", first.Total)
	}
	h0, _ := cacheCounters(t, reg, "results")
	second := query()
	h1, _ := cacheCounters(t, reg, "results")
	if h1 <= h0 {
		t.Fatalf("warm repeat did not hit the cache: hits %d -> %d", h0, h1)
	}
	if fmt.Sprint(second.Answers) != fmt.Sprint(first.Answers) {
		t.Fatalf("cached answer differs:\n%v\n%v", second.Answers, first.Answers)
	}

	// Replace the dataset content through the same corpus (generation bump).
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML2, nil); code != http.StatusCreated {
		t.Fatalf("re-ingest: status %d", code)
	}
	after := query()
	if after.Total != 2 {
		t.Fatalf("post-reingest query served stale data: total %d, want 2", after.Total)
	}
}

// TestCacheDropOnDeleteAndRecreate deletes a cached dataset and recreates
// the name with different content; the old wrapper's entries (keyed to the
// old backend, whose generation counter the new one restarts) must be gone.
func TestCacheDropOnDeleteAndRecreate(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	var qr queryAnswers
	postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr)
	postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr) // warm
	if qr.Total != 3 {
		t.Fatalf("warm query: total %d, want 3", qr.Total)
	}
	if code := do(t, "DELETE", ts.URL+"/api/v1/datasets/lib", "", nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?sync=1", tinyXML2, nil); code != http.StatusCreated {
		t.Fatal("recreate failed")
	}
	var after queryAnswers
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &after); code != http.StatusOK {
		t.Fatal("query after recreate failed")
	}
	if after.Total != 2 {
		t.Fatalf("recreated dataset served stale cached data: total %d, want 2", after.Total)
	}
}

// TestDebugTraceBypassesCache asserts an explicitly traced request neither
// reads nor fills the caches — its trace must measure the real pipeline.
func TestDebugTraceBypassesCache(t *testing.T) {
	ts, reg := adminServer(t, Config{})
	traced := ts.URL + "/api/v1/query?dataset=bib&debug=trace"
	plain := ts.URL + "/api/v1/query?dataset=bib"
	body := `{"query":"//article/title","k":5}`

	var tr struct {
		Trace *struct{} `json:"trace"`
	}
	if code := postJSON(t, traced, body, &tr); code != http.StatusOK {
		t.Fatal("traced query failed")
	}
	if tr.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	h0, m0 := cacheCounters(t, reg, "results")
	if h0 != 0 || m0 != 0 {
		t.Fatalf("traced request touched the cache: hits=%d misses=%d", h0, m0)
	}

	// A plain request after the traced one is a miss (nothing was filled).
	postJSON(t, plain, body, &queryAnswers{})
	_, m1 := cacheCounters(t, reg, "results")
	if m1 != 1 {
		t.Fatalf("first plain request after trace: misses=%d, want 1", m1)
	}
	// And tracing again still bypasses the now-warm entry.
	postJSON(t, traced, body, &tr)
	h2, _ := cacheCounters(t, reg, "results")
	if h2 != 0 {
		t.Fatalf("traced request read the cache: hits=%d", h2)
	}
}

// TestCacheDisabledByConfig turns both caches off; queries still work and
// no cache metrics families appear.
func TestCacheDisabledByConfig(t *testing.T) {
	ts, reg := adminServer(t, Config{DisableResultCache: true, DisableCompletionCache: true})
	var qr queryAnswers
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"//article/title","k":5}`, &qr); code != http.StatusOK {
			t.Fatal("query failed")
		}
	}
	if len(reg.Snapshot().Caches) != 0 {
		t.Fatalf("disabled caches still registered: %+v", reg.Snapshot().Caches)
	}
}

// TestPrometheusExposesCacheFamilies checks the lotusx_cache_* families
// appear on /metrics once the caches have traffic.
func TestPrometheusExposesCacheFamilies(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	body := `{"query":"//article/title","k":5}`
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", body, &queryAnswers{})
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", body, &queryAnswers{})

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		`lotusx_cache_hits_total{cache="results"}`,
		`lotusx_cache_misses_total{cache="results"}`,
		"lotusx_cache_entries",
		"lotusx_cache_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("prometheus output missing %q", family)
		}
	}
}

// TestCacheConcurrentQueriesAndMutations hammers one dataset with parallel
// queries while re-ingesting it, under -race: every response must be fully
// consistent with SOME published snapshot (3 or 2 titles, never a mix, and
// the total always matches the answers served for page 0).
func TestCacheConcurrentQueriesAndMutations(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bodies := []string{tinyXML, tinyXML2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", bodies[i%2], nil)
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				var qr queryAnswers
				code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr)
				if code != http.StatusOK {
					t.Errorf("query status %d", code)
					return
				}
				if qr.Total != 2 && qr.Total != 3 {
					t.Errorf("inconsistent total %d", qr.Total)
					return
				}
				if len(qr.Answers) != qr.Total {
					t.Errorf("answers %d vs total %d: torn result", len(qr.Answers), qr.Total)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
