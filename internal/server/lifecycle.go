package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"lotusx/internal/ingest"
)

// Lifecycle: graceful drain plus the durable ingest journal.
//
// # Drain
//
// BeginDrain flips the server into draining: /readyz reports not ready (so
// load balancers stop routing here), and the drain gate in the middleware
// chain answers new non-exempt requests 503 + Retry-After while requests
// already past the gate finish normally.  Drain then waits for the ingest
// queue to empty under the caller's deadline.  cmd/lotusx-server wires
// SIGTERM to BeginDrain + http.Server.Shutdown + Drain, so a rolling restart
// completes in-flight queries and accepted ingests instead of dropping them.
//
// # Journal
//
// With EnableAdmin and a CorpusDir, accepted async ingests are recorded in a
// crash-safe journal under <CorpusDir>/_journal/ before their 202 goes out
// (see ingest.Journal).  On startup the server replays accepts that never
// reached a terminal record — one sequential job per dataset, preserving the
// create-before-shard order within it — and sweeps spool files no pending
// record references.

// journalDirName is the journal's directory under CorpusDir.  The leading
// underscore keeps it out of the dataset namespace: dataset names must start
// with an alphanumeric (nameRE), and the corpus reload skips directories
// without a manifest.
const journalDirName = "_journal"

// BeginDrain flips the server into draining (idempotent).  New non-exempt
// requests are refused by the drain gate; /readyz reports not ready.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.reg.Lifecycle().SetDraining(true)
		s.logger.Info("drain started: refusing new work, finishing in-flight requests and queued ingests")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins draining (if not already begun) and waits, up to ctx's
// deadline, for the ingest queue to finish queued and running jobs.  The
// journal stays open until Close so late terminal records still land.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	if s.queue == nil {
		return nil
	}
	err := s.queue.Drain(ctx)
	if err != nil {
		s.logger.Warn("drain deadline expired with ingest jobs unfinished; journaled jobs will replay on restart", "err", err)
	} else {
		s.logger.Info("drain complete: ingest queue empty")
	}
	return err
}

// startJournal opens the journal at startup when prior state exists on disk
// (replaying pending accepts and sweeping orphaned spools).  A brand-new
// deployment — no corpus directory yet — defers creation to the first
// accepted ingest, so a server that only ever rejects writes leaves no
// footprint (the traversal-name tests rely on that).
func (s *Server) startJournal() {
	if _, err := os.Stat(s.corpusDir); err != nil {
		return
	}
	if s.ensureJournal() == nil {
		return
	}
	s.replayJournal()
	s.sweepOrphanSpools()
}

// ensureJournal returns the journal, opening it on first use.  A journal
// that cannot open is a fault of the journal alone: the server logs, marks
// it off, and keeps serving without durability rather than failing writes
// forever.
func (s *Server) ensureJournal() *ingest.Journal {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	if s.journal != nil || s.journalOff || s.corpusDir == "" {
		return s.journal
	}
	j, err := ingest.OpenJournal(filepath.Join(s.corpusDir, journalDirName), ingest.JournalConfig{
		Faults:  s.faults,
		Metrics: s.reg.Lifecycle(),
		Logger:  s.logger,
	})
	if err != nil {
		s.journalOff = true
		s.logger.Error("ingest journal unavailable: accepted writes will not survive a crash", "err", err)
		return nil
	}
	s.journal = j
	return j
}

// journalRef returns the journal if it has been opened, without opening it.
func (s *Server) journalRef() *ingest.Journal {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	return s.journal
}

// replayJournal re-enqueues every pending accept, grouped into one
// sequential job per dataset so a journaled dataset create always runs
// before that dataset's journaled shard adds.
func (s *Server) replayJournal() {
	pending := s.journal.Pending()
	if len(pending) == 0 {
		return
	}
	byDataset := make(map[string][]ingest.JournalRecord)
	var order []string
	for _, rec := range pending {
		if len(byDataset[rec.Dataset]) == 0 {
			order = append(order, rec.Dataset)
		}
		byDataset[rec.Dataset] = append(byDataset[rec.Dataset], rec)
	}
	lc := s.reg.Lifecycle()
	for _, ds := range order {
		recs := byDataset[ds]
		_, _, err := s.queue.Enqueue(ingest.Request{
			Kind:    "replay",
			Dataset: ds,
			Key:     "replay:" + ds,
			Run: func(ctx context.Context) (ingest.Result, error) {
				var last ingest.Result
				for _, rec := range recs {
					res, err := s.replayRecord(ctx, rec)
					if err != nil {
						return last, err
					}
					last = res
				}
				return last, nil
			},
		})
		if err != nil {
			s.logger.Warn("journal replay deferred: queue refused the job; records stay pending", "dataset", ds, "err", err)
			continue
		}
		lc.JournalReplayed.Add(int64(len(recs)))
		s.logger.Info("replaying journaled ingests", "dataset", ds, "records", len(recs))
	}
}

// replayRecord re-executes one journaled accept from its retained spool and
// writes its terminal record.  A missing spool is terminal: the body is
// gone, the promise cannot be kept, and retrying forever would not bring it
// back.  A context error (drain during replay) leaves the record pending.
func (s *Server) replayRecord(ctx context.Context, rec ingest.JournalRecord) (ingest.Result, error) {
	run := func(ctx context.Context) (ingest.Result, error) {
		f, err := os.Open(rec.Spool)
		if err != nil {
			return ingest.Result{}, err
		}
		defer f.Close()
		switch rec.Kind {
		case "dataset":
			st, err := s.createDataset(rec.Dataset, f, rec.Parts)
			if err != nil {
				return ingest.Result{}, err
			}
			return ingest.Result{Shards: st.Shards, Seq: st.Seq}, nil
		case "shard":
			st, err := s.addShard(rec.Dataset, rec.Shard, f, rec.Parts, true)
			if err != nil {
				return ingest.Result{}, err
			}
			s.maybeCompact(rec.Dataset)
			return ingest.Result{Shards: st.Shards, Seq: st.Seq}, nil
		default:
			return ingest.Result{}, fmt.Errorf("journal: unknown record kind %q", rec.Kind)
		}
	}
	res, err := run(ctx)
	switch {
	case err == nil:
		s.journal.Terminal(ctx, rec.ID, ingest.OpDone, nil)
	case isCtxError(err) && ctx.Err() != nil:
		// Shutdown mid-replay: no terminal record, the next start retries.
	default:
		s.journal.Terminal(ctx, rec.ID, ingest.OpFailed, err)
	}
	return res, err
}

// sweepOrphanSpools removes ingest spool files in the corpus directory that
// no pending journal record references — bodies whose job finished but whose
// deletion a crash interrupted, or pre-journal leftovers.  Mirrors the
// corpus reload's sweep of stale MANIFEST.json.tmp* files.
func (s *Server) sweepOrphanSpools() {
	paths, err := filepath.Glob(filepath.Join(s.corpusDir, "ingest-spool-*.xml"))
	if err != nil || len(paths) == 0 {
		return
	}
	lc := s.reg.Lifecycle()
	swept := 0
	for _, p := range paths {
		if s.journal != nil && s.journal.SpoolReferenced(p) {
			continue
		}
		if os.Remove(p) == nil {
			swept++
		}
	}
	if swept > 0 {
		lc.OrphansSwept.Add(int64(swept))
		s.logger.Info("swept orphaned ingest spool files", "count", swept)
	}
}

// enqueueJournaled is enqueue with the durable-202 contract: the accept is
// journaled (fsync'd) before the job is enqueued and before the 202 goes
// out, the spool is retained until the job's terminal record lands, and a
// job killed by shutdown writes no terminal — it replays on restart.
// Without a journal (no CorpusDir: nothing would survive a restart anyway)
// this degrades to the plain in-memory enqueue.
func (s *Server) enqueueJournaled(w http.ResponseWriter, r *http.Request, sp *spooled, shard string, parts int, req ingest.Request) {
	j := s.ensureJournal()
	if j == nil {
		req.Cleanup = sp.cleanup
		s.enqueue(w, r, req)
		return
	}
	id, err := j.Accept(r.Context(), ingest.JournalRecord{
		Kind:    req.Kind,
		Dataset: req.Dataset,
		Shard:   shard,
		Parts:   parts,
		Spool:   sp.path,
		Bytes:   sp.size,
		Hash:    sp.hash,
	})
	if err != nil {
		// The durable promise cannot be made, so no 202 is made either.
		sp.cleanup()
		internalError(w, r, err)
		return
	}
	inner := req.Run
	req.Cleanup = nil // the spool now belongs to the journal's lifecycle
	req.Run = func(ctx context.Context) (ingest.Result, error) {
		res, err := inner(ctx)
		switch {
		case err == nil:
			j.Terminal(ctx, id, ingest.OpDone, nil)
		case isCtxError(err) && ctx.Err() != nil:
			// Shutdown cancelled the job: keep the accept pending (and the
			// spool on disk) so the next start replays it.
		default:
			j.Terminal(ctx, id, ingest.OpFailed, err)
		}
		return res, err
	}
	job, created, err := s.queue.Enqueue(req)
	if err != nil {
		j.Terminal(r.Context(), id, ingest.OpRejected, err)
		if errors.Is(err, ingest.ErrQueueFull) || errors.Is(err, ingest.ErrClosed) {
			overloaded(w, r, err)
		} else {
			internalError(w, r, err)
		}
		return
	}
	if !created {
		// Coalesced onto a live identical job: that job's terminal record is
		// the one that matters; this accept is settled (and its spool freed).
		j.Terminal(r.Context(), id, ingest.OpDeduped, nil)
	}
	w.Header().Set("Location", jobLocation(job.ID))
	writeJSON(w, http.StatusAccepted, jobEnvelope{Job: job})
}
