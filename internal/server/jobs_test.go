package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"lotusx/internal/faults"
	"lotusx/internal/ingest"
	"lotusx/internal/metrics"
)

// jobBody mirrors the jobs-API JSON for decoding in tests.
type jobBody struct {
	Job struct {
		ID      string  `json:"id"`
		Kind    string  `json:"kind"`
		Dataset string  `json:"dataset"`
		State   string  `json:"state"`
		Error   string  `json:"error"`
		Bytes   int64   `json:"bytes"`
		Shards  int     `json:"shards"`
		Seq     uint64  `json:"seq"`
		Deduped int64   `json:"deduped"`
		QueueMS float64 `json:"queueMs"`
		RunMS   float64 `json:"runMs"`
	} `json:"job"`
}

// doFull is do plus response headers.
func doFull(t *testing.T, method, url, body string, out any) (*http.Response, int) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, url, err)
		}
	}
	return res, res.StatusCode
}

// pollJob polls GET /api/v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) jobBody {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var jb jobBody
		if code := getJSON(t, base+"/api/v1/jobs/"+id, &jb); code != http.StatusOK {
			t.Fatalf("poll job %s: status %d", id, code)
		}
		if jb.Job.State == "done" || jb.Job.State == "failed" {
			return jb
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, jb.Job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsAsyncDatasetCreate is the headline flow: POST → 202 + Location →
// poll → done → the dataset answers queries.
func TestJobsAsyncDatasetCreate(t *testing.T) {
	ts, _ := adminServer(t, Config{})

	var jb jobBody
	res, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML, &jb)
	if code != http.StatusAccepted {
		t.Fatalf("async create: status %d, want 202", code)
	}
	if loc := res.Header.Get("Location"); loc != "/api/v1/jobs/"+jb.Job.ID {
		t.Fatalf("Location %q for job %s", loc, jb.Job.ID)
	}
	if jb.Job.Kind != "dataset" || jb.Job.Dataset != "lib" || jb.Job.Bytes != int64(len(tinyXML)) {
		t.Fatalf("202 job: %+v", jb.Job)
	}

	final := pollJob(t, ts.URL, jb.Job.ID)
	if final.Job.State != "done" || final.Job.Shards != 2 || final.Job.Seq == 0 {
		t.Fatalf("final job: %+v", final.Job)
	}
	if final.Job.RunMS <= 0 {
		t.Fatalf("terminal job has no run timing: %+v", final.Job)
	}

	var qr struct {
		Answers []struct{} `json:"answers"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatalf("query after async create: status %d", code)
	}
	if len(qr.Answers) != 3 {
		t.Fatalf("async-created dataset answered %d, want 3", len(qr.Answers))
	}

	// The listing includes the terminal job.
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/jobs", &list); code != http.StatusOK {
		t.Fatal("jobs listing failed")
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == jb.Job.ID
	}
	if !found {
		t.Fatalf("job %s missing from listing %+v", jb.Job.ID, list.Jobs)
	}
}

// TestJobsDedupIdenticalIngests: two identical submissions while the first
// is still live coalesce onto one job — same ID, bumped dedup counter.  A
// latency injection at the job site holds the first submission in "running"
// long enough to make the overlap deterministic.
func TestJobsDedupIdenticalIngests(t *testing.T) {
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site:    ingest.FaultJob,
		Keys:    []string{"lib"},
		Latency: 300 * time.Millisecond,
	})
	reg := metrics.New()
	ts, _ := adminServer(t, Config{Metrics: reg, Faults: freg})

	var first, second jobBody
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML, &first); code != http.StatusAccepted {
		t.Fatalf("first: status %d", code)
	}
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML, &second); code != http.StatusAccepted {
		t.Fatalf("second: status %d", code)
	}
	if second.Job.ID != first.Job.ID {
		t.Fatalf("identical ingests got jobs %s and %s, want one", first.Job.ID, second.Job.ID)
	}
	if second.Job.Deduped != 1 {
		t.Fatalf("dedup counter %d, want 1", second.Job.Deduped)
	}
	// A different payload is NOT coalesced.
	var other jobBody
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML2, &other); code != http.StatusAccepted {
		t.Fatalf("different body: status %d", code)
	}
	if other.Job.ID == first.Job.ID {
		t.Fatal("different payload coalesced onto the same job")
	}
	pollJob(t, ts.URL, first.Job.ID)
	pollJob(t, ts.URL, other.Job.ID)
	if n := reg.Ingest().Deduped.Load(); n != 1 {
		t.Fatalf("lotusx_ingest_jobs_deduped_total = %d, want 1", n)
	}
}

// TestJobsFailedJob: a deterministic fault at the job site surfaces as
// state "failed" with the error message; the dataset is never registered.
func TestJobsFailedJob(t *testing.T) {
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site: ingest.FaultJob,
		Keys: []string{"lib"},
		Err:  errors.New("disk on fire"),
	})
	ts, _ := adminServer(t, Config{Faults: freg})

	var jb jobBody
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib", tinyXML, &jb); code != http.StatusAccepted {
		t.Fatalf("create: status %d", code)
	}
	final := pollJob(t, ts.URL, jb.Job.ID)
	if final.Job.State != "failed" || !strings.Contains(final.Job.Error, "disk on fire") {
		t.Fatalf("job under injection: %+v", final.Job)
	}
	if code := getJSON(t, ts.URL+"/api/v1/stats?dataset=lib", &errEnvelope{}); code != http.StatusNotFound {
		t.Fatalf("failed ingest still registered the dataset (stats: %d)", code)
	}
}

// TestJobsUnknownJob404s with the standard envelope.
func TestJobsUnknownJob(t *testing.T) {
	ts, _ := adminServer(t, Config{})
	var env errEnvelope
	if code := getJSON(t, ts.URL+"/api/v1/jobs/j999999", &env); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
	if env.Error.Code != "not_found" || env.Error.RequestID == "" {
		t.Fatalf("unknown-job envelope: %+v", env.Error)
	}
}

// TestJobsDeltaShardAndCompaction: async shard adds land as delta shards;
// the compact endpoint folds them back into base shards.
func TestJobsDeltaShardAndCompaction(t *testing.T) {
	reg := metrics.New()
	ts, _ := adminServer(t, Config{Metrics: reg, CompactThreshold: -1})

	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2&sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	// Two async shard adds → two delta shards.
	for i, body := range []string{
		"<dblp><article><title>Delta</title></article></dblp>",
		"<dblp><article><title>Echo</title></article></dblp>",
	} {
		var jb jobBody
		url := ts.URL + "/api/v1/datasets/lib/shards/extra" + string(rune('a'+i))
		if _, code := doFull(t, "POST", url, body, &jb); code != http.StatusAccepted {
			t.Fatalf("shard add %d: status %d", i, code)
		}
		if jb.Job.Kind != "shard" {
			t.Fatalf("shard job kind %q", jb.Job.Kind)
		}
		if final := pollJob(t, ts.URL, jb.Job.ID); final.Job.State != "done" {
			t.Fatalf("shard job: %+v", final.Job)
		}
	}
	deltaCount := func() int64 {
		var snap struct {
			Corpora map[string]struct {
				Shards      int64 `json:"shards"`
				DeltaShards int64 `json:"deltaShards"`
			} `json:"corpora"`
		}
		if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != http.StatusOK {
			t.Fatal("metrics failed")
		}
		return snap.Corpora["lib"].DeltaShards
	}
	if n := deltaCount(); n != 2 {
		t.Fatalf("%d delta shards after async adds, want 2", n)
	}
	// Queries see base + delta shards merged.
	var qr struct {
		Answers []struct{} `json:"answers"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatal("query failed")
	}
	if len(qr.Answers) != 5 {
		t.Fatalf("query over base+delta: %d answers, want 5", len(qr.Answers))
	}

	// Synchronous compaction folds the deltas away without losing answers.
	var jb jobBody
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib/compact?sync=1", "", &jb); code != http.StatusOK {
		t.Fatalf("compact sync: status %d", code)
	}
	if jb.Job.State != "done" || jb.Job.Kind != "compact" {
		t.Fatalf("compact job: %+v", jb.Job)
	}
	if n := deltaCount(); n != 0 {
		t.Fatalf("%d delta shards after compaction, want 0", n)
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatal("query after compaction failed")
	}
	if len(qr.Answers) != 5 {
		t.Fatalf("query after compaction: %d answers, want 5", len(qr.Answers))
	}
	if n := reg.Ingest().Compactions.Load(); n != 1 {
		t.Fatalf("lotusx_ingest_compactions_total = %d, want 1", n)
	}

	// Compacting again is a clean no-op job.
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib/compact?sync=1", "", &jb); code != http.StatusOK {
		t.Fatalf("noop compact: status %d", code)
	}
	if jb.Job.State != "done" {
		t.Fatalf("noop compact job: %+v", jb.Job)
	}
	if n := reg.Ingest().CompactionNoops.Load(); n != 1 {
		t.Fatalf("compaction noops = %d, want 1", n)
	}
	// Compacting a missing dataset 404s.
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/nope/compact", "", nil); code != http.StatusNotFound {
		t.Fatalf("compact missing dataset: status %d", code)
	}
}

// TestJobsAutoCompaction: crossing the delta threshold schedules a
// background compaction without an explicit compact call.
func TestJobsAutoCompaction(t *testing.T) {
	reg := metrics.New()
	ts, _ := adminServer(t, Config{Metrics: reg, CompactThreshold: 2})

	if code := do(t, "POST", ts.URL+"/api/v1/datasets/lib?sync=1", tinyXML, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	for i := 0; i < 2; i++ {
		var jb jobBody
		url := ts.URL + "/api/v1/datasets/lib/shards/auto" + string(rune('a'+i))
		if _, code := doFull(t, "POST", url, "<dblp><article><title>X</title></article></dblp>", &jb); code != http.StatusAccepted {
			t.Fatalf("shard add %d: status %d", i, code)
		}
		pollJob(t, ts.URL, jb.Job.ID)
	}
	// The second delta crossed the threshold; wait for the compaction job.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Ingest().Compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var qr struct {
		Answers []struct{} `json:"answers"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatal("query failed")
	}
	if len(qr.Answers) != 5 {
		t.Fatalf("after auto-compaction: %d answers, want 5", len(qr.Answers))
	}
}
