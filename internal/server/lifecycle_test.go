package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/ingest"
	"lotusx/internal/metrics"
)

// TestDrainGateRefusesNewWork: BeginDrain flips /readyz and the drain gate
// refuses new non-exempt requests with 503 + Retry-After while exempt
// observability routes keep answering.
func TestDrainGateRefusesNewWork(t *testing.T) {
	reg := metrics.New()
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewConfig(e, Config{Metrics: reg})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if code := getJSON(t, ts.URL+"/api/v1/stats", &struct{}{}); code != http.StatusOK {
		t.Fatalf("stats before drain: %d", code)
	}
	if err := srv.Ready(); err != nil {
		t.Fatalf("ready before drain: %v", err)
	}

	srv.BeginDrain()
	srv.BeginDrain() // idempotent

	if err := srv.Ready(); err == nil {
		t.Fatal("Ready() nil while draining")
	}
	res, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining stats status = %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("Retry-After missing on drain refusal")
	}

	// Exempt routes answer through the gate: the balancer reads metrics and
	// clients poll jobs while the instance drains.
	var snap metrics.Snapshot
	if code := getJSON(t, ts.URL+"/api/v1/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics while draining: %d", code)
	}
	if !snap.Lifecycle.Draining {
		t.Error("snapshot does not report draining")
	}
	if snap.Lifecycle.DrainRejected < 1 {
		t.Errorf("drainRejected = %d, want >= 1", snap.Lifecycle.DrainRejected)
	}
	if snap.Endpoints["stats"].Shed < 1 {
		t.Errorf("stats shed = %d, want >= 1", snap.Endpoints["stats"].Shed)
	}

	// The Prometheus exposition carries the gauge.
	pres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer pres.Body.Close()
	b := make([]byte, 1<<20)
	n, _ := pres.Body.Read(b)
	if !strings.Contains(string(b[:n]), "lotusx_lifecycle_draining 1") {
		t.Error("exposition missing lotusx_lifecycle_draining 1")
	}
}

// TestDrainCompletesQueuedIngest: Drain waits for an accepted async ingest
// to finish instead of dropping it.
func TestDrainCompletesQueuedIngest(t *testing.T) {
	dir := t.TempDir()
	srv := newAdminCatalogServer(t, Config{CorpusDir: filepath.Join(dir, "corpora")})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var jb jobBody
	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML, &jb); code != http.StatusAccepted {
		t.Fatalf("async create: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The job reached its terminal state and the journal settled.
	if n := srv.reg.Lifecycle().JournalPending(); n != 0 {
		t.Fatalf("journal pending after drain = %d", n)
	}
	// The drain gate refuses new HTTP requests, so check in-process that the
	// accepted ingest actually landed before the drain returned.
	if _, err := srv.catalog.GetBackend("lib"); err != nil {
		t.Fatalf("dataset missing after drain: %v", err)
	}
}

// newAdminCatalogServer builds a *Server (not just its httptest wrapper)
// with admin on — lifecycle tests need the Server handle for Drain/Close.
func newAdminCatalogServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.EnableAdmin = true
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCatalog()
	c.Add("bib", e)
	srv := NewCatalogConfig(c, cfg)
	t.Cleanup(srv.Close)
	return srv
}

// TestJournalCrashRestartReplays is the kill-and-restart proof: a fault at
// the terminal-record append simulates a crash between publishing an ingest
// and settling its journal entry; a second server over the same corpus
// directory replays the accept idempotently and settles it.
func TestJournalCrashRestartReplays(t *testing.T) {
	dir := t.TempDir()
	corpusDir := filepath.Join(dir, "corpora")
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site: ingest.FaultJournal,
		Keys: []string{"terminal:lib"},
		Err:  errors.New("injected crash before terminal record"),
	})

	srv1 := newAdminCatalogServer(t, Config{CorpusDir: corpusDir, Faults: freg})
	ts1 := httptest.NewServer(srv1)
	var jb jobBody
	if _, code := doFull(t, "POST", ts1.URL+"/api/v1/datasets/lib?shards=2", tinyXML, &jb); code != http.StatusAccepted {
		t.Fatalf("async create: %d", code)
	}
	if final := pollJob(t, ts1.URL, jb.Job.ID); final.Job.State != "done" {
		t.Fatalf("job state %q", final.Job.State)
	}
	// The terminal append failed: the accept is still pending and its spool
	// is still on disk — exactly the crash-window state.
	if n := srv1.reg.Lifecycle().JournalPending(); n != 1 {
		t.Fatalf("pending after faulted terminal = %d, want 1", n)
	}
	spools, _ := filepath.Glob(filepath.Join(corpusDir, "ingest-spool-*.xml"))
	if len(spools) != 1 {
		t.Fatalf("retained spools = %d, want 1", len(spools))
	}
	ts1.Close()
	srv1.Close() // the "crash": no drain, the journal still holds the accept

	// Restart over the same directory, no faults: the journal replays the
	// accept (idempotently re-publishing the dataset) and settles it.
	reg2 := metrics.New()
	srv2 := newAdminCatalogServer(t, Config{CorpusDir: corpusDir, Metrics: reg2})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	deadline := time.Now().Add(10 * time.Second)
	for reg2.Lifecycle().JournalPending() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("journal never settled after restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg2.Lifecycle().JournalReplayed.Load(); got != 1 {
		t.Fatalf("JournalReplayed = %d, want 1", got)
	}

	// The replayed dataset answers queries.
	var qr struct {
		Answers []struct{} `json:"answers"`
		Shards  int        `json:"shards"`
	}
	if code := postJSON(t, ts2.URL+"/api/v1/query?dataset=lib", `{"query":"//article/title","k":10}`, &qr); code != http.StatusOK {
		t.Fatalf("query after replay: %d", code)
	}
	if len(qr.Answers) != 3 {
		t.Fatalf("replayed dataset answered %d, want 3", len(qr.Answers))
	}
	// The settled journal freed the spool.
	spools, _ = filepath.Glob(filepath.Join(corpusDir, "ingest-spool-*.xml"))
	if len(spools) != 0 {
		t.Fatalf("spools after replay = %v, want none", spools)
	}

	// A third start finds nothing to do: replay converged.
	reg3 := metrics.New()
	srv3 := newAdminCatalogServer(t, Config{CorpusDir: corpusDir, Metrics: reg3})
	_ = srv3
	if got := reg3.Lifecycle().JournalReplayed.Load(); got != 0 {
		t.Fatalf("second restart replayed %d records, want 0", got)
	}
}

// TestJournalAcceptFaultFailsRequest: when the accept record cannot be made
// durable, the 202 promise is refused — the request answers 500 and leaves
// no spool behind.
func TestJournalAcceptFaultFailsRequest(t *testing.T) {
	dir := t.TempDir()
	corpusDir := filepath.Join(dir, "corpora")
	// The corpus dir must exist for the journal to open at startup; an
	// accept-time open would fail the same way but exercise less.
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	freg := faults.New()
	freg.Enable(faults.Injection{
		Site: ingest.FaultJournal,
		Keys: []string{"accept:lib"},
		Err:  errors.New("injected disk failure"),
	})
	srv := newAdminCatalogServer(t, Config{CorpusDir: corpusDir, Faults: freg})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	if _, code := doFull(t, "POST", ts.URL+"/api/v1/datasets/lib?shards=2", tinyXML, nil); code != http.StatusInternalServerError {
		t.Fatalf("create with failed accept: %d, want 500", code)
	}
	spools, _ := filepath.Glob(filepath.Join(corpusDir, "ingest-spool-*.xml"))
	if len(spools) != 0 {
		t.Fatalf("failed accept leaked spools: %v", spools)
	}
	if n := srv.reg.Lifecycle().JournalPending(); n != 0 {
		t.Fatalf("pending after refused accept = %d", n)
	}
}

// TestOrphanSpoolSweep: spool files no journal record references are swept
// at startup — bodies whose deletion a crash interrupted.
func TestOrphanSpoolSweep(t *testing.T) {
	dir := t.TempDir()
	corpusDir := filepath.Join(dir, "corpora")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(corpusDir, "ingest-spool-orphan.xml")
	if err := os.WriteFile(orphan, []byte("<doc/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	newAdminCatalogServer(t, Config{CorpusDir: corpusDir, Metrics: reg})

	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan spool survived startup")
	}
	if got := reg.Lifecycle().OrphansSwept.Load(); got != 1 {
		t.Fatalf("OrphansSwept = %d, want 1", got)
	}
}

// TestRateLimitOnServer: the per-client limiter is wired through Config and
// visible in the endpoint metrics; exempt routes bypass it.
func TestRateLimitOnServer(t *testing.T) {
	reg := metrics.New()
	e, err := core.FromReader("bib", strings.NewReader(bibXML))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewConfig(e, Config{Metrics: reg, RateQPS: 0.001, RateBurst: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	client := &http.Client{}
	get := func(path string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Lotusx-Client", "tester")
		res, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for i := 0; i < 2; i++ {
		res := get("/api/v1/stats")
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, res.StatusCode)
		}
	}
	res := get("/api/v1/stats")
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("Retry-After missing on 429")
	}

	// Exempt observability answers, and the snapshot carries the admission
	// counters plus the 429 tallied into the endpoint's shed count.
	mres := get("/api/v1/metrics")
	defer mres.Body.Close()
	if mres.StatusCode != http.StatusOK {
		t.Fatalf("metrics while limited: %d", mres.StatusCode)
	}
	snap := reg.Snapshot()
	if snap.Admission == nil || snap.Admission.Limited < 1 {
		t.Fatalf("admission snapshot = %+v", snap.Admission)
	}
	if snap.Endpoints["stats"].Shed < 1 {
		t.Errorf("stats shed = %d, want >= 1", snap.Endpoints["stats"].Shed)
	}
}
