package server

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"lotusx/internal/obs"
)

// TestTraceStoreRetainsErrors: the store is on by default — a request that
// errors is retrievable afterwards by its request ID, with the span tree,
// without anyone having asked for ?debug=trace.
func TestTraceStoreRetainsErrors(t *testing.T) {
	_, ts := shardedServer(t, Config{})

	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/query",
		strings.NewReader(`{"query": "]broken["}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "store-err-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", resp.StatusCode)
	}

	var list struct {
		Traces   []obs.TraceRecord `json:"traces"`
		Retained int               `json:"retained"`
		Offered  int64             `json:"offered"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/traces?error=1", &list); code != 200 {
		t.Fatalf("trace list status = %d", code)
	}
	if len(list.Traces) != 1 || list.Traces[0].RequestID != "store-err-1" {
		t.Fatalf("error traces = %+v, want the failed request", list.Traces)
	}
	if list.Traces[0].Error == "" || list.Traces[0].Trace != nil {
		t.Fatalf("summary = %+v, want error text without tree", list.Traces[0])
	}
	if list.Offered == 0 {
		t.Fatal("store counters missing from the list response")
	}

	var rec obs.TraceRecord
	if code := getJSON(t, ts.URL+"/api/v1/traces/store-err-1", &rec); code != 200 {
		t.Fatalf("trace fetch status = %d", code)
	}
	if rec.Trace == nil || rec.Trace.Name != "query" {
		t.Fatalf("record = %+v, want the query span tree", rec)
	}
}

// TestTracesQueryValidation: filter parsing rejects junk with 400s and an
// unknown ID is 404.
func TestTracesQueryValidation(t *testing.T) {
	_, ts := shardedServer(t, Config{})
	for _, path := range []string{
		"/api/v1/traces?minMs=abc",
		"/api/v1/traces?minMs=-1",
		"/api/v1/traces?limit=0",
		"/api/v1/traces?limit=99999",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID status = %d, want 404", resp.StatusCode)
	}
}

// TestTraceStoreDisabled: negative capacity turns the store off — the
// routes answer 404 and requests pay no rooting.
func TestTraceStoreDisabled(t *testing.T) {
	_, ts := shardedServer(t, Config{TraceCapacity: -1})
	for _, path := range []string{"/api/v1/traces", "/api/v1/traces/any"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404 with the store disabled", path, resp.StatusCode)
		}
	}
}

// TestPassiveTraceSampleServesThroughCache: the X-Lotusx-Trace: sample
// spelling returns the span tree WITHOUT bypassing the hot-path caches —
// the mode routers use for always-on tail sampling, which must not turn
// every shard cache hit into a miss.
func TestPassiveTraceSampleServesThroughCache(t *testing.T) {
	ts, reg := adminServer(t, Config{})
	body := `{"query":"//article/title","k":5}`

	do := func() *struct{} {
		req, _ := http.NewRequest("POST", ts.URL+"/api/v1/query?dataset=bib", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Lotusx-Trace", "sample")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Trace *struct{} `json:"trace"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Trace
	}

	if do() == nil {
		t.Fatal("sample mode returned no trace")
	}
	if _, misses := cacheCounters(t, reg, "results"); misses != 1 {
		t.Fatalf("first sampled request: misses=%d, want 1 (cache consulted, not bypassed)", misses)
	}
	if do() == nil {
		t.Fatal("sampled cache hit returned no trace")
	}
	if hits, _ := cacheCounters(t, reg, "results"); hits != 1 {
		t.Fatalf("second sampled request: hits=%d, want 1 (served from cache)", hits)
	}
}

// TestSlowQueryLogEnriched: the slow-query line carries the request's
// classification facts — here the cache verdict and, on failures, the error.
func TestSlowQueryLogEnriched(t *testing.T) {
	sink := &syncWriter{}
	ts, _ := adminServer(t, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(sink, nil)),
	})
	body := `{"query":"//article/title","k":5}`
	var out struct{ Answers []any }
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", body, &out)
	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", body, &out)

	logs := waitForLog(t, sink, "cache=hit")
	var miss, hit bool
	for _, l := range strings.Split(logs, "\n") {
		if !strings.Contains(l, "slow query") {
			continue
		}
		miss = miss || strings.Contains(l, "cache=miss")
		hit = hit || strings.Contains(l, "cache=hit")
	}
	if !miss || !hit {
		t.Fatalf("slow-query lines lack cache verdicts (miss=%v hit=%v):\n%s", miss, hit, logs)
	}

	postJSON(t, ts.URL+"/api/v1/query?dataset=bib", `{"query":"]bad["}`, &out)
	logs = waitForLog(t, sink, "error=")
	found := false
	for _, l := range strings.Split(logs, "\n") {
		if strings.Contains(l, "slow query") && strings.Contains(l, "error=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed query's slow-query line lacks error=:\n%s", logs)
	}
}
