package dataguide

import (
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>Tok Wang Ling</author>
    <title>XML Databases</title>
    <chapter><title>Twigs</title></chapter>
  </book>
</dblp>`

func mustGuide(t *testing.T, src string) *Guide {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(d)
}

func TestGuideShape(t *testing.T) {
	g := mustGuide(t, bibXML)
	// Distinct paths: /dblp, /dblp/article, /dblp/article/@key,
	// /dblp/article/author, /dblp/article/title, /dblp/article/year,
	// /dblp/book, /dblp/book/@key, /dblp/book/author, /dblp/book/title,
	// /dblp/book/chapter, /dblp/book/chapter/title = 12.
	if g.Size() != 12 {
		t.Errorf("Size = %d, want 12", g.Size())
	}
	tags := g.Document().Tags()
	if g.Root().Tag != tags.ID("dblp") || g.Root().Count != 1 {
		t.Errorf("root = %+v", g.Root())
	}
}

func TestGuideCounts(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	art := g.Root().Children[tags.ID("article")]
	if art == nil || art.Count != 2 {
		t.Fatalf("article guide node = %+v", art)
	}
	au := art.Children[tags.ID("author")]
	if au == nil || au.Count != 3 {
		t.Fatalf("article/author count = %+v", au)
	}
	// title appears via three distinct paths.
	if n := len(g.NodesByTag(tags.ID("title"))); n != 3 {
		t.Errorf("title guide nodes = %d, want 3", n)
	}
}

func TestGuidePathString(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	var chapterTitle *Node
	for _, gn := range g.NodesByTag(tags.ID("title")) {
		if gn.Depth == 3 {
			chapterTitle = gn
		}
	}
	if chapterTitle == nil {
		t.Fatal("chapter title path missing")
	}
	if got := chapterTitle.Path(tags); got != "/dblp/book/chapter/title" {
		t.Errorf("path = %q", got)
	}
}

func TestGuideValues(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	art := g.Root().Children[tags.ID("article")]
	au := art.Children[tags.ID("author")]
	vals := au.Values()
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	if vals[0].Value != "jiaheng lu" || vals[0].Count != 2 {
		t.Errorf("top value = %+v", vals[0])
	}
	if au.ValuesTruncated() {
		t.Error("small sample should not be truncated")
	}
}

func TestValueCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < maxValuesPerPath+10; i++ {
		b.WriteString("<v>value")
		b.WriteByte(byte('a' + i%26))
		b.WriteByte(byte('a' + (i/26)%26))
		b.WriteString("</v>")
	}
	b.WriteString("</r>")
	g := mustGuide(t, b.String())
	tags := g.Document().Tags()
	vn := g.Root().Children[tags.ID("v")]
	if len(vn.Values()) != maxValuesPerPath {
		t.Errorf("sampled %d values, want %d", len(vn.Values()), maxValuesPerPath)
	}
	if !vn.ValuesTruncated() {
		t.Error("truncation not flagged")
	}
}

func TestSubtreeTagCounts(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	book := g.Root().Children[tags.ID("book")]
	counts := book.SubtreeTagCounts()
	if counts[tags.ID("title")] != 2 { // direct + chapter title
		t.Errorf("book subtree title count = %d, want 2", counts[tags.ID("title")])
	}
	if counts[tags.ID("year")] != 0 {
		t.Errorf("book subtree should have no year")
	}
	root := g.Root().SubtreeTagCounts()
	if root[tags.ID("author")] != 4 {
		t.Errorf("root subtree author count = %d, want 4", root[tags.ID("author")])
	}
	// Memoized: repeated call returns the same map.
	if &counts == nil || len(book.SubtreeTagCounts()) != len(counts) {
		t.Error("memoization broken")
	}
}

func TestFindContextRooted(t *testing.T) {
	g := mustGuide(t, bibXML)
	ctx := g.FindContext([]Step{{twig.Child, "dblp"}, {twig.Child, "article"}})
	if len(ctx) != 1 || ctx[0].Count != 2 {
		t.Fatalf("ctx = %v", ctx)
	}
	if got := g.FindContext([]Step{{twig.Child, "article"}}); got != nil {
		t.Error("/article should not match (root is dblp)")
	}
}

func TestFindContextDescendant(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	ctx := g.FindContext([]Step{{twig.Descendant, "title"}})
	if len(ctx) != 3 {
		t.Fatalf("//title contexts = %d, want 3", len(ctx))
	}
	ctx = g.FindContext([]Step{{twig.Descendant, "book"}, {twig.Descendant, "title"}})
	if len(ctx) != 2 {
		t.Fatalf("//book//title contexts = %d, want 2", len(ctx))
	}
	ctx = g.FindContext([]Step{{twig.Descendant, "book"}, {twig.Child, "title"}})
	if len(ctx) != 1 || ctx[0].Path(tags) != "/dblp/book/title" {
		t.Fatalf("//book/title ctx = %v", ctx)
	}
}

func TestFindContextWildcard(t *testing.T) {
	g := mustGuide(t, bibXML)
	ctx := g.FindContext([]Step{{twig.Descendant, "chapter"}, {twig.Child, twig.Wildcard}})
	if len(ctx) != 1 {
		t.Fatalf("chapter/* = %d contexts, want 1 (title)", len(ctx))
	}
	all := g.FindContext([]Step{{twig.Descendant, twig.Wildcard}})
	if len(all) != g.Size() {
		t.Fatalf("//* = %d, want %d", len(all), g.Size())
	}
}

func TestFindContextMiss(t *testing.T) {
	g := mustGuide(t, bibXML)
	if got := g.FindContext([]Step{{twig.Descendant, "nosuch"}}); got != nil {
		t.Error("unknown tag should yield no context")
	}
	if got := g.FindContext([]Step{{twig.Descendant, "year"}, {twig.Child, "author"}}); got != nil {
		t.Error("impossible nesting should yield no context")
	}
}

func TestCandidateTags(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	ctx := g.FindContext([]Step{{twig.Descendant, "article"}})
	kids := g.CandidateTags(ctx, twig.Child)
	if kids[tags.ID("author")] != 3 || kids[tags.ID("@key")] != 2 {
		t.Errorf("article child tags = %v", kids)
	}
	if _, ok := kids[tags.ID("chapter")]; ok {
		t.Error("chapter is not a child of article")
	}
	desc := g.CandidateTags(g.FindContext([]Step{{twig.Descendant, "book"}}), twig.Descendant)
	if desc[tags.ID("title")] != 2 {
		t.Errorf("book descendant title count = %d, want 2", desc[tags.ID("title")])
	}
}

func TestCandidateValues(t *testing.T) {
	g := mustGuide(t, bibXML)
	ctx := g.FindContext([]Step{{twig.Descendant, "author"}})
	vals := g.CandidateValues(ctx)
	if len(vals) != 3 {
		t.Fatalf("author values = %v", vals)
	}
	if vals[0].Value != "jiaheng lu" || vals[0].Count != 2 {
		t.Errorf("top author value = %+v", vals[0])
	}
}

func TestSiblingTags(t *testing.T) {
	g := mustGuide(t, bibXML)
	tags := g.Document().Tags()
	sibs := g.SiblingTags(tags.ID("year"))
	if _, ok := sibs[tags.ID("author")]; !ok {
		t.Error("author should be a sibling tag of year")
	}
	if _, ok := sibs[tags.ID("year")]; ok {
		t.Error("a tag is not its own sibling")
	}
	if _, ok := sibs[tags.ID("chapter")]; ok {
		t.Error("chapter never co-occurs with year")
	}
}

func TestWarm(t *testing.T) {
	g := mustGuide(t, bibXML)
	g.Warm()
	g.walkAll(func(gn *Node) {
		if gn.subtreeTags == nil {
			t.Fatal("Warm left a node unmemoized")
		}
	})
}

func TestRecursiveDocumentGuide(t *testing.T) {
	g := mustGuide(t, `<a><a><a><b/></a><b/></a></a>`)
	tags := g.Document().Tags()
	// Paths: /a, /a/a, /a/a/a, /a/a/a/b, /a/a/b — recursion unrolls per
	// depth in a strong dataguide.
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
	ctx := g.FindContext([]Step{{twig.Descendant, "a"}, {twig.Child, "b"}})
	if len(ctx) != 2 {
		t.Errorf("//a/b contexts = %d, want 2", len(ctx))
	}
	_ = tags
}
