// Package dataguide builds the strong DataGuide structural summary LotusX's
// position-aware features run on: one guide node per distinct root-to-node
// label path in the document, annotated with occurrence counts and sample
// values.  The guide answers the question at the core of position-aware
// auto-completion — "which tags (and values) can occur at this position of
// the partial twig?" — without touching the document.
package dataguide

import (
	"sort"
	"strings"

	"lotusx/internal/doc"
	"lotusx/internal/twig"
)

// maxValuesPerPath caps the distinct values sampled per guide node; beyond
// the cap new values are dropped but existing counters keep counting, so
// frequent categorical values (the completion targets) stay accurate while
// free-text paths degrade gracefully to tag-level completion.
const maxValuesPerPath = 64

// Node is one guide node: a distinct label path.
type Node struct {
	Tag      doc.TagID
	Parent   *Node
	Children map[doc.TagID]*Node
	// Count is how many document nodes share this label path.
	Count int
	// Depth is the path length; the root element's guide node has depth 0.
	Depth int

	values      map[string]int
	valuesFull  bool
	subtreeTags map[doc.TagID]int // memoized by SubtreeTagCounts
}

// Guide is a strong DataGuide over one document.  It is immutable after
// Build except for internal memoization, which is not synchronized: build
// and warm it before sharing across goroutines (core.Engine does).
type Guide struct {
	root  *Node
	byTag map[doc.TagID][]*Node
	d     *doc.Document
	size  int
}

// Build constructs the guide in one document traversal.
func Build(d *doc.Document) *Guide {
	g := &Guide{byTag: make(map[doc.TagID][]*Node), d: d}
	g.root = g.newNode(d.Tag(d.Root()), nil, 0)

	var walk func(n doc.NodeID, gn *Node)
	walk = func(n doc.NodeID, gn *Node) {
		gn.Count++
		if v := d.Value(n); v != "" {
			gn.addValue(strings.ToLower(v))
		}
		for c := d.FirstChild(n); c != doc.None; c = d.NextSibling(c) {
			tag := d.Tag(c)
			child := gn.Children[tag]
			if child == nil {
				child = g.newNode(tag, gn, gn.Depth+1)
				gn.Children[tag] = child
			}
			walk(c, child)
		}
	}
	walk(d.Root(), g.root)
	return g
}

func (g *Guide) newNode(tag doc.TagID, parent *Node, depth int) *Node {
	gn := &Node{
		Tag:      tag,
		Parent:   parent,
		Children: make(map[doc.TagID]*Node),
		Depth:    depth,
		values:   make(map[string]int),
	}
	g.byTag[tag] = append(g.byTag[tag], gn)
	g.size++
	return gn
}

func (gn *Node) addValue(v string) {
	if _, ok := gn.values[v]; !ok && len(gn.values) >= maxValuesPerPath {
		gn.valuesFull = true
		return
	}
	gn.values[v]++
}

// Root returns the guide node of the document root.
func (g *Guide) Root() *Node { return g.root }

// Size returns the number of guide nodes (distinct label paths).
func (g *Guide) Size() int { return g.size }

// Document returns the summarized document.
func (g *Guide) Document() *doc.Document { return g.d }

// NodesByTag returns the guide nodes with the given tag.
func (g *Guide) NodesByTag(tag doc.TagID) []*Node { return g.byTag[tag] }

// Path returns the guide node's label path, e.g. "/dblp/article/author".
func (gn *Node) Path(tags *doc.TagDict) string {
	var parts []string
	for cur := gn; cur != nil; cur = cur.Parent {
		parts = append(parts, tags.Name(cur.Tag))
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// ValueCount is a sampled value with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// Values returns the node's sampled values, most frequent first
// (lexicographic among ties).  ValuesTruncated reports whether the sample
// hit the cap.
func (gn *Node) Values() []ValueCount {
	out := make([]ValueCount, 0, len(gn.values))
	for v, c := range gn.values {
		out = append(out, ValueCount{v, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ValuesTruncated reports whether some values were dropped from the sample.
func (gn *Node) ValuesTruncated() bool { return gn.valuesFull }

// SubtreeTagCounts returns, for every tag occurring in this guide node's
// subtree (the node excluded), the total document-node count.  The result is
// memoized and shared; callers must not modify it.
func (gn *Node) SubtreeTagCounts() map[doc.TagID]int {
	if gn.subtreeTags != nil {
		return gn.subtreeTags
	}
	acc := make(map[doc.TagID]int)
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			acc[c.Tag] += c.Count
			walk(c)
		}
	}
	walk(gn)
	gn.subtreeTags = acc
	return acc
}

// Step is one constraint of a context path: reach a node tagged Tag via
// Axis.  A Wildcard tag matches any guide node.
type Step struct {
	Axis twig.Axis
	Tag  string // tag name or twig.Wildcard
}

// FindContext returns the guide nodes satisfying the chain of steps from the
// document root.  The first step's Child axis anchors at the document root
// element; Descendant matches the tag anywhere.  This is the positional
// interpretation of a partial twig's root-to-focus path.
func (g *Guide) FindContext(steps []Step) []*Node {
	tags := g.d.Tags()
	cur := map[*Node]struct{}{}
	for i, st := range steps {
		next := map[*Node]struct{}{}
		match := func(gn *Node) bool {
			if st.Tag == twig.Wildcard {
				return true
			}
			id := tags.ID(st.Tag)
			return id != doc.NoTag && gn.Tag == id
		}
		if i == 0 {
			switch st.Axis {
			case twig.Child:
				if match(g.root) {
					next[g.root] = struct{}{}
				}
			case twig.Descendant:
				if st.Tag == twig.Wildcard {
					g.walkAll(func(gn *Node) { next[gn] = struct{}{} })
				} else if id := tags.ID(st.Tag); id != doc.NoTag {
					for _, gn := range g.byTag[id] {
						next[gn] = struct{}{}
					}
				}
			}
		} else {
			for gn := range cur {
				switch st.Axis {
				case twig.Child:
					if st.Tag == twig.Wildcard {
						for _, c := range gn.Children {
							next[c] = struct{}{}
						}
					} else if id := tags.ID(st.Tag); id != doc.NoTag {
						if c := gn.Children[id]; c != nil {
							next[c] = struct{}{}
						}
					}
				case twig.Descendant:
					var walk func(n *Node)
					walk = func(n *Node) {
						for _, c := range n.Children {
							if match(c) {
								next[c] = struct{}{}
							}
							walk(c)
						}
					}
					walk(gn)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	out := make([]*Node, 0, len(cur))
	for gn := range cur {
		out = append(out, gn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path(tags) < out[j].Path(tags) })
	return out
}

func (g *Guide) walkAll(fn func(*Node)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(g.root)
}

// CandidateTags aggregates the tags reachable from the given contexts via
// axis: direct child tags for Child, all subtree tags for Descendant.  The
// returned counts are document-node occurrence totals, the weights
// completion ranks by.
func (g *Guide) CandidateTags(contexts []*Node, axis twig.Axis) map[doc.TagID]int {
	out := make(map[doc.TagID]int)
	for _, gn := range contexts {
		switch axis {
		case twig.Child:
			for tag, c := range gn.Children {
				out[tag] += c.Count
			}
		case twig.Descendant:
			for tag, cnt := range gn.SubtreeTagCounts() {
				out[tag] += cnt
			}
		}
	}
	return out
}

// CandidateValues aggregates the sampled values of the given contexts,
// most frequent first.
func (g *Guide) CandidateValues(contexts []*Node) []ValueCount {
	acc := make(map[string]int)
	for _, gn := range contexts {
		for v, c := range gn.values {
			acc[v] += c
		}
	}
	out := make([]ValueCount, 0, len(acc))
	for v, c := range acc {
		out = append(out, ValueCount{v, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// SiblingTags returns, for every guide node with the given tag, the tags of
// its siblings (other children of its parents), with counts.  The rewrite
// engine uses this to substitute a mistyped tag with one that occurs in the
// same contexts.
func (g *Guide) SiblingTags(tag doc.TagID) map[doc.TagID]int {
	out := make(map[doc.TagID]int)
	for _, gn := range g.byTag[tag] {
		if gn.Parent == nil {
			continue
		}
		for t, c := range gn.Parent.Children {
			if t != tag {
				out[t] += c.Count
			}
		}
	}
	return out
}

// Warm forces all memoized structures so a shared Guide is read-only
// afterwards.
func (g *Guide) Warm() {
	g.walkAll(func(gn *Node) { gn.SubtreeTagCounts() })
}
