// Package labeling implements the positional labeling schemes LotusX uses to
// reason about structural relationships between XML nodes without touching
// the document tree: containment (region) labels and Dewey order codes.
//
// A containment label is the triple (Start, End, Level) assigned during a
// single document-order traversal: Start and End are pre/post visitation
// ticks, Level is the depth (the root has level 0).  Node a is an ancestor of
// node d iff a.Start < d.Start && d.End <= a.End; it is the parent iff it is
// an ancestor and a.Level+1 == d.Level.  Document order is Start order.
//
// A Dewey label is the path of child ordinals from the root, e.g. the third
// child of the root's first child is 0.2 (ordinals are zero-based).  Dewey
// labels make lowest-common-ancestor computation trivial and are used by the
// ranking layer to measure how tightly a match is clustered.
package labeling

// Region is a containment label.  The zero value is not a valid label of any
// node; valid labels always have End > Start.
type Region struct {
	Start int32 // preorder visitation tick
	End   int32 // postorder visitation tick, > Start
	Level int32 // depth; the document root element has level 0
}

// IsAncestor reports whether a is a proper ancestor of d.
func (a Region) IsAncestor(d Region) bool {
	return a.Start < d.Start && d.End <= a.End
}

// IsParent reports whether a is the parent of d.
func (a Region) IsParent(d Region) bool {
	return a.Level+1 == d.Level && a.IsAncestor(d)
}

// IsAncestorOrSelf reports whether a is d or a proper ancestor of d.
func (a Region) IsAncestorOrSelf(d Region) bool {
	return a == d || a.IsAncestor(d)
}

// Precedes reports whether a comes strictly before b in document order.
func (a Region) Precedes(b Region) bool { return a.Start < b.Start }

// Before reports whether a's subtree ends before b's begins, i.e. a precedes
// b and is not an ancestor of b.  This is XQuery's << on disjoint nodes.
func (a Region) Before(b Region) bool { return a.End < b.Start }

// Disjoint reports whether neither node contains the other.
func (a Region) Disjoint(b Region) bool {
	return a.End < b.Start || b.End < a.Start
}

// Span returns the number of visitation ticks covered by the region.  It is
// a cheap proxy for subtree size: larger spans mean larger subtrees.
func (a Region) Span() int32 { return a.End - a.Start }

// Assigner hands out containment labels during a document-order traversal.
// Call Enter when an element starts and Leave when it ends; Leave completes
// and returns the label started by the matching Enter.
type Assigner struct {
	tick  int32
	depth int32
	open  []int32 // start ticks of currently open elements
}

// NewAssigner returns an Assigner whose first Enter produces Start == 1.
// Tick 0 is reserved so that the zero Region never collides with a real one.
func NewAssigner() *Assigner { return &Assigner{tick: 0} }

// Enter opens a new element and returns its Start tick and Level.
func (s *Assigner) Enter() (start, level int32) {
	s.tick++
	start = s.tick
	level = s.depth
	s.open = append(s.open, start)
	s.depth++
	return start, level
}

// Leave closes the most recently opened element and returns its completed
// Region.  Leave panics if no element is open: the caller (the document
// builder) guarantees well-nested input.
func (s *Assigner) Leave() Region {
	if len(s.open) == 0 {
		panic("labeling: Leave without matching Enter")
	}
	s.tick++
	start := s.open[len(s.open)-1]
	s.open = s.open[:len(s.open)-1]
	s.depth--
	return Region{Start: start, End: s.tick, Level: s.depth}
}

// Depth returns the number of currently open elements.
func (s *Assigner) Depth() int { return len(s.open) }
