package labeling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandomTree grows a random tree with n nodes and returns parallel
// slices of Region and Dewey labels plus each node's parent index (-1 for
// the root), produced by a single simulated traversal.
func buildRandomTree(rng *rand.Rand, n int) (regions []Region, deweys []Dewey, parents []int) {
	ra := NewAssigner()
	da := NewDeweyAssigner()
	regions = make([]Region, n)
	deweys = make([]Dewey, n)
	parents = make([]int, n)

	// We generate a random preorder shape: maintain a stack of open nodes;
	// at each step either open a new child (if any nodes remain) or close
	// the top (if the stack is non-empty).
	type open struct {
		idx   int
		start int32
		level int32
	}
	var stack []open
	created := 0
	starts := make(map[int]struct{ start, level int32 })
	for created < n || len(stack) > 0 {
		openNew := created < n && (len(stack) == 0 || rng.Intn(2) == 0)
		if openNew {
			start, level := ra.Enter()
			dl := da.Enter()
			deweys[created] = append(Dewey(nil), dl...)
			if len(stack) == 0 {
				parents[created] = -1
			} else {
				parents[created] = stack[len(stack)-1].idx
			}
			stack = append(stack, open{created, start, level})
			starts[created] = struct{ start, level int32 }{start, level}
			created++
		} else {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			regions[top.idx] = ra.Leave()
			da.Leave()
		}
	}
	for i, s := range starts {
		if regions[i].Start != s.start || regions[i].Level != s.level {
			panic("assigner returned mismatched start/level")
		}
	}
	return regions, deweys, parents
}

// trueAncestor computes ancestry from the parent pointers (the oracle).
func trueAncestor(parents []int, a, d int) bool {
	for p := parents[d]; p >= 0; p = parents[p] {
		if p == a {
			return true
		}
	}
	return false
}

func TestRegionAgainstParentPointerOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		regions, deweys, parents := buildRandomTree(rng, n)
		for a := 0; a < n; a++ {
			for d := 0; d < n; d++ {
				if a == d {
					continue
				}
				want := trueAncestor(parents, a, d)
				if got := regions[a].IsAncestor(regions[d]); got != want {
					t.Fatalf("trial %d: IsAncestor(%d,%d)=%v want %v", trial, a, d, got, want)
				}
				if got := deweys[a].IsAncestor(deweys[d]); got != want {
					t.Fatalf("trial %d: Dewey IsAncestor(%d,%d)=%v want %v", trial, a, d, got, want)
				}
				wantParent := parents[d] == a
				if got := regions[a].IsParent(regions[d]); got != wantParent {
					t.Fatalf("trial %d: IsParent(%d,%d)=%v want %v", trial, a, d, got, wantParent)
				}
			}
		}
	}
}

func TestRegionAndDeweyAgreeOnDocumentOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		regions, deweys, _ := buildRandomTree(rng, n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				regOrder := regions[a].Precedes(regions[b])
				dwOrder := deweys[a].Compare(deweys[b]) < 0
				if regOrder != dwOrder {
					t.Fatalf("order disagreement between labelings at (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestRegionBeforeAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	regions, _, parents := buildRandomTree(rng, 50)
	for a := range regions {
		for b := range regions {
			if a == b {
				continue
			}
			related := trueAncestor(parents, a, b) || trueAncestor(parents, b, a)
			if got := regions[a].Disjoint(regions[b]); got != !related {
				t.Fatalf("Disjoint(%d,%d)=%v want %v", a, b, got, !related)
			}
			wantBefore := !related && regions[a].Start < regions[b].Start
			if got := regions[a].Before(regions[b]); got != wantBefore {
				t.Fatalf("Before(%d,%d)=%v want %v", a, b, got, wantBefore)
			}
		}
	}
}

func TestAncestorTransitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	regions, _, _ := buildRandomTree(rng, 80)
	f := func(i, j, k uint8) bool {
		a := regions[int(i)%len(regions)]
		b := regions[int(j)%len(regions)]
		c := regions[int(k)%len(regions)]
		if a.IsAncestor(b) && b.IsAncestor(c) && !a.IsAncestor(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeweyCompareIsTotalOrderProperty(t *testing.T) {
	gen := func(rng *rand.Rand) Dewey {
		d := make(Dewey, rng.Intn(6))
		for i := range d {
			d[i] = int32(rng.Intn(4))
		}
		return d
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v %v", a, b)
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestDeweyLCA(t *testing.T) {
	cases := []struct {
		a, b, want Dewey
	}{
		{Dewey{0, 1, 2}, Dewey{0, 1, 3}, Dewey{0, 1}},
		{Dewey{0}, Dewey{1}, Dewey{}},
		{Dewey{0, 1}, Dewey{0, 1, 5}, Dewey{0, 1}},
		{Dewey{}, Dewey{4, 4}, Dewey{}},
		{Dewey{2, 3}, Dewey{2, 3}, Dewey{2, 3}},
	}
	for _, c := range cases {
		got := c.a.LCA(c.b)
		if got.Compare(c.want) != 0 {
			t.Errorf("LCA(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDeweyArenaRoundTrip(t *testing.T) {
	arena := NewDeweyArena(4, 3)
	labels := []Dewey{{}, {0}, {0, 0}, {0, 1}, {1}}
	for i, l := range labels {
		if got := arena.Append(l); got != int32(i) {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	if arena.Len() != len(labels) {
		t.Fatalf("Len = %d, want %d", arena.Len(), len(labels))
	}
	for i, want := range labels {
		if got := arena.At(int32(i)); got.Compare(want) != 0 {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAssignerPanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Leave without Enter")
		}
	}()
	NewAssigner().Leave()
}

func TestDeweyAssignerPanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Leave without Enter")
		}
	}()
	NewDeweyAssigner().Leave()
}

func TestAssignerSiblingOrdinals(t *testing.T) {
	da := NewDeweyAssigner()
	root := append(Dewey(nil), da.Enter()...) // root
	if root.Compare(Dewey{0}) != 0 {
		t.Fatalf("root label = %v, want [0]", root)
	}
	var kids []Dewey
	for i := 0; i < 3; i++ {
		kids = append(kids, append(Dewey(nil), da.Enter()...))
		da.Leave()
	}
	for i, k := range kids {
		want := Dewey{0, int32(i)}
		if k.Compare(want) != 0 {
			t.Errorf("child %d label = %v, want %v", i, k, want)
		}
	}
	da.Leave()
	// A second root-level node gets ordinal 1.
	second := append(Dewey(nil), da.Enter()...)
	if second.Compare(Dewey{1}) != 0 {
		t.Errorf("second top-level label = %v, want [1]", second)
	}
}

func TestRegionSpan(t *testing.T) {
	ra := NewAssigner()
	ra.Enter() // root
	ra.Enter() // child
	child := ra.Leave()
	root := ra.Leave()
	if child.Span() != 1 {
		t.Errorf("leaf span = %d, want 1", child.Span())
	}
	if root.Span() != 3 {
		t.Errorf("root span = %d, want 3", root.Span())
	}
	if !root.IsParent(child) || !root.IsAncestorOrSelf(child) || !root.IsAncestorOrSelf(root) {
		t.Error("parent/ancestor-or-self relations wrong for two-node tree")
	}
}
