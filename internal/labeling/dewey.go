package labeling

// Dewey is a Dewey order code: the sequence of zero-based child ordinals on
// the path from the root to a node.  The root's Dewey label is the empty
// slice.  Dewey labels sort lexicographically in document order, with a
// prefix ordering before any extension (ancestors precede descendants).
type Dewey []int32

// Compare orders two Dewey labels in document order: -1 if a precedes b,
// 0 if equal, +1 if a follows b.  A proper prefix precedes its extensions.
func (a Dewey) Compare(b Dewey) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsAncestor reports whether a is a proper ancestor of d, i.e. a is a proper
// prefix of d.
func (a Dewey) IsAncestor(d Dewey) bool {
	if len(a) >= len(d) {
		return false
	}
	for i := range a {
		if a[i] != d[i] {
			return false
		}
	}
	return true
}

// LCA returns the lowest common ancestor of a and b as the longest common
// prefix.  The result aliases a's backing array.
func (a Dewey) LCA(b Dewey) Dewey {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// Level returns the node's depth (the root is level 0).
func (a Dewey) Level() int { return len(a) }

// DeweyArena stores the Dewey labels of a whole document in two flat slices,
// avoiding one allocation per node.  Labels are appended in document order.
type DeweyArena struct {
	offs   []int32 // offs[i] is the start of node i's digits; len(offs) == n+1
	digits []int32
}

// NewDeweyArena returns an arena with capacity hints for n nodes of average
// depth d.
func NewDeweyArena(n, d int) *DeweyArena {
	a := &DeweyArena{
		offs:   make([]int32, 1, n+1),
		digits: make([]int32, 0, n*d),
	}
	return a
}

// Append stores the label of the next node and returns its index.
func (a *DeweyArena) Append(label Dewey) int32 {
	a.digits = append(a.digits, label...)
	a.offs = append(a.offs, int32(len(a.digits)))
	return int32(len(a.offs) - 2)
}

// At returns the label of node i.  The result aliases the arena; callers
// must not modify it.
func (a *DeweyArena) At(i int32) Dewey {
	return Dewey(a.digits[a.offs[i]:a.offs[i+1]])
}

// Len returns the number of stored labels.
func (a *DeweyArena) Len() int { return len(a.offs) - 1 }

// DeweyAssigner hands out Dewey labels during a document-order traversal,
// mirroring Assigner for containment labels.
type DeweyAssigner struct {
	path []int32 // current label; path[i] is the ordinal at depth i
	next []int32 // next child ordinal to assign at each open depth
}

// NewDeweyAssigner returns an assigner positioned before the root.
func NewDeweyAssigner() *DeweyAssigner {
	return &DeweyAssigner{next: []int32{0}}
}

// Enter opens the next child at the current depth and returns its label.
// The returned slice is only valid until the next Enter/Leave; callers that
// retain it must copy (DeweyArena.Append copies).
func (s *DeweyAssigner) Enter() Dewey {
	d := len(s.path)
	ord := s.next[d]
	s.next[d]++
	s.path = append(s.path, ord)
	s.next = append(s.next, 0)
	return Dewey(s.path)
}

// Leave closes the current element.
func (s *DeweyAssigner) Leave() {
	if len(s.path) == 0 {
		panic("labeling: DeweyAssigner.Leave without matching Enter")
	}
	s.path = s.path[:len(s.path)-1]
	s.next = s.next[:len(s.next)-1]
}
