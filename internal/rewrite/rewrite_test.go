package rewrite

import (
	"strings"
	"testing"

	"lotusx/internal/dataguide"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/join"
	"lotusx/internal/twig"
)

const bibXML = `<dblp>
  <article>
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article>
    <author>Chunbin Lin</author>
    <title>LotusX</title>
    <year>2012</year>
  </article>
  <book>
    <editor>Tok Wang Ling</editor>
    <title>XML Databases</title>
  </book>
</dblp>`

func mustEngine(t *testing.T, src string) (*Engine, *index.Index) {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(d)
	return New(ix, dataguide.Build(d)), ix
}

func TestEnumerateOrderedByPenalty(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	q := twig.MustParse(`//article[author = "Jiaheng Lu"]/title`)
	rws := e.Enumerate(q, 2.0, 20)
	if len(rws) == 0 {
		t.Fatal("no rewrites")
	}
	for i := 1; i < len(rws); i++ {
		if rws[i-1].Penalty > rws[i].Penalty {
			t.Fatalf("rewrites not penalty-ordered: %f then %f", rws[i-1].Penalty, rws[i].Penalty)
		}
	}
	for _, rw := range rws {
		if rw.Penalty > 2.0 {
			t.Fatalf("penalty %f exceeds budget", rw.Penalty)
		}
		if len(rw.Applied) == 0 {
			t.Fatal("rewrite without provenance")
		}
	}
}

func TestValueRelaxationChain(t *testing.T) {
	e, ix := mustEngine(t, bibXML)
	// Exact value "Twig Joins" matches nothing ("Holistic Twig Joins" is
	// the stored value); contains-relaxation recovers it.
	q := twig.MustParse(`//article[title = "Twig Joins"]`)
	res, err := join.Run(ix, q, join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("setup: exact query should have no matches")
	}
	rws := e.Enumerate(q, 1.0, 50)
	found := false
	for _, rw := range rws {
		res, err := join.Run(ix, rw.Query, join.TwigStack, join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) > 0 {
			found = true
			if rw.Applied[0].Rule != ValueContains {
				t.Errorf("first recovering rule = %v, want value-contains", rw.Applied[0].Rule)
			}
			break
		}
	}
	if !found {
		t.Fatal("no rewrite recovered answers")
	}
}

func TestTagSubstitution(t *testing.T) {
	e, ix := mustEngine(t, bibXML)
	// "autor" is a typo for "author"; the DataGuide knows what occurs under
	// article.
	q := twig.MustParse(`//article/autor`)
	rws := e.Enumerate(q, 1.5, 50)
	var hit *Rewrite
	for i := range rws {
		for _, ap := range rws[i].Applied {
			if ap.Rule == TagSubstitute && strings.Contains(ap.Detail, `"author"`) {
				hit = &rws[i]
			}
		}
		if hit != nil {
			break
		}
	}
	if hit == nil {
		t.Fatal("author substitution not proposed")
	}
	res, err := join.Run(ix, hit.Query, join.TwigStack, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("substituted query matches = %d, want 2", len(res.Matches))
	}
}

func TestSubstitutionPrefersCloserNames(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	q := twig.MustParse(`//article/yer`) // typo for year
	rws := e.Enumerate(q, 1.2, 30)
	// The cheapest tag-substitute should be year (distance 1), not title.
	for _, rw := range rws {
		if rw.Applied[0].Rule == TagSubstitute {
			if !strings.Contains(rw.Applied[0].Detail, `"year"`) {
				t.Fatalf("first substitution = %s, want year", rw.Applied[0].Detail)
			}
			return
		}
	}
	t.Fatal("no substitution proposed")
}

func TestAxisRelaxation(t *testing.T) {
	e, ix := mustEngine(t, `<r><a><m><b>x</b></m></a></r>`)
	q := twig.MustParse(`//a/b`) // b is not a direct child
	res, _ := join.Run(ix, q, join.TwigStack, join.Options{})
	if len(res.Matches) != 0 {
		t.Fatal("setup: /b should not match")
	}
	rws := e.Enumerate(q, 0.4, 10)
	if len(rws) == 0 {
		t.Fatal("no cheap rewrites")
	}
	first := rws[0]
	if first.Applied[0].Rule != AxisRelax {
		t.Fatalf("cheapest rule = %v, want axis-relax", first.Applied[0].Rule)
	}
	res, _ = join.Run(ix, first.Query, join.TwigStack, join.Options{})
	if len(res.Matches) != 1 {
		t.Fatalf("relaxed matches = %d, want 1", len(res.Matches))
	}
}

func TestLeafDeletion(t *testing.T) {
	e, ix := mustEngine(t, bibXML)
	// Books have no year: deleting the year leaf recovers the book.
	q := twig.MustParse(`//book[title][year]`)
	res, _ := join.Run(ix, q, join.TwigStack, join.Options{})
	if len(res.Matches) != 0 {
		t.Fatal("setup: book with year should not match")
	}
	rws := e.Enumerate(q, 2.0, 100)
	for _, rw := range rws {
		hasDelete := false
		for _, ap := range rw.Applied {
			if ap.Rule == LeafDelete && strings.Contains(ap.Detail, "year") {
				hasDelete = true
			}
		}
		if !hasDelete {
			continue
		}
		res, err := join.Run(ix, rw.Query, join.TwigStack, join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("after year deletion matches = %d, want 1", len(res.Matches))
		}
		return
	}
	t.Fatal("year leaf deletion never proposed")
}

func TestLeafDeletionRemapsOrder(t *testing.T) {
	e, _ := mustEngine(t, `<r><s><a/><b/><c/></s></r>`)
	q := twig.MustParse(`//s[a << b][c]`)
	rws := e.Enumerate(q, 1.6, 200)
	for _, rw := range rws {
		if len(rw.Applied) == 1 && rw.Applied[0].Rule == LeafDelete {
			detail := rw.Applied[0].Detail
			switch {
			case strings.Contains(detail, "drop leaf c"):
				if len(rw.Query.Order) != 1 {
					t.Fatalf("dropping c should keep the a<<b constraint, got %v", rw.Query.Order)
				}
				// a and b keep IDs 1 and 2.
				if rw.Query.Node(rw.Query.Order[0].Before).Tag != "a" {
					t.Fatal("order endpoint remapped wrongly")
				}
			case strings.Contains(detail, "drop leaf a"), strings.Contains(detail, "drop leaf b"):
				if len(rw.Query.Order) != 0 {
					t.Fatalf("dropping an order endpoint should drop the constraint")
				}
			}
		}
	}
}

func TestWildcardRelaxation(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	q := twig.MustParse(`//article/title`)
	rws := e.Enumerate(q, 1.2, 100)
	for _, rw := range rws {
		if rw.Applied[0].Rule == TagWildcard {
			return
		}
	}
	t.Fatal("wildcard relaxation never proposed")
}

func TestEnumerateRespectsLimitAndDedup(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	q := twig.MustParse(`//article[author][title][year]`)
	rws := e.Enumerate(q, 3.0, 15)
	if len(rws) != 15 {
		t.Fatalf("limit ignored: %d", len(rws))
	}
	seen := make(map[string]struct{})
	for _, rw := range rws {
		key := rw.Query.String()
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate rewrite %q", key)
		}
		seen[key] = struct{}{}
	}
	if got := e.Enumerate(q, 3.0, 0); got != nil {
		t.Fatal("limit 0 should return nil")
	}
}

func TestCompositeRewrites(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	q := twig.MustParse(`//article[title = "LotusX"]/yer`)
	rws := e.Enumerate(q, 2.0, 200)
	// Expect some rewrite combining substitution and value relaxation.
	for _, rw := range rws {
		if len(rw.Applied) >= 2 {
			return
		}
	}
	t.Fatal("no composite rewrites produced")
}

func TestCustomPenalties(t *testing.T) {
	e, _ := mustEngine(t, bibXML)
	p := DefaultPenalties()
	p[AxisRelax] = 10.0
	e.SetPenalties(p)
	q := twig.MustParse(`//article/title`)
	rws := e.Enumerate(q, 2.0, 100)
	for _, rw := range rws {
		for _, ap := range rw.Applied {
			if ap.Rule == AxisRelax {
				t.Fatal("axis relaxations should be priced out")
			}
		}
	}
}

func TestEnumerateKeepsCheapestDerivation(t *testing.T) {
	// //a/b/c: relaxing both axes in either order derives //a//b//c twice;
	// the emitted rewrite must carry the (single) cheapest penalty, and no
	// query text may appear twice.
	e, _ := mustEngine(t, `<r><a><b><c/></b></a></r>`)
	q := twig.MustParse(`//a/b/c`)
	rws := e.Enumerate(q, 3.0, 300)
	seen := make(map[string]float64)
	for _, rw := range rws {
		key := rw.Query.String()
		if prev, dup := seen[key]; dup {
			t.Fatalf("duplicate %q at penalties %.2f and %.2f", key, prev, rw.Penalty)
		}
		seen[key] = rw.Penalty
	}
	both, ok := seen["//a//b//c"]
	if !ok {
		t.Fatal("double axis relaxation never emitted")
	}
	if both != 0.6 {
		t.Fatalf("//a//b//c penalty = %.2f, want 0.6 (two axis steps)", both)
	}
}
