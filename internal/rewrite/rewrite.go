// Package rewrite implements LotusX's query rewriting solution: when a twig
// query returns few or no answers — a mistyped tag, an over-constrained
// value, a wrong axis — the engine enumerates relaxed variants in increasing
// order of a penalty, so the caller can evaluate them until enough answers
// accumulate.  Every answer produced through a rewrite is annotated with the
// relaxations applied.
//
// Relaxation rules (single steps, freely composable by the best-first
// search):
//
//	value-contains  [t = "v"]   -> [t contains "v"]      penalty 0.5
//	value-drop      [t contains "v"] -> [t]              penalty 1.0
//	axis-relax      /t          -> //t                   penalty 0.3
//	tag-substitute  mistyped tag -> a tag that occurs at the same position
//	                (DataGuide siblings/context), scaled by name distance
//	tag-wildcard    t           -> *                     penalty 1.2
//	leaf-delete     drop a non-output leaf               penalty 1.5
package rewrite

import (
	"container/heap"
	"context"
	"sort"
	"strings"

	"lotusx/internal/dataguide"
	"lotusx/internal/doc"
	"lotusx/internal/index"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Rule identifies a relaxation rule.
type Rule string

// The relaxation rules.
const (
	ValueContains Rule = "value-contains"
	ValueDrop     Rule = "value-drop"
	AxisRelax     Rule = "axis-relax"
	TagSubstitute Rule = "tag-substitute"
	TagWildcard   Rule = "tag-wildcard"
	LeafDelete    Rule = "leaf-delete"
)

// Penalties holds the per-rule base penalties.  DefaultPenalties reflects
// how surprising each relaxation is to a user.
type Penalties map[Rule]float64

// DefaultPenalties is the penalty model used when none is supplied.
func DefaultPenalties() Penalties {
	return Penalties{
		ValueContains: 0.5,
		ValueDrop:     1.0,
		AxisRelax:     0.3,
		TagSubstitute: 0.8,
		TagWildcard:   1.2,
		LeafDelete:    1.5,
	}
}

// Applied records one relaxation applied to a query.
type Applied struct {
	Rule   Rule
	NodeID int    // preorder ID in the query the rule was applied to
	Detail string // human-readable, e.g. `tag "writer" -> "author"`
}

// Rewrite is one relaxed query variant.
type Rewrite struct {
	Query   *twig.Query
	Penalty float64
	Applied []Applied
}

// Engine enumerates rewrites over one indexed document.
type Engine struct {
	ix        *index.Index
	guide     *dataguide.Guide
	penalties Penalties
	// maxSubstitutes bounds how many substitute tags each mistyped tag
	// fans out to.
	maxSubstitutes int
}

// New returns an Engine with the default penalty model.
func New(ix *index.Index, guide *dataguide.Guide) *Engine {
	return &Engine{ix: ix, guide: guide, penalties: DefaultPenalties(), maxSubstitutes: 3}
}

// SetPenalties overrides the penalty model (ablation benches use this).
func (e *Engine) SetPenalties(p Penalties) { e.penalties = p }

// EnumerateContext is Enumerate under a context: when the context carries a
// trace, the best-first relaxation search is recorded as a
// "rewrite:enumerate" span with the number of candidates it produced.
func (e *Engine) EnumerateContext(ctx context.Context, q *twig.Query, maxPenalty float64, limit int) []Rewrite {
	sp := obs.StartLeaf(ctx, "rewrite:enumerate")
	out := e.Enumerate(q, maxPenalty, limit)
	sp.SetInt("candidates", len(out))
	sp.End()
	return out
}

// Enumerate returns up to limit rewrites of q with penalty at most
// maxPenalty, cheapest first, excluding q itself.  The search is best-first
// over compositions of single-rule steps; distinct step sequences can derive
// the same query, so results are deduplicated by rendered query text keeping
// the cheapest derivation (a re-push replaces a costlier queued one, and
// stale queue entries are dropped at pop time — Dijkstra without
// decrease-key).
func (e *Engine) Enumerate(q *twig.Query, maxPenalty float64, limit int) []Rewrite {
	if limit <= 0 {
		return nil
	}
	origin := q.String()
	best := map[string]float64{origin: 0}
	pq := &rewriteQueue{}
	push := func(rw Rewrite) {
		if rw.Penalty > maxPenalty {
			return
		}
		key := rw.Query.String()
		if prev, ok := best[key]; ok && prev <= rw.Penalty {
			return
		}
		best[key] = rw.Penalty
		heap.Push(pq, rw)
	}
	for _, rw := range e.expand(Rewrite{Query: q}) {
		push(rw)
	}
	emitted := make(map[string]struct{})
	var out []Rewrite
	for pq.Len() > 0 && len(out) < limit {
		rw := heap.Pop(pq).(Rewrite)
		key := rw.Query.String()
		if rw.Penalty > best[key] {
			continue // superseded by a cheaper derivation
		}
		if _, dup := emitted[key]; dup {
			continue
		}
		emitted[key] = struct{}{}
		out = append(out, rw)
		for _, next := range e.expand(rw) {
			push(next)
		}
	}
	return out
}

// expand produces all single-step relaxations of rw.
func (e *Engine) expand(rw Rewrite) []Rewrite {
	var out []Rewrite
	q := rw.Query
	for _, qn := range q.Nodes() {
		id := qn.ID
		switch qn.Pred.Op {
		case twig.Eq:
			out = append(out, e.derive(rw, id, ValueContains,
				`"`+qn.Pred.Value+`": = -> contains`,
				func(n *twig.Node) { n.Pred.Op = twig.Contains }))
		case twig.Contains:
			out = append(out, e.derive(rw, id, ValueDrop,
				`drop value "`+qn.Pred.Value+`"`,
				func(n *twig.Node) { n.Pred = twig.Pred{} }))
		}
		if qn.Axis == twig.Child && qn.Parent() != nil {
			out = append(out, e.derive(rw, id, AxisRelax,
				qn.Tag+": / -> //",
				func(n *twig.Node) { n.Axis = twig.Descendant }))
		}
		if !qn.IsWildcard() {
			out = append(out, e.substitutions(rw, qn)...)
			out = append(out, e.derive(rw, id, TagWildcard,
				qn.Tag+" -> *",
				func(n *twig.Node) { n.Tag = twig.Wildcard }))
		}
		if qn.IsLeaf() && !qn.Output && qn.Parent() != nil {
			out = append(out, e.deleteLeaf(rw, qn))
		}
	}
	return out
}

// derive clones rw's query, applies mutate to the node with the given ID,
// renormalizes and extends the provenance.
func (e *Engine) derive(rw Rewrite, nodeID int, rule Rule, detail string, mutate func(*twig.Node)) Rewrite {
	nq := rw.Query.Clone()
	mutate(nq.Node(nodeID))
	if err := nq.Normalize(); err != nil {
		// Mutations keep the tree well-formed; a failure is a programming
		// error.
		panic("rewrite: derived query failed to normalize: " + err.Error())
	}
	return Rewrite{
		Query:   nq,
		Penalty: rw.Penalty + e.penalties[rule],
		Applied: appendApplied(rw.Applied, Applied{Rule: rule, NodeID: nodeID, Detail: detail}),
	}
}

// substitutions proposes position-feasible replacement tags for qn, ranked
// by name distance; the penalty grows with the distance.
func (e *Engine) substitutions(rw Rewrite, qn *twig.Node) []Rewrite {
	candidates := e.substituteTags(rw.Query, qn)
	var out []Rewrite
	for _, c := range candidates {
		tag := c.name
		out = append(out, e.deriveSub(rw, qn.ID, tag, c.dist))
	}
	return out
}

func (e *Engine) deriveSub(rw Rewrite, nodeID int, tag string, dist int) Rewrite {
	old := rw.Query.Node(nodeID).Tag
	r := e.derive(rw, nodeID, TagSubstitute,
		`tag "`+old+`" -> "`+tag+`"`,
		func(n *twig.Node) { n.Tag = tag })
	r.Penalty += 0.1 * float64(dist)
	return r
}

type subCandidate struct {
	name string
	dist int
}

// substituteTags lists tags that occur at qn's position (its parent's
// feasible child/descendant tags per the DataGuide; for the root, any tag),
// ordered by edit distance to qn's current tag, nearest first, capped.
func (e *Engine) substituteTags(q *twig.Query, qn *twig.Node) []subCandidate {
	dict := e.ix.Document().Tags()
	feasible := make(map[doc.TagID]int)
	if p := qn.Parent(); p != nil {
		contexts := e.guide.FindContext(contextSteps(q, p))
		if len(contexts) > 0 {
			feasible = e.guide.CandidateTags(contexts, qn.Axis)
		}
	} else {
		root := e.guide.Root()
		feasible[root.Tag] = root.Count
		if qn.Axis == twig.Descendant {
			for t, c := range root.SubtreeTagCounts() {
				feasible[t] += c
			}
		}
	}
	var cands []subCandidate
	for tag := range feasible {
		name := dict.Name(tag)
		if name == qn.Tag {
			continue
		}
		d := editDistance(strings.ToLower(name), strings.ToLower(qn.Tag))
		cands = append(cands, subCandidate{name: name, dist: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > e.maxSubstitutes {
		cands = cands[:e.maxSubstitutes]
	}
	return cands
}

// contextSteps converts the root-to-node chain into DataGuide steps.
func contextSteps(q *twig.Query, n *twig.Node) []dataguide.Step {
	var chain []*twig.Node
	for cur := n; cur != nil; cur = cur.Parent() {
		chain = append(chain, cur)
	}
	steps := make([]dataguide.Step, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		steps = append(steps, dataguide.Step{Axis: chain[i].Axis, Tag: chain[i].Tag})
	}
	return steps
}

// deleteLeaf clones the query without the given leaf.
func (e *Engine) deleteLeaf(rw Rewrite, leaf *twig.Node) Rewrite {
	nq := rw.Query.Clone()
	target := nq.Node(leaf.ID)
	parent := target.Parent()
	kids := parent.Children[:0]
	for _, c := range parent.Children {
		if c != target {
			kids = append(kids, c)
		}
	}
	parent.Children = kids
	// Order constraints referencing the deleted node (or any node whose ID
	// shifts) are re-resolved by position: drop constraints touching the
	// removed subtree and remap the rest.
	nq.Order = remapOrder(rw.Query, nq, leaf.ID)
	if err := nq.Normalize(); err != nil {
		panic("rewrite: leaf deletion broke the query: " + err.Error())
	}
	return Rewrite{
		Query:   nq,
		Penalty: rw.Penalty + e.penalties[LeafDelete],
		Applied: appendApplied(rw.Applied, Applied{Rule: LeafDelete, NodeID: leaf.ID, Detail: "drop leaf " + leaf.Tag}),
	}
}

// remapOrder translates order constraints after removing the leaf with
// preorder ID removed: constraints touching it are dropped; IDs above shift
// down by one.
func remapOrder(old, _ *twig.Query, removed int) []twig.OrderConstraint {
	var out []twig.OrderConstraint
	for _, oc := range old.Order {
		if oc.Before == removed || oc.After == removed {
			continue
		}
		b, a := oc.Before, oc.After
		if b > removed {
			b--
		}
		if a > removed {
			a--
		}
		out = append(out, twig.OrderConstraint{Before: b, After: a})
	}
	return out
}

func appendApplied(prev []Applied, next Applied) []Applied {
	out := make([]Applied, 0, len(prev)+1)
	out = append(out, prev...)
	return append(out, next)
}

// editDistance is the full Levenshtein distance (strings are tag names,
// always short).
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// rewriteQueue is a min-heap on penalty with deterministic tie-breaking by
// rendered query text.
type rewriteQueue []Rewrite

func (q rewriteQueue) Len() int { return len(q) }
func (q rewriteQueue) Less(i, j int) bool {
	if q[i].Penalty != q[j].Penalty {
		return q[i].Penalty < q[j].Penalty
	}
	return q[i].Query.String() < q[j].Query.String()
}
func (q rewriteQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *rewriteQueue) Push(x any)   { *q = append(*q, x.(Rewrite)) }
func (q *rewriteQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
