package index

import (
	"strings"
	"unicode"
)

// maxTokenLen drops degenerate tokens (base64 blobs and the like) that would
// bloat the postings map without ever being typed by a user.
const maxTokenLen = 64

// Tokenize splits a value into lowercase search tokens: maximal runs of
// letters and digits.  It is the single tokenizer used for both indexing and
// querying, so the two sides always agree.
func Tokenize(s string) []string {
	spans := TokenizeSpans(s)
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Token
	}
	return out
}

// TokenSpan is a token plus its byte range [Start, End) in the source
// string — the basis of match highlighting in the UI.
type TokenSpan struct {
	Token string
	Start int
	End   int
}

// TokenizeSpans is Tokenize with source positions.
func TokenizeSpans(s string) []TokenSpan {
	var out []TokenSpan
	var b strings.Builder
	start := -1
	flush := func(end int) {
		if b.Len() > 0 && b.Len() <= maxTokenLen {
			out = append(out, TokenSpan{Token: b.String(), Start: start, End: end})
		}
		b.Reset()
		start = -1
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return out
}
