package index

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSaveFullLoadFullRoundTrip(t *testing.T) {
	ix := mustIndex(t, bibXML)
	var buf bytes.Buffer
	if err := ix.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadFull(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Everything the index answers must be identical.
	if ix2.ValuedNodes() != ix.ValuedNodes() {
		t.Error("valued count differs")
	}
	d := ix2.Document()
	if d.Len() != ix.Document().Len() {
		t.Fatal("document differs")
	}
	tags := d.Tags()
	for _, name := range []string{"article", "author", "title", "@key"} {
		if ix2.TagCount(tags.ID(name)) != ix.TagCount(ix.Document().Tags().ID(name)) {
			t.Errorf("tag %q stream differs", name)
		}
	}
	for _, tok := range []string{"jiaheng", "lu", "xml", "holistic"} {
		if len(ix2.TokenPostings(tok)) != len(ix.TokenPostings(tok)) {
			t.Errorf("postings for %q differ", tok)
		}
	}
	if len(ix2.ExactMatches("jiaheng lu")) != 2 {
		t.Error("exact map not rebuilt")
	}
	if got := ix2.TagTrie().Complete("a", 5); len(got) == 0 {
		t.Error("tag trie not rebuilt")
	}
	vt := ix2.ValueTrie(tags.ID("author"))
	if vt == nil || len(vt.Complete("jiaheng", 3)) != 1 {
		t.Error("value tries not rebuilt")
	}
	if got := ix2.ContainsAll("twig holistic"); len(got) != 1 {
		t.Errorf("ContainsAll over reloaded postings = %v", got)
	}
}

func TestLoadFullDetectsCorruption(t *testing.T) {
	ix := mustIndex(t, bibXML)
	var buf bytes.Buffer
	if err := ix.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-3] ^= 0xFF
	if _, err := LoadFull(bytes.NewReader(corrupt)); err == nil {
		t.Error("flipped byte not detected")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("unexpected error: %v", err)
	}

	// Truncation.
	if _, err := LoadFull(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncation not detected")
	}
	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := LoadFull(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
	// Bad version.
	badv := append([]byte(nil), data...)
	badv[4] = 99
	if _, err := LoadFull(bytes.NewReader(badv)); err == nil {
		t.Error("bad version not detected")
	}
	// Empty input.
	if _, err := LoadFull(bytes.NewReader(nil)); err == nil {
		t.Error("empty input not detected")
	}
}

func TestLoadFullTypedErrors(t *testing.T) {
	// Corruption and version skew must be distinguishable with errors.Is —
	// the corpus manifest loader drops corrupt shards but only re-saves
	// version-skewed ones.
	ix := mustIndex(t, bibXML)
	var buf bytes.Buffer
	if err := ix.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		want    error
		notWant error
	}{
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0xFF
			return c
		}, ErrCorrupt, ErrBadVersion},
		{"bad magic", func(b []byte) []byte {
			return append([]byte("XXXX"), b[4:]...)
		}, ErrCorrupt, ErrBadVersion},
		{"truncated", func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrCorrupt, ErrBadVersion},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 99
			return c
		}, ErrBadVersion, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadFull(bytes.NewReader(tc.mangle(data)))
			if err == nil {
				t.Fatal("mangled file loaded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want errors.Is(err, %v)", err, tc.want)
			}
			if errors.Is(err, tc.notWant) {
				t.Errorf("err = %v unexpectedly matches %v", err, tc.notWant)
			}
		})
	}
}

func TestSaveFullVsRebuildEquivalence(t *testing.T) {
	// LoadFull must agree with a from-scratch Build on every access path.
	ix := mustIndex(t, bibXML)
	var buf bytes.Buffer
	if err := ix.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	full, err := LoadFull(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := Build(full.Document())
	for _, tok := range []string{"jiaheng", "lu", "2012", "databases"} {
		a := full.TokenPostings(tok)
		b := rebuilt.TokenPostings(tok)
		if len(a) != len(b) {
			t.Fatalf("postings(%q): %d vs %d", tok, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("postings(%q) differ at %d", tok, i)
			}
		}
	}
	if full.DF("jiaheng") != rebuilt.DF("jiaheng") {
		t.Error("DF differs")
	}
}
