package index

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lotusx/internal/doc"
	"lotusx/internal/trie"
)

// repetitiveXML has three distinct record shapes instantiated many times —
// comfortably past the fallback heuristic — plus residue (the header, and
// one record with a unique value).
func repetitiveXML(copies int) string {
	var b strings.Builder
	b.WriteString("<dblp><header><created>2012</created></header>")
	for i := 0; i < copies; i++ {
		b.WriteString(`<article key="a1"><author>Jiaheng Lu</author><author>Ting Chen</author>` +
			`<title>Holistic Twig Joins</title><year>2005</year><pages>310</pages><publisher>VLDB</publisher></article>`)
		b.WriteString(`<article key="a2"><author>Chunbin Lin</author><author>Jiaheng Lu</author>` +
			`<title>LotusX Position Aware Search</title><year>2012</year><pages>1515</pages><publisher>ICDE</publisher></article>`)
		b.WriteString(`<book key="b1"><author>Tok Wang Ling</author><title>XML Databases</title>` +
			`<year>2008</year><publisher>Springer</publisher><isbn>978</isbn></book>`)
	}
	b.WriteString(`<article key="zz"><author>Unique Author</author><title>One Off</title><year>1999</year></article>`)
	b.WriteString("</dblp>")
	return b.String()
}

func mustDoc(t testing.TB, src string) *doc.Document {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// collectTokens gathers every distinct token in the document's values.
func collectTokens(d *doc.Document) []string {
	seen := map[string]struct{}{}
	var toks []string
	for i := 0; i < d.Len(); i++ {
		for _, tok := range Tokenize(d.Value(doc.NodeID(i))) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			toks = append(toks, tok)
		}
	}
	return toks
}

// assertIndexesAgree compares every access path of two indexes over the
// same document; the raw one is the reference.
func assertIndexesAgree(t *testing.T, raw, got *Index) {
	t.Helper()
	d := raw.Document()
	tags := d.Tags()
	for id := doc.TagID(0); int(id) < tags.Len(); id++ {
		if raw.TagCount(id) != got.TagCount(id) {
			t.Errorf("TagCount(%s): raw %d, got %d", tags.Name(id), raw.TagCount(id), got.TagCount(id))
		}
		if a, b := raw.Nodes(id), got.Nodes(id); !reflect.DeepEqual(a, b) {
			t.Errorf("Nodes(%s): raw %v, got %v", tags.Name(id), a, b)
		}
	}
	if a, b := raw.AllElements(), got.AllElements(); !reflect.DeepEqual(a, b) {
		t.Errorf("AllElements: raw %d nodes, got %d", len(a), len(b))
	}
	if raw.WildcardCount() != got.WildcardCount() {
		t.Errorf("WildcardCount: raw %d, got %d", raw.WildcardCount(), got.WildcardCount())
	}
	if raw.ValuedNodes() != got.ValuedNodes() {
		t.Errorf("ValuedNodes: raw %d, got %d", raw.ValuedNodes(), got.ValuedNodes())
	}
	for _, tok := range collectTokens(d) {
		if a, b := raw.TokenPostings(tok), got.TokenPostings(tok); !reflect.DeepEqual(a, b) {
			t.Errorf("TokenPostings(%q): raw %v, got %v", tok, a, b)
		}
		if raw.DF(tok) != got.DF(tok) {
			t.Errorf("DF(%q): raw %d, got %d", tok, raw.DF(tok), got.DF(tok))
		}
	}
	for i := 0; i < d.Len(); i++ {
		v := d.Value(doc.NodeID(i))
		if v == "" {
			continue
		}
		if a, b := raw.ExactMatches(v), got.ExactMatches(v); !reflect.DeepEqual(a, b) {
			t.Errorf("ExactMatches(%q): raw %v, got %v", v, a, b)
		}
		if a, b := raw.ContainsAll(v), got.ContainsAll(v); !reflect.DeepEqual(a, b) {
			t.Errorf("ContainsAll(%q): raw %v, got %v", v, a, b)
		}
	}
	// Completion must be oblivious to the substrate: same entries, same
	// weights, same data (the trie keeps the last-inserted datum, which in
	// document order is the highest node with that value).
	if !triesEqual(raw.TagTrie(), got.TagTrie()) {
		t.Error("tag tries differ")
	}
	for id := doc.TagID(0); int(id) < tags.Len(); id++ {
		rt, gt := raw.ValueTrie(id), got.ValueTrie(id)
		if (rt == nil) != (gt == nil) {
			t.Errorf("ValueTrie(%s): one side nil", tags.Name(id))
			continue
		}
		if rt != nil && !triesEqual(rt, gt) {
			t.Errorf("ValueTrie(%s) differs", tags.Name(id))
		}
	}
}

func triesEqual(a, b *trie.Trie) bool {
	dump := func(tr *trie.Trie) string {
		var sb strings.Builder
		tr.Walk(func(e trie.Entry) bool {
			fmt.Fprintf(&sb, "%s|%d|%d\n", e.Word, e.Weight, e.Datum)
			return true
		})
		return sb.String()
	}
	return dump(a) == dump(b)
}

func TestCompressedAccessorsMatchRaw(t *testing.T) {
	d := mustDoc(t, repetitiveXML(100))
	raw := Build(d)
	comp := BuildCompressed(d)
	if comp.Compressed() == nil {
		t.Fatal("high-repetition document did not compress")
	}
	assertIndexesAgree(t, raw, comp)
}

func TestCompressedStats(t *testing.T) {
	d := mustDoc(t, repetitiveXML(100))
	comp := BuildCompressed(d)
	c := comp.Compressed()
	if c == nil {
		t.Fatal("high-repetition document did not compress")
	}
	st := comp.CompressionStats()
	if !st.Compressed {
		t.Error("stats not marked compressed")
	}
	if st.Shapes <= 0 || st.Shapes >= st.Nodes {
		t.Errorf("implausible shape count %d for %d nodes", st.Shapes, st.Nodes)
	}
	if st.Instances < 2 {
		t.Errorf("instances = %d, want >= 2", st.Instances)
	}
	if st.ResidentBytes <= 0 || st.RawBytes <= st.ResidentBytes {
		t.Errorf("no byte win: resident %d, raw %d", st.ResidentBytes, st.RawBytes)
	}
	if st.Ratio() < 3 {
		t.Errorf("ratio = %.2f, want >= 3 on 100 copies of 3 shapes", st.Ratio())
	}
	raw := Build(d)
	rst := raw.CompressionStats()
	if rst.Compressed || rst.ResidentBytes != rst.RawBytes {
		t.Errorf("raw stats inconsistent: %+v", rst)
	}
	// The raw estimate inside the compressed stats should track the real
	// raw substrate within a reasonable tolerance — it drives the fallback.
	if ratio := float64(st.RawBytes) / float64(rst.ResidentBytes); ratio < 0.5 || ratio > 2 {
		t.Errorf("raw estimate %d vs actual raw %d (off by %.2fx)", st.RawBytes, rst.ResidentBytes, ratio)
	}
}

func TestOccurrenceLookup(t *testing.T) {
	d := mustDoc(t, repetitiveXML(100))
	comp := BuildCompressed(d)
	c := comp.Compressed()
	if c == nil {
		t.Fatal("did not compress")
	}
	covered := 0
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		canonical, roots, ok := c.Occurrence(n)
		if !ok {
			continue
		}
		covered++
		if len(roots) < 1 {
			t.Fatalf("node %d: empty occurrence list", n)
		}
		if roots[0] != canonical {
			t.Fatalf("node %d: canonical %d is not roots[0]=%d", n, canonical, roots[0])
		}
		// The covering root must be the greatest occurrence root <= n.
		found := false
		for _, r := range roots {
			if r <= n {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d: no occurrence root at or before it (roots %v)", n, roots)
		}
	}
	if covered == 0 {
		t.Fatal("no node is covered by a shared occurrence")
	}
	// The document root is never shared.
	if _, _, ok := c.Occurrence(0); ok {
		t.Error("document root reported as covered")
	}
}

func TestCompressedPersistRoundTrip(t *testing.T) {
	d := mustDoc(t, repetitiveXML(100))
	comp := BuildCompressed(d)
	if comp.Compressed() == nil {
		t.Fatal("did not compress")
	}
	var buf bytes.Buffer
	if err := comp.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if v := data[4]; v != fullVersionFlags {
		t.Fatalf("compressed save wrote version %d, want %d", v, fullVersionFlags)
	}
	loaded, err := LoadFull(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Compressed() == nil {
		t.Fatal("round trip lost the compressed substrate")
	}
	assertIndexesAgree(t, Build(d), loaded)

	// A raw index keeps the version-1 layout byte-for-byte, and loading it
	// yields a raw index — old shard files keep working.
	var rawBuf bytes.Buffer
	if err := Build(d).SaveFull(&rawBuf); err != nil {
		t.Fatal(err)
	}
	if v := rawBuf.Bytes()[4]; v != fullVersion {
		t.Fatalf("raw save wrote version %d, want %d", v, fullVersion)
	}
	rawLoaded, err := LoadFull(bytes.NewReader(rawBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rawLoaded.Compressed() != nil {
		t.Fatal("raw file loaded as compressed")
	}
	// The compressed file should also be the smaller one on this data: it
	// omits the postings section entirely.
	if buf.Len() >= rawBuf.Len() {
		t.Errorf("compressed file %dB not smaller than raw %dB", buf.Len(), rawBuf.Len())
	}
}

func TestForceCompressOnUniqueData(t *testing.T) {
	// All-unique values: the heuristic declines, force keeps it on, and the
	// all-residue substrate still answers identically.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "<a><b>val%d</b></a>", i)
	}
	b.WriteString("</r>")
	d := mustDoc(t, b.String())
	if ix := BuildCompressed(d); ix.Compressed() != nil {
		t.Fatal("unique document unexpectedly compressed")
	}
	forced := BuildWith(d, BuildOptions{ForceCompress: true})
	if forced.Compressed() == nil {
		t.Fatal("ForceCompress did not keep the substrate")
	}
	assertIndexesAgree(t, Build(d), forced)
}
