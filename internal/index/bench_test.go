package index

import (
	"fmt"
	"strings"
	"testing"

	"lotusx/internal/doc"
)

// Posting-list intersection micro-benchmarks: the ContainsAll shape that
// motivates galloping is one rare token against one common token — a
// posting-list length skew far past gallopSkew.  The linear merge walks the
// whole common list; galloping touches O(|rare| · log |common|) of it.

// skewedLists builds a rare list of rareN entries embedded in a common list
// of commonN entries (every rare entry also common, so the intersection is
// the whole rare list — the worst case for galloping's output size).
func skewedLists(rareN, commonN int) (rare, common []doc.NodeID) {
	common = make([]doc.NodeID, commonN)
	for i := range common {
		common[i] = doc.NodeID(i * 3)
	}
	rare = make([]doc.NodeID, rareN)
	step := commonN / rareN
	for i := range rare {
		rare[i] = common[i*step]
	}
	return rare, common
}

func BenchmarkIntersectSkewed(b *testing.B) {
	for _, shape := range []struct{ rare, common int }{
		{10, 100000},
		{100, 100000},
		{1000, 100000},
	} {
		rare, common := skewedLists(shape.rare, shape.common)
		b.Run(fmt.Sprintf("linear/%dx%d", shape.rare, shape.common), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				intersectLinear(rare, common)
			}
		})
		b.Run(fmt.Sprintf("gallop/%dx%d", shape.rare, shape.common), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				intersectGallop(rare, common)
			}
		})
	}
}

// BenchmarkContainsAllSkewed measures the end-to-end win: one rare token
// ("needle", on a handful of nodes) ANDed with one common token ("common",
// on every record).  intersect dispatches to galloping for this skew.
func BenchmarkContainsAllSkewed(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 20000; i++ {
		if i%2000 == 0 {
			fmt.Fprintf(&sb, "<a>needle common f%d</a>", i)
		} else {
			fmt.Fprintf(&sb, "<a>common filler f%d</a>", i)
		}
	}
	sb.WriteString("</r>")
	d, err := doc.FromString("bench", sb.String())
	if err != nil {
		b.Fatal(err)
	}
	ix := Build(d)
	want := len(ix.ContainsAll("needle common"))
	if want != 10 {
		b.Fatalf("sanity: %d matches, want 10", want)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ContainsAll("needle common")
	}
}

func BenchmarkBuildCompressed(b *testing.B) {
	d, err := doc.FromString("bench", repetitiveXML(200))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Build(d)
		}
	})
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildCompressed(d)
		}
	})
}
