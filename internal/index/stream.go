package index

import (
	"lotusx/internal/doc"
	"lotusx/internal/labeling"
)

// Stream is a document-order cursor over a node list, the input shape of
// every structural-join algorithm.  Streams are cheap value-like cursors
// over shared immutable lists; Clone gives an independent cursor.
type Stream struct {
	d     *doc.Document
	nodes []doc.NodeID
	pos   int
}

// NewStream wraps a document-order node list in a cursor.
func NewStream(d *doc.Document, nodes []doc.NodeID) *Stream {
	return &Stream{d: d, nodes: nodes}
}

// EOF reports whether the cursor is exhausted.
func (s *Stream) EOF() bool { return s.pos >= len(s.nodes) }

// Head returns the current node; it panics past EOF (join algorithms always
// guard with EOF).
func (s *Stream) Head() doc.NodeID { return s.nodes[s.pos] }

// Region returns the current node's containment label.
func (s *Stream) Region() labeling.Region { return s.d.Region(s.nodes[s.pos]) }

// Advance moves to the next node.
func (s *Stream) Advance() { s.pos++ }

// Len returns the total number of nodes in the stream.
func (s *Stream) Len() int { return len(s.nodes) }

// Remaining returns how many nodes are at or after the cursor.
func (s *Stream) Remaining() int { return len(s.nodes) - s.pos }

// Clone returns an independent cursor at the same position.
func (s *Stream) Clone() *Stream { c := *s; return &c }

// Reset rewinds the cursor to the first node.
func (s *Stream) Reset() { s.pos = 0 }

// Stream returns a cursor over all nodes with the given tag.
func (ix *Index) Stream(tag doc.TagID) *Stream {
	return NewStream(ix.document, ix.Nodes(tag))
}

// FilteredStream materializes the sub-list of tag's nodes satisfying keep
// and returns a cursor over it.  This is how value predicates are pushed
// below the joins.
func (ix *Index) FilteredStream(tag doc.TagID, keep func(doc.NodeID) bool) *Stream {
	var out []doc.NodeID
	for _, n := range ix.Nodes(tag) {
		if keep(n) {
			out = append(out, n)
		}
	}
	return NewStream(ix.document, out)
}

// AllElements returns all element-kind nodes in document order, the stream
// of a wildcard query node.  On a raw index the list is computed on first
// use and cached; a compressed index materializes it per call (callers must
// not modify it either way).
func (ix *Index) AllElements() []doc.NodeID {
	if ix.comp != nil {
		return ix.comp.wildcardStream()
	}
	ix.allElemInit.Do(func() {
		for i := 0; i < ix.document.Len(); i++ {
			n := doc.NodeID(i)
			if ix.document.Kind(n) == doc.Element {
				ix.allElems = append(ix.allElems, n)
			}
		}
	})
	return ix.allElems
}

// WildcardCount returns the number of element-kind nodes — the length of
// AllElements without materializing it on a compressed index.
func (ix *Index) WildcardCount() int {
	if ix.comp != nil {
		return ix.comp.wildcardCount()
	}
	return len(ix.AllElements())
}

// WildcardStream returns a cursor over every element node.
func (ix *Index) WildcardStream() *Stream {
	return NewStream(ix.document, ix.AllElements())
}
