package index

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lotusx/internal/doc"
)

// randomDoc is a quick-generatable random document source.
type randomDoc struct {
	src string
}

// Generate implements quick.Generator.
func (randomDoc) Generate(rng *rand.Rand, size int) reflect.Value {
	tags := []string{"a", "b", "item"}
	words := []string{"alpha", "beta", "gamma", "alpha beta", ""}
	var b strings.Builder
	b.WriteString("<r>")
	n := 1 + rng.Intn(size%30+5)
	var open []string
	for i := 0; i < n; i++ {
		if len(open) > 0 && rng.Intn(3) == 0 {
			b.WriteString("</" + open[len(open)-1] + ">")
			open = open[:len(open)-1]
			continue
		}
		tag := tags[rng.Intn(len(tags))]
		if rng.Intn(2) == 0 {
			b.WriteString("<" + tag + ">" + words[rng.Intn(len(words))] + "</" + tag + ">")
		} else {
			b.WriteString("<" + tag + ">")
			open = append(open, tag)
		}
	}
	for len(open) > 0 {
		b.WriteString("</" + open[len(open)-1] + ">")
		open = open[:len(open)-1]
	}
	b.WriteString("</r>")
	return reflect.ValueOf(randomDoc{b.String()})
}

// TestQuickIndexInvariants: for arbitrary documents, the index's core
// invariants hold — streams are document-ordered and complete, postings are
// ordered and consistent with the documents' values, and DF equals posting
// length.
func TestQuickIndexInvariants(t *testing.T) {
	f := func(rd randomDoc) bool {
		d, err := doc.FromString("gen", rd.src)
		if err != nil {
			return false
		}
		ix := Build(d)

		// Streams partition the node set and are sorted.
		total := 0
		for tag := doc.TagID(0); int(tag) < d.Tags().Len(); tag++ {
			nodes := ix.Nodes(tag)
			total += len(nodes)
			for i, n := range nodes {
				if d.Tag(n) != tag {
					return false
				}
				if i > 0 && nodes[i-1] >= n {
					return false
				}
			}
		}
		if total != d.Len() {
			return false
		}

		// Every token of every value is findable, and every posting entry
		// really contains its token.
		for i := 0; i < d.Len(); i++ {
			n := doc.NodeID(i)
			for _, tok := range Tokenize(d.Value(n)) {
				found := false
				for _, pn := range ix.TokenPostings(tok) {
					if pn == n {
						found = true
						break
					}
				}
				if !found {
					return false
				}
				if ix.DF(tok) != len(ix.TokenPostings(tok)) {
					return false
				}
			}
		}
		// Exact lookup agrees with values.
		for i := 0; i < d.Len(); i++ {
			n := doc.NodeID(i)
			v := d.Value(n)
			if v == "" {
				continue
			}
			found := false
			for _, en := range ix.ExactMatches(v) {
				if en == n {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFullPersistenceRoundTrip: SaveFull/LoadFull round-trips arbitrary
// documents' postings exactly.
func TestQuickFullPersistenceRoundTrip(t *testing.T) {
	f := func(rd randomDoc) bool {
		d, err := doc.FromString("gen", rd.src)
		if err != nil {
			return false
		}
		ix := Build(d)
		var buf strings.Builder
		if err := ix.SaveFull(&nopWriter{&buf}); err != nil {
			return false
		}
		ix2, err := LoadFull(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		for _, tok := range []string{"alpha", "beta", "gamma"} {
			a, b := ix.TokenPostings(tok), ix2.TokenPostings(tok)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return ix.ValuedNodes() == ix2.ValuedNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// nopWriter adapts a strings.Builder to io.Writer (Builder already is one;
// kept for clarity of intent with binary data in a string).
type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
