package index

import (
	"bytes"
	"strings"
	"testing"

	"lotusx/internal/doc"
)

const bibXML = `<dblp>
  <article key="a1">
    <author>Jiaheng Lu</author>
    <title>Holistic Twig Joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>Chunbin Lin</author>
    <author>Jiaheng Lu</author>
    <title>LotusX Position-Aware Search</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>Tok Wang Ling</author>
    <title>XML Databases</title>
  </book>
</dblp>`

func mustIndex(t *testing.T, src string) *Index {
	t.Helper()
	d, err := doc.FromString("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(d)
}

// TestTokenFoldUnified pins the canonical token fold: DF and TokenPostings
// must agree for every spelling of a token — mixed case, stray punctuation,
// Unicode case pairs — because both go through foldToken, the same fold
// Tokenize applies while indexing.  A divergence here silently skews
// ranking (DF) against retrieval (postings).
func TestTokenFoldUnified(t *testing.T) {
	ix := mustIndex(t, bibXML)
	inputs := []string{
		"twig", "Twig", "TWIG", " Twig.", "title", "Title", "TITLE",
		"jiaheng", "JiaHeng", "2005", "lotusx", "LotusX", "Ärger", "ÄRGER",
		"no such token", "",
	}
	for _, in := range inputs {
		if df, n := ix.DF(in), len(ix.TokenPostings(in)); df != n {
			t.Errorf("DF(%q) = %d but len(TokenPostings(%q)) = %d", in, df, in, n)
		}
	}
	// Spellings that fold to the same token hit the same postings list.
	if got, want := ix.DF(" Twig."), ix.DF("twig"); got != want || want == 0 {
		t.Errorf("DF(\" Twig.\") = %d, want %d (nonzero)", got, want)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Jiaheng Lu", "jiaheng lu"},
		{"LotusX: Position-Aware XML!", "lotusx position aware xml"},
		{"  year 2012 ", "year 2012"},
		{"", ""},
		{"---", ""},
		{"Déjà vu", "déjà vu"},
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), " ")
		if got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenizeDropsOverlongTokens(t *testing.T) {
	long := strings.Repeat("x", maxTokenLen+1)
	if got := Tokenize(long + " ok"); len(got) != 1 || got[0] != "ok" {
		t.Errorf("got %v", got)
	}
}

func TestTagStreams(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()
	tags := d.Tags()

	if got := ix.TagCount(tags.ID("author")); got != 4 {
		t.Errorf("author count = %d, want 4", got)
	}
	if got := ix.TagCount(tags.ID("article")); got != 2 {
		t.Errorf("article count = %d, want 2", got)
	}
	if got := ix.TagCount(doc.NoTag); got != 0 {
		t.Errorf("NoTag count = %d, want 0", got)
	}

	// Streams are in document order.
	nodes := ix.Nodes(tags.ID("author"))
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatal("stream not in document order")
		}
	}
	for _, n := range nodes {
		if d.TagName(n) != "author" {
			t.Fatalf("stream node tagged %q", d.TagName(n))
		}
	}
}

func TestTokenPostings(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()

	lu := ix.TokenPostings("Lu") // case-insensitive lookup
	if len(lu) != 2 {
		t.Fatalf("postings(lu) = %d nodes, want 2", len(lu))
	}
	for _, n := range lu {
		if !strings.Contains(strings.ToLower(d.Value(n)), "lu") {
			t.Errorf("node value %q lacks token", d.Value(n))
		}
	}
	if got := ix.TokenPostings("nosuchtoken"); got != nil {
		t.Errorf("unexpected postings %v", got)
	}
	if df := ix.DF("jiaheng"); df != 2 {
		t.Errorf("DF(jiaheng) = %d, want 2", df)
	}
}

func TestExactMatches(t *testing.T) {
	ix := mustIndex(t, bibXML)
	got := ix.ExactMatches("JIAHENG LU")
	if len(got) != 2 {
		t.Fatalf("exact = %d, want 2", len(got))
	}
	if got := ix.ExactMatches("Jiaheng"); len(got) != 0 {
		t.Fatal("partial value should not match exactly")
	}
	if got := ix.ExactMatches("  jiaheng lu  "); len(got) != 2 {
		t.Fatal("surrounding whitespace should be ignored")
	}
}

func TestContainsAll(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()

	got := ix.ContainsAll("twig holistic")
	if len(got) != 1 || d.Value(got[0]) != "Holistic Twig Joins" {
		t.Fatalf("ContainsAll = %v", got)
	}
	if got := ix.ContainsAll("twig lotusx"); len(got) != 0 {
		t.Fatal("tokens from different nodes should not match")
	}
	if got := ix.ContainsAll(""); got != nil {
		t.Fatal("empty query should return nil")
	}
	if got := ix.ContainsAll("jiaheng"); len(got) != 2 {
		t.Fatalf("single token = %v", got)
	}
}

func TestValuedNodes(t *testing.T) {
	ix := mustIndex(t, bibXML)
	// 3 keys + 4 authors + 3 titles + 2 years = 12 valued nodes.
	if got := ix.ValuedNodes(); got != 12 {
		t.Errorf("ValuedNodes = %d, want 12", got)
	}
}

func TestTagTrie(t *testing.T) {
	ix := mustIndex(t, bibXML)
	got := ix.TagTrie().Complete("a", 10)
	var names []string
	for _, e := range got {
		names = append(names, e.Word)
	}
	// author (4) > article (2) > @key? no, @key doesn't start with 'a'... it
	// does not ('@'). So: author, article.
	if strings.Join(names, " ") != "author article" {
		t.Fatalf("tag completion = %v", names)
	}
	if got[0].Weight != 4 {
		t.Errorf("author weight = %d, want 4", got[0].Weight)
	}
	tagID := doc.TagID(got[0].Datum)
	if ix.Document().Tags().Name(tagID) != "author" {
		t.Errorf("datum does not round-trip to TagID")
	}
}

func TestValueTrie(t *testing.T) {
	ix := mustIndex(t, bibXML)
	tags := ix.Document().Tags()
	vt := ix.ValueTrie(tags.ID("author"))
	if vt == nil {
		t.Fatal("author value trie missing")
	}
	got := vt.Complete("jiaheng", 5)
	if len(got) != 1 || got[0].Word != "jiaheng lu" || got[0].Weight != 2 {
		t.Fatalf("value completion = %v", got)
	}
	if ix.ValueTrie(tags.ID("dblp")) != nil {
		t.Error("dblp has no values; trie should be nil")
	}
}

func TestStreamCursor(t *testing.T) {
	ix := mustIndex(t, bibXML)
	tags := ix.Document().Tags()
	s := ix.Stream(tags.ID("author"))
	if s.Len() != 4 || s.Remaining() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	var visited int
	var last doc.NodeID = -1
	for !s.EOF() {
		n := s.Head()
		if n <= last {
			t.Fatal("stream out of order")
		}
		if s.Region() != ix.Document().Region(n) {
			t.Fatal("Region mismatch")
		}
		last = n
		visited++
		s.Advance()
	}
	if visited != 4 {
		t.Fatalf("visited = %d", visited)
	}
	s.Reset()
	if s.EOF() || s.Remaining() != 4 {
		t.Fatal("Reset did not rewind")
	}
	c := s.Clone()
	c.Advance()
	if s.Head() == c.Head() {
		t.Fatal("Clone is not independent")
	}
}

func TestFilteredStream(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()
	tags := d.Tags()
	s := ix.FilteredStream(tags.ID("author"), func(n doc.NodeID) bool {
		return strings.Contains(d.Value(n), "Lu")
	})
	if s.Len() != 2 {
		t.Fatalf("filtered len = %d, want 2", s.Len())
	}
}

func TestWildcardStream(t *testing.T) {
	ix := mustIndex(t, bibXML)
	d := ix.Document()
	s := ix.WildcardStream()
	for !s.EOF() {
		if d.Kind(s.Head()) != doc.Element {
			t.Fatal("wildcard stream contains non-element")
		}
		s.Advance()
	}
	// 1 dblp + 2 article + 1 book + 4 author + 3 title + 2 year = 13.
	if s.Len() != 13 {
		t.Fatalf("wildcard len = %d, want 13", s.Len())
	}
	// Cached second call returns same backing list.
	if len(ix.AllElements()) != 13 {
		t.Fatal("AllElements inconsistent")
	}
}

func TestSaveLoadRebuilds(t *testing.T) {
	ix := mustIndex(t, bibXML)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.ValuedNodes() != ix.ValuedNodes() {
		t.Error("ValuedNodes differ after reload")
	}
	tags := ix2.Document().Tags()
	if ix2.TagCount(tags.ID("author")) != 4 {
		t.Error("author stream differs after reload")
	}
	if len(ix2.TokenPostings("jiaheng")) != 2 {
		t.Error("postings differ after reload")
	}
}

func TestLoadError(t *testing.T) {
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("expected error")
	}
}
