// DAG-compressed index substrate (Böttcher et al., "Efficient XML Keyword
// Search based on DAG-Compression").  Bibliographic-style XML is dominated
// by structurally identical subtrees; instead of materializing one stream
// entry, posting entry and exact-value entry per node *instance*, the
// compressed substrate stores each distinct subtree shape once — tag, kind,
// value class and ordered child shapes, hashed bottom-up — plus a sorted
// occurrence list of the subtree roots that instantiate it.
//
// Because NodeIDs are preorder, a subtree is a contiguous ID range and two
// occurrences of one shape are identical node-for-node at identical offsets:
// the node at offset k under occurrence root r is the copy of the node at
// offset k under the canonical root.  Every per-node access structure then
// factors into a small "program": a residue list (nodes outside any shared
// occurrence) plus (group, offset) parts expanded against occurrence lists.
// Streams, postings and exact-value lists materialize lazily from these
// programs; counts (TagCount, DF) are pure arithmetic.  The same offset
// identity powers the join fast path (internal/join): evaluate each distinct
// shape once against the canonical occurrence, then translate matches to the
// remaining occurrences.
package index

import (
	"encoding/binary"
	"sort"

	"lotusx/internal/doc"
	"lotusx/internal/trie"
)

// compressMinRatio is the estimated raw/compressed substrate byte ratio
// below which BuildWith falls back to the raw representation: a document
// without enough repeated structure pays materialization cost at query time
// without a resident-memory win, so it keeps the raw arrays.
const compressMinRatio = 2.0

// Approximate per-entry overheads used by both the resident-byte accounting
// and the raw-size estimate, so the two sides are compared with the same
// yardstick: a Go map entry (bucket share + key header) and a slice header.
const (
	mapEntryBytes    = 48
	sliceHeaderBytes = 24
	nodeIDBytes      = 4
	partBytes        = 8
)

// part references one node of a shared shape: the node at Offset inside
// every occurrence subtree of group Group.
type part struct {
	group  int32
	offset int32
}

// prog is the compressed form of one document-order node list: explicit
// residue nodes plus shape parts expanded against occurrence roots.
type prog struct {
	residue []doc.NodeID
	parts   []part
}

// occGroup is one shared shape chosen as an occurrence root: Size nodes per
// subtree, instantiated at every root in Roots (sorted ascending; Roots[0]
// is the canonical occurrence all programs and the join fast path refer to).
type occGroup struct {
	size  int32
	roots []doc.NodeID
}

// Compressed is the DAG-compressed substrate of an Index.  It is immutable
// after build and safe for concurrent readers; materializing accessors
// return fresh slices.
type Compressed struct {
	d      *doc.Document
	groups []occGroup

	// coverRoots/coverGroups flatten every occurrence instance sorted by
	// root, for the "which occurrence contains node n" binary search.
	coverRoots  []doc.NodeID
	coverGroups []int32

	// tagProgs[tag] is the compressed stream of that tag.
	tagProgs []prog
	// posts[token] / exacts[foldedValue] are the compressed postings.
	posts  map[string]*prog
	exacts map[string]*prog

	// shapes counts distinct subtree shapes in the whole document;
	// instances counts occurrence roots across all groups; sharedNodes
	// counts nodes covered by shared occurrences.
	shapes      int
	instances   int
	sharedNodes int

	// rawEstimate is the estimated byte size of the raw substrate this
	// compressed form replaces (streams + postings + exact lists).
	rawEstimate int64
}

// BuildOptions tunes BuildWith.
type BuildOptions struct {
	// Compress opts into the DAG-compressed substrate; when the document's
	// dedup ratio is poor the build falls back to the raw representation.
	Compress bool
	// ForceCompress keeps the compressed substrate even when the heuristic
	// would fall back — tests and experiments only.
	ForceCompress bool
}

// BuildWith constructs the index for d under the given options.
func BuildWith(d *doc.Document, opts BuildOptions) *Index {
	if opts.Compress || opts.ForceCompress {
		if ix := buildCompressed(d, opts.ForceCompress); ix != nil {
			return ix
		}
	}
	return Build(d)
}

// BuildCompressed builds the index over the DAG-compressed substrate when
// the document's dedup ratio clears compressMinRatio, else falls back to
// the raw representation (Compressed returns nil in that case).
func BuildCompressed(d *doc.Document) *Index {
	return BuildWith(d, BuildOptions{Compress: true})
}

// Compressed returns the index's DAG substrate, or nil when the index is
// raw (Build, or a compressed build that fell back).
func (ix *Index) Compressed() *Compressed { return ix.comp }

// buildCompressed runs the structure-hash pass and assembles a compressed
// index, or returns nil when compression would not pay and force is false.
func buildCompressed(d *doc.Document, force bool) *Index {
	n := d.Len()

	// Subtree sizes, bottom-up.  Children have larger preorder IDs than
	// their parent, so a reverse scan sees every child before its parent.
	size := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		sz := int32(1)
		for c := d.FirstChild(doc.NodeID(i)); c != doc.None; c = d.NextSibling(c) {
			sz += size[c]
		}
		size[i] = sz
	}

	// Structure-hash pass: intern each node's shape key — tag, kind, value
	// class, ordered child shapes.  Keys are interned by content (classic
	// hash-consing), so two nodes share a shape ID iff their subtrees are
	// byte-identical in every query-visible property; there is no hash to
	// collide.  All of this state is transient build scaffolding.
	shapeOf := make([]int32, n)
	shapeCount := make([]int32, 0, 1024)
	shapeKeys := make(map[string]int32, 1024)
	valueIDs := make(map[string]int32, 1024)
	var kb []byte
	for i := n - 1; i >= 0; i-- {
		id := doc.NodeID(i)
		kb = kb[:0]
		kb = binary.AppendUvarint(kb, uint64(d.Tag(id)))
		kb = append(kb, byte(d.Kind(id)))
		v := d.Value(id)
		vid, ok := valueIDs[v]
		if !ok {
			vid = int32(len(valueIDs))
			valueIDs[v] = vid
		}
		kb = binary.AppendUvarint(kb, uint64(vid))
		for c := d.FirstChild(id); c != doc.None; c = d.NextSibling(c) {
			kb = binary.AppendUvarint(kb, uint64(shapeOf[c]))
		}
		s, ok := shapeKeys[string(kb)]
		if !ok {
			s = int32(len(shapeCount))
			shapeKeys[string(kb)] = s
			shapeCount = append(shapeCount, 0)
		}
		shapeOf[i] = s
		shapeCount[s]++
	}

	// Cover scan: one preorder sweep picks the topmost shared subtrees as
	// occurrence roots and skips over their (contiguous) node ranges;
	// everything else is residue.  Single-node shapes stay residue — their
	// occurrence list would be exactly as large as the raw stream entries
	// they replace.  A group can end up with a single root (its other
	// instances nested inside larger shared subtrees); that is harmless,
	// just not profitable, and the byte-ratio fallback judges the total.
	c := &Compressed{
		d:        d,
		tagProgs: make([]prog, d.Tags().Len()),
		posts:    make(map[string]*prog),
		exacts:   make(map[string]*prog),
		shapes:   len(shapeCount),
	}
	groupBy := make(map[int32]int32)
	var residue []doc.NodeID
	for i := 0; i < n; {
		s := shapeOf[i]
		if shapeCount[s] >= 2 && size[i] >= 2 {
			g, ok := groupBy[s]
			if !ok {
				g = int32(len(c.groups))
				groupBy[s] = g
				c.groups = append(c.groups, occGroup{size: size[i]})
			}
			c.groups[g].roots = append(c.groups[g].roots, doc.NodeID(i))
			c.sharedNodes += int(size[i])
			i += int(size[i])
			continue
		}
		residue = append(residue, doc.NodeID(i))
		i++
	}
	for _, g := range c.groups {
		c.instances += len(g.roots)
	}

	// Value-derived structures.  Canonical subtrees are tokenized once per
	// shape; every per-node fact they yield stands for occurrence-count
	// instances.  trieAgg accumulates (weight, first-in-document-order
	// node) per (tag, folded value) so the completion tries come out
	// identical to a raw build: Insert sums weights but keeps the FIRST
	// datum, which in a raw document-order build is the lowest NodeID.
	type trieKey struct {
		tag   doc.TagID
		lower string
	}
	type trieVal struct {
		weight int64
		first  doc.NodeID
	}
	trieAgg := make(map[trieKey]*trieVal)
	valued := 0
	var rawPostEntries, rawExactEntries int64

	post := func(m map[string]*prog, key string) *prog {
		p := m[key]
		if p == nil {
			p = &prog{}
			m[key] = p
		}
		return p
	}
	record := func(v string, instances int64, addPost func(p *prog)) {
		if v == "" {
			return
		}
		valued += int(instances)
		addPost(post(c.exacts, foldValue(v)))
		rawExactEntries += instances
		seen := make(map[string]struct{})
		for _, tok := range Tokenize(v) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			addPost(post(c.posts, tok))
			rawPostEntries += instances
		}
	}

	addTrie := func(tag doc.TagID, v string, weight int64, first doc.NodeID) {
		key := trieKey{tag, foldValue(v)}
		tv := trieAgg[key]
		if tv == nil {
			trieAgg[key] = &trieVal{weight: weight, first: first}
			return
		}
		tv.weight += weight
		if first < tv.first {
			tv.first = first
		}
	}
	for gi := range c.groups {
		g := &c.groups[gi]
		r0 := g.roots[0]
		inst := int64(len(g.roots))
		for k := int32(0); k < g.size; k++ {
			id := r0 + doc.NodeID(k)
			tag := d.Tag(id)
			pt := part{group: int32(gi), offset: k}
			c.tagProgs[tag].parts = append(c.tagProgs[tag].parts, pt)
			v := d.Value(id)
			record(v, inst, func(p *prog) { p.parts = append(p.parts, pt) })
			if v != "" {
				// roots[0] is the group's earliest occurrence, so the first
				// document-order instance of this node is r0+k itself.
				addTrie(tag, v, inst, id)
			}
		}
	}
	for _, id := range residue {
		tag := d.Tag(id)
		c.tagProgs[tag].residue = append(c.tagProgs[tag].residue, id)
		v := d.Value(id)
		record(v, 1, func(p *prog) { p.residue = append(p.residue, id) })
		if v != "" {
			addTrie(tag, v, 1, id)
		}
	}

	// Cover table, sorted by root for the occurrence binary search.
	c.coverRoots = make([]doc.NodeID, 0, c.instances)
	c.coverGroups = make([]int32, 0, c.instances)
	type coverEnt struct {
		root  doc.NodeID
		group int32
	}
	ents := make([]coverEnt, 0, c.instances)
	for gi := range c.groups {
		for _, r := range c.groups[gi].roots {
			ents = append(ents, coverEnt{root: r, group: int32(gi)})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].root < ents[j].root })
	for _, e := range ents {
		c.coverRoots = append(c.coverRoots, e.root)
		c.coverGroups = append(c.coverGroups, e.group)
	}

	// The fallback heuristic: estimate what the raw substrate would cost
	// (one stream entry per node, one posting/exact entry per instance,
	// the same key set) and compare with the compressed structures.
	c.rawEstimate = int64(n)*nodeIDBytes + int64(d.Tags().Len())*sliceHeaderBytes +
		rawPostEntries*nodeIDBytes + rawExactEntries*nodeIDBytes
	for tok := range c.posts {
		c.rawEstimate += int64(len(tok)) + mapEntryBytes
	}
	for v := range c.exacts {
		c.rawEstimate += int64(len(v)) + mapEntryBytes
	}
	if !force && float64(c.rawEstimate) < compressMinRatio*float64(c.residentBytes()) {
		return nil
	}

	// Assemble the Index around the substrate; the completion tries and
	// counters must come out identical to a raw build (completion results
	// and ranking statistics may not depend on the substrate).
	ix := &Index{
		document:   d,
		comp:       c,
		tagTrie:    trie.New(),
		valueTries: make(map[doc.TagID]*trie.Trie),
		valued:     valued,
	}
	for key, tv := range trieAgg {
		vt := ix.valueTries[key.tag]
		if vt == nil {
			vt = trie.New()
			ix.valueTries[key.tag] = vt
		}
		vt.Insert(key.lower, tv.weight, int32(tv.first))
	}
	for id := doc.TagID(0); int(id) < d.Tags().Len(); id++ {
		ix.tagTrie.Insert(d.Tags().Name(id), int64(c.tagCount(id)), int32(id))
	}
	return ix
}

// progCount is the number of nodes a program expands to.
func (c *Compressed) progCount(p *prog) int {
	n := len(p.residue)
	for _, pt := range p.parts {
		n += len(c.groups[pt.group].roots)
	}
	return n
}

// materialize expands a program into a fresh document-order node list.
func (c *Compressed) materialize(p *prog) []doc.NodeID {
	if p == nil {
		return nil
	}
	out := make([]doc.NodeID, 0, c.progCount(p))
	out = append(out, p.residue...)
	for _, pt := range p.parts {
		off := doc.NodeID(pt.offset)
		for _, r := range c.groups[pt.group].roots {
			out = append(out, r+off)
		}
	}
	sortNodeIDs(out)
	return out
}

// canonical expands only the canonical occurrence of each part — the node
// set the join fast path evaluates once per shape.  Residue is excluded.
func (c *Compressed) canonical(p *prog) []doc.NodeID {
	if p == nil || len(p.parts) == 0 {
		return nil
	}
	out := make([]doc.NodeID, 0, len(p.parts))
	for _, pt := range p.parts {
		out = append(out, c.groups[pt.group].roots[0]+doc.NodeID(pt.offset))
	}
	sortNodeIDs(out)
	return out
}

func (c *Compressed) tagProg(tag doc.TagID) *prog {
	if tag < 0 || int(tag) >= len(c.tagProgs) {
		return nil
	}
	return &c.tagProgs[tag]
}

// tagCount returns the number of nodes with tag, without materializing.
func (c *Compressed) tagCount(tag doc.TagID) int {
	p := c.tagProg(tag)
	if p == nil {
		return 0
	}
	return c.progCount(p)
}

// tagStream materializes the full document-order stream of tag.
func (c *Compressed) tagStream(tag doc.TagID) []doc.NodeID {
	return c.materialize(c.tagProg(tag))
}

// Canonical returns the tag's nodes inside canonical occurrence subtrees,
// in document order — the pass-1 stream of the join fast path.
func (c *Compressed) Canonical(tag doc.TagID) []doc.NodeID {
	return c.canonical(c.tagProg(tag))
}

// Residue returns the tag's nodes outside every shared occurrence, in
// document order.  The slice is shared; callers must not modify it.
func (c *Compressed) Residue(tag doc.TagID) []doc.NodeID {
	p := c.tagProg(tag)
	if p == nil {
		return nil
	}
	return p.residue
}

// elementTags calls fn for every element (non-attribute) tag.
func (c *Compressed) elementTags(fn func(tag doc.TagID)) {
	tags := c.d.Tags()
	for id := doc.TagID(0); int(id) < tags.Len(); id++ {
		if name := tags.Name(id); len(name) > 0 && name[0] == '@' {
			continue
		}
		fn(id)
	}
}

// wildcardCount returns the number of element nodes, without materializing.
func (c *Compressed) wildcardCount() int {
	n := 0
	c.elementTags(func(tag doc.TagID) { n += c.tagCount(tag) })
	return n
}

// wildcardStream materializes all element nodes in document order.
func (c *Compressed) wildcardStream() []doc.NodeID {
	out := make([]doc.NodeID, 0, c.wildcardCount())
	c.elementTags(func(tag doc.TagID) {
		p := c.tagProg(tag)
		out = append(out, p.residue...)
		for _, pt := range p.parts {
			off := doc.NodeID(pt.offset)
			for _, r := range c.groups[pt.group].roots {
				out = append(out, r+off)
			}
		}
	})
	sortNodeIDs(out)
	return out
}

// CanonicalWildcard returns the element nodes inside canonical occurrence
// subtrees, in document order.
func (c *Compressed) CanonicalWildcard() []doc.NodeID {
	var out []doc.NodeID
	c.elementTags(func(tag doc.TagID) {
		for _, pt := range c.tagProg(tag).parts {
			out = append(out, c.groups[pt.group].roots[0]+doc.NodeID(pt.offset))
		}
	})
	sortNodeIDs(out)
	return out
}

// ResidueWildcard returns the element nodes outside every shared
// occurrence, in document order.
func (c *Compressed) ResidueWildcard() []doc.NodeID {
	var out []doc.NodeID
	c.elementTags(func(tag doc.TagID) { out = append(out, c.tagProg(tag).residue...) })
	sortNodeIDs(out)
	return out
}

// tokenPostings materializes the postings of a canonical (folded) token.
func (c *Compressed) tokenPostings(tok string) []doc.NodeID {
	return c.materialize(c.posts[tok])
}

// tokenCount returns the document frequency of a canonical token.
func (c *Compressed) tokenCount(tok string) int {
	p := c.posts[tok]
	if p == nil {
		return 0
	}
	return c.progCount(p)
}

// exactMatches materializes the nodes whose folded value equals v.
func (c *Compressed) exactMatches(v string) []doc.NodeID {
	return c.materialize(c.exacts[v])
}

// Occurrence locates the shared occurrence containing node n.  It returns
// the canonical root of n's group and the group's full occurrence-root
// list (sorted; shared, do not modify); ok is false when n is residue.
func (c *Compressed) Occurrence(n doc.NodeID) (canonical doc.NodeID, roots []doc.NodeID, ok bool) {
	i := sort.Search(len(c.coverRoots), func(k int) bool { return c.coverRoots[k] > n })
	if i == 0 {
		return 0, nil, false
	}
	g := &c.groups[c.coverGroups[i-1]]
	root := c.coverRoots[i-1]
	if n >= root+doc.NodeID(g.size) {
		return 0, nil, false
	}
	return g.roots[0], g.roots, true
}

// residentBytes measures the substrate's resident structures.
func (c *Compressed) residentBytes() int64 {
	var b int64
	for i := range c.groups {
		b += sliceHeaderBytes + int64(len(c.groups[i].roots))*nodeIDBytes + 8
	}
	b += int64(len(c.coverRoots))*nodeIDBytes + int64(len(c.coverGroups))*4
	progBytes := func(p *prog) int64 {
		return int64(len(p.residue))*nodeIDBytes + int64(len(p.parts))*partBytes + 2*sliceHeaderBytes
	}
	for i := range c.tagProgs {
		b += progBytes(&c.tagProgs[i])
	}
	for tok, p := range c.posts {
		b += int64(len(tok)) + mapEntryBytes + progBytes(p)
	}
	for v, p := range c.exacts {
		b += int64(len(v)) + mapEntryBytes + progBytes(p)
	}
	return b
}

// CompressionStats summarizes an index's substrate: which representation is
// resident, how much it holds, and — for a compressed index — the shape
// economy (distinct shapes vs occurrence instances) plus the estimated size
// of the raw substrate it replaced.
type CompressionStats struct {
	// Compressed reports whether the DAG substrate is active.
	Compressed bool `json:"compressed"`
	// Nodes is the document's node count.
	Nodes int `json:"nodes"`
	// Shapes counts distinct subtree shapes (compressed builds only).
	Shapes int `json:"shapes,omitempty"`
	// Instances counts shared-subtree occurrence roots across all groups.
	Instances int `json:"instances,omitempty"`
	// SharedNodes counts nodes covered by shared occurrences.
	SharedNodes int `json:"sharedNodes,omitempty"`
	// ResidentBytes measures the live substrate (streams, postings, exact
	// lists — or their compressed programs).  Tries and the document are
	// excluded: they are identical under both representations.
	ResidentBytes int64 `json:"residentBytes"`
	// RawBytes estimates the raw substrate a compressed index replaced;
	// equal to ResidentBytes for a raw index.
	RawBytes int64 `json:"rawBytes"`
}

// Ratio is RawBytes/ResidentBytes — the substrate dedup factor.
func (s CompressionStats) Ratio() float64 {
	if s.ResidentBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.ResidentBytes)
}

// CompressionStats reports the index's substrate statistics.
func (ix *Index) CompressionStats() CompressionStats {
	st := CompressionStats{Nodes: ix.document.Len()}
	if ix.comp != nil {
		st.Compressed = true
		st.Shapes = ix.comp.shapes
		st.Instances = ix.comp.instances
		st.SharedNodes = ix.comp.sharedNodes
		st.ResidentBytes = ix.comp.residentBytes()
		st.RawBytes = ix.comp.rawEstimate
		return st
	}
	st.ResidentBytes = ix.ResidentBytes()
	st.RawBytes = st.ResidentBytes
	return st
}

// ResidentBytes measures the index's live per-node substrate; see
// CompressionStats.ResidentBytes for what is counted.
func (ix *Index) ResidentBytes() int64 {
	if ix.comp != nil {
		return ix.comp.residentBytes()
	}
	var b int64
	for _, s := range ix.streams {
		b += sliceHeaderBytes + int64(len(s))*nodeIDBytes
	}
	for tok, nodes := range ix.postings {
		b += int64(len(tok)) + mapEntryBytes + int64(len(nodes))*nodeIDBytes
	}
	for v, nodes := range ix.exact {
		b += int64(len(v)) + mapEntryBytes + int64(len(nodes))*nodeIDBytes
	}
	b += int64(len(ix.allElems)) * nodeIDBytes
	return b
}

// sortNodeIDs sorts a node list ascending (document order).
func sortNodeIDs(s []doc.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
