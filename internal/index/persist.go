package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lotusx/internal/doc"
	"lotusx/internal/trie"
)

// Typed load failures.  Callers (the corpus manifest loader, the server's
// index opener) branch on these with errors.Is: a corrupt file is dropped or
// rebuilt from source, while a version-skewed file is structurally sound and
// only needs re-saving with the current writer.
var (
	// ErrCorrupt marks a file SaveFull never wrote: bad magic, truncation,
	// checksum mismatch, or an internally inconsistent payload.
	ErrCorrupt = errors.New("index: corrupt full-index file")
	// ErrBadVersion marks a well-formed file written by an incompatible
	// SaveFull version.
	ErrBadVersion = errors.New("index: unsupported full-index version")
)

// Full index persistence.  Save/Load (index.go) store only the document and
// rebuild everything on open; SaveFull/LoadFull additionally persist the
// token postings — the one derived structure whose reconstruction
// (tokenizing every value) dominates rebuild time — and protect the whole
// payload with a CRC32 so a truncated or corrupted file is rejected rather
// than silently misread.
//
// Layout: magic "LTXI" | version u32 | payload len u64 | crc32 u32 | payload
// where payload = document | valued u32 | postings section.
//
// Version 2 prefixes the payload with a flags word.  A compressed index
// (flagCompressed) persists only its document — the DAG substrate dedups
// the very repetition that makes postings expensive to rebuild, so
// re-deriving it on load is cheap and the file stays small.  Version-1
// files still load unchanged.
const (
	fullMagic        = "LTXI"
	fullVersion      = 1
	fullVersionFlags = 2

	// flagCompressed marks a version-2 payload whose index was built on
	// the DAG-compressed substrate; the load rebuilds it in that mode.
	flagCompressed = 1 << 0
)

// SaveFull writes the index with its postings, checksummed.  A compressed
// index writes the version-2 document-only layout instead.
func (ix *Index) SaveFull(w io.Writer) error {
	if ix.comp != nil {
		return ix.saveFullCompressed(w)
	}
	// The document section is length-prefixed because doc.Load buffers its
	// reader and would otherwise consume bytes of the following sections.
	var docBuf bytes.Buffer
	if err := ix.document.Save(&docBuf); err != nil {
		return err
	}
	var payload bytes.Buffer
	var lenHdr [8]byte
	binary.LittleEndian.PutUint64(lenHdr[:], uint64(docBuf.Len()))
	payload.Write(lenHdr[:])
	payload.Write(docBuf.Bytes())

	pw := bufio.NewWriter(&payload)
	var scratch [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		pw.Write(scratch[:])
	}
	str := func(s string) {
		u32(uint32(len(s)))
		pw.WriteString(s)
	}

	u32(uint32(ix.valued))
	u32(uint32(len(ix.postings)))
	// Deterministic section order is not required for correctness but makes
	// byte-identical saves reproducible; map order suffices functionally,
	// so iterate sorted only for small maps? Sorting large token maps costs
	// more than it gives — determinism comes from the CRC covering content,
	// and tests compare semantics, not bytes.
	for tok, nodes := range ix.postings {
		str(tok)
		u32(uint32(len(nodes)))
		for _, n := range nodes {
			u32(uint32(n))
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fullMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fullVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// saveFullCompressed writes the version-2 layout: flags word plus the
// length-prefixed document, checksummed like version 1.
func (ix *Index) saveFullCompressed(w io.Writer) error {
	var docBuf bytes.Buffer
	if err := ix.document.Save(&docBuf); err != nil {
		return err
	}
	var payload bytes.Buffer
	var hdr12 [12]byte
	binary.LittleEndian.PutUint32(hdr12[0:4], flagCompressed)
	binary.LittleEndian.PutUint64(hdr12[4:12], uint64(docBuf.Len()))
	payload.Write(hdr12[:])
	payload.Write(docBuf.Bytes())

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fullMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fullVersionFlags)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFull reads an index written by SaveFull, verifying the checksum.
func LoadFull(r io.Reader) (*Index, error) {
	magic := make([]byte, len(fullMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != fullMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != fullVersion && version != fullVersionFlags {
		return nil, fmt.Errorf("%w: got %d, want %d or %d", ErrBadVersion, version, fullVersion, fullVersionFlags)
	}
	plen := binary.LittleEndian.Uint64(hdr[4:12])
	if plen > 1<<34 {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[12:16]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	var flags uint32
	if version == fullVersionFlags {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: payload too short", ErrCorrupt)
		}
		flags = binary.LittleEndian.Uint32(payload[:4])
		payload = payload[4:]
	}
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: payload too short", ErrCorrupt)
	}
	docLen := binary.LittleEndian.Uint64(payload[:8])
	if docLen > uint64(len(payload)-8) {
		return nil, fmt.Errorf("%w: document length %d", ErrCorrupt, docLen)
	}
	d, err := doc.Load(bytes.NewReader(payload[8 : 8+docLen]))
	if err != nil {
		return nil, err
	}
	if flags&flagCompressed != 0 {
		// The substrate is derived, not stored: rebuild it in compressed
		// mode.  ForceCompress keeps the on-disk flag and the manifest's
		// view of the shard in agreement even for borderline documents.
		return BuildWith(d, BuildOptions{ForceCompress: true}), nil
	}
	br := bytes.NewReader(payload[8+docLen:])
	var scratch [4]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:]), nil
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if int(n) > br.Len() {
			return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	valued, err := u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading valued count: %v", ErrCorrupt, err)
	}
	ntoks, err := u32()
	if err != nil {
		return nil, fmt.Errorf("%w: reading postings count: %v", ErrCorrupt, err)
	}
	postings := make(map[string][]doc.NodeID, ntoks)
	for i := uint32(0); i < ntoks; i++ {
		tok, err := str()
		if err != nil {
			return nil, fmt.Errorf("%w: reading token: %v", ErrCorrupt, err)
		}
		cnt, err := u32()
		if err != nil {
			return nil, err
		}
		if int(cnt) > d.Len() {
			return nil, fmt.Errorf("%w: posting list longer than document", ErrCorrupt)
		}
		nodes := make([]doc.NodeID, cnt)
		for j := range nodes {
			v, err := u32()
			if err != nil {
				return nil, err
			}
			if int(v) >= d.Len() {
				return nil, fmt.Errorf("%w: posting references node %d of %d", ErrCorrupt, v, d.Len())
			}
			nodes[j] = doc.NodeID(v)
		}
		postings[tok] = nodes
	}

	return rebuildFromParts(d, postings, int(valued)), nil
}

// rebuildFromParts reconstructs the cheap derived structures (streams, the
// exact map, tries) from the document, reusing the persisted postings so no
// value is re-tokenized.
func rebuildFromParts(d *doc.Document, postings map[string][]doc.NodeID, valued int) *Index {
	ix := &Index{
		document:   d,
		streams:    make([][]doc.NodeID, d.Tags().Len()),
		postings:   postings,
		exact:      make(map[string][]doc.NodeID),
		tagTrie:    trie.New(),
		valueTries: make(map[doc.TagID]*trie.Trie),
		valued:     valued,
	}
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		tag := d.Tag(n)
		ix.streams[tag] = append(ix.streams[tag], n)
		v := d.Value(n)
		if v == "" {
			continue
		}
		lower := foldValue(v)
		ix.exact[lower] = append(ix.exact[lower], n)
		vt := ix.valueTries[tag]
		if vt == nil {
			vt = trie.New()
			ix.valueTries[tag] = vt
		}
		vt.Insert(lower, 1, int32(n))
	}
	for id := doc.TagID(0); int(id) < d.Tags().Len(); id++ {
		ix.tagTrie.Insert(d.Tags().Name(id), int64(len(ix.streams[id])), int32(id))
	}
	return ix
}
