// Package index builds the access structures twig evaluation runs on: per-tag
// node streams in document order (the inputs of structural joins), a value
// inverted index with token postings (accelerating equality and containment
// predicates), exact-value lookup, and completion tries over tag names and
// per-tag values.
//
// An Index is immutable after Build and safe for concurrent readers.  It is
// derived deterministically from its Document, so persistence stores the
// document and rebuilds the derived structures on load (rebuild is a single
// O(n) pass; see Save/Load).
//
// The index has two interchangeable substrates.  Build materializes the raw
// per-node arrays; BuildWith/BuildCompressed can instead store the
// DAG-compressed form (compress.go), which dedups repeated subtrees and
// expands node lists lazily.  Every accessor answers identically under
// either substrate.
package index

import (
	"io"
	"sort"
	"strings"
	"sync"

	"lotusx/internal/doc"
	"lotusx/internal/trie"
	"lotusx/internal/xlabel"
)

// Index holds all access structures over one document.
type Index struct {
	document *doc.Document

	// comp, when non-nil, is the DAG-compressed substrate; streams,
	// postings and exact are then nil and accessors materialize from it.
	comp *Compressed

	// streams[tag] lists the nodes with that tag in document order.
	streams [][]doc.NodeID

	// postings maps a lowercase token to the nodes whose value contains it,
	// in document order.
	postings map[string][]doc.NodeID

	// exact maps a lowercase full value to the nodes carrying exactly that
	// value, in document order.
	exact map[string][]doc.NodeID

	// tagTrie completes tag names; entry weight is the tag's occurrence
	// count and the datum its TagID.
	tagTrie *trie.Trie

	// valueTries[tag] completes full values of nodes with that tag.
	valueTries map[doc.TagID]*trie.Trie

	// valued counts nodes with a non-empty value (the N of idf).
	valued int

	// allElems caches the wildcard stream (all element nodes); built lazily.
	allElemInit sync.Once
	allElems    []doc.NodeID

	// Extended Dewey labels (TJFast's position-aware labels); built lazily
	// on first TJFast evaluation.
	xlabelInit   sync.Once
	xlabelTrans  *xlabel.Transducer
	xlabelLabels *xlabel.Arena
}

// ExtDewey returns the document's extended Dewey transducer and label
// arena, building them on first use.
func (ix *Index) ExtDewey() (*xlabel.Transducer, *xlabel.Arena) {
	ix.xlabelInit.Do(func() {
		ix.xlabelTrans = xlabel.BuildTransducer(ix.document)
		ix.xlabelLabels = xlabel.Encode(ix.document, ix.xlabelTrans)
	})
	return ix.xlabelTrans, ix.xlabelLabels
}

// Build constructs the index for d.
func Build(d *doc.Document) *Index {
	ix := &Index{
		document:   d,
		streams:    make([][]doc.NodeID, d.Tags().Len()),
		postings:   make(map[string][]doc.NodeID),
		exact:      make(map[string][]doc.NodeID),
		tagTrie:    trie.New(),
		valueTries: make(map[doc.TagID]*trie.Trie),
	}
	for i := 0; i < d.Len(); i++ {
		n := doc.NodeID(i)
		tag := d.Tag(n)
		ix.streams[tag] = append(ix.streams[tag], n)

		v := d.Value(n)
		if v == "" {
			continue
		}
		ix.valued++
		lower := foldValue(v)
		ix.exact[lower] = append(ix.exact[lower], n)

		seen := make(map[string]struct{})
		for _, tok := range Tokenize(v) {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			ix.postings[tok] = append(ix.postings[tok], n)
		}

		vt := ix.valueTries[tag]
		if vt == nil {
			vt = trie.New()
			ix.valueTries[tag] = vt
		}
		vt.Insert(lower, 1, int32(n))
	}
	for id := doc.TagID(0); int(id) < d.Tags().Len(); id++ {
		ix.tagTrie.Insert(d.Tags().Name(id), int64(len(ix.streams[id])), int32(id))
	}
	return ix
}

// Document returns the indexed document.
func (ix *Index) Document() *doc.Document { return ix.document }

// foldValue is THE canonical fold for the exact-value and value-trie
// keyspaces.  Build and every lookup go through it, so a probe can never
// miss an indexed value for folding reasons.
func foldValue(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// foldToken is THE canonical fold for the token-postings keyspace: the same
// fold Tokenize applies while indexing.  A single-token input ("Title",
// " TITLE.") maps onto its indexed form; input that does not reduce to one
// token keeps a plain lowercase fold, which by construction cannot collide
// with a postings key.
func foldToken(s string) string {
	if toks := Tokenize(s); len(toks) == 1 {
		return toks[0]
	}
	return strings.ToLower(s)
}

// TagCount returns the number of nodes with the given tag.
func (ix *Index) TagCount(tag doc.TagID) int {
	if ix.comp != nil {
		return ix.comp.tagCount(tag)
	}
	if tag < 0 || int(tag) >= len(ix.streams) {
		return 0
	}
	return len(ix.streams[tag])
}

// Nodes returns the document-order node list for tag.  The slice is shared
// on a raw index and freshly materialized on a compressed one; callers must
// not modify it either way.
func (ix *Index) Nodes(tag doc.TagID) []doc.NodeID {
	if ix.comp != nil {
		return ix.comp.tagStream(tag)
	}
	if tag < 0 || int(tag) >= len(ix.streams) {
		return nil
	}
	return ix.streams[tag]
}

// TokenPostings returns the nodes whose value contains token, in document
// order.  The token is canonicalized with the same fold indexing applies.
func (ix *Index) TokenPostings(token string) []doc.NodeID {
	tok := foldToken(token)
	if ix.comp != nil {
		return ix.comp.tokenPostings(tok)
	}
	return ix.postings[tok]
}

// ExactMatches returns the nodes whose whole value equals v
// case-insensitively, in document order.
func (ix *Index) ExactMatches(v string) []doc.NodeID {
	folded := foldValue(v)
	if ix.comp != nil {
		return ix.comp.exactMatches(folded)
	}
	return ix.exact[folded]
}

// DF returns the document frequency of token: the number of nodes whose
// value contains it.  It folds exactly like TokenPostings, so
// DF(t) == len(TokenPostings(t)) for every t.
func (ix *Index) DF(token string) int {
	tok := foldToken(token)
	if ix.comp != nil {
		return ix.comp.tokenCount(tok)
	}
	return len(ix.postings[tok])
}

// ValuedNodes returns the number of nodes carrying a non-empty value.
func (ix *Index) ValuedNodes() int { return ix.valued }

// TagTrie returns the completion trie over tag names.
func (ix *Index) TagTrie() *trie.Trie { return ix.tagTrie }

// ValueTrie returns the completion trie over the values of nodes tagged tag,
// or nil when no such node has a value.
func (ix *Index) ValueTrie(tag doc.TagID) *trie.Trie { return ix.valueTries[tag] }

// ContainsAll returns the nodes whose value contains every token of the
// query string, in document order, computed by intersecting token postings
// smallest-first.
func (ix *Index) ContainsAll(query string) []doc.NodeID {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	lists := make([][]doc.NodeID, len(toks))
	for i, tok := range toks {
		if ix.comp != nil {
			lists[i] = ix.comp.tokenPostings(tok)
		} else {
			lists[i] = ix.postings[tok]
		}
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := lists[0]
	for _, next := range lists[1:] {
		cur = intersect(cur, next)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// gallopSkew is the length ratio beyond which intersect switches from the
// linear merge to galloping: under it the merge's cache-friendly scan wins,
// over it the O(small · log big) search does.
const gallopSkew = 8

// intersect intersects two sorted node lists, choosing linear merge for
// similar lengths and galloping search for skewed ones (the common shape of
// ContainsAll with one rare and one common token).
func intersect(a, b []doc.NodeID) []doc.NodeID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopSkew*len(a) {
		return intersectGallop(a, b)
	}
	return intersectLinear(a, b)
}

// intersectLinear merges two sorted node lists of comparable length.
func intersectLinear(a, b []doc.NodeID) []doc.NodeID {
	var out []doc.NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectGallop intersects a short sorted list against a much longer one:
// for each element of small, gallop (exponential search) forward through
// big to bracket a window containing the first element >= x, then binary
// search inside it.  Total cost O(|small| · log |big|) instead of
// O(|small| + |big|).
func intersectGallop(small, big []doc.NodeID) []doc.NodeID {
	var out []doc.NodeID
	base := 0
	for _, x := range small {
		step := 1
		for base+step < len(big) && big[base+step] < x {
			step <<= 1
		}
		lo, hi := base+step>>1, base+step
		if hi > len(big) {
			hi = len(big)
		}
		i := lo + sort.Search(hi-lo, func(k int) bool { return big[lo+k] >= x })
		if i >= len(big) {
			break
		}
		if big[i] == x {
			out = append(out, x)
		}
		base = i
	}
	return out
}

// Save persists the index by writing its document; Load rebuilds the
// derived structures.
func (ix *Index) Save(w io.Writer) error { return ix.document.Save(w) }

// Load reads a document written by Save (or doc.Save) and rebuilds the
// index.
func Load(r io.Reader) (*Index, error) {
	d, err := doc.Load(r)
	if err != nil {
		return nil, err
	}
	return Build(d), nil
}
