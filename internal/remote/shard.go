package remote

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotusx/internal/cache"
	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/corpus"
	"lotusx/internal/doc"
	"lotusx/internal/join"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Hedging parameters.  The adaptive delay tracks the p95 of recent
// successful search latencies: hedging at p95 bounds the duplicate-work
// rate at ~5% of searches while cutting the tail that sits above it (the
// "tail at scale" recipe).  Until enough samples exist the bootstrap delay
// applies; the clamp keeps a pathological sample window from hedging
// never (ceiling) or in a busy loop (floor).
const (
	hedgeSamples    = 64
	hedgeMinSamples = 8
	hedgeBootstrap  = 25 * time.Millisecond
	hedgeFloor      = time.Millisecond
	hedgeCeil       = 2 * time.Second
)

// latencyRing is a fixed window of recent successful search latencies.
type latencyRing struct {
	mu  sync.Mutex
	buf [hedgeSamples]time.Duration
	n   int // total observations, monotonically increasing
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%hedgeSamples] = d
	r.n++
	r.mu.Unlock()
}

// p95 returns the window's 95th percentile; ok is false until the ring has
// hedgeMinSamples observations.
func (r *latencyRing) p95() (time.Duration, bool) {
	r.mu.Lock()
	if r.n < hedgeMinSamples {
		r.mu.Unlock()
		return 0, false
	}
	n := r.n
	if n > hedgeSamples {
		n = hedgeSamples
	}
	s := make([]time.Duration, n)
	copy(s, r.buf[:n])
	r.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := n * 95 / 100
	if idx >= n {
		idx = n - 1
	}
	return s[idx], true
}

// ShardOptions tunes one remote shard beyond its name and replicas.
type ShardOptions struct {
	// HedgeDelay controls search hedging: 0 adapts to the observed p95
	// latency, a positive value fixes the delay, a negative value disables
	// hedging (error failover still applies).
	HedgeDelay time.Duration
	// Metrics receives hedge/failover/error counters; nil discards.  Share
	// one RemoteMetrics across the shards of a cluster — the per-replica
	// histograms inside it are keyed by replica name.
	Metrics *metrics.RemoteMetrics
	// Budget, when non-nil, caps hedges and failovers as a fraction of
	// primary traffic (shared across the router's shards); see RetryBudget.
	Budget *RetryBudget
}

// Shard is one logical corpus shard served by R replica shard servers.  It
// implements corpus.ShardBackend: the corpus fan-out treats it exactly like
// a local shard, while internally each search races replicas — round-robin
// primary, hedge after the delay, immediate failover on error, first
// success wins and cancels the losers.
type Shard struct {
	name     string
	replicas []*Client
	hedge    time.Duration
	met      *metrics.RemoteMetrics
	budget   *RetryBudget
	rr       atomic.Uint64
	lat      latencyRing
}

var (
	_ corpus.ShardBackend = (*Shard)(nil)
	_ corpus.ShardInfoer  = (*Shard)(nil)
)

// NewShard builds a logical shard over its replica clients.  Every replica
// must serve identical data (same document slice, same index build); the
// shard assumes interchangeability and never reconciles answers.
func NewShard(name string, replicas []*Client, opts ShardOptions) (*Shard, error) {
	if name == "" {
		return nil, fmt.Errorf("remote: shard needs a name")
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("remote: shard %s needs at least one replica", name)
	}
	return &Shard{
		name:     name,
		replicas: replicas,
		hedge:    opts.HedgeDelay,
		met:      opts.Metrics,
		budget:   opts.Budget,
	}, nil
}

// ShardName implements corpus.ShardBackend.
func (s *Shard) ShardName() string { return s.name }

// hedgeDelay resolves the current hedge delay; ok is false when hedging is
// disabled.
func (s *Shard) hedgeDelay() (time.Duration, bool) {
	switch {
	case s.hedge < 0:
		return 0, false
	case s.hedge > 0:
		return s.hedge, true
	}
	p, ok := s.lat.p95()
	if !ok {
		return hedgeBootstrap, true
	}
	if p < hedgeFloor {
		p = hedgeFloor
	}
	if p > hedgeCeil {
		p = hedgeCeil
	}
	return p, true
}

// rotation returns the replicas starting at the round-robin primary — the
// launch order for this call's attempts.
func (s *Shard) rotation() []*Client {
	n := len(s.replicas)
	start := int(s.rr.Add(1)-1) % n
	out := make([]*Client, n)
	for i := range out {
		out[i] = s.replicas[(start+i)%n]
	}
	return out
}

// SearchShard implements corpus.ShardBackend: one replica race per search.
func (s *Shard) SearchShard(ctx context.Context, q *twig.Query, opts core.SearchOptions) (*corpus.ShardPage, error) {
	if s.met != nil {
		s.met.Searches.Add(1)
	}
	req := SearchRequest{
		Query:      q.String(),
		K:          clampK(opts.K),
		Rewrite:    opts.Rewrite,
		SnippetMax: opts.SnippetMax,
	}
	if opts.Algorithm != "" {
		req.Algorithm = string(opts.Algorithm)
	}
	// Traced fan-outs ask replicas for their span trees: in debug mode
	// (?debug=trace, recognizable by the cache bypass it set) the replica
	// also bypasses its caches to measure the raw pipeline; in the always-on
	// tail-sampling mode the ask is passive — the replica serves through its
	// caches and the trace just rides along.
	sp := obs.FromContext(ctx)
	mode := TraceOff
	if sp != nil {
		if cache.Bypassed(ctx) {
			mode = TraceDebug
		} else {
			mode = TraceSample
		}
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		page    *SearchPage
		err     error
		replica string
		hedged  bool
		dur     time.Duration
	}
	order := s.rotation()
	ch := make(chan attempt, len(order))
	next := 0
	launch := func(hedged bool) bool {
		if next >= len(order) {
			return false
		}
		c := order[next]
		next++
		go func() {
			asp := sp.Child("rpc")
			asp.Set("replica", c.Name())
			if hedged {
				asp.Set("hedged", "true")
			}
			start := time.Now()
			page, err := c.Search(rctx, req, mode)
			asp.SetErr(err)
			asp.End()
			ch <- attempt{page: page, err: err, replica: c.Name(), hedged: hedged, dur: time.Since(start)}
		}()
		return true
	}
	launch(false)
	s.budget.RecordPrimary()
	inflight := 1
	hedgeFired := false

	var timerC <-chan time.Time
	if d, ok := s.hedgeDelay(); ok && len(order) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timerC = timer.C
	}

	var errs []error
	for inflight > 0 {
		select {
		case <-timerC:
			timerC = nil // at most one hedge per search
			// The retry budget gates the hedge: in a cluster-wide brownout
			// every search's timer fires, and unbudgeted hedges would double
			// the load on servers that are slow because of load.
			if s.budget.Allow() && launch(true) {
				inflight++
				hedgeFired = true
				if s.met != nil {
					s.met.HedgesFired.Add(1)
				}
			}
		case a := <-ch:
			inflight--
			if a.err == nil {
				cancel() // the winner is decided; stop the losers mid-flight
				s.lat.observe(a.dur)
				if hedgeFired {
					if s.met != nil {
						if a.hedged {
							s.met.HedgeWins.Add(1)
						} else {
							s.met.HedgeLosses.Add(1)
						}
					}
					// The outcome lands on the shard span so slow-query logs
					// and the trace store can report hedge fired/won without
					// re-deriving it from rpc children.
					if a.hedged {
						sp.Set("hedge", "won")
					} else {
						sp.Set("hedge", "lost")
					}
				}
				if mode != TraceOff && a.page.Trace != nil {
					sp.Graft(a.page.Trace)
				}
				return s.toPage(a.page), nil
			}
			errs = append(errs, fmt.Errorf("replica %s: %w", a.replica, a.err))
			// A context casualty with the caller already dead says nothing
			// about the replica — don't count it against the cluster.
			if s.met != nil && !(isCtxErr(a.err) && ctx.Err() != nil) {
				s.met.RPCErrors.Add(1)
			}
			// Fast failover: don't wait for the hedge timer when a replica
			// has already said no — if the budget covers it (a cascading
			// outage must not turn into a retry storm).
			if ctx.Err() == nil && s.budget.Allow() && launch(a.hedged) {
				inflight++
				if s.met != nil {
					s.met.Failovers.Add(1)
				}
			}
		}
	}
	return nil, errors.Join(errs...)
}

// toPage converts a wire page into the merge's ShardPage.  Snippets and
// highlights were rendered by the shard server, so Render just replays
// them; answers from a sub-sharded replica keep their sub-shard scope as
// "shard/sub" (matching the PartialShards naming).
func (s *Shard) toPage(w *SearchPage) *corpus.ShardPage {
	page := &corpus.ShardPage{
		Exact:         w.Exact,
		Total:         w.Total,
		RewritesTried: w.Rewrites,
		Algorithm:     join.Algorithm(w.Algorithm),
		Answers:       make([]corpus.ShardAnswer, len(w.Answers)),
	}
	if w.Partial {
		page.PartialShards = w.FailedShards
		if len(page.PartialShards) == 0 {
			page.PartialShards = []string{"unknown"}
		}
	}
	name := s.name
	for i, a := range w.Answers {
		a := a
		hitShard := name
		if a.Shard != "" {
			hitShard = name + "/" + a.Shard
		}
		page.Answers[i] = corpus.ShardAnswer{
			Node:    doc.NodeID(a.Node),
			Score:   a.Score,
			Penalty: a.Penalty,
			Render: func(int) core.Hit {
				return core.Hit{
					Shard:      hitShard,
					Node:       doc.NodeID(a.Node),
					Path:       a.Path,
					Score:      a.Score,
					Snippet:    a.Snippet,
					Highlights: a.Highlights,
					Rewrite:    a.Rewrite,
					Penalty:    a.Penalty,
				}
			},
		}
	}
	return page
}

// failover walks the rotation sequentially until fn succeeds — the
// completion/explain path, where a duplicate in-flight scan is not worth
// the cost hedging pays for search tails.
func (s *Shard) failover(ctx context.Context, fn func(c *Client) error) error {
	var errs []error
	order := s.rotation()
	for i, c := range order {
		if i == 0 {
			s.budget.RecordPrimary()
		} else if !s.budget.Allow() {
			// Retry budget spent: settle for the primary's failure rather
			// than pile secondaries onto a struggling cluster.
			break
		}
		err := fn(c)
		if err == nil {
			return nil
		}
		errs = append(errs, fmt.Errorf("replica %s: %w", c.Name(), err))
		if s.met != nil && !(isCtxErr(err) && ctx.Err() != nil) {
			s.met.RPCErrors.Add(1)
		}
		if ctx.Err() != nil {
			break
		}
		if s.met != nil && i < len(order)-1 {
			s.met.Failovers.Add(1)
		}
	}
	return errors.Join(errs...)
}

// CompleteTags implements corpus.ShardBackend over the wire: the anchor
// node is transported as its root-to-anchor chain (complete.AnchorChain),
// which the shard server re-parses into the same position.
func (s *Shard) CompleteTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	path := wirePath(q, anchor)
	var out []complete.Candidate
	err := s.failover(ctx, func(c *Client) error {
		cands, err := c.Complete(ctx, "tag", path, axis, prefix, k)
		out = cands
		return err
	})
	return out, err
}

// CompleteValues implements corpus.ShardBackend.
func (s *Shard) CompleteValues(ctx context.Context, q *twig.Query, focus int, prefix string, k int) ([]complete.Candidate, error) {
	path := wirePath(q, focus)
	var out []complete.Candidate
	err := s.failover(ctx, func(c *Client) error {
		cands, err := c.Complete(ctx, "value", path, twig.Child, prefix, k)
		out = cands
		return err
	})
	return out, err
}

// ExplainTags implements corpus.ShardBackend.
func (s *Shard) ExplainTags(ctx context.Context, q *twig.Query, anchor int, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error) {
	path := wirePath(q, anchor)
	var out []complete.Occurrence
	err := s.failover(ctx, func(c *Client) error {
		occs, err := c.Explain(ctx, path, axis, tag, max)
		out = occs
		return err
	})
	return out, err
}

// ShardInfo implements corpus.ShardInfoer for GET /api/v1/stats
// aggregation: best-effort, first replica to answer.
func (s *Shard) ShardInfo() (core.BackendInfo, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var info core.BackendInfo
	err := s.failover(ctx, func(c *Client) error {
		i, err := c.Stats(ctx)
		info = i
		return err
	})
	if err != nil {
		return core.BackendInfo{}, err
	}
	info.Name = s.name
	if info.Kind == "" {
		info.Kind = "engine"
	}
	return info, nil
}

// ShardStatus is the cluster-status view of one shard (GET /api/v1/cluster).
type ShardStatus struct {
	Name     string   `json:"name"`
	Replicas []string `json:"replicas"`
	// Hedging reports whether search hedging is enabled; HedgeDelayMS is
	// the delay currently in effect (adaptive p95 or the fixed setting).
	Hedging      bool    `json:"hedging"`
	HedgeDelayMS float64 `json:"hedgeDelayMs"`
}

// Status reports the shard's topology and current hedge delay.
func (s *Shard) Status() ShardStatus {
	st := ShardStatus{Name: s.name, Replicas: make([]string, len(s.replicas))}
	for i, c := range s.replicas {
		st.Replicas[i] = c.Name()
	}
	if d, ok := s.hedgeDelay(); ok {
		st.Hedging = true
		st.HedgeDelayMS = float64(d.Microseconds()) / 1000
	}
	return st
}

// wirePath renders the root-to-anchor chain for transport, "" for a new
// root.  AnchorChain's leading "^" is a display convention, not part of the
// parseable XPath subset.
func wirePath(q *twig.Query, anchor int) string {
	chain := complete.AnchorChain(q, anchor)
	return strings.TrimPrefix(chain, "^")
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
