// Package remote lets one corpus span machines: it implements
// corpus.ShardBackend over HTTP against a lotusx-server running in shard
// mode, speaking the same v1 JSON contract the public API serves.  A router
// process builds one Shard per logical shard — each backed by R replica
// Clients — and hands them to corpus.NewRemote; everything above the
// ShardBackend seam (degrade/failfast policy, per-shard circuit breakers,
// time budgets with one transparent retry, partial-result envelopes) applies
// to remote shards exactly as it does to local ones.
//
// Within a Shard, replicas are raced, not pooled: searches go to a
// round-robin primary, a hedge request fires on the next replica once the
// primary outlives a p95-derived delay, an errored replica fails over to the
// next immediately, and the first success cancels the losers.  Completion
// and explain calls — cheap and latency-tolerant — fail over sequentially
// instead of hedging.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lotusx/internal/complete"
	"lotusx/internal/core"
	"lotusx/internal/faults"
	"lotusx/internal/httpmw"
	"lotusx/internal/metrics"
	"lotusx/internal/obs"
	"lotusx/internal/twig"
)

// Fault injection sites of the network client, keyed by replica name.
const (
	// FaultRPC fires before a request leaves the client: an injected error
	// simulates a connection failure, injected latency a slow network.
	FaultRPC = "remote/rpc"
	// FaultBody wraps response bodies: an injected ShortRead truncates the
	// stream mid-payload, the shape of a connection dying between headers
	// and body.
	FaultBody = "remote/body"
)

// Server-side validation bounds the client must stay within (see
// internal/server): the per-request k cap and the explain max cap.
const (
	maxWireK   = 1000
	maxWireMax = 100
)

// ClientConfig configures one replica endpoint.
type ClientConfig struct {
	// BaseURL is the replica's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Dataset is the remote dataset name passed as ?dataset=; "" uses the
	// replica's default dataset.
	Dataset string
	// Name labels the replica in metrics, fault keys, and errors; defaults
	// to the BaseURL's host.
	Name string
	// MaxConns bounds the connection pool to this replica (idle and total);
	// 0 means 32.
	MaxConns int
	// Transport overrides the HTTP transport (tests); nil builds a bounded
	// one from MaxConns.
	Transport http.RoundTripper
	// Faults arms the client's injection sites; nil never fires.
	Faults *faults.Registry
	// Metrics receives per-replica RPC latency observations; nil discards.
	Metrics *metrics.RemoteMetrics
}

// Client speaks the v1 API to one replica endpoint.  It is safe for
// concurrent use.
type Client struct {
	name    string
	base    string
	dataset string
	hc      *http.Client
	faults  *faults.Registry
	met     *metrics.RemoteMetrics
}

// NewClient validates the endpoint and builds a client with a bounded
// connection pool.  The client never sets its own timeout: the per-attempt
// context (the corpus's per-shard budget) governs every request.
func NewClient(cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("remote: bad base URL %q (want scheme://host[:port])", cfg.BaseURL)
	}
	name := cfg.Name
	if name == "" {
		name = u.Host
	}
	maxConns := cfg.MaxConns
	if maxConns <= 0 {
		maxConns = 32
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{
			MaxIdleConns:        maxConns,
			MaxIdleConnsPerHost: maxConns,
			MaxConnsPerHost:     maxConns,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Client{
		name:    name,
		base:    u.Scheme + "://" + u.Host + strings.TrimRight(u.Path, "/"),
		dataset: cfg.Dataset,
		hc:      &http.Client{Transport: tr},
		faults:  cfg.Faults,
		met:     cfg.Metrics,
	}, nil
}

// Name returns the replica's label.
func (c *Client) Name() string { return c.name }

// SearchRequest is the wire form of POST /api/v1/query — the subset of the
// server's queryRequest a router forwards.
type SearchRequest struct {
	Query      string `json:"query"`
	K          int    `json:"k"`
	Offset     int    `json:"offset"`
	Rewrite    bool   `json:"rewrite"`
	Algorithm  string `json:"algorithm,omitempty"`
	SnippetMax int    `json:"snippetMax,omitempty"`
}

// Answer is one wire answer of a shard server's query response.
type Answer struct {
	Node       int32            `json:"node"`
	Path       string           `json:"path"`
	Score      float64          `json:"score"`
	Snippet    string           `json:"snippet"`
	Shard      string           `json:"shard,omitempty"`
	Rewrite    string           `json:"rewrite,omitempty"`
	Penalty    float64          `json:"penalty,omitempty"`
	Highlights []core.Highlight `json:"highlights,omitempty"`
}

// SearchPage is the wire form of the shard server's query response.
type SearchPage struct {
	Answers      []Answer  `json:"answers"`
	Exact        int       `json:"exact"`
	Total        int       `json:"total"`
	Rewrites     int       `json:"rewritesTried"`
	Algorithm    string    `json:"algorithm"`
	Shards       int       `json:"shards,omitempty"`
	Partial      bool      `json:"partial,omitempty"`
	FailedShards []string  `json:"failedShards,omitempty"`
	ElapsedMS    float64   `json:"elapsedMs"`
	Trace        *obs.Node `json:"trace,omitempty"`
}

// TraceMode selects how a search RPC asks the replica for its span tree.
type TraceMode int

const (
	// TraceOff requests no trace (the replica still tail-samples its own).
	TraceOff TraceMode = iota
	// TraceSample asks for the span tree passively (X-Lotusx-Trace: sample):
	// the replica returns its trace but serves through its hot-path caches
	// like any other request.  This is the always-on tail-sampling mode — a
	// router collecting traces must not turn every shard cache hit into a
	// miss.
	TraceSample
	// TraceDebug asks with ?debug=trace, which bypasses the replica's caches
	// to measure the real evaluation pipeline — the explicit-debug mode.
	TraceDebug
)

// Search runs one query RPC.  mode asks the replica for its span tree so
// the router can graft it under the local shard span (see TraceMode).
func (c *Client) Search(ctx context.Context, req SearchRequest, mode TraceMode) (*SearchPage, error) {
	qv := url.Values{}
	var hdr http.Header
	switch mode {
	case TraceDebug:
		qv.Set("debug", "trace")
	case TraceSample:
		hdr = http.Header{"X-Lotusx-Trace": []string{"sample"}}
	}
	var out SearchPage
	if err := c.doHeader(ctx, http.MethodPost, "/api/v1/query", qv, hdr, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsSnapshot fetches the replica's /api/v1/metrics snapshot — the
// federation poll (see Federator).
func (c *Client) MetricsSnapshot(ctx context.Context) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	err := c.do(ctx, http.MethodGet, "/api/v1/metrics", url.Values{}, nil, &snap)
	return snap, err
}

// Complete runs one completion RPC.  kind is "tag" or "value"; path is the
// root-to-anchor chain in the XPath subset ("" completes root tags).
func (c *Client) Complete(ctx context.Context, kind, path string, axis twig.Axis, prefix string, k int) ([]complete.Candidate, error) {
	qv := url.Values{}
	qv.Set("kind", kind)
	qv.Set("axis", axisParam(axis))
	qv.Set("prefix", prefix)
	qv.Set("k", strconv.Itoa(clampK(k)))
	if path != "" {
		qv.Set("path", path)
	}
	var out struct {
		Candidates []complete.Candidate `json:"candidates"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/complete", qv, nil, &out); err != nil {
		return nil, err
	}
	return out.Candidates, nil
}

// Explain runs one explain RPC.  max caps the occurrence list; 0 means all
// the server allows.
func (c *Client) Explain(ctx context.Context, path string, axis twig.Axis, tag string, max int) ([]complete.Occurrence, error) {
	if max < 0 || max > maxWireMax {
		max = maxWireMax
	}
	qv := url.Values{}
	qv.Set("tag", tag)
	qv.Set("axis", axisParam(axis))
	qv.Set("max", strconv.Itoa(max))
	if path != "" {
		qv.Set("path", path)
	}
	var out struct {
		Occurrences []complete.Occurrence `json:"occurrences"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/explain", qv, nil, &out); err != nil {
		return nil, err
	}
	return out.Occurrences, nil
}

// Stats fetches the replica's dataset stats.  Both wire shapes decode into
// BackendInfo: a corpus answers BackendInfo verbatim, and a single engine's
// Stats payload (Go field names) lands on the same fields through
// encoding/json's case-insensitive match.
func (c *Client) Stats(ctx context.Context) (core.BackendInfo, error) {
	var info core.BackendInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", url.Values{}, nil, &info)
	return info, err
}

// do runs one RPC: fault site, request ID propagation, bounded-pool HTTP
// round trip, latency observation, envelope decoding.  Any non-nil return
// is either a transport error (context errors included, wrapped by
// net/http) or a typed *Error decoded from the v1 envelope.
func (c *Client) do(ctx context.Context, method, path string, qv url.Values, body, out any) error {
	return c.doHeader(ctx, method, path, qv, nil, body, out)
}

// doHeader is do with extra request headers (nil for none).
func (c *Client) doHeader(ctx context.Context, method, path string, qv url.Values, hdr http.Header, body, out any) error {
	if err := c.faults.Fire(ctx, FaultRPC, c.name); err != nil {
		return err
	}
	if c.dataset != "" {
		qv.Set("dataset", c.dataset)
	}
	u := c.base + path
	if len(qv) > 0 {
		u += "?" + qv.Encode()
	}
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("remote: encode %s: %w", path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return fmt.Errorf("remote: build %s: %w", path, err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// One request ID names the whole router->shard tree: the shard server's
	// RequestID middleware adopts an inbound X-Request-Id, so its logs and
	// trace join the router's under the same ID.
	if id := httpmw.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	start := time.Now()
	if c.met != nil {
		defer func() { c.met.ObserveReplica(c.name, time.Since(start)) }()
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rdr := c.faults.Reader(FaultBody, c.name, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, rdr, c.name)
	}
	if err := json.NewDecoder(rdr).Decode(out); err != nil {
		return fmt.Errorf("remote %s: decode %s: %w", c.name, path, err)
	}
	return nil
}

func axisParam(axis twig.Axis) string {
	if axis == twig.Descendant {
		return "descendant"
	}
	return "child"
}

// clampK keeps a widened corpus ask within the server's 1..maxK validation.
// The cost of the cap: a single remote shard cannot page past maxWireK
// answers (see docs/CLUSTER.md, "Limits").
func clampK(k int) int {
	if k < 1 {
		return 1
	}
	if k > maxWireK {
		return maxWireK
	}
	return k
}
